"""Throughput micro-benchmarks of the core engines.

Not a paper artefact — these track that the vectorised energy engine,
flow reconstruction and state labelling stay fast enough to run the
full 623-day study, and quantify the speedup over the event-driven
reference machine.
"""

import numpy as np
import pytest

from repro.radio import LTE_DEFAULT, RadioStateMachine, compute_packet_energy
from repro.trace.arrays import PacketArray
from repro.trace.flow import reconstruct_flows
from repro.trace.intervals import label_packet_states


def _synthetic_packets(n=200_000, seed=3):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, n / 10.0, size=n))
    return PacketArray.from_columns(
        times,
        rng.integers(60, 1500, size=n).astype(np.uint32),
        rng.integers(0, 2, size=n).astype(np.uint8),
        rng.integers(1, 50, size=n).astype(np.uint16),
        rng.integers(1, 5000, size=n).astype(np.uint32),
    )


@pytest.fixture(scope="module")
def packets():
    return _synthetic_packets()


def test_vectorized_energy_throughput(benchmark, packets):
    result = benchmark(compute_packet_energy, LTE_DEFAULT, packets)
    benchmark.extra_info["packets"] = len(packets)
    assert result.total_energy > 0


def test_machine_energy_throughput(benchmark):
    small = _synthetic_packets(n=20_000)
    machine = RadioStateMachine(LTE_DEFAULT)
    result = benchmark(machine.simulate, small, None, False)
    benchmark.extra_info["packets"] = len(small)
    assert result.total_energy > 0


def test_flow_reconstruction_throughput(benchmark, packets):
    table = benchmark(reconstruct_flows, packets)
    benchmark.extra_info["flows"] = len(table)
    assert len(table) > 0


def test_engines_agree_at_scale(packets):
    """Cross-check beyond the property tests' small sizes."""
    machine = RadioStateMachine(LTE_DEFAULT).simulate(
        packets[: 30_000], record_intervals=False
    )
    vector = compute_packet_energy(LTE_DEFAULT, packets[: 30_000])
    np.testing.assert_allclose(machine.per_packet, vector.per_packet, rtol=1e-9)


def test_generation_throughput(benchmark):
    from repro import StudyConfig, generate_study

    def gen():
        return generate_study(StudyConfig(n_users=2, duration_days=7.0, seed=8))

    dataset = benchmark.pedantic(gen, rounds=1, iterations=1)
    benchmark.extra_info["packets"] = dataset.total_packets
    assert dataset.total_packets > 10_000
