"""Throughput micro-benchmarks of the core engines.

Not a paper artefact — these track that the vectorised energy engine,
flow reconstruction and state labelling stay fast enough to run the
full 623-day study, quantify the speedup over the event-driven
reference machine, and measure the parallel / disk-cached
:class:`~repro.core.accounting.StudyEnergy` engine against its serial
baseline (numbers quoted in docs/PERFORMANCE.md).
"""

import time

import numpy as np
import pytest

from repro import RunMetrics, StudyEnergy
from repro.parallel import available_cpus
from repro.radio import LTE_DEFAULT, RadioStateMachine, compute_packet_energy
from repro.trace.arrays import PacketArray
from repro.trace.dataset import AppInfo, AppRegistry, Dataset
from repro.trace.events import EventLog
from repro.trace.flow import reconstruct_flows
from repro.trace.intervals import label_packet_states
from repro.trace.trace import UserTrace


def _synthetic_packets(n=200_000, seed=3):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, n / 10.0, size=n))
    return PacketArray.from_columns(
        times,
        rng.integers(60, 1500, size=n).astype(np.uint32),
        rng.integers(0, 2, size=n).astype(np.uint8),
        rng.integers(1, 50, size=n).astype(np.uint16),
        rng.integers(1, 5000, size=n).astype(np.uint32),
    )


@pytest.fixture(scope="module")
def packets():
    return _synthetic_packets()


def test_vectorized_energy_throughput(benchmark, packets):
    result = benchmark(compute_packet_energy, LTE_DEFAULT, packets)
    benchmark.extra_info["packets"] = len(packets)
    assert result.total_energy > 0


def test_machine_energy_throughput(benchmark):
    small = _synthetic_packets(n=20_000)
    machine = RadioStateMachine(LTE_DEFAULT)
    result = benchmark(machine.simulate, small, None, False)
    benchmark.extra_info["packets"] = len(small)
    assert result.total_energy > 0


def test_flow_reconstruction_throughput(benchmark, packets):
    table = benchmark(reconstruct_flows, packets)
    benchmark.extra_info["flows"] = len(table)
    assert len(table) > 0


def test_engines_agree_at_scale(packets):
    """Cross-check beyond the property tests' small sizes."""
    machine = RadioStateMachine(LTE_DEFAULT).simulate(
        packets[: 30_000], record_intervals=False
    )
    vector = compute_packet_energy(LTE_DEFAULT, packets[: 30_000])
    np.testing.assert_allclose(machine.per_packet, vector.per_packet, rtol=1e-9)


def test_generation_throughput(benchmark):
    from repro import StudyConfig, generate_study

    def gen():
        return generate_study(StudyConfig(n_users=2, duration_days=7.0, seed=8))

    dataset = benchmark.pedantic(gen, rounds=1, iterations=1)
    benchmark.extra_info["packets"] = dataset.total_packets
    assert dataset.total_packets > 10_000


# ----------------------------------------------------------------------
# StudyEnergy engine: parallel and cached vs serial
# ----------------------------------------------------------------------
def _attribution_dataset(n_users=6, packets_per_user=300_000):
    """A multi-user dataset heavy enough that attribution dominates.

    Built directly from synthetic packet arrays (no workload
    generation) so these benches time the attribution engine alone.
    """
    registry = AppRegistry(AppInfo(i, f"bench.app{i}", "bench") for i in range(1, 50))
    users = [
        UserTrace(
            uid,
            0.0,
            packets_per_user / 10.0,
            _synthetic_packets(n=packets_per_user, seed=uid),
            EventLog(),
        )
        for uid in range(1, n_users + 1)
    ]
    return Dataset(registry, users)


@pytest.fixture(scope="module")
def attribution_dataset():
    return _attribution_dataset()


def _attribute_seconds(dataset, **kwargs):
    metrics = RunMetrics()
    study = StudyEnergy(dataset, metrics=metrics, **kwargs)
    return study, metrics.stage_seconds("attribute")


def test_attribution_throughput(benchmark, attribution_dataset):
    study = benchmark.pedantic(
        StudyEnergy, args=(attribution_dataset,), rounds=1, iterations=1
    )
    benchmark.extra_info["packets"] = attribution_dataset.total_packets
    assert study.total_energy > 0


def test_parallel_attribution_speedup(attribution_dataset):
    """workers>1 must not change a single bit; on >=4 CPUs it must be >=2x.

    The speedup assertion is hardware-gated: a pool cannot beat serial
    on the 1-2 CPUs of a constrained CI container, and pretending
    otherwise would make this bench flaky exactly where it matters.
    """
    serial, t_serial = _attribute_seconds(attribution_dataset)
    cpus = available_cpus()
    parallel, t_parallel = _attribute_seconds(
        attribution_dataset, workers=max(cpus, 2)
    )

    for uid in serial.user_ids:
        assert np.array_equal(
            serial.user_result(uid).per_packet,
            parallel.user_result(uid).per_packet,
        )
    assert parallel.total_energy == serial.total_energy

    speedup = t_serial / t_parallel if t_parallel else float("inf")
    print(
        f"\nattribution: serial {t_serial:.3f}s, "
        f"workers={max(cpus, 2)} {t_parallel:.3f}s, "
        f"speedup {speedup:.2f}x on {cpus} CPU(s)"
    )
    if cpus >= 4:
        assert speedup >= 2.0, (
            f"parallel attribution only {speedup:.2f}x faster on {cpus} CPUs"
        )


def test_cache_attribution_speedup(attribution_dataset, tmp_path):
    """A warm disk cache must clearly beat recomputation, bit-identically.

    Best-of-3 on both sides: a single cold-page-cache read can be
    slower than the whole computation on constrained CI storage, and
    this bench measures the engine, not the disk. The honest expected
    ratio at the default single-phase LTE model is ~1.5-2x (the cached
    tail array is about half the compute passes; transfer/promotion are
    recomputed); multi-phase tail models gain more.
    """
    baseline, _ = _attribute_seconds(attribution_dataset)
    t_compute = min(
        _attribute_seconds(attribution_dataset)[1] for _ in range(3)
    )
    _, t_cold = _attribute_seconds(attribution_dataset, cache_dir=tmp_path)
    warm = None
    t_warm = float("inf")
    for _ in range(3):
        warm, t = _attribute_seconds(attribution_dataset, cache_dir=tmp_path)
        t_warm = min(t_warm, t)

    for uid in baseline.user_ids:
        assert np.array_equal(
            baseline.user_result(uid).per_packet,
            warm.user_result(uid).per_packet,
        )
    speedup = t_compute / t_warm if t_warm else float("inf")
    print(
        f"\nattribution: compute {t_compute:.3f}s, cold+store {t_cold:.3f}s, "
        f"warm cache {t_warm:.3f}s, warm speedup {speedup:.2f}x"
    )
    assert speedup >= 1.3, f"warm cache only {speedup:.2f}x faster"


def test_lazy_first_answer_latency(attribution_dataset):
    """Lazy mode: time-to-first-user must not pay for the whole study."""
    start = time.perf_counter()
    study = StudyEnergy(attribution_dataset, lazy=True)
    study.user_result(study.user_ids[0])
    t_first = time.perf_counter() - start
    _, t_all = _attribute_seconds(attribution_dataset)
    n = len(study.user_ids)
    print(
        f"\nlazy first-user answer {t_first:.3f}s vs full study {t_all:.3f}s "
        f"({n} users)"
    )
    # Generous bound: one user's work plus constant overhead, not n users'.
    assert t_first < t_all * (2.5 / n) + 0.25
