"""The live-monitoring ring: ingest throughput, fold cost, identity.

docs/MONITORING.md promises that a long-lived :class:`WindowRing` —
through any chunking and eviction history — folds its window to
bit-identical totals against a fresh ring built from only that
window's packets, and that maintaining the ring is cheap enough to
ride along with attribution. This bench measures both sides and
enforces the identity:

* ingest = feed a week of 4-user traffic through the ring in
  follower-sized chunks, evicting as buckets fall out of retention
  (what `repro follow` pays on top of streaming attribution);
* fold = the per-advance cost of folding the last-day window through
  `merge_keyed_totals` (what every sealed bucket pays);
* identity = the folded window must be `array_equal` to a fresh ring
  fed only the window's packets, digest included.

Numbers land in ``benchmarks/output/BENCH_follow.json`` so the perf
trajectory is recorded run over run.
"""

from __future__ import annotations

import json
import time

import numpy as np

from repro.follow import WindowRing, WindowSpec, fold_total_energy

from conftest import write_artifact

#: Synthetic tail scale: a week of packets for a handful of users.
N_USERS = 4
N_PACKETS = 200_000
SPAN_DAYS = 7.0

#: The maintained window: last day, hourly buckets.
WINDOW = WindowSpec("day", 86400, 3600)

#: Follower-sized ingest chunks.
CHUNK = 4096

#: App/state vocabulary for the synthetic traffic.
N_APPS = 40
N_STATES = 3


def _user_stream(rng, n):
    """One user's sorted week of (ts, apps, states, sizes, energies)."""
    ts = np.sort(rng.uniform(0.0, SPAN_DAYS * 86400.0, n))
    apps = rng.integers(0, N_APPS, n, dtype=np.int64)
    states = rng.integers(0, N_STATES, n, dtype=np.int64)
    sizes = rng.integers(40, 1500, n, dtype=np.int64)
    energies = rng.uniform(1e-4, 0.4, n)
    return ts, apps, states, sizes, energies


def _ingest_chunked(ring, streams, evict=True):
    """Feed every stream through ``ring`` in follower-sized chunks,
    evicting past retention like the follower does. Returns the final
    sealed bucket and the eviction count."""
    evictions = 0
    high = 0
    for uid, (ts, apps, states, sizes, energies) in streams.items():
        for lo in range(0, len(ts), CHUNK):
            hi = lo + CHUNK
            ring.ingest(
                uid, ts[lo:hi], apps[lo:hi], states[lo:hi],
                sizes[lo:hi], energies[lo:hi],
            )
            if evict:
                sealed = int(ts[min(hi, len(ts)) - 1] // WINDOW.bucket_s) - 1
                high = max(high, sealed)
                evictions += ring.evict_through(
                    sealed - 2 * WINDOW.n_buckets
                )
    return high, evictions


def test_follow_ring(benchmark, output_dir):
    rng = np.random.default_rng(7)
    per_user = N_PACKETS // N_USERS
    streams = {uid: _user_stream(rng, per_user) for uid in range(N_USERS)}

    ring = WindowRing(WINDOW)
    t0 = time.perf_counter()
    high, evictions = _ingest_chunked(ring, streams)
    ingest_s = time.perf_counter() - t0
    assert evictions > 0, "a week of traffic must overflow retention"

    # The last fully-sealed bucket common to every user.
    high = min(
        int(ts[-1] // WINDOW.bucket_s) - 1
        for ts, *_ in streams.values()
    )

    # Identity: a fresh ring fed only the window's packets folds the
    # same bytes — keys, values and digest.
    low_t = (high - WINDOW.n_buckets + 1) * WINDOW.bucket_s
    high_t = (high + 1) * WINDOW.bucket_s
    fresh = WindowRing(WINDOW)
    for uid, (ts, apps, states, sizes, energies) in streams.items():
        mask = (ts >= low_t) & (ts < high_t)
        fresh.ingest(
            uid, ts[mask], apps[mask], states[mask],
            sizes[mask], energies[mask],
        )
    lived, scratch = ring.fold(high), fresh.fold(high)
    assert list(lived) == list(scratch)
    for uid in lived:
        for mine, theirs in zip(lived[uid], scratch[uid]):
            assert list(mine) == list(theirs)
            assert np.array_equal(
                np.fromiter(mine.values(), float),
                np.fromiter(theirs.values(), float),
            )
    assert ring.fold_digest(high) == fresh.fold_digest(high)

    # Steady-state fold cost: what every sealed bucket pays.
    fold = benchmark.pedantic(
        lambda: ring.fold(high), rounds=20, iterations=5
    )
    fold_s = benchmark.stats.stats.mean
    total_j = fold_total_energy(fold)

    packets_per_s = N_PACKETS / ingest_s
    numbers = {
        "packets": N_PACKETS,
        "users": N_USERS,
        "window": {"span_s": WINDOW.span_s, "bucket_s": WINDOW.bucket_s},
        "chunk": CHUNK,
        "ingest_wall_s": round(ingest_s, 4),
        "ingest_packets_per_s": round(packets_per_s),
        "fold_mean_s": round(fold_s, 6),
        "evictions": evictions,
        "window_total_j": round(total_j, 3),
        "identical_to_fresh": True,
    }
    (output_dir / "BENCH_follow.json").write_text(
        json.dumps(numbers, indent=2) + "\n"
    )

    lines = [
        "rolling-window ring — "
        f"{N_PACKETS:,} packets, {N_USERS} users, "
        f"{WINDOW.span_s // 3600}h window / {WINDOW.bucket_s // 60}min buckets",
        f"  ring ingest   {packets_per_s:10.0f} packets/s "
        f"({ingest_s:.3f} s wall, {evictions} bucket evictions)",
        f"  window fold   {fold_s * 1e3:10.3f} ms/advance "
        f"({fold_total_energy(fold):.1f} J in window)",
        "  fold bit-identical to a from-scratch ring (array_equal + digest)",
        "  [numbers also in BENCH_follow.json]",
    ]
    write_artifact(output_dir, "bench_follow.txt", "\n".join(lines))
    benchmark.extra_info.update(numbers)
