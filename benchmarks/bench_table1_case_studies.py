"""Table 1: background-transfer case studies across five app classes.

Paper (units read as J/day, J/flow, MB/flow, J/MB — see DESIGN.md):
chatty apps (Weibo: 190 J/MB) sit orders of magnitude above batched
ones (Twitter: 0.65 J/MB); the Accuweather widget is far cheaper than
the Accuweather app; chunked podcast downloads (Podcastaddict) cost
more energy than whole-episode ones (Pocketcasts); behaviour evolution
(Facebook 5 min -> 1 h, Pandora 1 min -> 2 h) is encoded in the
workload schedules.
"""

from repro.core.casestudies import case_study_table, efficiency_spread
from repro.core.report import render_table1

from conftest import write_artifact


def test_table1_case_studies(benchmark, bench_study, output_dir):
    rows = benchmark(case_study_table, bench_study)
    write_artifact(output_dir, "table1_case_studies.txt", render_table1(rows))

    by_app = {r.app: r for r in rows}
    benchmark.extra_info["rows"] = len(rows)
    for short, name in (
        ("weibo", "com.sina.weibo"),
        ("twitter", "com.twitter.android"),
        ("accuweather_app", "com.accuweather.android"),
        ("accuweather_widget", "com.accuweather.widget"),
    ):
        row = by_app.get(name)
        if row:
            benchmark.extra_info[f"{short}_j_per_day"] = round(row.joules_per_day, 1)
            benchmark.extra_info[f"{short}_j_per_mb"] = round(row.joules_per_mb, 2)

    assert len(rows) >= 12  # nearly all sixteen apps appear at 20 users

    # Paper orderings.
    weibo = by_app["com.sina.weibo"]
    twitter = by_app["com.twitter.android"]
    assert weibo.joules_per_mb > 10 * twitter.joules_per_mb
    assert weibo.joules_per_day > twitter.joules_per_day

    app = by_app["com.accuweather.android"]
    widget = by_app["com.accuweather.widget"]
    assert app.joules_per_day > 3 * widget.joules_per_day

    # "Energy consumption differences of up to an order of magnitude
    # exist between apps with near-identical functionality."
    assert efficiency_spread(rows) > 50.0

    # Update-frequency estimates recover the profiles' cadences.
    assert 300.0 <= weibo.update_frequency.median_interval <= 700.0
    assert 3000.0 <= twitter.update_frequency.median_interval <= 4300.0
