"""Table 2: preemptively killing idle background apps (§5).

Paper values for rows A/B/C (six rarely-used apps):

    A (% days with only background traffic):   42, 83, 70, 13, 43, 62
    B (max consecutive background days):       40, 24, 84, 10, 18, 49
    C (kill-after-3-days avg % energy cut):    14, 54, 39, 6.2, 22, 45

B scales with observation length; at the bench's 28 days the runs are
proportionally shorter. Also reproduces the headline that overall
savings are far smaller than per-app savings, and the Weibo
affected-days number (paper: 16%).

The policy sweep at the bottom runs every registered counterfactual
policy under both LTE and 5G NR (docs/POLICIES.md), asserts the legacy
entry points agree with the engine, and writes per-policy savings and
evaluation throughput to ``BENCH_policy.json``.
"""

import json
import time

from repro import StudyEnergy
from repro.cli import TABLE2_APPS
from repro.core.report import render_table2
from repro.core.whatif import (
    doze_savings,
    frequency_cap_savings,
    kill_policy_savings,
    os_coalescing_savings,
    savings_on_affected_days,
    total_savings,
)
from repro.policy import available_policies, evaluate_policy, get_policy
from repro.radio.registry import get_model

from conftest import write_artifact

PAPER_C = {
    "com.sec.spp.push": 14.0,
    "com.sina.weibo": 54.0,
    "com.facebook.orca": 39.0,
    "com.espn.score_center": 6.2,
    "com.foursquare.android": 22.0,
    "com.sec.android.widgetapp.ap.hero.accuweather": 45.0,
}


def test_table2_kill_policy(benchmark, bench_study, output_dir):
    def compute():
        return [kill_policy_savings(bench_study, app) for app in TABLE2_APPS]

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_artifact(output_dir, "table2_whatif.txt", render_table2(results))

    for result in results:
        short = result.app.split(".")[-1]
        benchmark.extra_info[f"{short}_A_pct"] = round(
            result.pct_background_only_days, 1
        )
        benchmark.extra_info[f"{short}_B_days"] = (
            result.max_consecutive_background_days
        )
        benchmark.extra_info[f"{short}_C_pct"] = round(
            result.avg_energy_reduction_pct, 1
        )

    by_app = {r.app: r for r in results}
    weibo = by_app["com.sina.weibo"]
    espn = by_app["com.espn.score_center"]

    # Paper shapes: Weibo is the biggest winner ("more than halved"),
    # heavily-used ESPN the smallest; rarely-used apps have most days
    # background-only.
    assert weibo.avg_energy_reduction_pct > 35.0
    assert espn.avg_energy_reduction_pct < 15.0
    assert weibo.pct_background_only_days > 55.0
    assert espn.pct_background_only_days < 40.0
    for result in results:
        assert result.max_consecutive_background_days >= 3 or (
            result.avg_energy_reduction_pct < 15.0
        )


def test_table2_headline_totals(benchmark, bench_study):
    def compute():
        overall = total_savings(bench_study)
        weibo_affected = savings_on_affected_days(bench_study, "com.sina.weibo")
        return overall, weibo_affected

    overall, weibo_affected = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info["overall_savings_pct"] = round(overall.overall_pct, 2)
    benchmark.extra_info["weibo_affected_days_pct"] = round(weibo_affected, 1)
    benchmark.extra_info["paper_overall"] = "<1%"
    benchmark.extra_info["paper_weibo_affected_days"] = 16.0

    # Paper shape: per-app savings (Table 2 C) far exceed the overall
    # average; Weibo users save a double-digit share on affected days.
    weibo = kill_policy_savings(bench_study, "com.sina.weibo")
    assert overall.overall_pct < weibo.avg_energy_reduction_pct / 2
    assert 5.0 < weibo_affected < 40.0


def test_policy_sweep_all_policies_both_radios(
    benchmark, bench_dataset, bench_study, output_dir
):
    """Every registered policy × {lte, nr}: savings + throughput."""
    studies = {
        "lte": bench_study,
        "nr": StudyEnergy(bench_dataset, model=get_model("nr")),
    }
    n_packets = sum(len(t.packets) for t in bench_dataset)

    def sweep():
        rows = []
        for radio, study in studies.items():
            for name in available_policies():
                policy = get_policy(name, {})
                t0 = time.perf_counter()
                result = evaluate_policy(study, policy)
                elapsed = time.perf_counter() - t0
                rows.append(
                    {
                        "policy": name,
                        "spec": result.policy,
                        "radio": radio,
                        "savings_pct": round(result.savings.overall_pct, 3),
                        "mean_user_pct": round(
                            result.savings.mean_user_pct, 3
                        ),
                        "dropped_packets": result.dropped_packets,
                        "moved_packets": result.moved_packets,
                        "seconds": round(elapsed, 4),
                        "packets_per_second": round(n_packets / elapsed),
                    }
                )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    write_artifact(
        output_dir, "BENCH_policy.json", json.dumps(rows, indent=2)
    )
    for row in rows:
        benchmark.extra_info[f"{row['policy']}_{row['radio']}_pct"] = row[
            "savings_pct"
        ]

    by_key = {(r["policy"], r["radio"]): r for r in rows}
    assert len(by_key) == 2 * len(available_policies())

    # Legacy entry points and the engine are the same computation: the
    # wrapper totals must equal the engine's to the last bit.
    for radio, study in studies.items():
        assert (
            round(total_savings(study).overall_pct, 3)
            == by_key[("kill", radio)]["savings_pct"]
        )
        assert (
            round(doze_savings(study).overall_pct, 3)
            == by_key[("doze", radio)]["savings_pct"]
        )
        assert (
            round(frequency_cap_savings(study).overall_pct, 3)
            == by_key[("frequency-cap", radio)]["savings_pct"]
        )
        assert (
            round(os_coalescing_savings(study).savings_pct, 3)
            == by_key[("coalesce", radio)]["savings_pct"]
        )

    # Paper shape, extended: dropping traffic saves under both radios,
    # and NR's front-loaded CDRX tail keeps scheduling policies
    # material — coalescing still saves energy on 5G.
    for radio in studies:
        assert by_key[("kill", radio)]["savings_pct"] > 0.0
        assert by_key[("doze", radio)]["savings_pct"] > 0.0
        assert by_key[("coalesce", radio)]["savings_pct"] > 0.0
