"""Table 2: preemptively killing idle background apps (§5).

Paper values for rows A/B/C (six rarely-used apps):

    A (% days with only background traffic):   42, 83, 70, 13, 43, 62
    B (max consecutive background days):       40, 24, 84, 10, 18, 49
    C (kill-after-3-days avg % energy cut):    14, 54, 39, 6.2, 22, 45

B scales with observation length; at the bench's 28 days the runs are
proportionally shorter. Also reproduces the headline that overall
savings are far smaller than per-app savings, and the Weibo
affected-days number (paper: 16%).
"""

from repro.cli import TABLE2_APPS
from repro.core.report import render_table2
from repro.core.whatif import (
    kill_policy_savings,
    savings_on_affected_days,
    total_savings,
)

from conftest import write_artifact

PAPER_C = {
    "com.sec.spp.push": 14.0,
    "com.sina.weibo": 54.0,
    "com.facebook.orca": 39.0,
    "com.espn.score_center": 6.2,
    "com.foursquare.android": 22.0,
    "com.sec.android.widgetapp.ap.hero.accuweather": 45.0,
}


def test_table2_kill_policy(benchmark, bench_study, output_dir):
    def compute():
        return [kill_policy_savings(bench_study, app) for app in TABLE2_APPS]

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_artifact(output_dir, "table2_whatif.txt", render_table2(results))

    for result in results:
        short = result.app.split(".")[-1]
        benchmark.extra_info[f"{short}_A_pct"] = round(
            result.pct_background_only_days, 1
        )
        benchmark.extra_info[f"{short}_B_days"] = (
            result.max_consecutive_background_days
        )
        benchmark.extra_info[f"{short}_C_pct"] = round(
            result.avg_energy_reduction_pct, 1
        )

    by_app = {r.app: r for r in results}
    weibo = by_app["com.sina.weibo"]
    espn = by_app["com.espn.score_center"]

    # Paper shapes: Weibo is the biggest winner ("more than halved"),
    # heavily-used ESPN the smallest; rarely-used apps have most days
    # background-only.
    assert weibo.avg_energy_reduction_pct > 35.0
    assert espn.avg_energy_reduction_pct < 15.0
    assert weibo.pct_background_only_days > 55.0
    assert espn.pct_background_only_days < 40.0
    for result in results:
        assert result.max_consecutive_background_days >= 3 or (
            result.avg_energy_reduction_pct < 15.0
        )


def test_table2_headline_totals(benchmark, bench_study):
    def compute():
        overall = total_savings(bench_study)
        weibo_affected = savings_on_affected_days(bench_study, "com.sina.weibo")
        return overall, weibo_affected

    overall, weibo_affected = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info["overall_savings_pct"] = round(overall.overall_pct, 2)
    benchmark.extra_info["weibo_affected_days_pct"] = round(weibo_affected, 1)
    benchmark.extra_info["paper_overall"] = "<1%"
    benchmark.extra_info["paper_weibo_affected_days"] = 16.0

    # Paper shape: per-app savings (Table 2 C) far exceed the overall
    # average; Weibo users save a double-digit share on affected days.
    weibo = kill_policy_savings(bench_study, "com.sina.weibo")
    assert overall.overall_pct < weibo.avg_energy_reduction_pct / 2
    assert 5.0 < weibo_affected < 40.0
