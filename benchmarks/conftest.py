"""Benchmark fixtures.

Every figure/table bench runs against one shared study at the paper's
population scale (20 users, 342 apps) over 28 days — the metrics are
rates and distributions, so duration beyond a few weeks only tightens
confidence, not shape (run the CLI with ``--days 623`` for the full
span). The study and its energy attribution are built once per session.

Each bench writes its rendered artefact to ``benchmarks/output/`` and
records headline numbers in ``benchmark.extra_info`` so the JSON export
carries the paper-vs-measured comparison.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import StudyConfig, StudyEnergy, generate_study

#: The benchmark study scale.
BENCH_USERS = 20
BENCH_DAYS = 28.0
BENCH_SEED = 42

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def bench_dataset():
    """The shared 20-user study."""
    return generate_study(
        StudyConfig(n_users=BENCH_USERS, duration_days=BENCH_DAYS, seed=BENCH_SEED)
    )


@pytest.fixture(scope="session")
def bench_study(bench_dataset):
    """Energy attribution over the shared study."""
    return StudyEnergy(bench_dataset)


@pytest.fixture(scope="session")
def output_dir():
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def write_artifact(output_dir: Path, name: str, text: str) -> None:
    """Persist a rendered figure/table and echo it to stdout."""
    path = output_dir / name
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")
