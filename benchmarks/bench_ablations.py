"""Ablations over the design choices DESIGN.md calls out.

* Tail-attribution policy (paper's last-packet rule vs split-adjacent):
  totals conserved, per-app shares move.
* Kill-threshold sweep (1-7 idle days): savings fall monotonically as
  the policy gets more lenient — 3 days is the paper's chosen point.
* Radio model: LTE vs LTE+fast-dormancy vs 3G vs WiFi on identical
  traffic — the §6 recommendation and the "cellular ≫ WiFi" premise.
* Batching (§6 recommendation): coalescing Weibo's background updates.
"""

import numpy as np
import pytest

from repro import StudyEnergy, TailPolicy
from repro.core.report import render_table
from repro.core.whatif import (
    batching_savings,
    doze_savings,
    frequency_cap_savings,
    kill_policy_savings,
)
from repro.radio import (
    LTE_DEFAULT,
    UMTS_DEFAULT,
    WIFI_DEFAULT,
    lte_fast_dormancy_model,
    lte_model,
)

from conftest import write_artifact


def test_ablation_tail_policy(benchmark, bench_dataset, output_dir):
    def compute():
        return StudyEnergy(bench_dataset, policy=TailPolicy.SPLIT_ADJACENT)

    split = benchmark.pedantic(compute, rounds=1, iterations=1)
    last = StudyEnergy(bench_dataset)
    a, b = last.energy_by_app(), split.energy_by_app()
    total_last = sum(a.values())
    total_split = sum(b.values())
    shifts = {
        bench_dataset.registry.name_of(k): abs(a[k] - b.get(k, 0.0)) / a[k]
        for k in a
        if a[k] > 1000.0
    }
    benchmark.extra_info["max_share_shift_pct"] = round(100 * max(shifts.values()), 2)
    write_artifact(
        output_dir,
        "ablation_tail_policy.txt",
        render_table(
            ["app", "last-packet kJ", "split kJ"],
            [
                (name, round(a[k] / 1e3, 1), round(b.get(k, 0.0) / 1e3, 1))
                for k, name in sorted(
                    ((k, bench_dataset.registry.name_of(k)) for k in a),
                    key=lambda kv: -a[kv[0]],
                )[:10]
            ],
            title="Tail attribution policy ablation",
        ),
    )
    assert total_split == pytest.approx(total_last, rel=1e-9)
    assert max(shifts.values()) > 0.001  # shares genuinely move


def test_ablation_kill_threshold_sweep(benchmark, bench_study, output_dir):
    thresholds = [1, 2, 3, 5, 7]

    def sweep():
        return [
            kill_policy_savings(bench_study, "com.sina.weibo", idle_days=d)
            for d in thresholds
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    savings = [r.avg_energy_reduction_pct for r in results]
    write_artifact(
        output_dir,
        "ablation_kill_threshold.txt",
        render_table(
            ["idle_days", "weibo avg % energy cut"],
            list(zip(thresholds, [f"{s:.1f}" for s in savings])),
            title="Kill-threshold sweep (Weibo)",
        ),
    )
    benchmark.extra_info["savings_by_threshold"] = dict(zip(thresholds, savings))
    # Monotone: stricter policies save at least as much.
    assert all(x >= y - 1e-9 for x, y in zip(savings, savings[1:]))
    assert savings[0] > savings[-1]


def test_ablation_radio_models(benchmark, bench_dataset, output_dir):
    models = {
        "lte": LTE_DEFAULT,
        "lte-drx-detail": lte_model(drx_detail=True),
        "lte-fast-dormancy": lte_fast_dormancy_model(),
        "umts-3g": UMTS_DEFAULT,
        "wifi": WIFI_DEFAULT,
    }

    def compute():
        return {
            name: StudyEnergy(bench_dataset, model=model).attributed_energy
            for name, model in models.items()
        }

    energies = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_artifact(
        output_dir,
        "ablation_radio_models.txt",
        render_table(
            ["model", "attributed MJ"],
            [(n, round(e / 1e6, 2)) for n, e in energies.items()],
            title="Radio model ablation (same traffic)",
        ),
    )
    benchmark.extra_info.update(
        {n: round(e / 1e6, 3) for n, e in energies.items()}
    )
    # Paper premises: WiFi is far cheaper than cellular; fast dormancy
    # recovers a large share of LTE's tail energy.
    assert energies["lte"] > 5 * energies["wifi"]
    assert energies["lte-fast-dormancy"] < 0.75 * energies["lte"]
    # The detailed DRX tail is a refinement, not a different answer.
    assert energies["lte-drx-detail"] == pytest.approx(energies["lte"], rel=0.05)


def test_ablation_batching_and_doze(benchmark, bench_study, output_dir):
    periods = [1800.0, 3600.0, 4 * 3600.0]

    def compute():
        batching = {
            p: batching_savings(bench_study, "com.sina.weibo", p) for p in periods
        }
        doze = doze_savings(bench_study, screen_off_threshold=3600.0)
        return batching, doze

    batching, doze = benchmark.pedantic(compute, rounds=1, iterations=1)
    wp_cap = frequency_cap_savings(bench_study, min_period=1800.0)
    write_artifact(
        output_dir,
        "ablation_batching_doze.txt",
        render_table(
            ["intervention", "% energy saved"],
            [
                *[
                    (f"batch Weibo bg to every {int(p / 60)} min", f"{s:.1f}")
                    for p, s in batching.items()
                ],
                ("Doze (screen off > 1 h, study-wide)", f"{doze.overall_pct:.1f}"),
                (
                    "Windows-Phone-style 30-min background cap",
                    f"{wp_cap.overall_pct:.1f}",
                ),
            ],
            title="§6 interventions: batching and Doze",
        ),
    )
    benchmark.extra_info["batching"] = {int(p): round(s, 1) for p, s in batching.items()}
    benchmark.extra_info["doze_pct"] = round(doze.overall_pct, 1)
    benchmark.extra_info["wp_cap_pct"] = round(wp_cap.overall_pct, 1)
    # Batching a 7-minute updater to >= 30 min eliminates most tails.
    assert batching[1800.0] > 40.0
    assert batching[3600.0] >= batching[1800.0] - 1e-9
    assert doze.overall_pct > 5.0  # overnight background is substantial
