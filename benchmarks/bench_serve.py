"""The results store: warm serving vs cold rendering, bytes identical.

The serving contract (docs/SERVING.md) promises two things: a warm
store hit is an order of magnitude faster than the cold render it
replaces, and the served bytes are identical across every path that
can produce the artefact — direct batch, checkpoint readout, and the
store. This bench measures all three and enforces both promises:

* cold = load the saved study, attribute, render fig3 + table1 +
  headlines (what every ``repro figure`` run used to cost);
* warm = ``ResultStore.get`` per artefact (one indexed SELECT + one
  checksummed file read);
* the HTTP layer on top, measured as requests/s against a live
  ``repro serve`` with and without ``If-None-Match``.
"""

from __future__ import annotations

import threading
import time
import urllib.error
import urllib.request

from repro import StudyConfig, StudyEnergy, generate_study
from repro.core.readout import readout_from_checkpoint
from repro.store import (
    ResultStore,
    make_server,
    render_analysis,
    store_key_for,
)
from repro.store.render import ANALYSIS_KINDS
from repro.stream import NpzStreamSource, StreamIngestor
from repro.trace.dataset import Dataset

from conftest import write_artifact

#: The artefacts a report-serving deployment queries repeatedly.
ANALYSES = ("fig3", "table1", "headlines")

#: Chunk size for the one-off ingest that produces the checkpoint.
CHUNK_SIZE = 8192

#: The warm path must beat the cold render by at least this factor.
REQUIRED_SPEEDUP = 10.0


def _cold_render(path):
    """What a storeless ``repro figure`` run costs: load + attribute
    + render. Returns {analysis: text}."""
    study = StudyEnergy(Dataset.load(path))
    return {name: render_analysis(name, study) for name in ANALYSES}


def _warm_serve(store, keys):
    """One warm pass over every artefact, straight from the store."""
    out = {}
    for name, key in keys.items():
        result = store.get(key)
        assert result is not None, f"warm pass missed {name}"
        out[name] = result.text
    return out


def _http_get(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response.status, dict(response.headers), response.read()


def test_store_serving_vs_cold_render(tmp_path_factory, output_dir, benchmark):
    dataset = generate_study(StudyConfig(n_users=8, duration_days=28.0, seed=42))
    root = tmp_path_factory.mktemp("serve_bench")
    path = root / "study.npz"
    ck = root / "ck.npz"
    dataset.save(path)
    n_packets = dataset.total_packets
    del dataset

    StreamIngestor(
        NpzStreamSource(path, chunk_size=CHUNK_SIZE), checkpoint_path=ck
    ).run()

    # --- cold: the full pipeline every storeless run pays ------------
    cold_start = time.perf_counter()
    cold_text = _cold_render(path)
    cold_s = time.perf_counter() - cold_start

    # --- populate the store from a lazy study (keys only need the
    # fingerprint; the one attribution happens inside the renders) ----
    store = ResultStore(root / "store")
    study = StudyEnergy(Dataset.load(path), lazy=True)
    keys = {name: store_key_for(study, name) for name in ANALYSES}
    for name, key in keys.items():
        store.get_or_render(
            key,
            lambda n=name: render_analysis(n, study).encode("utf-8"),
            kind=ANALYSIS_KINDS[name],
        )

    # --- warm: repeat queries are store lookups ----------------------
    warm_text = _warm_serve(store, keys)  # first pass also validates
    rounds = 20
    warm_start = time.perf_counter()
    for _ in range(rounds):
        _warm_serve(store, keys)
    warm_s = (time.perf_counter() - warm_start) / rounds

    # --- byte-identity across all three producing paths --------------
    readout = readout_from_checkpoint(ck)
    for name in ANALYSES:
        from_checkpoint = render_analysis(name, readout)
        assert warm_text[name] == cold_text[name], (
            f"store-served {name} drifted from the direct batch render"
        )
        assert from_checkpoint == cold_text[name], (
            f"checkpoint-rendered {name} drifted from the batch render"
        )

    speedup = cold_s / warm_s
    assert speedup >= REQUIRED_SPEEDUP, (
        f"warm store serving is only {speedup:.1f}x faster than the cold "
        f"render; the contract promises >= {REQUIRED_SPEEDUP:.0f}x"
    )

    # --- the HTTP layer: requests/s, plus free 304 revalidation ------
    server = make_server(readout_from_checkpoint(ck), store, quiet=True)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{host}:{port}"
    try:
        status, headers, body = _http_get(base + "/figures/fig3")
        assert status == 200
        # The HTTP body is the artefact's exact bytes.
        assert body.decode("utf-8") == cold_text["fig3"]
        etag = headers["ETag"]

        requests = 50
        http_start = time.perf_counter()
        for _ in range(requests):
            _http_get(base + "/figures/fig3")
        http_s = (time.perf_counter() - http_start) / requests

        cond_start = time.perf_counter()
        for _ in range(requests):
            try:
                status, _, _ = _http_get(
                    base + "/figures/fig3", {"If-None-Match": etag}
                )
            except urllib.error.HTTPError as error:
                status = error.code  # urllib surfaces 304 as an error
            assert status == 304
        cond_s = (time.perf_counter() - cond_start) / requests
        not_modified = server.metrics.counter("serve.not_modified")
    finally:
        server.shutdown()
        server.server_close()
    assert not_modified == requests

    benchmark.pedantic(lambda: _warm_serve(store, keys), rounds=5, iterations=5)

    lines = [
        "store-served figures vs cold render — "
        f"{n_packets:,} packets, artefacts: {', '.join(ANALYSES)}",
        f"  cold render (load+attribute+render)  {cold_s * 1e3:9.1f} ms",
        f"  warm store pass (3 artefacts)        {warm_s * 1e3:9.3f} ms",
        f"  speedup                              {speedup:9.0f}x (contract: >= {REQUIRED_SPEEDUP:.0f}x)",
        f"  HTTP GET (200, store-backed)         {http_s * 1e3:9.2f} ms/req "
        f"({1 / http_s:,.0f} req/s)",
        f"  HTTP conditional GET (304)           {cond_s * 1e3:9.2f} ms/req "
        f"({1 / cond_s:,.0f} req/s)",
        "  bytes: store == batch == checkpoint  identical",
    ]
    write_artifact(output_dir, "bench_serve.txt", "\n".join(lines))

    benchmark.extra_info.update(
        {
            "packets": n_packets,
            "cold_render_s": round(cold_s, 3),
            "warm_pass_ms": round(warm_s * 1e3, 3),
            "speedup": round(speedup, 1),
            "http_req_s": round(1 / http_s, 1),
            "http_304_req_s": round(1 / cond_s, 1),
            "identical": True,
        }
    )
