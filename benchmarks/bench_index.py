"""TraceIndex benchmarks: indexed vs masked figure-suite reductions.

Quantifies the tentpole claim behind :mod:`repro.trace.index`: the
figure/table analyses used to rediscover per-app and per-state groups
with full-array boolean masks, making every figure O(apps x packets);
the shared index pays one stable sort per user and serves O(group)
views after that. Both paths are run here over the shared 20-user bench
study and must produce bit-identical numbers — the speedup is reported
alongside the index's own accounting (``index.build`` seconds and
``index.hits`` from :class:`~repro.metrics.RunMetrics`).
"""

from __future__ import annotations

import time

import numpy as np

from repro import RunMetrics, StudyConfig, StudyEnergy, generate_study
from repro.core import report
from repro.core.casestudies import case_study_table
from repro.core.popularity import top10_appearance_counts, top_consumers
from repro.core.statefrac import state_energy_share
from repro.parallel import available_cpus
from repro.trace.events import background_state_values
from repro.units import DAY

from conftest import write_artifact

#: How many top apps the per-app reduction suite probes. The full
#: report probes every app several times (Fig 1-3, Table 1, the
#: recommendation sweep), so a wide sweep is the representative shape —
#: and it is exactly where masked scans hurt: their cost is one full
#: O(n) pass per (app, reduction, user) regardless of group size.
SUITE_APPS = 80


def _masked_suite(study, app_ids):
    """The pre-index figure-suite kernel: one full-array boolean mask
    per (app, reduction, user) — exactly what repro.core used to do."""
    bg_values = background_state_values()
    out = {}
    for app_id in app_ids:
        energy = 0.0
        bg_energy = 0.0
        volume = 0
        bins = np.zeros(24)
        for trace in study.dataset:
            packets = trace.packets
            per_packet = study.user_result(trace.user_id).per_packet
            mask = packets.apps == app_id
            if not np.any(mask):
                continue
            energy += float(per_packet[mask].sum())
            volume += int(packets.sizes.astype(np.int64)[mask].sum())
            bg = mask & np.isin(packets.states, bg_values)
            bg_energy += float(per_packet[bg].sum())
            hours = (
                ((packets.timestamps[mask] - trace.start) % DAY) // 3600
            ).astype(np.int64)
            bins += np.bincount(
                np.clip(hours, 0, 23), weights=per_packet[mask], minlength=24
            )
        out[app_id] = (energy, bg_energy, volume, tuple(float(v) for v in bins))
    return out


def _indexed_suite(study, app_ids):
    """The same reductions through the shared per-user TraceIndex."""
    out = {}
    for app_id in app_ids:
        energy = 0.0
        bg_energy = 0.0
        volume = 0
        bins = np.zeros(24)
        for trace in study.dataset:
            index = study.index_for(trace.user_id)
            idx = index.app_indices(app_id)
            if len(idx) == 0:
                continue
            per_packet = study.user_result(trace.user_id).per_packet
            energy += float(per_packet[idx].sum())
            volume += int(trace.packets.sizes.astype(np.int64)[idx].sum())
            bg_energy += float(
                per_packet[index.app_background_indices(app_id)].sum()
            )
            hours = (
                ((trace.packets.timestamps[idx] - trace.start) % DAY) // 3600
            ).astype(np.int64)
            bins += np.bincount(
                np.clip(hours, 0, 23), weights=per_packet[idx], minlength=24
            )
        out[app_id] = (energy, bg_energy, volume, tuple(float(v) for v in bins))
    return out


def test_indexed_suite_identity_and_speedup(bench_dataset, output_dir):
    """Indexed reductions must be bit-identical and measurably faster.

    The speedup floor is modest (1.2x) because the suite includes the
    one-off sort the index pays up front; the asymptotic win grows with
    the number of figures sharing the index (every memo-served access
    after this suite is effectively free, visible in ``index.hits``).
    """
    metrics = RunMetrics()
    study = StudyEnergy(bench_dataset, lazy=True, metrics=metrics)
    totals = study.energy_by_app()
    app_ids = sorted(totals, key=lambda a: totals[a], reverse=True)[:SUITE_APPS]

    start = time.perf_counter()
    masked = _masked_suite(study, app_ids)
    t_masked = time.perf_counter() - start

    # fresh traces so the indexed run pays its own sort, not a warm memo
    for trace in study.dataset:
        trace.invalidate_index()
    start = time.perf_counter()
    indexed = _indexed_suite(study, app_ids)
    t_indexed = time.perf_counter() - start

    assert indexed == masked  # dict of floats/ints — exact, not allclose

    build_s = metrics.stage_seconds("index.build")
    hits = metrics.counter("index.hits")
    speedup = t_masked / t_indexed if t_indexed else float("inf")
    summary = (
        f"figure-suite reductions over {len(app_ids)} apps x "
        f"{len(study.dataset)} users ({bench_dataset.total_packets} packets):\n"
        f"  masked scans: {t_masked:.3f}s\n"
        f"  TraceIndex:   {t_indexed:.3f}s (index.build {build_s:.3f}s, "
        f"index.hits {hits})\n"
        f"  speedup:      {speedup:.2f}x"
    )
    write_artifact(output_dir, "bench_index.txt", summary)
    assert hits > 0
    assert speedup >= 1.2, f"indexed suite only {speedup:.2f}x faster"


def test_prebuilt_indexes_render_identical_figures(output_dir):
    """`prepare_indexes()` (pool build) must not move a single byte.

    Two engines over identically-generated studies render the headline
    figure/table artefacts; one warms every index through the worker
    pool first, the other builds lazily in process. The rendered text
    must match exactly.
    """
    config = StudyConfig(n_users=6, duration_days=14.0, seed=21)

    def render(study):
        return "\n\n".join(
            [
                report.render_fig1(top10_appearance_counts(study.dataset)),
                report.render_fig2(
                    top_consumers(study, by="energy"),
                    top_consumers(study, by="data"),
                ),
                report.render_table1(case_study_table(study)),
                "\n".join(
                    f"{state.name}: {share:.6f}"
                    for state, share in state_energy_share(study).items()
                ),
            ]
        )

    lazy = StudyEnergy(generate_study(config))
    pooled = StudyEnergy(
        generate_study(config), workers=max(available_cpus(), 2)
    )
    pooled.prepare_indexes()
    assert all(
        trace.index().is_grouped for trace in pooled.dataset
    ), "prepare_indexes left an index unbuilt"
    assert render(pooled) == render(lazy)
