"""Checkpoint-driven figures: skip the packet replay, keep the bytes.

The :mod:`repro.core.readout` contract says a finished ingest
checkpoint renders the totals-tier figures and tables byte-identically
to a full batch rebuild. This bench quantifies what that buys: the
batch path reloads every packet row and re-runs attribution before it
can draw Figure 3 or Table 1; the checkpoint path loads a few keyed
arrays per user. Both pipelines are measured with :mod:`tracemalloc`
and wall time, and the rendered text is asserted equal character for
character — the speedup is only interesting because the output is the
same.
"""

from __future__ import annotations

import time
import tracemalloc

from repro import StudyConfig, StudyEnergy, generate_study
from repro.core.casestudies import case_study_table
from repro.core.report import render_fig3, render_table1
from repro.core.statefrac import state_energy_fractions
from repro.core.readout import readout_from_checkpoint
from repro.stream import NpzStreamSource, StreamIngestor
from repro.trace.dataset import Dataset

from conftest import write_artifact

#: Chunk size for the one-off ingest that produces the checkpoint.
CHUNK_SIZE = 8192


def _traced(fn):
    """(result, seconds, peak traced bytes) for one cold call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def _render(readout):
    """The totals-tier outputs the paper's report leads with."""
    fig3 = render_fig3(state_energy_fractions(readout))
    table1 = render_table1(case_study_table(readout))
    return fig3 + "\n" + table1


def _batch_pipeline(path):
    dataset = Dataset.load(path)
    return _render(StudyEnergy(dataset))


def _checkpoint_pipeline(ck):
    return _render(readout_from_checkpoint(ck))


def test_checkpoint_readout_vs_batch_rebuild(
    tmp_path_factory, output_dir, benchmark
):
    from repro.trace.arrays import PACKET_DTYPE

    dataset = generate_study(
        StudyConfig(n_users=8, duration_days=28.0, seed=42)
    )
    root = tmp_path_factory.mktemp("readout_bench")
    path = root / "study.npz"
    ck = root / "ck.npz"
    dataset.save(path)
    n_packets = dataset.total_packets
    trace_bytes = n_packets * PACKET_DTYPE.itemsize
    del dataset

    # One-off ingest: the cost paid once, after which every figure run
    # reads the checkpoint instead of the packets.
    ingest_start = time.perf_counter()
    StreamIngestor(
        NpzStreamSource(path, chunk_size=CHUNK_SIZE), checkpoint_path=ck
    ).run()
    ingest_s = time.perf_counter() - ingest_start

    batch_text, batch_s, batch_peak = _traced(lambda: _batch_pipeline(path))
    ck_text, ck_s, ck_peak = _traced(lambda: _checkpoint_pipeline(ck))

    assert ck_text == batch_text, (
        "checkpoint-rendered figures drifted from the batch output"
    )
    assert ck_peak < batch_peak, (
        "loading keyed totals should allocate less than a packet replay"
    )

    # Steady-state rate for the benchmark table: render from checkpoint.
    benchmark.pedantic(
        lambda: _checkpoint_pipeline(ck), rounds=5, iterations=1
    )

    lines = [
        "figure pipeline from checkpoint vs full batch rebuild — "
        f"{n_packets:,} packets",
        f"  trace size         {trace_bytes / 1e6:9.1f} MB on disk (packet rows)",
        f"  checkpoint size    {ck.stat().st_size / 1e6:9.1f} MB on disk",
        f"  one-off ingest     {ingest_s:9.2f} s (amortised across runs)",
        f"  batch   peak RSS   {batch_peak / 1e6:9.1f} MB  wall {batch_s:6.2f} s",
        f"  readout peak RSS   {ck_peak / 1e6:9.1f} MB  wall {ck_s:6.2f} s",
        f"  peak ratio         {batch_peak / ck_peak:9.1f}x smaller from checkpoint",
        f"  wall ratio         {batch_s / ck_s:9.1f}x faster from checkpoint",
        "  fig3 + table1      byte-identical",
    ]
    write_artifact(output_dir, "bench_readout.txt", "\n".join(lines))

    benchmark.extra_info.update(
        {
            "packets": n_packets,
            "checkpoint_bytes": ck.stat().st_size,
            "batch_peak_mb": round(batch_peak / 1e6, 2),
            "readout_peak_mb": round(ck_peak / 1e6, 2),
            "peak_ratio": round(batch_peak / ck_peak, 1),
            "batch_wall_s": round(batch_s, 3),
            "readout_wall_s": round(ck_s, 3),
            "identical": True,
        }
    )
