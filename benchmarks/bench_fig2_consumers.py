"""Figure 2: highest cellular data and network energy usage by app.

Paper: the top-energy and top-data lists differ — the default email app
consumes energy disproportionate to its bytes; the built-in media
server consumes far less energy per byte.
"""

from repro.core.popularity import top_consumers
from repro.core.report import render_fig2

from conftest import write_artifact


def test_fig2_top_consumers(benchmark, bench_study, output_dir):
    def compute():
        return (
            top_consumers(bench_study, n=12, by="energy"),
            top_consumers(bench_study, n=12, by="data"),
        )

    by_energy, by_data = benchmark(compute)
    write_artifact(
        output_dir, "fig2_consumers.txt", render_fig2(by_energy, by_data)
    )

    all_rows = {r.app: r for r in top_consumers(bench_study, n=400, by="energy")}
    email = all_rows["com.android.email"]
    media = all_rows["android.process.media"]
    benchmark.extra_info["email_j_per_mb"] = round(email.joules_per_mb, 2)
    benchmark.extra_info["media_server_j_per_mb"] = round(media.joules_per_mb, 3)

    # Paper shape: email's J/MB far above the media server's; lists differ.
    assert email.joules_per_mb > 10 * media.joules_per_mb
    assert [r.app for r in by_energy] != [r.app for r in by_data]
    # Media server leads (or nearly leads) the data ranking.
    assert "android.process.media" in [r.app for r in by_data[:3]]
