"""Clean-path cost of the hardened execution layer.

The fault-injection sites (:func:`repro.faults.fire`) and the
:class:`~repro.parallel.TaskPool` failure policy (retry accounting,
quarantine scaffolding, per-item exception handling) sit on the hot
path of every run, faulted or not. This bench prices the fault-free
case: the same pure task mapped through a fully-armed-*option* pool —
retries, timeout, quarantine all enabled, but no plan installed — must
stay within 5% of a bare Python loop over the uninstrumented task.

Both sides are measured as a best-of-N to keep the comparison stable
against scheduler noise, and the results are asserted identical first:
a cheaper-but-different answer would not be an optimisation.
"""

from __future__ import annotations

import time

import numpy as np

from repro import RunMetrics, faults
from repro.parallel import TaskPool

from conftest import write_artifact

#: Per-item work (~0.5 ms of numpy): heavy enough that the measurement
#: is about the task, light enough that per-item framework overhead
#: would still show at the 5% level.
WORK_ELEMENTS = 200_000
N_ITEMS = 300
BEST_OF = 5

#: The acceptance bar from the issue.
MAX_OVERHEAD_FRACTION = 0.05


def _plain_task(seed: int) -> float:
    values = np.arange(1, WORK_ELEMENTS + seed % 7, dtype=np.float64)
    return float(np.sqrt(values).sum())


def _instrumented_task(seed: int) -> float:
    # What every real library task looks like now: one (unarmed)
    # fault-site check in front of the pure computation.
    faults.fire("attribute.task")
    return _plain_task(seed)


def _baseline(items):
    return [_plain_task(item) for item in items]


def _hardened(items, metrics):
    with TaskPool(
        _instrumented_task,
        workers=1,
        retries=2,
        task_timeout=30.0,
        quarantine=True,
        metrics=metrics,
    ) as pool:
        return pool.map(items)


def _best_of(fn, rounds=BEST_OF):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def test_hardened_clean_path_overhead(output_dir, benchmark):
    faults.uninstall()
    items = list(range(N_ITEMS))
    metrics = RunMetrics()

    expected, baseline_s = _best_of(lambda: _baseline(items))
    got, hardened_s = _best_of(lambda: _hardened(items, metrics))

    # Identity before speed: same floats, nothing retried, nothing
    # quarantined, no fault ever fired on the clean path.
    assert got == expected
    assert metrics.counter("faults.task_retries") == 0
    assert metrics.counter("faults.tasks_quarantined") == 0
    assert faults.fire_count("attribute.task") == 0

    overhead = hardened_s / baseline_s - 1.0
    assert overhead < MAX_OVERHEAD_FRACTION, (
        f"hardened clean path is {overhead:.1%} slower than the bare "
        f"loop (budget {MAX_OVERHEAD_FRACTION:.0%})"
    )

    benchmark.pedantic(
        lambda: _hardened(items, metrics), rounds=3, iterations=1
    )
    benchmark.extra_info.update(
        {
            "items": N_ITEMS,
            "baseline_best_s": round(baseline_s, 6),
            "hardened_best_s": round(hardened_s, 6),
            "overhead_fraction": round(overhead, 4),
            "budget_fraction": MAX_OVERHEAD_FRACTION,
        }
    )
    write_artifact(
        output_dir,
        "bench_faults.txt",
        "\n".join(
            [
                "hardened TaskPool clean-path overhead",
                f"  items              {N_ITEMS} x ~0.5ms numpy task",
                f"  bare loop (best)   {baseline_s * 1e3:8.2f} ms",
                f"  hardened (best)    {hardened_s * 1e3:8.2f} ms",
                f"  overhead           {overhead:8.2%}  (budget "
                f"{MAX_OVERHEAD_FRACTION:.0%})",
            ]
        ),
    )
