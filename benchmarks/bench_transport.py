"""Remote-transport benchmarks: what the HTTP seam costs.

Quantifies the :mod:`repro.shard.transport` contract over a real
in-process ``repro shard worker`` pool. Three claims:

* **Bit-identity, always** — the checkpoints an ``HttpTransport``
  lands and the merged readout they fold into are ``array_equal`` to
  the ``LocalTransport`` run's (which is itself the unsharded run, by
  the bench_shard proofs). Asserted unconditionally.
* **Bounded overhead** — the transport moves each shard's manifest up
  and checkpoint down exactly once on the happy path; bytes on the
  wire (``transport.bytes_up`` / ``transport.bytes_down``) are
  reported per shard so a regression in payload size is visible.
* **Idempotent re-dispatch is free** — re-dispatching over a finished
  shard dir is pure local skips: zero dispatches, zero bytes moved
  (the steady-state cost ``benchmark`` times).

Numbers land in ``benchmarks/output/BENCH_transport.json`` so the
perf history survives CI runs.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np

from repro import RunMetrics, StudyConfig, generate_study
from repro.shard import (
    HttpTransport,
    LocalTransport,
    ShardManifest,
    make_worker_server,
    merged_readout,
)
from repro.stream import NpzStreamSource

from conftest import write_artifact

USERS = 6
DAYS = 7.0
SEED = 42

CHUNK_SIZE = 8192
N_SHARDS = 3
N_WORKERS = 2


def _grouped(readout):
    return {
        "energy_by_app": readout.energy_by_app(),
        "energy_by_app_state": readout.energy_by_app_state(),
        "energy_by_state": readout.energy_by_state(),
        "bytes_by_app": readout.bytes_by_app(),
        "idle": readout.idle_energy,
    }


def _assert_identical(http, local):
    for name in ("energy_by_app", "energy_by_app_state", "energy_by_state"):
        assert list(http[name]) == list(local[name])
        assert np.array_equal(
            np.array(list(http[name].values())),
            np.array(list(local[name].values())),
        ), f"{name} drifted between HTTP and local transports"
    assert http["bytes_by_app"] == local["bytes_by_app"]
    assert http["idle"] == local["idle"]


def test_http_transport_identical_and_accounted(
    tmp_path_factory, output_dir, benchmark
):
    dataset = generate_study(
        StudyConfig(n_users=USERS, duration_days=DAYS, seed=SEED)
    )
    root = tmp_path_factory.mktemp("transport_bench")
    path = root / "study.npz"
    dataset.save(path)
    n_packets = dataset.total_packets
    del dataset

    manifest = ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK_SIZE), N_SHARDS
    )

    # Local reference: the in-box transport (== run_all_shards).
    local_dir = root / "local"
    start = time.perf_counter()
    LocalTransport(shard_workers=N_WORKERS).dispatch(manifest, local_dir)
    local_s = time.perf_counter() - start
    local = _grouped(merged_readout(manifest, local_dir))

    # HTTP: the same plan over a real worker pool (in-process servers;
    # loopback sockets, real uploads/downloads/checksums).
    servers = []
    for i in range(N_WORKERS):
        server = make_worker_server(root / f"worker{i}", quiet=True)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        servers.append(server)
    urls = [
        f"http://{host}:{port}"
        for host, port in (s.server_address[:2] for s in servers)
    ]
    http_dir = root / "http"
    transport = HttpTransport(urls)
    metrics = RunMetrics()
    try:
        start = time.perf_counter()
        transport.dispatch(manifest, http_dir, metrics=metrics)
        http_s = time.perf_counter() - start
        _assert_identical(_grouped(merged_readout(manifest, http_dir)), local)

        counters = metrics.as_dict()["counters"]
        assert counters["transport.dispatches"] == N_SHARDS
        bytes_up = counters["transport.bytes_up"]
        bytes_down = counters["transport.bytes_down"]
        assert bytes_up > 0 and bytes_down > 0

        # Steady state: re-dispatch over the finished dir — all skips,
        # nothing on the wire.
        def redispatch():
            m = RunMetrics()
            reports = transport.dispatch(manifest, http_dir, metrics=m)
            assert all(r["skipped"] for r in reports)
            assert m.counter("transport.dispatches") == 0
            assert m.counter("transport.bytes_up") == 0

        benchmark.pedantic(redispatch, rounds=5, iterations=1)
    finally:
        for server in servers:
            server.shutdown()
            server.server_close()

    overhead = http_s - local_s
    numbers = {
        "packets": n_packets,
        "n_shards": N_SHARDS,
        "n_workers": N_WORKERS,
        "local_wall_s": round(local_s, 3),
        "http_wall_s": round(http_s, 3),
        "transport_overhead_s": round(overhead, 3),
        "bytes_up": bytes_up,
        "bytes_down": bytes_down,
        "bytes_up_per_shard": bytes_up // N_SHARDS,
        "bytes_down_per_shard": bytes_down // N_SHARDS,
        "identical": True,
    }
    write_artifact(
        output_dir, "BENCH_transport.json", json.dumps(numbers, indent=2)
    )
    lines = [
        "HTTP vs local shard transport — "
        f"{n_packets:,} packets, {N_SHARDS} shards, {N_WORKERS} workers",
        f"  local transport wall {local_s:7.2f} s",
        f"  http  transport wall {http_s:7.2f} s "
        f"(overhead {overhead:+.2f} s)",
        f"  on the wire: {bytes_up:,} B up, {bytes_down:,} B down "
        f"({bytes_down // N_SHARDS:,} B/shard checkpoint)",
        "  merged totals bit-identical across transports (array_equal)",
        "  re-dispatch over a finished dir: 0 dispatches, 0 bytes",
        "  [numbers also in BENCH_transport.json]",
    ]
    write_artifact(output_dir, "bench_transport.txt", "\n".join(lines))

    benchmark.extra_info.update(numbers)
