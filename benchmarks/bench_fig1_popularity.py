"""Figure 1: apps appearing in at least two users' top-10 lists.

Paper: a handful of apps (built-in media player, Facebook, Google Play)
appear in nearly every user's top-10 by data volume; the rest of the
lists are highly diverse.
"""

from repro.core.popularity import top10_appearance_counts
from repro.core.report import render_fig1

from conftest import write_artifact


def test_fig1_popularity(benchmark, bench_dataset, output_dir):
    counts = benchmark(top10_appearance_counts, bench_dataset)
    write_artifact(output_dir, "fig1_popularity.txt", render_fig1(counts))

    n_users = len(bench_dataset)
    universal = [a for a, c in counts.items() if c >= 0.75 * n_users]
    benchmark.extra_info["apps_in_2plus_lists"] = len(counts)
    benchmark.extra_info["near_universal_apps"] = universal

    # Paper shape: few universal apps, a long diverse tail.
    assert 1 <= len(universal) <= 8
    assert len(counts) >= 3 * len(universal)
    # The paper names the media player, Facebook and Google Play as the
    # universal ones; our analogues should be among them.
    assert any(
        a in universal
        for a in (
            "android.process.media",
            "com.facebook.katana",
            "com.android.vending",
        )
    )
