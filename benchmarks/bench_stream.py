"""Streaming ingestion benchmarks: bounded memory, identical numbers.

Quantifies the :mod:`repro.stream` contract on a saved multi-user
study: the batch path loads the whole dataset before attributing
(peak traced memory O(trace)), the streamed path holds one chunk of
carry-annotated packets at a time (peak O(chunk)). Both are measured
with :mod:`tracemalloc`, both wall-times are reported, and — the part
that matters — every grouped total is asserted bit-identical
(``array_equal``), because a faster-but-approximate ingest would be
useless for reproducing the paper's numbers.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro import RunMetrics, StudyConfig, StudyEnergy, generate_study
from repro.stream import NpzStreamSource, StreamIngestor
from repro.trace.dataset import Dataset

from conftest import write_artifact

#: Streamed chunk size, deliberately far below the per-user packet
#: count so the O(chunk) bound is actually exercised.
CHUNK_SIZE = 8192

#: The streamed peak must stay under FIXED + MULTIPLE * chunk bytes:
#: a trace-size-independent allowance (zip decompression buffers, the
#: app registry, per-user accumulators) plus a few working copies of
#: the chunk itself (read buffer, decoded rows, settled slices,
#: bincount scratch).
PEAK_FIXED_BYTES = 6_000_000
PEAK_CHUNK_MULTIPLE = 12.0


def _traced(fn):
    """(result, seconds, peak traced bytes) for one cold call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def _batch_totals(path):
    dataset = Dataset.load(path)
    study = StudyEnergy(dataset)
    return {
        "energy_by_app": study.energy_by_app(),
        "energy_by_app_state": study.energy_by_app_state(),
        "energy_by_state": study.energy_by_state(),
        "bytes_by_app": study.bytes_by_app(),
        "idle": study.idle_energy,
    }


def _stream_totals(path, metrics):
    source = NpzStreamSource(path, chunk_size=CHUNK_SIZE)
    # Totals only: the cadence tier keeps O(bursts) interval arrays per
    # user, which is outside this bench's O(chunk) peak-memory claim
    # (bench_readout covers the cadence-bearing checkpoint pipeline).
    result = StreamIngestor(source, metrics=metrics, cadence=False).run()
    return {
        "energy_by_app": result.energy_by_app(),
        "energy_by_app_state": result.energy_by_app_state(),
        "energy_by_state": result.energy_by_state(),
        "bytes_by_app": result.bytes_by_app(),
        "idle": result.idle_energy,
    }


def _assert_identical(batch, streamed):
    for name in ("energy_by_app", "energy_by_app_state", "energy_by_state"):
        assert list(batch[name]) == list(streamed[name])
        assert np.array_equal(
            np.array(list(batch[name].values())),
            np.array(list(streamed[name].values())),
        ), f"{name} drifted from the batch numbers"
    assert batch["bytes_by_app"] == streamed["bytes_by_app"]
    assert batch["idle"] == streamed["idle"]


def test_stream_bounded_memory_identical(tmp_path_factory, output_dir, benchmark):
    from repro.trace.arrays import PACKET_DTYPE

    dataset = generate_study(
        StudyConfig(n_users=8, duration_days=28.0, seed=42)
    )
    path = tmp_path_factory.mktemp("stream_bench") / "study.npz"
    dataset.save(path)
    n_packets = dataset.total_packets
    trace_bytes = n_packets * PACKET_DTYPE.itemsize
    del dataset

    batch, batch_s, batch_peak = _traced(lambda: _batch_totals(path))
    metrics = RunMetrics()
    streamed, stream_s, stream_peak = _traced(
        lambda: _stream_totals(path, metrics)
    )
    _assert_identical(batch, streamed)

    chunk_bytes = CHUNK_SIZE * PACKET_DTYPE.itemsize
    bound = PEAK_FIXED_BYTES + PEAK_CHUNK_MULTIPLE * chunk_bytes
    assert stream_peak < bound, (
        f"streamed peak {stream_peak / 1e6:.1f} MB is not bounded by the "
        f"chunk size ({chunk_bytes / 1e6:.1f} MB chunks + fixed allowance)"
    )
    assert stream_peak < batch_peak / 4, (
        "streaming should hold a small fraction of the batch footprint"
    )

    # Steady-state throughput for the benchmark table: one full streamed
    # pass per round (cold sources, warm page cache).
    benchmark.pedantic(
        lambda: StreamIngestor(
            NpzStreamSource(path, chunk_size=CHUNK_SIZE), cadence=False
        ).run(),
        rounds=3,
        iterations=1,
    )

    report = metrics.as_dict()
    lines = [
        "streamed vs batch ingestion — "
        f"{n_packets:,} packets, chunk={CHUNK_SIZE}",
        f"  trace size       {trace_bytes / 1e6:9.1f} MB on disk (packet rows)",
        f"  batch   peak RSS {batch_peak / 1e6:9.1f} MB  wall {batch_s:6.2f} s",
        f"  stream  peak RSS {stream_peak / 1e6:9.1f} MB  wall {stream_s:6.2f} s",
        f"  peak ratio       {batch_peak / stream_peak:9.1f}x smaller streamed",
        f"  chunks           {report['counters']['stream.chunks']:9d}",
        f"  throughput       {report['derived']['ingest_packets_per_s']:9.0f} packets/s",
        "  grouped totals   bit-identical (array_equal)",
    ]
    write_artifact(output_dir, "bench_stream.txt", "\n".join(lines))

    benchmark.extra_info.update(
        {
            "packets": n_packets,
            "chunk_size": CHUNK_SIZE,
            "batch_peak_mb": round(batch_peak / 1e6, 2),
            "stream_peak_mb": round(stream_peak / 1e6, 2),
            "peak_ratio": round(batch_peak / stream_peak, 1),
            "batch_wall_s": round(batch_s, 3),
            "stream_wall_s": round(stream_s, 3),
            "identical": True,
        }
    )
