"""Figure 6: background bytes vs. time since leaving the foreground.

Paper: substantially more traffic in the first minute than any other
time; periodic spikes at 5- and 10-minute intervals (common timer
choices); and a long tail of persisting flows.
"""

import numpy as np

from repro.core.report import render_fig6
from repro.core.transitions import bytes_since_foreground

from conftest import write_artifact


def test_fig6_bytes_since_foreground(benchmark, bench_dataset, output_dir):
    edges, totals = benchmark(
        bytes_since_foreground, bench_dataset, 10.0, 7200.0
    )
    write_artifact(output_dir, "fig6_time_since_fg.txt", render_fig6(edges, totals))

    def window(lo, hi):
        return float(totals[(edges >= lo) & (edges < hi)].sum())

    first_minute = window(0, 60)
    other_minutes = [window(60 * k, 60 * (k + 1)) for k in range(1, 60)]
    # Phase-locked periodic structure: mass at multiples of 300 s vs the
    # 10-s bins 30 s later.
    multiples = [300.0 * k for k in range(1, 20)]
    on_peak = float(np.mean([window(m, m + 10) for m in multiples]))
    off_peak = float(np.mean([window(m + 30, m + 40) for m in multiples]))

    benchmark.extra_info["first_minute_mb"] = round(first_minute / 1e6, 1)
    benchmark.extra_info["max_other_minute_mb"] = round(max(other_minutes) / 1e6, 1)
    benchmark.extra_info["five_min_spike_ratio"] = round(on_peak / max(off_peak, 1), 2)
    benchmark.extra_info["tail_beyond_1h_mb"] = round(
        float(totals[edges > 3600].sum()) / 1e6, 1
    )

    # Paper shapes: heavy first minute, periodic spikes, long tail.
    assert first_minute > max(other_minutes)
    assert on_peak > 2 * off_peak
    assert float(totals[edges > 3600].sum()) > 0


def test_fig6_first_minute_criterion(benchmark, bench_dataset):
    """§4.1 headline: 84% of apps send >=80% of their background bytes
    within 60 s of going to the background."""
    from repro.core.transitions import (
        first_minute_fractions,
        fraction_of_apps_above,
    )

    fractions = benchmark(first_minute_fractions, bench_dataset)
    share = fraction_of_apps_above(fractions, 0.8)
    benchmark.extra_info["apps_above_80pct"] = round(share, 3)
    benchmark.extra_info["paper_value"] = 0.84
    assert 0.65 <= share <= 0.95
