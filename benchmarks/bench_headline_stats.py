"""Headline single-number findings of the paper vs. this reproduction.

* 84% of cellular network energy is consumed in a background state.
* ~30% of Chrome's network energy is background.
* 84% of apps send >=80% of their background bytes in the first minute.
* The in-lab push library: nearly-empty requests every 5 minutes for
  hours, one visible notification.
"""

from repro.core.report import render_headlines
from repro.core.statefrac import background_energy_fraction
from repro.core.transitions import (
    first_minute_fractions,
    fraction_of_apps_above,
)
from repro.lab import push_library_experiment

from conftest import write_artifact


def test_headline_background_fraction(benchmark, bench_study):
    frac = benchmark(background_energy_fraction, bench_study)
    benchmark.extra_info["measured"] = round(frac, 3)
    benchmark.extra_info["paper"] = 0.84
    assert 0.65 <= frac <= 0.95


def test_headline_chrome_background(benchmark, bench_study):
    frac = benchmark(
        background_energy_fraction, bench_study, "com.android.chrome"
    )
    benchmark.extra_info["measured"] = round(frac, 3)
    benchmark.extra_info["paper"] = 0.30
    assert 0.15 <= frac <= 0.55


def test_headline_first_minute_apps(benchmark, bench_dataset, output_dir):
    fractions = benchmark(first_minute_fractions, bench_dataset)
    share = fraction_of_apps_above(fractions, 0.8)
    chrome_bg = None
    write_artifact(
        output_dir,
        "headline_stats.txt",
        render_headlines(
            {
                "apps with >=80% bg bytes in first minute (paper 0.84)": round(
                    share, 3
                ),
                "apps with background-episode traffic": len(fractions),
            }
        ),
    )
    benchmark.extra_info["measured"] = round(share, 3)
    benchmark.extra_info["paper"] = 0.84
    assert 0.65 <= share <= 0.95


def test_headline_push_library(benchmark):
    result = benchmark(push_library_experiment)
    benchmark.extra_info["requests"] = result.requests
    benchmark.extra_info["joules_per_notification"] = round(
        result.joules_per_notification
    )
    # Paper anecdote: ~5 h of 5-minute keepalives for one notification.
    assert result.requests >= 50
    assert result.joules_per_notification > 300.0
