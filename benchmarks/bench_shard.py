"""Shard-parallel ingestion benchmarks: same bits, more boxes.

Quantifies the :mod:`repro.shard` contract on one saved multi-million
packet study. Three claims, in order of importance:

* **Bit-identity, always** — the merged readout's grouped totals are
  ``array_equal`` to the unsharded streamed run's, whatever the shard
  count. Asserted unconditionally; a faster-but-approximate shard
  pipeline would be useless.
* **Bounded per-shard memory** — one shard's executor holds O(chunk)
  packets plus its own users' accumulators, never the whole study:
  each shard's peak traced bytes stays under the same fixed + chunk
  allowance :mod:`bench_stream` proves for the unsharded ingest, and
  does not grow with the shard count. This is what makes the
  million-user story work: memory per executor is set by the chunk
  size and the shard's user count, not the study.
* **Wall-clock speedup** — with real CPUs to fan over, the sharded
  run beats the serial one. Asserted (>= 2x) only when the box has at
  least 4 CPUs; measured and reported regardless.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np

from repro import RunMetrics, StudyConfig, generate_study
from repro.parallel import available_cpus
from repro.shard import (
    ShardManifest,
    merge_shard_checkpoints,
    merged_readout,
    run_all_shards,
    run_shard,
)
from repro.stream import NpzStreamSource, StreamIngestor

from conftest import write_artifact

#: Shard-bench study scale: big enough that per-process startup is
#: noise against real ingestion work (~7M packets).
SHARD_USERS = 32
SHARD_DAYS = 49.0
SHARD_SEED = 42

CHUNK_SIZE = 8192

#: Per-shard peak allowance — the bench_stream bound: a fixed,
#: trace-size-independent allowance plus a few working copies of one
#: chunk.
PEAK_FIXED_BYTES = 6_000_000
PEAK_CHUNK_MULTIPLE = 12.0

#: Required sharded-vs-serial speedup when the box can actually fan
#: out. On fewer CPUs the number is reported, not asserted.
MIN_SPEEDUP = 2.0
MIN_CPUS_FOR_SPEEDUP = 4


def _traced(fn):
    """(result, seconds, peak traced bytes) for one cold call."""
    tracemalloc.start()
    start = time.perf_counter()
    result = fn()
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, seconds, peak


def _grouped(readout):
    return {
        "energy_by_app": readout.energy_by_app(),
        "energy_by_app_state": readout.energy_by_app_state(),
        "energy_by_state": readout.energy_by_state(),
        "bytes_by_app": readout.bytes_by_app(),
        "idle": readout.idle_energy,
    }


def _assert_identical(sharded, serial):
    for name in ("energy_by_app", "energy_by_app_state", "energy_by_state"):
        assert list(sharded[name]) == list(serial[name])
        assert np.array_equal(
            np.array(list(sharded[name].values())),
            np.array(list(serial[name].values())),
        ), f"{name} drifted between sharded and serial ingest"
    assert sharded["bytes_by_app"] == serial["bytes_by_app"]
    assert sharded["idle"] == serial["idle"]


def test_sharded_ingest_identical_bounded_faster(
    tmp_path_factory, output_dir, benchmark
):
    from repro.trace.arrays import PACKET_DTYPE

    dataset = generate_study(
        StudyConfig(
            n_users=SHARD_USERS, duration_days=SHARD_DAYS, seed=SHARD_SEED
        )
    )
    root = tmp_path_factory.mktemp("shard_bench")
    path = root / "study.npz"
    dataset.save(path)
    n_packets = dataset.total_packets
    del dataset

    cpus = available_cpus()
    n_shards = max(4, min(8, cpus))

    # Serial reference: the unsharded streamed ingest (totals tier).
    # Timed untraced (tracemalloc costs real wall time and the sharded
    # run is not traced either), then traced once for the peak.
    def serial_run():
        return StreamIngestor(
            NpzStreamSource(path, chunk_size=CHUNK_SIZE), cadence=False
        ).run()

    start = time.perf_counter()
    serial_result = serial_run()
    serial_s = time.perf_counter() - start
    serial = _grouped(serial_result)
    _, _, serial_peak = _traced(serial_run)

    # Sharded: plan once, fan the shards over one process each.
    source = NpzStreamSource(path, chunk_size=CHUNK_SIZE)
    manifest = ShardManifest.plan(source, n_shards, cadence=False)
    shard_dir = root / "shards"
    metrics = RunMetrics()
    start = time.perf_counter()
    run_all_shards(manifest, shard_dir, shard_workers=cpus, metrics=metrics)
    sharded_s = time.perf_counter() - start
    merged = merged_readout(manifest, shard_dir, metrics=metrics)
    _assert_identical(_grouped(merged), serial)

    # Per-shard peak memory: each executor re-run in-process under
    # tracemalloc (fresh directory, so nothing is skipped). The peak
    # must obey the same chunk-scaled bound as the unsharded ingest
    # and stay flat across shards.
    chunk_bytes = CHUNK_SIZE * PACKET_DTYPE.itemsize
    bound = PEAK_FIXED_BYTES + PEAK_CHUNK_MULTIPLE * chunk_bytes
    traced_dir = root / "traced"
    shard_peaks = []
    for index in range(manifest.n_shards):
        _, _, peak = _traced(
            lambda index=index: run_shard(
                manifest, index, traced_dir, source=source
            )
        )
        shard_peaks.append(peak)
    peak_worst = max(shard_peaks)
    assert peak_worst < bound, (
        f"shard peak {peak_worst / 1e6:.1f} MB exceeds the chunk-scaled "
        f"bound ({bound / 1e6:.1f} MB) — a shard is holding more than "
        "its chunk + its own users"
    )
    assert peak_worst < serial_peak * 1.25, (
        "a single shard's executor should not out-consume the whole "
        "unsharded ingest"
    )

    speedup = serial_s / sharded_s
    if cpus >= MIN_CPUS_FOR_SPEEDUP:
        assert speedup >= MIN_SPEEDUP, (
            f"sharded ingest is only {speedup:.2f}x the serial run on "
            f"{cpus} CPUs (needed {MIN_SPEEDUP}x)"
        )

    # Steady-state cost of the merge itself (the only new serial step).
    benchmark.pedantic(
        lambda: merge_shard_checkpoints(manifest, shard_dir),
        rounds=3,
        iterations=1,
    )

    packets_per_s = metrics.as_dict()["derived"].get("shard_packets_per_s")
    lines = [
        "sharded vs serial streamed ingest — "
        f"{n_packets:,} packets, {n_shards} shards, {cpus} CPUs",
        f"  serial   wall {serial_s:7.2f} s   peak {serial_peak / 1e6:7.1f} MB",
        f"  sharded  wall {sharded_s:7.2f} s   "
        f"peak/shard {peak_worst / 1e6:7.1f} MB (worst of {n_shards})",
        f"  speedup       {speedup:7.2f}x "
        + (
            "(asserted >= 2x)"
            if cpus >= MIN_CPUS_FOR_SPEEDUP
            else f"(not asserted: {cpus} CPU(s) < {MIN_CPUS_FOR_SPEEDUP})"
        ),
        f"  throughput    {packets_per_s or 0:9.0f} packets/s inside shards",
        "  merged totals bit-identical to the serial run (array_equal)",
    ]
    write_artifact(output_dir, "bench_shard.txt", "\n".join(lines))

    benchmark.extra_info.update(
        {
            "packets": n_packets,
            "n_shards": n_shards,
            "cpus": cpus,
            "serial_wall_s": round(serial_s, 3),
            "sharded_wall_s": round(sharded_s, 3),
            "speedup": round(speedup, 2),
            "serial_peak_mb": round(serial_peak / 1e6, 2),
            "worst_shard_peak_mb": round(peak_worst / 1e6, 2),
            "identical": True,
        }
    )
