"""Figure 5: duration traffic persists after the app is backgrounded.

Paper: one data point per transition to the background; the
distribution is heavy-tailed, and "in some cases background traffic
flows persist for more than a day". At the bench's 28-day scale the
extreme tail reaches hours; the >1-day stragglers of the paper's
623-day window appear when running longer studies (see EXPERIMENTS.md).
"""

import numpy as np

from repro.core.report import render_fig5
from repro.core.transitions import persistence_durations

from conftest import write_artifact


def test_fig5_persistence_cdf(benchmark, bench_dataset, output_dir):
    samples = benchmark(
        persistence_durations, bench_dataset, "com.android.chrome"
    )
    write_artifact(output_dir, "fig5_persistence_cdf.txt", render_fig5(samples))

    durations = np.sort([s.duration for s in samples])
    benchmark.extra_info["transitions"] = len(samples)
    benchmark.extra_info["median_s"] = float(np.median(durations))
    benchmark.extra_info["p99_s"] = float(np.percentile(durations, 99))
    benchmark.extra_info["max_s"] = float(durations.max())

    # Paper shape: most transitions go quiet in minutes; the tail
    # stretches to orders of magnitude longer.
    assert len(samples) > 200
    assert np.median(durations) < 300.0
    assert durations.max() > 50 * max(np.median(durations), 1.0)
    assert durations.max() > 3600.0


def test_fig5_all_apps(benchmark, bench_dataset, output_dir):
    samples = benchmark(persistence_durations, bench_dataset)
    durations = np.array([s.duration for s in samples])
    benchmark.extra_info["all_app_transitions"] = len(samples)
    # Across all apps most transitions have little or no lingering
    # traffic — the phenomenon is app-specific, as the paper finds.
    assert float(np.median(durations)) < 60.0
