"""Calibration benches: the model and the generator audit themselves.

* Monsoon loop (§3.1): the published LTE parameters are recoverable
  from a simulated power-monitor recording of a controlled burst.
* Generator audit: the synthetic study's measured per-app background
  cadences match the catalog parameters that produced them.
"""

import pytest

from repro.lab import estimate_parameters, record
from repro.core.report import render_table
from repro.radio.lte import LTE_DEFAULT
from repro.radio.machine import RadioStateMachine
from repro.trace.arrays import PacketArray
from repro.trace.packet import Packet, Direction
from repro.workload.calibration import calibrate

from conftest import write_artifact


def test_monsoon_calibration(benchmark, output_dir):
    packets = PacketArray.from_packets(
        [Packet(30.0 + 90.0 * k, 80_000, Direction.DOWNLINK, 1) for k in range(8)]
    )
    sim = RadioStateMachine(LTE_DEFAULT).simulate(packets, window=(0.0, 800.0))

    def calibrate_once():
        trace = record(sim, rate_hz=100.0, noise_watts=0.004)
        return estimate_parameters(trace)

    estimated = benchmark(calibrate_once)
    rows = [
        ("idle power (W)", f"{LTE_DEFAULT.idle_power:.4f}", f"{estimated.idle_power:.4f}"),
        (
            "tail power (W)",
            f"{LTE_DEFAULT.tail_phases[0].power:.3f}",
            f"{estimated.tail_power:.3f}",
        ),
        (
            "active run (promo+tail, s)",
            f"{LTE_DEFAULT.promotion_duration + LTE_DEFAULT.tail_duration:.2f}",
            f"{estimated.tail_duration:.2f}",
        ),
    ]
    write_artifact(
        output_dir,
        "calibration_monsoon.txt",
        render_table(["parameter", "published", "recovered"], rows,
                     title="Simulated Monsoon validation of the LTE model"),
    )
    assert estimated.idle_power == pytest.approx(LTE_DEFAULT.idle_power, abs=0.01)
    assert estimated.tail_power == pytest.approx(
        LTE_DEFAULT.tail_phases[0].power, rel=0.1
    )
    assert estimated.tail_duration == pytest.approx(
        LTE_DEFAULT.promotion_duration + LTE_DEFAULT.tail_duration, rel=0.1
    )


def test_generator_self_audit(benchmark, bench_dataset, output_dir):
    report = benchmark.pedantic(
        lambda: calibrate(bench_dataset), rounds=1, iterations=1
    )
    rows = [
        (
            r.app,
            f"{r.configured_period:.0f}",
            f"{r.measured_period:.0f}",
            f"{100 * r.period_error:.1f}%",
            r.n_bursts,
        )
        for r in report.rows
    ]
    write_artifact(
        output_dir,
        "calibration_generator.txt",
        render_table(
            ["app", "configured period (s)", "measured", "error", "bursts"],
            rows,
            title="Generator self-audit: catalog promises vs measured traffic",
        ),
    )
    benchmark.extra_info["checked"] = report.checked
    benchmark.extra_info["failures"] = [r.app for r in report.failures]
    assert report.checked >= 8
    assert not report.failures
