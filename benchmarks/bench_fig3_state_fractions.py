"""Figure 3: fraction of energy in each Android process state.

Paper: across all apps, 84% of cellular network energy is consumed in a
background state (perceptible 8%, service 32%, killable background the
rest); for all but three of the twelve data/energy-hungry apps,
background energy exceeds half the app's total.
"""

from repro.core.statefrac import (
    background_energy_fraction,
    state_energy_fractions,
    state_energy_share,
)
from repro.core.report import render_fig3
from repro.trace.events import ProcessState

from conftest import write_artifact


def test_fig3_state_fractions(benchmark, bench_study, output_dir):
    fractions = benchmark(state_energy_fractions, bench_study)
    write_artifact(output_dir, "fig3_state_fractions.txt", render_fig3(fractions))

    bg_frac = background_energy_fraction(bench_study)
    share = state_energy_share(bench_study)
    benchmark.extra_info["background_fraction"] = round(bg_frac, 3)
    benchmark.extra_info["paper_background_fraction"] = 0.84
    benchmark.extra_info["service_share"] = round(share[ProcessState.SERVICE], 3)
    benchmark.extra_info["perceptible_share"] = round(
        share[ProcessState.PERCEPTIBLE], 3
    )

    # Paper shapes.
    assert 0.65 <= bg_frac <= 0.95
    assert share[ProcessState.SERVICE] > share[ProcessState.PERCEPTIBLE]
    bg_states = (
        ProcessState.PERCEPTIBLE,
        ProcessState.SERVICE,
        ProcessState.BACKGROUND,
    )
    majority_bg = sum(
        1
        for by_state in fractions.values()
        if sum(by_state[s] for s in bg_states) > 0.5
    )
    assert majority_bg >= len(fractions) - 4
