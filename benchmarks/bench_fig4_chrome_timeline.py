"""Figure 4: Chrome keeps transferring after going to the background.

Paper: a representative trace shows packets continuing for several
minutes after Chrome is minimised, including periodic page requests.
Also reproduced here via the in-lab harness: the XHR-every-second page
transfers in Chrome's background but not in Firefox's.
"""

from repro.core.report import render_fig4, render_table
from repro.core.transitions import trace_timeline
from repro.lab import (
    CHROME,
    FIREFOX,
    STOCK_BROWSER,
    browser_background_experiment,
    xhr_test_page,
)

from conftest import write_artifact


def test_fig4_chrome_timeline(benchmark, bench_dataset, output_dir):
    view = benchmark(trace_timeline, bench_dataset, "com.android.chrome")
    write_artifact(output_dir, "fig4_chrome_timeline.txt", render_fig4(view))

    benchmark.extra_info["background_bytes"] = view.background_bytes
    benchmark.extra_info["transition_time"] = round(view.transition, 1)

    # Paper shape: substantial traffic continues after the transition.
    assert view.background_bytes > 0
    post_minute = view.times[(view.times > 60.0)]
    assert len(post_minute) > 0  # continues beyond the first minute


def test_fig4_lab_browser_contrast(benchmark, output_dir):
    page = xhr_test_page()

    def run_all():
        return {
            b.name: browser_background_experiment(b, page)
            for b in (CHROME, FIREFOX, STOCK_BROWSER)
        }

    results = benchmark(run_all)
    rows = [
        (
            name,
            r.phase_packets[1],
            r.phase_packets[2],
            f"{r.phase_energy[1] + r.phase_energy[2]:.0f}",
        )
        for name, r in results.items()
    ]
    write_artifact(
        output_dir,
        "fig4_lab_browsers.txt",
        render_table(
            ["browser", "bg pkts", "screen-off pkts", "bg J"],
            rows,
            title="In-lab validation: XHR page across browsers",
        ),
    )
    assert results["chrome"].phase_packets[1] > 0
    assert results["firefox"].phase_packets[1] == 0
    assert results["stock"].phase_packets[1] == 0
