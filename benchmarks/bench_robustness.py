"""Robustness: headline statistics across study seeds.

The headline findings must be properties of the modelled population,
not artefacts of one random realisation. This bench re-generates a
smaller study under several seeds and checks that every headline stays
in a tight band.
"""

from repro import StudyConfig, StudyEnergy, generate_study
from repro.core.headlines import seed_sweep
from repro.core.report import render_table

from conftest import write_artifact

SWEEP_SEEDS = (11, 22, 33)


def test_headline_seed_robustness(benchmark, output_dir):
    def build(seed):
        return StudyEnergy(
            generate_study(
                StudyConfig(n_users=8, duration_days=14.0, seed=seed)
            )
        )

    results = benchmark.pedantic(
        lambda: seed_sweep(build, SWEEP_SEEDS), rounds=1, iterations=1
    )
    rows = [
        (
            key,
            f"{r.mean:.3f}",
            f"{r.std:.3f}",
            f"{r.spread:.3f}",
        )
        for key, r in sorted(results.items())
    ]
    write_artifact(
        output_dir,
        "robustness_seeds.txt",
        render_table(
            ["headline", "mean", "std", "max-min"],
            rows,
            title=f"Headline stability across seeds {SWEEP_SEEDS}",
        ),
    )
    for key, r in results.items():
        benchmark.extra_info[key] = {"mean": round(r.mean, 3), "std": round(r.std, 4)}

    bg = results["background_fraction"]
    assert bg.spread < 0.1
    chrome = results["chrome_background_fraction"]
    assert chrome.spread < 0.35  # per-app stat on fewer users: wider band
    first_minute = results["first_minute_apps"]
    assert first_minute.spread < 0.12
