"""Benches for the extension analyses built on top of the paper.

* §3.1 longitudinal trends: weekly background-energy series and
  improved-app detection (Facebook's 5 min -> 1 h evolution must be
  recovered from the traces alone).
* §6 recommendation engine: diagnose the top consumers.
* §6 OS-managed batching (the iOS discussion): re-time background
  traffic into shared windows and re-attribute.
"""

from repro.core.longitudinal import (
    era_comparison,
    improved_apps,
    weekly_background_energy,
)
from repro.core.recommend import Diagnosis, recommendation_report
from repro.core.report import render_table
from repro.core.whatif import os_coalescing_savings

from conftest import write_artifact


def test_longitudinal_trends(benchmark, bench_study, output_dir):
    def compute():
        series = weekly_background_energy(bench_study)
        improved = improved_apps(
            bench_study,
            apps=[
                "com.facebook.katana",
                "com.pandora.android",
                "com.gau.go.weatherex",
                "com.sina.weibo",
                "com.android.email",
            ],
        )
        return series, improved

    series, improved = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [(i + 1, f"{e / 1e3:.0f}") for i, e in enumerate(series.week_energy)]
    write_artifact(
        output_dir,
        "extension_longitudinal.txt",
        render_table(["week", "background kJ"], rows, title="Weekly background energy")
        + f"\nmax week-over-week fluctuation: {series.max_fluctuation * 100:.0f}%"
        + f"\nimproved apps: {sorted(improved)}",
    )
    benchmark.extra_info["max_fluctuation_pct"] = round(
        series.max_fluctuation * 100, 1
    )
    benchmark.extra_info["improved"] = sorted(improved)

    # The evolvers are detected from traffic alone; the stable chatty
    # apps are not.
    assert "com.facebook.katana" in improved
    assert "com.sina.weibo" not in improved
    assert "com.android.email" not in improved
    facebook = era_comparison(bench_study, "com.facebook.katana")
    assert facebook.energy_change < -0.3  # J/day fell substantially


def test_recommendation_engine(benchmark, bench_study, output_dir):
    recs = benchmark.pedantic(
        lambda: recommendation_report(bench_study, top_n=12), rounds=1, iterations=1
    )
    write_artifact(
        output_dir,
        "extension_recommendations.txt",
        render_table(
            ["app", "kJ", "primary recommendation", "batch%", "kill%", "linger%"],
            [
                (
                    r.app,
                    f"{r.total_energy / 1e3:.0f}",
                    r.primary.value,
                    f"{r.batching_saving_pct:.0f}",
                    f"{r.kill_saving_pct:.0f}",
                    f"{r.lingering_energy_fraction * 100:.0f}",
                )
                for r in recs
            ],
            title="Per-app recommendations (§6 operationalised)",
        ),
    )
    by_app = {r.app: r for r in recs}
    # The paper's archetypes map to their diagnoses.
    assert Diagnosis.CHATTY_BACKGROUND in by_app["com.sec.spp.push"].diagnoses
    if "com.sina.weibo" in by_app:
        assert Diagnosis.IDLE_DRAIN in by_app["com.sina.weibo"].diagnoses
    flagged = [r for r in recs if r.primary is not Diagnosis.EFFICIENT]
    benchmark.extra_info["flagged"] = len(flagged)
    assert len(flagged) >= len(recs) // 2  # top consumers are mostly fixable


def test_os_coalescing(benchmark, bench_study, output_dir):
    def compute():
        return {
            period: os_coalescing_savings(bench_study, period=period)
            for period in (600.0, 1800.0, 3600.0)
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_artifact(
        output_dir,
        "extension_os_coalescing.txt",
        render_table(
            ["window", "% energy saved", "mean delay (s)"],
            [
                (f"{int(p)}s", f"{r.savings_pct:.1f}", f"{r.mean_delay:.0f}")
                for p, r in results.items()
            ],
            title="OS-managed background batching (§6's iOS model)",
        ),
    )
    benchmark.extra_info.update(
        {f"save_{int(p)}s_pct": round(r.savings_pct, 1) for p, r in results.items()}
    )
    # Monotone in window size; substantial at 30 min.
    savings = [results[p].savings_pct for p in (600.0, 1800.0, 3600.0)]
    assert savings == sorted(savings)
    assert savings[1] > 30.0
