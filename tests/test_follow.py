"""repro.follow: rings, tails, headlines, resume identity, live publish.

The subsystem's core invariant gets the property treatment the issue
demands: for random event streams, random chunkings and random window
shapes, a long-lived :class:`WindowRing` — through evictions and
checkpoint payload round-trips — folds ``array_equal`` to a fresh ring
built from only the window's packets. On top of that: tailing-source
edge cases (torn lines, truncation, cursor resume), headline engine
determinism, and the acceptance scenario — interrupt a follower
mid-drain, resume, and get byte-identical headlines, folds and live
manifests.
"""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro import StudyConfig, generate_study
from repro.cli import main
from repro.errors import (
    FollowError,
    NeedsPacketDetail,
    SourceTruncated,
    StreamError,
)
from repro.exitcodes import (
    EXIT_FOLLOW_INTERRUPTED,
    EXIT_OK,
    EXIT_SOURCE_TRUNCATED,
    EXIT_USAGE,
)
from repro.follow import (
    DEFAULT_WINDOWS,
    FOLLOW_WINDOW_END,
    Follower,
    HeadlineEngine,
    NpzDropSource,
    TailCsvSource,
    WindowRing,
    WindowSpec,
    live_manifest_path,
    parse_window_spec,
    settled_timestamps,
)
from repro.store import ResultStore, StoreKey, render_analysis
from repro.trace.io_text import write_events_csv, write_packets_csv

# ----------------------------------------------------------------------
# Window specs
# ----------------------------------------------------------------------
def test_window_spec_buckets():
    spec = WindowSpec("hour", 3600, 300)
    assert spec.n_buckets == 12


@pytest.mark.parametrize(
    "name,span,bucket",
    [
        ("", 60, 10),  # empty name
        ("bad name", 60, 10),  # non-alphanumeric
        ("w", 0, 10),  # zero span
        ("w", 60, 0),  # zero bucket
        ("w", 60, -5),  # negative bucket
        ("w", 65, 10),  # span not a multiple
    ],
)
def test_window_spec_rejects_bad_shapes(name, span, bucket):
    with pytest.raises(FollowError):
        WindowSpec(name, span, bucket)


def test_parse_window_spec_roundtrip():
    spec = parse_window_spec("m5=300:60")
    assert spec == WindowSpec("m5", 300, 60)


@pytest.mark.parametrize(
    "text", ["hour", "hour=3600", "hour=a:b", "=300:60", "hour=300:"]
)
def test_parse_window_spec_rejects_malformed(text):
    with pytest.raises(FollowError):
        parse_window_spec(text)


def test_default_windows_are_valid_and_distinct():
    names = [w.name for w in DEFAULT_WINDOWS]
    assert names == ["hour", "day", "week"]
    assert len(set(names)) == len(names)


# ----------------------------------------------------------------------
# Settled-timestamp reconstruction
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_settled_timestamps_cover_stream_for_any_chunking(seed):
    """Concatenated per-feed settled timestamps == all but the final
    (still-pending) packet, however the stream was chunked."""
    rng = np.random.default_rng(40 + seed)
    ts = np.sort(rng.uniform(0.0, 1000.0, 257))
    pieces = []
    had_pending, pending_ts = False, 0.0
    pos = 0
    while pos < len(ts):
        k = int(rng.integers(1, 40))
        chunk = ts[pos : pos + k]
        pos += k
        pieces.append(settled_timestamps(chunk, had_pending, pending_ts))
        # After any non-empty feed exactly the chunk's last packet
        # remains pending.
        had_pending, pending_ts = True, float(chunk[-1])
    assert np.array_equal(np.concatenate(pieces), ts[:-1])


# ----------------------------------------------------------------------
# The ring property: long-lived fold == fresh recompute, bit for bit
# ----------------------------------------------------------------------
def _random_packets(rng, n, t_max):
    return (
        np.sort(rng.uniform(0.0, t_max, n)),
        rng.integers(1, 6, n).astype(np.int64),
        rng.integers(0, 4, n).astype(np.int64),
        rng.integers(40, 1500, n).astype(np.int64),
        rng.uniform(0.0, 2.0, n),
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_ring_fold_bit_identical_to_fresh_recompute(seed):
    """Random streams, random chunk sizes, random window shapes: the
    evicted, payload-round-tripped ring folds exactly like a fresh ring
    fed only the window's packets."""
    rng = np.random.default_rng(700 + seed)
    bucket = int(rng.integers(3, 9))
    n_buckets = int(rng.integers(2, 6))
    spec = WindowSpec("w", bucket * n_buckets, bucket)
    users = [1, 2]
    n = int(rng.integers(200, 400))
    t_max = float(bucket * n_buckets * int(rng.integers(4, 9)))
    packets = {uid: _random_packets(rng, n, t_max) for uid in users}

    ring = WindowRing(spec)
    pos = {uid: 0 for uid in users}
    while any(pos[uid] < n for uid in users):
        uid = int(rng.choice(users))
        if pos[uid] >= n:
            continue
        lo = pos[uid]
        hi = min(lo + int(rng.integers(1, 60)), n)
        ts, apps, states, sizes, energy = (
            column[lo:hi] for column in packets[uid]
        )
        ring.ingest(uid, ts, apps, states, sizes, energy)
        pos[uid] = hi
        # Evict exactly as the follower would: keep the current and
        # previous window behind the stream low-watermark.
        watermark = min(
            packets[u][0][pos[u] - 1] if pos[u] else 0.0 for u in users
        )
        sealed = int(watermark // bucket) - 1
        ring.evict_through(sealed - 2 * n_buckets)
        if rng.random() < 0.25:
            meta, arrays = ring.payload("w0")
            ring = WindowRing.from_payload(meta, arrays, "w0")

    high = int(min(p[0][-1] for p in packets.values()) // bucket) - 1
    lo_t = (high - n_buckets + 1) * bucket
    hi_t = (high + 1) * bucket
    fresh = WindowRing(spec)
    for uid, (ts, apps, states, sizes, energy) in packets.items():
        mask = (ts >= lo_t) & (ts < hi_t)
        fresh.ingest(
            uid, ts[mask], apps[mask], states[mask], sizes[mask],
            energy[mask],
        )

    lived, scratch = ring.fold(high), fresh.fold(high)
    assert list(lived) == list(scratch)
    for uid in lived:
        for got, want in zip(lived[uid], scratch[uid]):
            assert list(got) == list(want)
            assert np.array_equal(
                np.array(list(got.values())),
                np.array(list(want.values())),
            )
    assert ring.fold_digest(high) == fresh.fold_digest(high)
    assert ring.evictions > 0  # the property exercised eviction


def test_fold_digest_moves_with_the_fold():
    spec = WindowSpec("w", 40, 10)
    ring = WindowRing(spec)
    one = np.array([1.0])
    ring.ingest(1, np.array([15.0]), one.astype(np.int64), one.astype(np.int64), one.astype(np.int64), one)
    before = ring.fold_digest(3)
    ring.ingest(1, np.array([25.0]), one.astype(np.int64), one.astype(np.int64), one.astype(np.int64), one)
    assert ring.fold_digest(3) != before
    # A packet outside the window leaves the digest alone.
    ring.ingest(1, np.array([500.0]), one.astype(np.int64), one.astype(np.int64), one.astype(np.int64), one)
    after = ring.fold_digest(3)
    ring.ingest(1, np.array([501.0]), one.astype(np.int64), one.astype(np.int64), one.astype(np.int64), one)
    assert ring.fold_digest(3) == after


def test_windowed_readout_refuses_packet_detail(dataset):
    """Table 1 needs the cadence tier, which a live window cannot
    carry — the refusal is the typed error, not a registry crash."""
    spec = WindowSpec("w", 40, 10)
    ring = WindowRing(spec)
    one = np.array([1.0])
    ring.ingest(1, np.array([15.0]), one.astype(np.int64), one.astype(np.int64), one.astype(np.int64), one)
    readout = ring.readout(3, registry=dataset.registry)
    assert readout.window_name == "w"
    assert readout.window_end - readout.window_start == spec.span_s
    with pytest.raises(NeedsPacketDetail):
        render_analysis("table1", readout)


# ----------------------------------------------------------------------
# Headline engine
# ----------------------------------------------------------------------
def _fold_for(energies_by_app):
    """A single-user fold with the given per-app energies."""
    apps = {int(a): float(e) for a, e in energies_by_app.items()}
    return {1: (apps, dict(apps), {a: 1 for a in apps})}


def test_headline_engine_first_then_entry_then_surge():
    engine = HeadlineEngine("w", top_n=2)
    first = engine.evaluate(10, _fold_for({1: 5.0, 2: 3.0, 3: 1.0}), {})
    assert first[0].startswith("[w #10] total 9.000 J")
    assert any("is #1 of the top-2" in line for line in first)
    # Same ranking again: only the total line.
    second = engine.evaluate(11, _fold_for({1: 5.0, 2: 3.0}), _fold_for({1: 5.0, 2: 3.0, 3: 1.0}))
    assert len(second) == 1 and "% vs previous window" in second[0]
    # App 3 displaces app 2 and surges 4x.
    third = engine.evaluate(12, _fold_for({1: 5.0, 3: 4.0}), _fold_for({1: 5.0, 2: 3.0, 3: 1.0}))
    assert any("app3 entered the top-2" in line for line in third)
    assert any("surged 4.0x" in line for line in third)


def test_headline_engine_state_roundtrip_is_transparent():
    feeds = [
        (10, _fold_for({1: 5.0, 2: 3.0}), {}),
        (11, _fold_for({2: 9.0, 1: 1.0}), _fold_for({1: 5.0, 2: 3.0})),
        (12, _fold_for({3: 2.0}), _fold_for({2: 9.0, 1: 1.0})),
    ]
    straight = HeadlineEngine("w", top_n=2)
    resumed = HeadlineEngine("w", top_n=2)
    expected, got = [], []
    for i, (bucket, fold, prior) in enumerate(feeds):
        expected.extend(straight.evaluate(bucket, fold, prior))
        if i == 1:
            resumed = HeadlineEngine.from_state("w", resumed.state(), top_n=2)
        got.extend(resumed.evaluate(bucket, fold, prior))
    assert got == expected


# ----------------------------------------------------------------------
# Tailing sources
# ----------------------------------------------------------------------
STUDY = StudyConfig(n_users=2, duration_days=2.0, seed=29)


@pytest.fixture(scope="module")
def dataset():
    return generate_study(STUDY)


@pytest.fixture()
def csv_tail(tmp_path, dataset):
    """Per-user packets/events CSVs written in full, plus their text."""
    pairs, texts = [], {}
    for user in dataset.users:
        packets = tmp_path / f"u{user.user_id}.csv"
        events = tmp_path / f"u{user.user_id}_events.csv"
        write_packets_csv(packets, user.packets, dataset.registry)
        write_events_csv(events, user.events, dataset.registry)
        pairs.append((packets, events))
        texts[user.user_id] = packets.read_text()
    return pairs, texts


def test_tail_csv_reads_everything_in_chunks(csv_tail, dataset):
    pairs, _ = csv_tail
    source = TailCsvSource(pairs, chunk_size=512)
    assert source.window(1) == (0.0, FOLLOW_WINDOW_END)
    total = 0
    for user in dataset.users:
        # A poll reads at most TAIL_READ_LIMIT bytes; drain in rounds.
        while True:
            polled = source.poll(user.user_id)
            if not polled:
                break
            assert all(len(chunk) <= 512 for chunk, _ in polled)
            total += sum(len(chunk) for chunk, _ in polled)
        assert source.poll(user.user_id) == []
    assert total == dataset.total_packets


def test_tail_csv_holds_back_torn_lines(tmp_path, csv_tail):
    _, texts = csv_tail
    lines = texts[1].splitlines(keepends=True)
    packets = tmp_path / "torn.csv"
    # Header + one complete row + a torn row (no trailing newline).
    packets.write_text(lines[0] + lines[1] + lines[2][:-10])
    source = TailCsvSource([(packets, None)])
    polled = source.poll(1)
    assert sum(len(chunk) for chunk, _ in polled) == 1
    # Completing the torn line releases exactly that row.
    with open(packets, "a") as handle:
        handle.write(lines[2][-10:])
    polled = source.poll(1)
    assert sum(len(chunk) for chunk, _ in polled) == 1


def test_tail_csv_waits_for_a_complete_header(tmp_path, csv_tail):
    _, texts = csv_tail
    lines = texts[1].splitlines(keepends=True)
    packets = tmp_path / "young.csv"
    packets.write_text(lines[0][:-1])  # header without its newline
    source = TailCsvSource([(packets, None)])
    assert source.poll(1) == []
    packets.write_text(lines[0] + lines[1])
    assert sum(len(c) for c, _ in source.poll(1)) == 1


def test_tail_csv_rejects_wrong_header(tmp_path):
    packets = tmp_path / "bad.csv"
    packets.write_text("time,bytes,who\n1,2,3\n")
    source = TailCsvSource([(packets, None)])
    with pytest.raises(FollowError):
        source.poll(1)


def test_tail_csv_shrink_raises_source_truncated(tmp_path, csv_tail):
    _, texts = csv_tail
    packets = tmp_path / "shrink.csv"
    packets.write_text(texts[1])
    source = TailCsvSource([(packets, None)], chunk_size=256)
    source.poll(1)
    packets.write_text("".join(texts[1].splitlines(keepends=True)[:3]))
    with pytest.raises(SourceTruncated):
        source.poll(1)


def test_tail_csv_rejects_unsorted_rows(tmp_path, csv_tail):
    _, texts = csv_tail
    lines = texts[1].splitlines(keepends=True)
    packets = tmp_path / "unsorted.csv"
    packets.write_text(lines[0] + lines[2] + lines[1])
    source = TailCsvSource([(packets, None)])
    with pytest.raises(StreamError):
        source.poll(1)


def _drain_polls(source, uid):
    out = []
    while True:
        polled = source.poll(uid)
        if not polled:
            return out
        out.extend(polled)


def test_tail_csv_bounded_poll_and_cursor_resume(tmp_path, csv_tail, dataset):
    """max_chunks bounds one poll; a fresh source restored from the
    durable snapshot yields exactly the unconsumed remainder."""
    pairs, _ = csv_tail
    source = TailCsvSource(pairs, chunk_size=128)
    first = source.poll(1, max_chunks=2)
    assert len(first) == 2
    consumed = sum(len(chunk) for chunk, _ in first)
    snapshot = first[-1][1]

    resumed = TailCsvSource(pairs, chunk_size=128)
    resumed.restore({"1": snapshot}, source.registry.to_json())
    rest = _drain_polls(resumed, 1)
    n_user1 = len(dataset.users[0].packets)
    assert consumed + sum(len(chunk) for chunk, _ in rest) == n_user1
    # The resumed stream continues with identical rows.
    fresh = TailCsvSource(pairs, chunk_size=128)
    everything = _drain_polls(fresh, 1)
    tail_ts = np.concatenate([c.timestamps for c, _ in rest])
    full_ts = np.concatenate([c.timestamps for c, _ in everything])
    assert np.array_equal(tail_ts, full_ts[consumed:])


@pytest.fixture()
def drop_dir(tmp_path, dataset):
    drops = tmp_path / "drops"
    drops.mkdir()
    dataset.save(drops / "day1.npz")
    dataset.save(drops / "day2.npz")
    return drops


def test_npz_drops_consume_in_name_order(drop_dir, dataset):
    source = NpzDropSource(drop_dir, chunk_size=1024)
    assert source.user_ids == [1, 2]
    rows = 0
    # One drop completes per poll; two polls drain a user.
    for _ in range(2):
        for uid in source.user_ids:
            rows += sum(len(c) for c, _ in source.poll(uid))
    assert rows == 2 * dataset.total_packets
    assert source.poll(1) == []
    assert source.cursor_snapshot(1)["done"] == ["day1.npz", "day2.npz"]


def test_npz_drops_detect_vanished_drop(drop_dir):
    source = NpzDropSource(drop_dir)
    source.poll(1)
    (drop_dir / "day1.npz").unlink()
    with pytest.raises(SourceTruncated):
        source.poll(1)


def test_npz_drops_resume_from_mid_drop_cursor(drop_dir, dataset):
    source = NpzDropSource(drop_dir, chunk_size=256)
    first = source.poll(1, max_chunks=2)
    snapshot = first[-1][1]
    consumed = sum(len(c) for c, _ in first)

    resumed = NpzDropSource(drop_dir, chunk_size=256)
    resumed.restore({"1": snapshot}, source.registry.to_json())
    rest = _drain_polls(resumed, 1)
    n_user1 = len(dataset.users[0].packets)
    assert consumed + sum(len(c) for c, _ in rest) == 2 * n_user1


def test_npz_drops_reject_divergent_user_set(drop_dir):
    bigger = generate_study(StudyConfig(n_users=3, duration_days=1.0, seed=29))
    bigger.save(drop_dir / "day3.npz")
    source = NpzDropSource(drop_dir)
    source.poll(1)  # day1 is fine
    source.poll(1)  # day2 is fine
    with pytest.raises(FollowError):
        source.poll(1)  # day3 carries a third user


# ----------------------------------------------------------------------
# The follower end to end
# ----------------------------------------------------------------------
WINDOWS = (WindowSpec("short", 14400, 3600), WindowSpec("long", 43200, 14400))


def _run_follower(pairs, checkpoint, store=None, **kwargs):
    lines = []
    follower = Follower(
        TailCsvSource(pairs, chunk_size=512),
        checkpoint_path=checkpoint,
        windows=WINDOWS,
        store=store,
        poll_interval=0.0,
        emit=lines.append,
        **kwargs,
    )
    why = follower.run(idle_exit=2)
    return follower, lines, why


def test_follower_emits_headlines_and_checkpoints(tmp_path, csv_tail):
    pairs, _ = csv_tail
    checkpoint = tmp_path / "follow.npz"
    follower, lines, why = _run_follower(pairs, checkpoint)
    assert why == "idle"
    assert checkpoint.exists()
    assert lines and lines == follower.headline_log
    assert any("total" in line for line in lines)
    assert follower.metrics.counter("follow.chunks") > 0
    assert follower.metrics.counter("follow.checkpoints") > 0
    # Both windows evaluated up to the stream's sealed buckets.
    t_seal = follower.seal_time()
    for ring in follower.rings.values():
        assert ring.last_evaluated == int(t_seal // ring.spec.bucket_s) - 1


def test_follower_backpressure_bounds_the_queue(tmp_path, csv_tail):
    pairs, _ = csv_tail
    follower = Follower(
        TailCsvSource(pairs, chunk_size=128),
        checkpoint_path=tmp_path / "bp.npz",
        windows=WINDOWS,
        max_pending=3,
        poll_interval=0.0,
    )
    follower.run(idle_exit=2)
    assert follower.metrics.gauge_max("follow.lag_chunks") <= 3
    assert follower.metrics.gauge_last("follow.lag_chunks") == 0  # drained


def test_follower_interrupt_resume_is_bit_identical(tmp_path, csv_tail):
    """The acceptance scenario: stop mid-drain after the 3rd chunk,
    resume from the checkpoint, and match an uninterrupted run's
    headlines, window folds and live manifest exactly."""
    pairs, _ = csv_tail

    ref_store = ResultStore(tmp_path / "ref_store")
    reference, ref_lines, why = _run_follower(
        pairs, tmp_path / "ref.npz", store=ref_store
    )
    assert why == "idle"

    store = ResultStore(tmp_path / "store")
    lines_a = []
    follower = Follower(
        TailCsvSource(pairs, chunk_size=512),
        checkpoint_path=tmp_path / "live.npz",
        windows=WINDOWS,
        store=store,
        poll_interval=0.0,
        emit=lines_a.append,
    )
    unwrapped = follower._process_chunk
    seen = []

    def interrupt_after_three(uid, chunk, snapshot):
        unwrapped(uid, chunk, snapshot)
        seen.append(uid)
        if len(seen) == 3:
            follower.request_stop()

    follower._process_chunk = interrupt_after_three
    assert follower.run(idle_exit=2) == "interrupted"
    assert follower.chunks_done == 3  # genuinely stopped mid-drain

    lines_b = []
    resumed = Follower(
        TailCsvSource(pairs, chunk_size=512),
        checkpoint_path=tmp_path / "live.npz",
        windows=WINDOWS,
        store=store,
        poll_interval=0.0,
        emit=lines_b.append,
    )
    assert resumed.run(resume=True, idle_exit=2) == "idle"

    assert lines_a + lines_b == ref_lines
    assert resumed.headline_log == reference.headline_log
    for name, ring in resumed.rings.items():
        ref_ring = reference.rings[name]
        assert ring.last_evaluated == ref_ring.last_evaluated
        assert ring.fold_digest(ring.last_evaluated) == ref_ring.fold_digest(
            ref_ring.last_evaluated
        )
    live = json.loads(live_manifest_path(store.directory).read_text())
    ref_live = json.loads(
        live_manifest_path(ref_store.directory).read_text()
    )
    assert live == ref_live


def test_follower_rejects_mismatched_resume_windows(tmp_path, csv_tail):
    pairs, _ = csv_tail
    checkpoint = tmp_path / "w.npz"
    _run_follower(pairs, checkpoint)
    other = Follower(
        TailCsvSource(pairs, chunk_size=512),
        checkpoint_path=checkpoint,
        windows=(WindowSpec("short", 7200, 3600),),
        poll_interval=0.0,
    )
    with pytest.raises(FollowError):
        other.run(resume=True, idle_exit=1)


def test_follower_publishes_live_analyses(tmp_path, csv_tail, dataset):
    pairs, _ = csv_tail
    store = ResultStore(tmp_path / "store")
    follower, _, _ = _run_follower(pairs, tmp_path / "p.npz", store=store)

    manifest = json.loads(live_manifest_path(store.directory).read_text())
    assert manifest["format"] == 1
    assert sorted(manifest["windows"]) == ["long", "short"]
    assert manifest["analyses"] == ["fig1", "fig2", "fig3", "headlines", "readout"]
    for name, entry in manifest["windows"].items():
        assert "digest" not in entry  # internal key stays internal
        spec = follower.rings[name].spec
        assert entry["span_s"] == spec.span_s
        assert entry["window_end"] - entry["window_start"] == spec.span_s
        for analysis in manifest["analyses"]:
            key = StoreKey(
                entry["fingerprint"],
                manifest["model"],
                manifest["policy"],
                analysis,
            )
            result = store.get(key)
            assert result is not None and result.data


def test_follower_republish_skips_unchanged_folds(tmp_path, csv_tail):
    pairs, _ = csv_tail
    store = ResultStore(tmp_path / "store")
    checkpoint = tmp_path / "c.npz"
    follower, _, _ = _run_follower(pairs, checkpoint, store=store)
    published = follower.metrics.counter("follow.published")
    manifest_before = live_manifest_path(store.directory).read_text()

    again = Follower(
        TailCsvSource(pairs, chunk_size=512),
        checkpoint_path=checkpoint,
        windows=WINDOWS,
        store=store,
        poll_interval=0.0,
    )
    assert again.run(resume=True, idle_exit=2) == "idle"
    # No new data, no new folds: nothing re-published, manifest stable.
    assert again.metrics.counter("follow.published") == 0
    assert live_manifest_path(store.directory).read_text() == manifest_before
    assert published > 0


def test_follower_supersede_invalidates_old_generation(tmp_path, csv_tail):
    """When new data moves a window's fold, the old fingerprint's
    entries leave the store — one live generation per window."""
    pairs, texts = csv_tail
    staged = []
    for i, (packets, events) in enumerate(pairs, start=1):
        part = tmp_path / f"part{i}.csv"
        lines = texts[i].splitlines(keepends=True)
        part.write_text("".join(lines[: len(lines) // 2]))
        staged.append((part, events))

    store = ResultStore(tmp_path / "store")
    checkpoint = tmp_path / "s.npz"
    follower, _, _ = _run_follower(staged, checkpoint, store=store)
    manifest = json.loads(live_manifest_path(store.directory).read_text())
    old_keys = {
        name: entry["fingerprint"]
        for name, entry in manifest["windows"].items()
    }

    for i, (part, _) in enumerate(staged, start=1):
        lines = texts[i].splitlines(keepends=True)
        with open(part, "a") as handle:
            handle.write("".join(lines[len(lines) // 2 :]))
    again = Follower(
        TailCsvSource(staged, chunk_size=512),
        checkpoint_path=checkpoint,
        windows=WINDOWS,
        store=store,
        poll_interval=0.0,
    )
    assert again.run(resume=True, idle_exit=2) == "idle"
    new = json.loads(live_manifest_path(store.directory).read_text())
    fingerprints = {e.fingerprint for e in store.entries()}
    for name, entry in new["windows"].items():
        if entry["fingerprint"] != old_keys[name]:
            assert old_keys[name] not in fingerprints


def test_follower_validates_configuration(tmp_path, csv_tail):
    pairs, _ = csv_tail
    source = TailCsvSource(pairs)
    with pytest.raises(FollowError):
        Follower(source, checkpoint_path=tmp_path / "x.npz", windows=())
    with pytest.raises(FollowError):
        Follower(
            source,
            checkpoint_path=tmp_path / "x.npz",
            windows=(WindowSpec("a", 60, 10), WindowSpec("a", 120, 10)),
        )
    with pytest.raises(FollowError):
        Follower(
            source, checkpoint_path=tmp_path / "x.npz", checkpoint_every=0
        )
    with pytest.raises(FollowError):
        Follower(source, checkpoint_path=tmp_path / "x.npz", max_pending=0)


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def test_cli_follow_runs_and_summarises(tmp_path, csv_tail, capsys):
    pairs, _ = csv_tail
    code = main(
        [
            "follow",
            "--user", f"{pairs[0][0]}:{pairs[0][1]}",
            "--user", f"{pairs[1][0]}:{pairs[1][1]}",
            "--checkpoint", str(tmp_path / "cli.npz"),
            "--window", "short=14400:3600",
            "--chunk-size", "512",
            "--poll-interval", "0",
            "--idle-exit", "2",
        ]
    )
    out = capsys.readouterr().out
    assert code == EXIT_OK
    assert "follow idle:" in out
    assert "continue with --resume" in out
    assert "[short #" in out


def test_cli_follow_truncated_source_exits_7(tmp_path, csv_tail, capsys):
    _, texts = csv_tail
    packets = tmp_path / "t.csv"
    packets.write_text(texts[1])
    argv = [
        "follow",
        "--user", str(packets),
        "--checkpoint", str(tmp_path / "t.npz"),
        "--window", "short=14400:3600",
        "--poll-interval", "0",
        "--idle-exit", "1",
    ]
    assert main(argv) == EXIT_OK
    packets.write_text("".join(texts[1].splitlines(keepends=True)[:3]))
    code = main(argv + ["--resume"])
    err = capsys.readouterr().err
    assert code == EXIT_SOURCE_TRUNCATED
    assert "truncated or replaced" in err


def test_cli_follow_usage_errors(tmp_path, capsys):
    # --user and --drops are mutually exclusive and one is required.
    assert main(["follow", "--checkpoint", str(tmp_path / "x.npz")]) == EXIT_USAGE
    drops = tmp_path / "drops"
    drops.mkdir()
    assert (
        main(
            [
                "follow",
                "--user", "a.csv",
                "--drops", str(drops),
                "--checkpoint", str(tmp_path / "x.npz"),
            ]
        )
        == EXIT_USAGE
    )
    capsys.readouterr()


def test_cli_serve_live_requires_store(capsys):
    assert main(["serve", "--live", "--port", "0"]) == EXIT_USAGE
    assert "--store" in capsys.readouterr().err
