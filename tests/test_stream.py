"""repro.stream: bit-identity with batch, chunk edges, checkpoint/resume.

The subsystem's contract is the repo's established standard: every
streamed total must equal the batch :class:`StudyEnergy` value
bit-for-bit (``array_equal``, never ``allclose``), for any chunk size,
any worker count, and across a kill + resume. The edge cases the issue
calls out — a tail window spanning a chunk split, an app whose only
packet is the last of a chunk, an empty chunk, resume mid-tail — each
get a dedicated test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import StudyConfig, StudyEnergy, generate_study
from repro.errors import StreamError, TraceError
from repro.radio.attribution import TailPolicy, attribute_energy
from repro.radio.lte import LTE_DEFAULT
from repro.radio.streaming import RadioCarry, StreamingAttribution
from repro.radio.vectorized import SUM_BLOCK, blocked_sum
from repro.stream import (
    CsvStreamSource,
    NpzStreamSource,
    StreamCheckpoint,
    StreamIngestor,
)
from repro.trace.io_text import (
    dataset_from_csv,
    write_events_csv,
    write_packets_csv,
)
from repro.trace.packet import Direction

from conftest import make_packets


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def assert_streams_equal_batch(result, study):
    """Every grouped total bit-identical between stream and batch."""
    for name in ("energy_by_app", "energy_by_app_state", "energy_by_state"):
        batch = getattr(study, name)()
        streamed = getattr(result, name)()
        assert list(batch) == list(streamed), f"{name} keys differ"
        assert np.array_equal(
            np.array(list(batch.values())),
            np.array(list(streamed.values())),
        ), f"{name} values differ"
    assert study.bytes_by_app() == result.bytes_by_app()
    assert study.idle_energy == result.idle_energy


def batch_per_packet(packets, window, policy=TailPolicy.LAST_PACKET):
    result = attribute_energy(
        LTE_DEFAULT, packets, window=window, policy=policy
    )
    return result.per_packet, result.energy.idle_energy


def stream_per_packet(chunks, window, policy=TailPolicy.LAST_PACKET):
    sim = StreamingAttribution(LTE_DEFAULT, policy, window)
    pieces = [sim.feed(chunk).per_packet for chunk in chunks]
    final, idle = sim.finish()
    pieces.append(final.per_packet)
    return np.concatenate(pieces), idle


@pytest.fixture(scope="module")
def saved_study(tmp_path_factory):
    """A 4-user study on disk plus its batch attribution."""
    dataset = generate_study(StudyConfig(n_users=4, duration_days=6, seed=9))
    path = tmp_path_factory.mktemp("stream") / "study.npz"
    dataset.save(path)
    return path, StudyEnergy(dataset)


# ----------------------------------------------------------------------
# StreamingAttribution: per-packet identity at chunk edges
# ----------------------------------------------------------------------
def test_tail_spanning_chunk_split():
    """A gap shorter than the tail crossing a chunk boundary: the tail
    energy must land on the packet before the split, exactly."""
    packets = make_packets(
        [
            (10.0, 1000, Direction.DOWNLINK, 1),
            (12.0, 500, Direction.UPLINK, 1),
            # gap 12 -> 14 is inside LTE_DEFAULT's tail; split here
            (14.0, 800, Direction.DOWNLINK, 2),
            (300.0, 400, Direction.UPLINK, 2),
        ]
    )
    window = (0.0, 400.0)
    expected, expected_idle = batch_per_packet(packets, window)
    for policy in TailPolicy:
        expected_p, expected_i = batch_per_packet(packets, window, policy)
        got, got_idle = stream_per_packet(
            [packets[:2], packets[2:]], window, policy
        )
        assert np.array_equal(got, expected_p)
        assert got_idle == expected_i
    got, got_idle = stream_per_packet([packets[:2], packets[2:]], window)
    assert np.array_equal(got, expected)
    assert got_idle == expected_idle


def test_app_whose_only_packet_is_last_of_chunk():
    """The chunk-final packet is pending when the chunk ends; its app
    must still receive its full settled energy, bit-identically."""
    packets = make_packets(
        [
            (5.0, 100, Direction.UPLINK, 1),
            (50.0, 2000, Direction.DOWNLINK, 7),  # app 7, last of chunk 1
            (400.0, 300, Direction.UPLINK, 1),
        ]
    )
    window = (0.0, 500.0)
    expected, expected_idle = batch_per_packet(packets, window)
    got, got_idle = stream_per_packet([packets[:2], packets[2:]], window)
    assert np.array_equal(got, expected)
    assert got_idle == expected_idle
    batch = attribute_energy(LTE_DEFAULT, packets, window=window)
    sim = StreamingAttribution(
        LTE_DEFAULT, TailPolicy.LAST_PACKET, window
    )
    from repro.core.readout import KeyedTotals

    totals = KeyedTotals()
    for chunk in (packets[:2], packets[2:]):
        settled = sim.feed(chunk)
        totals.add(settled.apps, settled.per_packet)
    settled, _ = sim.finish()
    totals.add(settled.apps, settled.per_packet)
    assert totals.as_dict() == batch.energy_by_app()


def test_empty_chunk_is_noop():
    packets = make_packets(
        [
            (10.0, 1000, Direction.DOWNLINK, 1),
            (90.0, 500, Direction.UPLINK, 2),
        ]
    )
    window = (0.0, 200.0)
    expected, expected_idle = batch_per_packet(packets, window)
    got, got_idle = stream_per_packet(
        [packets[:1], packets[:0], packets[1:], packets[:0]], window
    )
    assert np.array_equal(got, expected)
    assert got_idle == expected_idle


def test_single_packet_and_empty_user():
    one = make_packets([(25.0, 700, Direction.DOWNLINK, 3)])
    window = (0.0, 100.0)
    for policy in TailPolicy:
        expected, expected_idle = batch_per_packet(one, window, policy)
        got, got_idle = stream_per_packet([one], window, policy)
        assert np.array_equal(got, expected)
        assert got_idle == expected_idle
    sim = StreamingAttribution(
        LTE_DEFAULT, TailPolicy.LAST_PACKET, window
    )
    settled, idle = sim.finish()
    assert len(settled) == 0
    assert idle == (window[1] - window[0]) * LTE_DEFAULT.idle_power


@pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 50, 10_000])
@pytest.mark.parametrize("policy", list(TailPolicy))
def test_per_packet_identity_any_chunking(chunk_size, policy):
    rng = np.random.default_rng(4)
    n = 400
    ts = np.sort(rng.uniform(0.0, 5_000.0, n))
    packets = make_packets(
        [
            (float(ts[i]), int(rng.integers(40, 1500)),
             Direction.UPLINK if rng.integers(2) else Direction.DOWNLINK,
             int(rng.integers(1, 9)))
            for i in range(n)
        ]
    )
    window = (0.0, 6_000.0)
    expected, expected_idle = batch_per_packet(packets, window, policy)
    chunks = [
        packets[i : i + chunk_size] for i in range(0, n, chunk_size)
    ]
    got, got_idle = stream_per_packet(chunks, window, policy)
    assert np.array_equal(got, expected)
    assert got_idle == expected_idle


def test_idle_blocked_sum_across_block_boundary():
    """More inner gaps than SUM_BLOCK: the buffered flush must replay
    blocked_sum's exact block alignment."""
    rng = np.random.default_rng(11)
    n = SUM_BLOCK + 500
    # Wide gaps so most contribute idle time.
    ts = np.cumsum(rng.uniform(30.0, 60.0, n))
    packets = make_packets(
        [(float(t), 100, Direction.UPLINK, 1) for t in ts]
    )
    window = (0.0, float(ts[-1]) + 100.0)
    expected, expected_idle = batch_per_packet(packets, window)
    got, got_idle = stream_per_packet(
        [packets[i : i + 1000] for i in range(0, n, 1000)], window
    )
    assert np.array_equal(got, expected)
    assert got_idle == expected_idle


def test_blocked_sum_matches_manual_fold():
    values = np.random.default_rng(3).uniform(size=3 * SUM_BLOCK + 17)
    total = 0.0
    for start in range(0, len(values), SUM_BLOCK):
        total += float(values[start : start + SUM_BLOCK].sum())
    assert blocked_sum(values) == total


def test_feed_rejects_bad_chunks():
    window = (0.0, 100.0)
    sim = StreamingAttribution(LTE_DEFAULT, TailPolicy.LAST_PACKET, window)
    sim.feed(make_packets([(50.0, 10, Direction.UPLINK, 1)]))
    with pytest.raises(StreamError):
        sim.feed(make_packets([(10.0, 10, Direction.UPLINK, 1)]))
    with pytest.raises(TraceError):
        sim.feed(make_packets([(500.0, 10, Direction.UPLINK, 1)]))
    sim.finish()
    with pytest.raises(StreamError):
        sim.feed(make_packets([(60.0, 10, Direction.UPLINK, 1)]))
    with pytest.raises(StreamError):
        sim.finish()


def test_radio_carry_payload_roundtrip():
    window = (0.0, 1_000.0)
    sim = StreamingAttribution(LTE_DEFAULT, TailPolicy.SPLIT_ADJACENT, window)
    packets = make_packets(
        [(float(t), 200, Direction.DOWNLINK, 2) for t in (5, 9, 40, 300)]
    )
    first = sim.feed(packets[:3])
    restored = RadioCarry.from_payload(sim.carry.to_payload())
    resumed = StreamingAttribution(
        LTE_DEFAULT, TailPolicy.SPLIT_ADJACENT, window, restored
    )
    rest = resumed.feed(packets[3:])
    final, idle = resumed.finish()
    got = np.concatenate(
        [first.per_packet, rest.per_packet, final.per_packet]
    )
    expected, expected_idle = batch_per_packet(
        packets, window, TailPolicy.SPLIT_ADJACENT
    )
    assert np.array_equal(got, expected)
    assert idle == expected_idle


# ----------------------------------------------------------------------
# Study-level identity: npz and CSV sources
# ----------------------------------------------------------------------
@pytest.mark.parametrize("chunk_size", [97, 4096])
def test_npz_stream_identical_to_batch(saved_study, chunk_size):
    path, study = saved_study
    source = NpzStreamSource(path, chunk_size=chunk_size)
    result = StreamIngestor(source).run()
    assert_streams_equal_batch(result, study)


def test_npz_stream_parallel_workers_identical(saved_study):
    path, study = saved_study
    source = NpzStreamSource(path, chunk_size=1500)
    result = StreamIngestor(source, workers=3).run()
    assert_streams_equal_batch(result, study)


def test_split_policy_stream_identical(saved_study):
    path, _ = saved_study
    from repro.trace.dataset import Dataset

    dataset = Dataset.load(path)
    study = StudyEnergy(dataset, policy=TailPolicy.SPLIT_ADJACENT)
    source = NpzStreamSource(path, chunk_size=333)
    result = StreamIngestor(source, policy=TailPolicy.SPLIT_ADJACENT).run()
    assert_streams_equal_batch(result, study)


def test_csv_stream_identical_to_batch(tmp_path):
    dataset = generate_study(StudyConfig(n_users=2, duration_days=4, seed=5))
    pairs = []
    for trace in dataset:
        p = tmp_path / f"u{trace.user_id}_packets.csv"
        e = tmp_path / f"u{trace.user_id}_events.csv"
        write_packets_csv(p, trace.packets, dataset.registry)
        write_events_csv(e, trace.events, dataset.registry)
        pairs.append((p, e))
    study = StudyEnergy(dataset_from_csv(pairs))
    source = CsvStreamSource(pairs, chunk_size=189)
    result = StreamIngestor(source).run()
    assert_streams_equal_batch(result, study)
    # The prepass must reproduce the batch reader's registry exactly.
    batch_registry = dataset_from_csv(pairs).registry
    assert source.registry.to_json() == batch_registry.to_json()


def test_csv_source_rejects_unsorted(tmp_path):
    path = tmp_path / "p.csv"
    path.write_text(
        "timestamp,size,direction,app\n"
        "10.0,100,up,a.one\n"
        "5.0,100,down,a.two\n"
    )
    with pytest.raises(StreamError, match="not time-sorted"):
        CsvStreamSource([(path, None)])


def test_csv_source_unsorted_error_reports_file_line(tmp_path):
    """With quarantine dropping rows before the defect, the error must
    name the actual file line of the out-of-order row — a surviving-row
    ordinal would misdirect whoever is told to sort the file."""
    path = tmp_path / "p.csv"
    path.write_text(
        "timestamp,size,direction,app\n"  # line 1: header
        "1.0,garbage,up,a.one\n"  # line 2: quarantined
        "10.0,100,up,a.one\n"  # line 3
        "5.0,100,down,a.two\n"  # line 4: out of order
    )
    with pytest.raises(
        StreamError, match=r"p\.csv:4: packets not time-sorted"
    ):
        CsvStreamSource([(path, None)], quarantine_rows=True)


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def test_kill_and_resume_identical(saved_study, tmp_path):
    """Kill after a few chunks, resume with a different chunk size —
    still bit-identical, with no packet attributed twice."""
    path, study = saved_study
    ckpt = tmp_path / "run.ckpt.npz"
    killed = StreamIngestor(
        NpzStreamSource(path, chunk_size=64), checkpoint_path=ckpt
    ).run(max_chunks=3)
    assert killed is None
    assert ckpt.exists()
    result = StreamIngestor(
        NpzStreamSource(path, chunk_size=401), checkpoint_path=ckpt
    ).run(resume=True)
    assert_streams_equal_batch(result, study)


def test_resume_mid_tail(saved_study, tmp_path):
    """A checkpoint cut wherever max_chunks lands leaves a pending
    packet whose tail is still open; resuming must settle it exactly."""
    path, study = saved_study
    for cut in (1, 2, 5):
        ckpt = tmp_path / f"cut{cut}.ckpt.npz"
        killed = StreamIngestor(
            NpzStreamSource(path, chunk_size=33), checkpoint_path=ckpt
        ).run(max_chunks=cut)
        assert killed is None
        checkpoint = StreamCheckpoint.load(ckpt)
        running = [u for u in checkpoint.users if u.status == "running"]
        assert running, "expected a user mid-stream with an open tail"
        assert any(u.carry is not None for u in running)
        result = StreamIngestor(
            NpzStreamSource(path, chunk_size=33), checkpoint_path=ckpt
        ).run(resume=True)
        assert_streams_equal_batch(result, study)


def test_periodic_checkpoints_and_metrics(saved_study, tmp_path):
    from repro.metrics import RunMetrics

    path, study = saved_study
    ckpt = tmp_path / "periodic.ckpt.npz"
    metrics = RunMetrics()
    result = StreamIngestor(
        NpzStreamSource(path, chunk_size=256),
        checkpoint_path=ckpt,
        checkpoint_every=4,
        metrics=metrics,
    ).run()
    assert_streams_equal_batch(result, study)
    report = metrics.as_dict()
    assert report["counters"]["stream.checkpoints"] >= 2
    assert report["counters"]["stream.chunks"] > 0
    assert report["counters"]["stream.packets"] == sum(
        len(t.packets) for t in study.dataset
    )
    assert report["counters"]["stream.users"] == len(study.dataset)
    for stage in ("stream.read", "stream.attribute", "stream.checkpoint"):
        assert stage in report["stages"]
    assert "ingest_packets_per_s" in report["derived"]


def test_resume_rejects_mismatched_run(saved_study, tmp_path):
    path, _ = saved_study
    ckpt = tmp_path / "guard.ckpt.npz"
    StreamIngestor(
        NpzStreamSource(path, chunk_size=64), checkpoint_path=ckpt
    ).run(max_chunks=1)
    # Different policy.
    with pytest.raises(StreamError, match="policy"):
        StreamIngestor(
            NpzStreamSource(path, chunk_size=64),
            policy=TailPolicy.SPLIT_ADJACENT,
            checkpoint_path=ckpt,
        ).run(resume=True)
    # Different model.
    from repro.radio.umts import UMTS_DEFAULT

    with pytest.raises(StreamError, match="model"):
        StreamIngestor(
            NpzStreamSource(path, chunk_size=64),
            model=UMTS_DEFAULT,
            checkpoint_path=ckpt,
        ).run(resume=True)
    # Missing checkpoint path entirely.
    with pytest.raises(StreamError):
        StreamIngestor(NpzStreamSource(path, chunk_size=64)).run(resume=True)
    with pytest.raises(StreamError):
        StreamIngestor(NpzStreamSource(path, chunk_size=64)).run(max_chunks=1)


def test_resume_after_completion_returns_same_result(saved_study, tmp_path):
    path, study = saved_study
    ckpt = tmp_path / "final.ckpt.npz"
    StreamIngestor(
        NpzStreamSource(path, chunk_size=512), checkpoint_path=ckpt
    ).run()
    # Everything is done in the checkpoint; resume re-reads nothing.
    result = StreamIngestor(
        NpzStreamSource(path, chunk_size=512), checkpoint_path=ckpt
    ).run(resume=True)
    assert_streams_equal_batch(result, study)


# ----------------------------------------------------------------------
# Torn-write durability (repro.faults satellite work)
# ----------------------------------------------------------------------
def _tiny_checkpoint():
    from repro.stream import UserCheckpoint

    users = [
        UserCheckpoint(
            user_id=1,
            status="running",
            rows_consumed=7,
            energy_keys=np.array([3, 5], dtype=np.int64),
            energy_values=np.array([1.5, 2.5]),
        ),
        UserCheckpoint(user_id=2, status="done", idle_energy=4.25),
    ]
    return StreamCheckpoint(
        "sig:test", LTE_DEFAULT, TailPolicy.LAST_PACKET, users, chunks_done=3
    )


def _assert_checkpoints_equal(a, b):
    assert a.signature == b.signature
    assert a.model_repr == b.model_repr
    assert a.policy_value == b.policy_value
    assert a.chunks_done == b.chunks_done
    assert len(a.users) == len(b.users)
    for ua, ub in zip(a.users, b.users):
        assert (ua.user_id, ua.status, ua.rows_consumed) == (
            ub.user_id,
            ub.status,
            ub.rows_consumed,
        )
        assert ua.idle_energy == ub.idle_energy
        assert np.array_equal(ua.energy_keys, ub.energy_keys)
        assert np.array_equal(ua.energy_values, ub.energy_values)
        assert np.array_equal(ua.bytes_keys, ub.bytes_keys)
        assert np.array_equal(ua.bytes_values, ub.bytes_values)


def test_checkpoint_truncated_at_every_byte(tmp_path):
    """The durability property: a checkpoint file cut at ANY byte
    boundary either loads bit-identically or raises ``StreamError`` —
    never a stray exception, never silently wrong contents."""
    original = _tiny_checkpoint()
    path = tmp_path / "full.ckpt.npz"
    original.save(path)
    payload = path.read_bytes()
    target = tmp_path / "cut.ckpt.npz"
    outcomes = {"ok": 0, "rejected": 0}
    for cut in range(len(payload)):
        target.write_bytes(payload[:cut])
        try:
            loaded = StreamCheckpoint.load(target, fallback=False)
        except StreamError:
            outcomes["rejected"] += 1
        else:
            outcomes["ok"] += 1
            _assert_checkpoints_equal(loaded, original)
    # Every strict prefix must have been rejected (a zip's central
    # directory lives at the end, so no cut can stay parseable *and*
    # checksum-clean), and the intact file must load.
    assert outcomes == {"ok": 0, "rejected": len(payload)}
    target.write_bytes(payload)
    _assert_checkpoints_equal(
        StreamCheckpoint.load(target, fallback=False), original
    )


def test_torn_checkpoint_falls_back_to_previous(tmp_path):
    from repro.stream.checkpoint import previous_path

    path = tmp_path / "run.ckpt.npz"
    first = _tiny_checkpoint()
    first.save(path)
    second = _tiny_checkpoint()
    second.chunks_done = 9
    second.save(path)
    assert previous_path(path).exists()
    # Tear the current generation after the fact.
    payload = path.read_bytes()
    path.write_bytes(payload[: len(payload) // 2])
    with pytest.raises(StreamError):
        StreamCheckpoint.load(path, fallback=False)
    recovered = StreamCheckpoint.load(path)
    assert recovered.loaded_from_fallback
    _assert_checkpoints_equal(recovered, first)
    # An intact current generation never reports a fallback.
    second.save(path)
    assert not StreamCheckpoint.load(path).loaded_from_fallback
    # A checkpoint from before the checksum era is rejected, not trusted.
    legacy = {"header": np.frombuffer(b'{"users": []}', dtype=np.uint8)}
    np.savez(tmp_path / "legacy.npz", **legacy)
    with pytest.raises(StreamError, match="no content checksum"):
        StreamCheckpoint.load(tmp_path / "legacy.npz", fallback=False)


def test_missing_current_falls_back_to_previous(tmp_path):
    """A crash between save()'s two renames (rotation done, final
    rename not) leaves no current file but a known-good ``.prev``;
    load() must recover that generation rather than lose the run."""
    from repro.stream.checkpoint import previous_path

    path = tmp_path / "run.ckpt.npz"
    first = _tiny_checkpoint()
    first.save(path)
    second = _tiny_checkpoint()
    second.chunks_done = 9
    second.save(path)
    path.unlink()  # the crash window between the two renames
    recovered = StreamCheckpoint.load(path)
    assert recovered.loaded_from_fallback
    _assert_checkpoints_equal(recovered, first)
    # Opting out of fallback keeps the strict behaviour.
    with pytest.raises(StreamError, match="no checkpoint"):
        StreamCheckpoint.load(path, fallback=False)
    # With no generation at all there is nothing to recover.
    previous_path(path).unlink()
    with pytest.raises(StreamError, match="no checkpoint"):
        StreamCheckpoint.load(path)


# ----------------------------------------------------------------------
# Row quarantine (malformed CSV rows dropped, counted, sampled)
# ----------------------------------------------------------------------
def test_csv_row_quarantine_identity(tmp_path):
    """With ``quarantine_rows=True`` malformed rows are dropped and the
    streamed totals stay bit-identical to a batch run over the clean
    file; without it the prepass aborts with a typed error."""
    from repro.metrics import RunMetrics

    dataset = generate_study(StudyConfig(n_users=2, duration_days=2, seed=31))
    pairs = []
    for trace in dataset:
        p = tmp_path / f"u{trace.user_id}_packets.csv"
        e = tmp_path / f"u{trace.user_id}_events.csv"
        write_packets_csv(p, trace.packets, dataset.registry)
        write_events_csv(e, trace.events, dataset.registry)
        pairs.append((p, e))
    study = StudyEnergy(dataset_from_csv(pairs))
    clean_registry = dataset_from_csv(pairs).registry

    # Dirty one user's packet file: three rows that parse as CSV but
    # fail field validation (bad timestamp, bad size, bad direction).
    dirty = tmp_path / "dirty_packets.csv"
    lines = pairs[0][0].read_text().splitlines()
    lines.insert(2, "not-a-time,100,up,zz.bogus")
    lines.insert(30, f"{5.0},###corrupt###,down,zz.bogus")
    lines.append("9999999.0,10,sideways,zz.bogus")
    dirty.write_text("\n".join(lines) + "\n")
    dirty_pairs = [(dirty, pairs[0][1])] + pairs[1:]

    with pytest.raises(StreamError, match="malformed packet row"):
        CsvStreamSource(dirty_pairs, chunk_size=97)

    source = CsvStreamSource(dirty_pairs, chunk_size=97, quarantine_rows=True)
    assert source.quarantine.count == 3
    assert len(source.quarantine.samples) == 3
    assert any("not-a-time" in s for s in source.quarantine.samples)
    # Rows quarantined before the app field parses must not have
    # registered their app name.
    assert source.registry.to_json() == clean_registry.to_json()

    metrics = RunMetrics()
    result = StreamIngestor(source, metrics=metrics).run()
    assert_streams_equal_batch(result, study)
    assert metrics.counter("faults.rows_quarantined") == 3
    assert len(metrics.samples("faults.rows_quarantined")) == 3
    assert "faults.rows_quarantined" in metrics.as_dict()["samples"]
