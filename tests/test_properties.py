"""Cross-module property-based tests (hypothesis).

Complements ``test_radio_agreement.py``: invariants of interval
algebra, the kill policy, flow reconstruction, CSV round-trips, and
widget-timer snapping, over adversarial random inputs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.whatif import _killed_days, _max_bounded_run
from repro.trace.arrays import PacketArray
from repro.trace.dataset import AppRegistry
from repro.trace.flow import reconstruct_flows
from repro.trace.io_text import read_packets_csv, write_packets_csv
from repro.trace.packet import Direction, Packet
from repro.workload.generator import _snap_to_screen_on
from repro.workload.usermodel import intersect_with, merge_intervals


# ----------------------------------------------------------------------
# Interval algebra
# ----------------------------------------------------------------------
intervals_strategy = st.lists(
    st.tuples(st.floats(0, 1000), st.floats(0, 1000)).map(
        lambda ab: (min(ab), max(ab) + 0.001)
    ),
    max_size=30,
)


@given(intervals=intervals_strategy)
@settings(max_examples=100, deadline=None)
def test_merge_intervals_invariants(intervals):
    merged = merge_intervals(intervals)
    # Sorted, disjoint, positive-length.
    for i in range(len(merged)):
        assert merged[i, 1] > merged[i, 0]
        if i:
            assert merged[i, 0] > merged[i - 1, 1]
    # Total measure never exceeds the union bound and is at least the
    # longest input interval.
    if intervals:
        total = float((merged[:, 1] - merged[:, 0]).sum())
        longest = max(b - a for a, b in intervals)
        assert total >= longest - 1e-9
        assert total <= sum(b - a for a, b in intervals) + 1e-9


@given(
    intervals=intervals_strategy,
    window=st.tuples(st.floats(0, 1000), st.floats(0, 1000)),
)
@settings(max_examples=100, deadline=None)
def test_intersect_with_stays_inside(intervals, window):
    lo, hi = min(window), max(window)
    merged = merge_intervals(intervals)
    pieces = intersect_with(merged, (lo, hi))
    for start, end in pieces:
        assert lo <= start < end <= hi


# ----------------------------------------------------------------------
# Kill-policy day logic
# ----------------------------------------------------------------------
day_masks = st.integers(1, 60).flatmap(
    lambda n: st.tuples(
        st.lists(st.booleans(), min_size=n, max_size=n),
        st.lists(st.booleans(), min_size=n, max_size=n),
    )
)


@given(masks=day_masks, idle=st.integers(1, 6))
@settings(max_examples=150, deadline=None)
def test_killed_days_invariants(masks, idle):
    fg = np.array(masks[0], dtype=bool)
    bg = np.array(masks[1], dtype=bool)
    killed = _killed_days(fg, bg, idle)
    # Never kill on a foreground day.
    assert not np.any(killed & fg)
    # Stricter thresholds kill a superset of lenient ones.
    lenient = _killed_days(fg, bg, idle + 1)
    assert np.all(killed | ~lenient)  # lenient => killed


@given(masks=day_masks)
@settings(max_examples=100, deadline=None)
def test_max_bounded_run_bounds(masks):
    fg = np.array(masks[0], dtype=bool)
    bg_only = np.array(masks[1], dtype=bool) & ~fg
    run = _max_bounded_run(fg, bg_only)
    assert 0 <= run <= int(bg_only.sum())


# ----------------------------------------------------------------------
# Flow reconstruction
# ----------------------------------------------------------------------
@st.composite
def random_packets(draw):
    n = draw(st.integers(1, 80))
    times = np.cumsum(
        np.array(draw(st.lists(st.floats(0.0, 200.0), min_size=n, max_size=n)))
    )
    packets = [
        Packet(
            timestamp=float(times[i]),
            size=draw(st.integers(40, 5000)),
            direction=Direction(draw(st.integers(0, 1))),
            app=draw(st.integers(1, 4)),
            conn=draw(st.integers(1, 6)),
        )
        for i in range(n)
    ]
    return PacketArray.from_packets(packets)


@given(packets=random_packets(), timeout=st.floats(1.0, 500.0))
@settings(max_examples=100, deadline=None)
def test_flows_partition_packets(packets, timeout):
    table = reconstruct_flows(packets, gap_timeout=timeout)
    # Every packet belongs to exactly one flow; byte totals partition.
    assert np.all(packets.flows >= 1)
    assert sum(f.total_bytes for f in table) == packets.total_bytes
    assert sum(f.packets for f in table) == len(packets)
    for flow in table:
        mask = packets.flows == flow.flow_id
        assert np.all(packets.apps[mask] == flow.app)
        assert np.all(packets.conns[mask] == flow.conn)
        span = packets.timestamps[mask]
        assert float(span.min()) == flow.start
        assert float(span.max()) == flow.end


@given(packets=random_packets())
@settings(max_examples=50, deadline=None)
def test_larger_timeout_merges_flows(packets):
    tight = reconstruct_flows(packets, gap_timeout=5.0)
    loose = reconstruct_flows(packets, gap_timeout=500.0)
    assert len(loose) <= len(tight)


# ----------------------------------------------------------------------
# CSV round trip
# ----------------------------------------------------------------------
@given(packets=random_packets())
@settings(max_examples=40, deadline=None)
def test_packets_csv_roundtrip(packets, tmp_path_factory):
    from repro.trace.dataset import AppInfo

    registry = AppRegistry(
        AppInfo(app_id, f"app.{app_id}", "x")
        for app_id in sorted({int(a) for a in packets.apps})
    )
    path = tmp_path_factory.mktemp("csv") / "p.csv"
    write_packets_csv(path, packets, registry)
    restored = read_packets_csv(path, AppRegistry())
    assert len(restored) == len(packets)
    np.testing.assert_allclose(
        restored.timestamps, np.sort(packets.timestamps)
    )
    assert restored.total_bytes == packets.total_bytes


# ----------------------------------------------------------------------
# Widget timer snapping
# ----------------------------------------------------------------------
@given(
    times=st.lists(st.floats(0.0, 5000.0), max_size=40),
    intervals=intervals_strategy,
    min_sep=st.floats(0.0, 500.0),
)
@settings(max_examples=100, deadline=None)
def test_snap_to_screen_on_invariants(times, intervals, min_sep):
    fired = np.sort(np.array(times))
    screen = merge_intervals(intervals)
    snapped = _snap_to_screen_on(fired, screen, window_end=5000.0, min_separation=min_sep)
    # Sorted, unique, within window, separated.
    assert np.all(np.diff(snapped) > 0)
    assert np.all(snapped < 5000.0)
    if min_sep > 0 and len(snapped) > 1:
        assert np.all(np.diff(snapped) >= min_sep - 1e-9)
    # Every snapped time lies inside some screen-on interval (or exactly
    # at its start), and never before the firing that produced it.
    for t in snapped:
        inside = np.any((screen[:, 0] <= t) & (t < screen[:, 1])) or np.any(
            np.isclose(screen[:, 0], t)
        )
        assert inside
    # No refreshes at all when the screen never turns on.
    assert len(_snap_to_screen_on(fired, np.empty((0, 2)), 5000.0)) == 0
