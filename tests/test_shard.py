"""repro.shard: plan → execute → merge, bit-identical to unsharded.

The package's contract has three prongs, each tested here:

* **Determinism** — :func:`shard_of` is a salt-free stable hash, the
  manifest round-trips through its checksummed JSON byte-exactly, and
  torn or tampered manifests are refused with a typed
  :class:`~repro.errors.ShardError`.
* **Exactness** — for *any* partition of the users (random, uneven,
  with empty shards; a property test draws them from seeded rngs) the
  merged readout is ``array_equal`` to the unsharded streamed run and
  to the batch reference, and derives the **same**
  :class:`~repro.store.keys.StoreKey`/ETag as the unsharded
  checkpoint, so the store and ``repro serve`` are shard-oblivious.
* **Refusal totality** — a missing, mid-run, corrupt or
  foreign-plan shard checkpoint can never produce a merge: each path
  raises :class:`~repro.errors.ShardIncomplete` /
  :class:`~repro.errors.ShardError`, and a shard checkpoint refuses to
  become a readout on its own.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro import StudyConfig, StudyEnergy, generate_study
from repro.cli import EXIT_SHARD_INCOMPLETE, main
from repro.core.readout import readout_from_checkpoint
from repro.errors import ShardError, ShardIncomplete, StreamError
from repro.metrics import RunMetrics
from repro.shard import (
    ShardManifest,
    ShardSource,
    default_shard_dir,
    merge_shard_checkpoints,
    merge_to_checkpoint,
    merged_readout,
    plan_shards,
    run_all_shards,
    run_shard,
    shard_checkpoint_path,
    shard_header,
    shard_is_complete,
    shard_of,
    shard_signature,
)
from repro.store import store_key_for
from repro.stream import NpzStreamSource, StreamCheckpoint, StreamIngestor

from test_stream import assert_streams_equal_batch

CHUNK = 4096


# ----------------------------------------------------------------------
# Fixtures: one study on disk, its batch reference, and the unsharded
# streamed checkpoint every merge is compared against.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def study_npz(tmp_path_factory):
    dataset = generate_study(
        StudyConfig(n_users=5, duration_days=2.0, seed=41)
    )
    path = tmp_path_factory.mktemp("shard") / "study.npz"
    dataset.save(path)
    return path, StudyEnergy(dataset)


@pytest.fixture(scope="module")
def unsharded(study_npz, tmp_path_factory):
    """The unsharded streamed run's checkpoint and readout."""
    path, _ = study_npz
    ckpt = tmp_path_factory.mktemp("plain") / "plain.ckpt.npz"
    StreamIngestor(
        NpzStreamSource(path, chunk_size=CHUNK), checkpoint_path=ckpt
    ).run()
    return ckpt, readout_from_checkpoint(ckpt)


def make_manifest(path, n_shards, **kwargs):
    return ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK), n_shards, **kwargs
    )


def run_plan_serially(manifest, shard_dir, **kwargs):
    """Execute every shard in-process (no pool) for fast tests."""
    return [
        run_shard(manifest, index, shard_dir, **kwargs)
        for index in range(manifest.n_shards)
    ]


def assert_readouts_identical(got, want):
    """Every grouped total bit-identical between two readouts."""
    for name in ("energy_by_app", "energy_by_app_state", "energy_by_state"):
        a, b = getattr(got, name)(), getattr(want, name)()
        assert list(a) == list(b), f"{name} keys differ"
        assert np.array_equal(
            np.array(list(a.values())), np.array(list(b.values()))
        ), f"{name} values differ"
    assert got.total_energy == want.total_energy
    assert got.idle_energy == want.idle_energy
    assert got.bytes_by_app() == want.bytes_by_app()


# ----------------------------------------------------------------------
# Planner: stable hashing, exact partitions, manifest persistence
# ----------------------------------------------------------------------
def test_shard_of_is_deterministic_and_in_range():
    for uid in (0, 1, 7, 123456, 2**40):
        for n in (1, 2, 3, 16):
            k = shard_of(uid, n)
            assert 0 <= k < n
            assert k == shard_of(uid, n), "shard_of must be stable"


def test_shard_of_rejects_zero_shards():
    with pytest.raises(ShardError, match="n_shards"):
        shard_of(1, 0)


def test_plan_shards_is_an_exact_partition_in_parent_order():
    users = [9, 3, 17, 5, 21, 2, 44]
    shards = plan_shards(users, 3)
    assert sorted(u for shard in shards for u in shard) == sorted(users)
    order = {u: i for i, u in enumerate(users)}
    for shard in shards:
        assert shard == sorted(shard, key=order.__getitem__), (
            "each shard must keep parent-source user order"
        )


def test_manifest_roundtrip(study_npz, tmp_path):
    path, _ = study_npz
    manifest = make_manifest(path, 3)
    out = tmp_path / "plan.json"
    manifest.save(out)
    loaded = ShardManifest.load(out)
    assert loaded.digest() == manifest.digest()
    assert loaded.users == manifest.users
    assert loaded.shards == manifest.shards
    assert loaded.signature == manifest.signature
    assert loaded.model_repr == manifest.model_repr
    assert loaded.policy_value == manifest.policy_value
    assert loaded.cadence == manifest.cadence
    assert loaded.source_spec == manifest.source_spec


def test_torn_manifest_refused(study_npz, tmp_path):
    path, _ = study_npz
    out = tmp_path / "plan.json"
    make_manifest(path, 3).save(out)
    text = out.read_text()
    out.write_text(text[: len(text) // 2])
    with pytest.raises(ShardError, match="torn or corrupt"):
        ShardManifest.load(out)


def test_tampered_manifest_fails_digest(study_npz, tmp_path):
    path, _ = study_npz
    out = tmp_path / "plan.json"
    make_manifest(path, 2).save(out)
    document = json.loads(out.read_text())
    # Move one user between shards but keep the stale digest.
    document["shards"][0], document["shards"][1] = (
        document["shards"][0][1:],
        document["shards"][1] + document["shards"][0][:1],
    )
    out.write_text(json.dumps(document))
    with pytest.raises(ShardError, match="digest verification"):
        ShardManifest.load(out)


def test_not_a_manifest_refused(tmp_path):
    out = tmp_path / "plan.json"
    out.write_text(json.dumps({"kind": "something-else"}))
    with pytest.raises(ShardError, match="not a shard manifest"):
        ShardManifest.load(out)


def test_partition_validation_rejects_duplicates_and_gaps(study_npz):
    path, _ = study_npz
    source = NpzStreamSource(path, chunk_size=CHUNK)
    users = list(source.user_ids)
    with pytest.raises(ShardError, match="assigned to both"):
        ShardManifest.plan(source, 2, shards=[users, users[:1]])
    with pytest.raises(ShardError, match="not an exact partition"):
        ShardManifest.plan(source, 2, shards=[users[1:], []])


def test_model_drift_refused(study_npz):
    path, _ = study_npz
    manifest = make_manifest(path, 2)
    manifest.model_repr = "LteModel(tampered=True)"
    with pytest.raises(ShardError, match="no longer matches the plan"):
        manifest.model()


def test_shard_users_range_checked(study_npz):
    path, _ = study_npz
    manifest = make_manifest(path, 2)
    with pytest.raises(ShardError, match="out of range"):
        manifest.shard_users(2)


def test_shard_source_restricts_users_and_signs(study_npz):
    path, _ = study_npz
    parent = NpzStreamSource(path, chunk_size=CHUNK)
    manifest = make_manifest(path, 2)
    for index in range(2):
        shard = ShardSource(parent, manifest, index)
        assert shard.user_ids == manifest.shard_users(index)
        assert shard.signature() == shard_signature(manifest, index)
        assert shard.signature() != parent.signature()
        assert shard.registry is parent.registry
    assert shard_signature(manifest, 0) != shard_signature(manifest, 1)


def test_shard_source_refuses_mismatched_parent(study_npz, tmp_path):
    path, _ = study_npz
    manifest = make_manifest(path, 2)
    other = generate_study(StudyConfig(n_users=2, duration_days=1.0, seed=7))
    other_path = tmp_path / "other.npz"
    other.save(other_path)
    with pytest.raises(ShardError, match="does not match the shard manifest"):
        ShardSource(NpzStreamSource(other_path), manifest, 0)


# ----------------------------------------------------------------------
# Property test: any partition merges bit-identically
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_random_partitions_merge_bit_identical(
    seed, study_npz, unsharded, tmp_path
):
    """Seeded random partitions — uneven, singleton and empty shards
    included — all merge to totals ``array_equal`` with the unsharded
    run and the batch reference."""
    path, study = study_npz
    rng = random.Random(seed)
    source = NpzStreamSource(path, chunk_size=CHUNK)
    users = list(source.user_ids)
    # One more shard than users guarantees at least one empty shard.
    n_shards = rng.randint(1, len(users) + 1)
    shards = [[] for _ in range(n_shards)]
    for uid in users:
        shards[rng.randrange(n_shards)].append(uid)
    manifest = ShardManifest.plan(source, n_shards, shards=shards)
    shard_dir = tmp_path / "shards"
    run_plan_serially(manifest, shard_dir, source=source)
    merged = merged_readout(manifest, shard_dir)
    _, plain = unsharded
    assert_readouts_identical(merged, plain)
    assert_streams_equal_batch(merged, study)


def test_hash_planned_shards_merge_bit_identical(
    study_npz, unsharded, tmp_path
):
    """The default shard_of partition, end to end via run_all_shards."""
    path, study = study_npz
    manifest = make_manifest(path, 3)
    shard_dir = tmp_path / "shards"
    metrics = RunMetrics()
    reports = run_all_shards(
        manifest, shard_dir, shard_workers=1, metrics=metrics
    )
    assert len(reports) == 3
    assert all(report["complete"] for report in reports)
    assert metrics.counter("shard.completed") == 3
    assert metrics.counter("stream.packets") > 0, (
        "worker metrics must be absorbed into the parent RunMetrics"
    )
    merged = merged_readout(manifest, shard_dir)
    _, plain = unsharded
    assert_readouts_identical(merged, plain)
    assert_streams_equal_batch(merged, study)


def test_single_shard_plan_equals_unsharded(study_npz, unsharded, tmp_path):
    path, _ = study_npz
    manifest = make_manifest(path, 1)
    shard_dir = tmp_path / "shards"
    run_plan_serially(manifest, shard_dir)
    _, plain = unsharded
    assert_readouts_identical(merged_readout(manifest, shard_dir), plain)


# ----------------------------------------------------------------------
# Store identity: the merged checkpoint keys exactly like the
# unsharded one, so the store and `repro serve` are shard-oblivious.
# ----------------------------------------------------------------------
def test_merged_checkpoint_derives_the_unsharded_store_key(
    study_npz, unsharded, tmp_path
):
    path, _ = study_npz
    manifest = make_manifest(path, 2)
    shard_dir = tmp_path / "shards"
    run_plan_serially(manifest, shard_dir)
    out = tmp_path / "merged.ckpt.npz"
    merge_to_checkpoint(manifest, shard_dir, out)
    merged = readout_from_checkpoint(out)
    plain_ckpt, plain = unsharded
    for analysis in ("fig3", "table1", "headlines"):
        merged_key = store_key_for(merged, analysis)
        plain_key = store_key_for(plain, analysis)
        assert merged_key == plain_key
        assert merged_key.etag() == plain_key.etag()


def test_shard_checkpoint_refuses_to_become_a_readout(study_npz, tmp_path):
    path, _ = study_npz
    manifest = make_manifest(path, 2)
    shard_dir = tmp_path / "shards"
    run_shard(manifest, 0, shard_dir)
    with pytest.raises(StreamError, match="repro shard merge"):
        readout_from_checkpoint(shard_checkpoint_path(shard_dir, 0))


# ----------------------------------------------------------------------
# Idempotency and resume
# ----------------------------------------------------------------------
def test_rerun_skips_complete_shards(study_npz, tmp_path):
    path, _ = study_npz
    manifest = make_manifest(path, 2)
    shard_dir = tmp_path / "shards"
    run_plan_serially(manifest, shard_dir)
    metrics = RunMetrics()
    reports = run_plan_serially(manifest, shard_dir, metrics=metrics)
    assert all(r["skipped"] for r in reports)
    assert metrics.counter("shard.skipped") == 2
    assert all(
        shard_is_complete(manifest, shard_dir, k)
        for k in range(manifest.n_shards)
    )


def test_killed_shard_resumes_without_recomputation(
    study_npz, unsharded, tmp_path
):
    """A shard stopped mid-run (bounded slice) leaves a partial
    checkpoint; the rerun resumes it and the merge is still exact."""
    path, _ = study_npz
    manifest = make_manifest(path, 2)
    shard_dir = tmp_path / "shards"
    report = run_shard(
        manifest, 0, shard_dir, checkpoint_every=1, max_chunks=1
    )
    assert not report["complete"]
    assert not shard_is_complete(manifest, shard_dir, 0)
    with pytest.raises(ShardIncomplete):
        merge_shard_checkpoints(manifest, shard_dir)
    run_plan_serially(manifest, shard_dir)
    _, plain = unsharded
    assert_readouts_identical(merged_readout(manifest, shard_dir), plain)


def test_stale_checkpoint_from_another_plan_refused(study_npz, tmp_path):
    """A checkpoint written under a different partition of the same
    study must not be silently reused or merged."""
    path, _ = study_npz
    source = NpzStreamSource(path, chunk_size=CHUNK)
    users = list(source.user_ids)
    manifest_a = ShardManifest.plan(
        source, 2, shards=[users[:2], users[2:]]
    )
    manifest_b = ShardManifest.plan(
        source, 2, shards=[users[:3], users[3:]]
    )
    shard_dir = tmp_path / "shards"
    run_plan_serially(manifest_a, shard_dir, source=source)
    with pytest.raises(ShardError, match="different plan or shard"):
        shard_is_complete(manifest_b, shard_dir, 0)
    with pytest.raises(ShardError, match="different plan or shard"):
        merge_shard_checkpoints(manifest_b, shard_dir)


# ----------------------------------------------------------------------
# Merge refusals
# ----------------------------------------------------------------------
def test_merge_missing_shard_raises_shard_incomplete(study_npz, tmp_path):
    path, _ = study_npz
    manifest = make_manifest(path, 3)
    shard_dir = tmp_path / "shards"
    run_shard(manifest, 0, shard_dir)
    run_shard(manifest, 2, shard_dir)
    with pytest.raises(ShardIncomplete) as excinfo:
        merge_shard_checkpoints(
            manifest, shard_dir, manifest_path="plan.json"
        )
    assert excinfo.value.indices == [1]
    assert excinfo.value.manifest_path == "plan.json"
    assert "repro shard run plan.json" in str(excinfo.value)


def test_merge_policy_mismatch_refused(study_npz, tmp_path):
    path, _ = study_npz
    manifest = make_manifest(path, 2)
    shard_dir = tmp_path / "shards"
    run_plan_serially(manifest, shard_dir)
    manifest.policy_value = "whole_burst"
    with pytest.raises(ShardError, match="different plan or shard"):
        merge_shard_checkpoints(manifest, shard_dir)


def test_empty_shard_merges_cleanly(study_npz, unsharded, tmp_path):
    path, _ = study_npz
    source = NpzStreamSource(path, chunk_size=CHUNK)
    users = list(source.user_ids)
    manifest = ShardManifest.plan(source, 3, shards=[users, [], []])
    shard_dir = tmp_path / "shards"
    reports = run_plan_serially(manifest, shard_dir, source=source)
    assert [r["users"] for r in reports] == [len(users), 0, 0]
    _, plain = unsharded
    assert_readouts_identical(merged_readout(manifest, shard_dir), plain)


def test_run_all_shards_range_checks_indices(study_npz, tmp_path):
    path, _ = study_npz
    manifest = make_manifest(path, 2)
    with pytest.raises(ShardError, match="out of range"):
        run_all_shards(manifest, tmp_path / "shards", indices=[5])


def test_shard_incomplete_pickles():
    """ShardIncomplete crosses process boundaries (TaskPool workers)."""
    import pickle

    exc = ShardIncomplete("plan.json", [1, 3], "shard 1: no checkpoint")
    clone = pickle.loads(pickle.dumps(exc))
    assert clone.manifest_path == "plan.json"
    assert clone.indices == [1, 3]
    assert str(clone) == str(exc)


# ----------------------------------------------------------------------
# CLI: repro shard plan|run|merge and repro ingest --shards
# ----------------------------------------------------------------------
def test_cli_plan_run_merge_roundtrip(
    study_npz, unsharded, tmp_path, capsys
):
    path, _ = study_npz
    plan = tmp_path / "plan.json"
    merged = tmp_path / "merged.ckpt.npz"
    assert main(
        ["shard", "plan", "--dataset", str(path), "--shards", "3",
         "--chunk-size", str(CHUNK), "--out", str(plan)]
    ) == 0
    assert main(
        ["shard", "run", str(plan), "--shard-workers", "1", "--quiet"]
    ) == 0
    assert main(
        ["shard", "merge", str(plan), "--out", str(merged)]
    ) == 0
    assert default_shard_dir(plan).is_dir()
    _, plain = unsharded
    assert_readouts_identical(readout_from_checkpoint(merged), plain)
    capsys.readouterr()
    # The rendered figure is byte-identical from either checkpoint.
    plain_ckpt, _ = unsharded
    assert main(["figure", "3", "--from-checkpoint", str(merged)]) == 0
    from_merged = capsys.readouterr().out
    assert main(["figure", "3", "--from-checkpoint", str(plain_ckpt)]) == 0
    from_plain = capsys.readouterr().out
    assert from_merged == from_plain


def test_cli_merge_exit_code_on_missing_shard(study_npz, tmp_path, capsys):
    path, _ = study_npz
    plan = tmp_path / "plan.json"
    assert main(
        ["shard", "plan", "--dataset", str(path), "--shards", "3",
         "--chunk-size", str(CHUNK), "--out", str(plan)]
    ) == 0
    assert main(
        ["shard", "run", str(plan), "--shard", "0", "--shard-workers", "1",
         "--quiet"]
    ) == 0
    code = main(
        ["shard", "merge", str(plan), "--out", str(tmp_path / "m.npz")]
    )
    assert code == EXIT_SHARD_INCOMPLETE == 5
    err = capsys.readouterr().err
    assert "not mergeable" in err
    assert "repro shard run" in err


def test_cli_ingest_shards_one_shot(study_npz, unsharded, tmp_path):
    path, _ = study_npz
    ckpt = tmp_path / "oneshot.ckpt.npz"
    assert main(
        ["ingest", "--dataset", str(path), "--shards", "2",
         "--chunk-size", str(CHUNK), "--workers", "1",
         "--checkpoint", str(ckpt)]
    ) == 0
    _, plain = unsharded
    assert_readouts_identical(readout_from_checkpoint(ckpt), plain)
    # The plan is persisted next to the checkpoint and reruns reuse it.
    plan = ckpt.with_name(ckpt.name + ".plan.json")
    assert plan.exists()
    digest = ShardManifest.load(plan).digest()
    assert main(
        ["ingest", "--dataset", str(path), "--shards", "2",
         "--chunk-size", str(CHUNK), "--workers", "1",
         "--checkpoint", str(ckpt)]
    ) == 0
    assert ShardManifest.load(plan).digest() == digest
