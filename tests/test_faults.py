"""repro.faults + hardened TaskPool: plans, env hook, retry/timeout/
quarantine, crash recovery, close() safety.

The deterministic machinery itself is under test here (plans fire where
they say they fire, the env hook reaches pool workers, the pool's
failure policy does what its docstring promises); the end-to-end chaos
runs over the streaming pipeline live in ``test_chaos.py``.
"""

from __future__ import annotations

import os
import pickle
import time

import pytest

from repro import faults
from repro.errors import FaultInjected, TaskFailure
from repro.faults import FaultPlan, FaultSpec
from repro.metrics import RunMetrics
from repro.parallel import TaskPool, map_tasks


@pytest.fixture(autouse=True)
def disarm():
    """No test leaks an armed plan into the next."""
    faults.uninstall()
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# Picklable tasks (pool workers import this module under spawn)
# ----------------------------------------------------------------------
def _double(x):
    return x * 2


class _PoisonTask:
    """Fails every time for one item, succeeds for the rest."""

    def __init__(self, poison):
        self.poison = poison

    def __call__(self, x):
        if x == self.poison:
            raise ValueError(f"poison item {x}")
        return x * 10


class _FlakyOnceTask:
    """Fails the first attempt per item, succeeds after (marker files)."""

    def __init__(self, root):
        self.root = str(root)

    def __call__(self, x):
        marker = os.path.join(self.root, f"seen_{x}")
        if not os.path.exists(marker):
            with open(marker, "w") as handle:
                handle.write("1")
            raise ValueError(f"transient failure on {x}")
        return x + 100


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan
# ----------------------------------------------------------------------
def test_spec_validates_site_and_action():
    with pytest.raises(ValueError, match="unknown fault site"):
        FaultSpec("no.such.site", "crash")
    with pytest.raises(ValueError, match="not valid at site"):
        FaultSpec("io.packet_row", "crash")
    spec = FaultSpec("parallel.worker", "hang", hit=None, arg=2.0)
    assert spec.matches(1) and spec.matches(999)
    assert FaultSpec("parallel.worker", "raise", hit=3).matches(3)
    assert not FaultSpec("parallel.worker", "raise", hit=3).matches(2)


def test_plan_json_roundtrip_and_random_determinism():
    plan = FaultPlan.random(seed=7)
    again = FaultPlan.random(seed=7)
    assert plan.to_json() == again.to_json()
    restored = FaultPlan.from_json(plan.to_json())
    assert restored.specs == plan.specs
    assert restored.seed == 7
    # Sixty-four seeds must not all collapse onto one plan.
    assert len({FaultPlan.random(s).to_json() for s in range(64)}) > 8


def test_install_sets_and_uninstall_clears_env_hook():
    plan = FaultPlan([FaultSpec("attribute.task", "raise", hit=2)])
    faults.install(plan)
    assert os.environ.get(faults.ENV_VAR) == plan.to_json()
    assert faults.active_plan() is plan
    faults.uninstall()
    assert faults.ENV_VAR not in os.environ
    assert faults.active_plan() is None


def test_fresh_process_state_loads_plan_from_env():
    """What a spawn worker does: no install() ran in-process, the plan
    comes off the environment on the first fire."""
    plan = FaultPlan([FaultSpec("attribute.task", "raise", hit=1)])
    os.environ[faults.ENV_VAR] = plan.to_json()
    try:
        # uninstall() in the fixture reset _ENV_CHECKED, so this is a
        # fresh lookup, as in a newly spawned process.
        with pytest.raises(FaultInjected):
            faults.fire("attribute.task")
    finally:
        faults.uninstall()


def test_fire_is_noop_without_plan_and_counts_when_armed():
    assert faults.fire("parallel.worker") is None
    assert faults.fire_count("parallel.worker") == 0
    with faults.installed(FaultPlan([FaultSpec("attribute.task", "raise", hit=3)])):
        assert faults.fire("attribute.task") is None
        assert faults.fire("attribute.task") is None
        assert faults.fire_count("attribute.task") == 2
        with pytest.raises(FaultInjected, match="hit 3"):
            faults.fire("attribute.task")
        # Past its hit, the spec never strikes again.
        assert faults.fire("attribute.task") is None


def test_corrupt_row_and_truncated_stream_helpers():
    row = {"timestamp": "1.0", "size": "100", "direction": "up", "app": "a"}
    bad = faults.corrupt_row(row)
    assert bad is not row and row["size"] == "100"
    with pytest.raises(ValueError):
        int(bad["size"])
    import io

    stream = faults.TruncatedStream(io.BytesIO(b"x" * 100), budget=7)
    assert stream.read(5) == b"xxxxx"
    assert stream.read(100) == b"xx"
    assert stream.read(10) == b""


# ----------------------------------------------------------------------
# TaskFailure
# ----------------------------------------------------------------------
def test_task_failure_pickles_with_fields():
    failure = TaskFailure(4, "('u', 1)", 3, "crash", "worker died")
    clone = pickle.loads(pickle.dumps(failure))
    assert (clone.index, clone.item_repr, clone.attempts) == (4, "('u', 1)", 3)
    assert (clone.kind, clone.cause) == ("crash", "worker died")
    assert "after 3 attempt(s) [crash]" in str(clone)


# ----------------------------------------------------------------------
# Hardened TaskPool: retry / quarantine / timeout / crash
# ----------------------------------------------------------------------
def test_serial_map_retries_then_succeeds(tmp_path):
    metrics = RunMetrics()
    task = _FlakyOnceTask(tmp_path)
    with TaskPool(task, workers=1, retries=1, backoff=0.001, metrics=metrics) as pool:
        assert pool.map([1, 2, 3]) == [101, 102, 103]
    assert metrics.counter("faults.task_retries") == 3


def test_serial_map_without_retries_raises_original(tmp_path):
    with TaskPool(_FlakyOnceTask(tmp_path), workers=1) as pool:
        with pytest.raises(ValueError, match="transient failure"):
            pool.map([1, 2])


def test_pool_map_retries_flaky_task(tmp_path):
    with TaskPool(
        _FlakyOnceTask(tmp_path), workers=2, retries=1, backoff=0.001
    ) as pool:
        assert pool.map([1, 2, 3, 4]) == [101, 102, 103, 104]


def test_poison_task_quarantine_serial_and_pool(tmp_path):
    for workers in (1, 2):
        metrics = RunMetrics()
        with TaskPool(
            _PoisonTask(poison=2),
            workers=workers,
            retries=1,
            backoff=0.001,
            quarantine=True,
            metrics=metrics,
        ) as pool:
            results = pool.map([1, 2, 3, 4])
            assert results[0] == 10 and results[2] == 30 and results[3] == 40
            failure = results[1]
            assert isinstance(failure, TaskFailure)
            assert failure.index == 1 and failure.kind == "error"
            assert failure.attempts == 2
            assert "poison item 2" in failure.cause
            assert pool.failures == [failure]
        assert metrics.counter("faults.tasks_quarantined") == 1


def test_poison_task_without_quarantine_raises_original():
    with TaskPool(_PoisonTask(poison=3), workers=2) as pool:
        with pytest.raises(ValueError, match="poison item 3"):
            pool.map([1, 2, 3, 4])


def test_worker_segfault_raises_task_failure_promptly():
    """Satellite regression: a fork worker dying mid-chunk used to hang
    ``pool.map`` forever; it must now surface within the timeout as a
    structured TaskFailure."""
    plan = FaultPlan([FaultSpec("parallel.worker", "crash", hit=1)])
    metrics = RunMetrics()
    started = time.monotonic()
    with faults.installed(plan):
        with TaskPool(_double, workers=2, metrics=metrics) as pool:
            with pytest.raises(TaskFailure) as excinfo:
                pool.map([1, 2, 3, 4])
    assert time.monotonic() - started < 30.0
    assert excinfo.value.kind == "crash"
    assert metrics.counter("faults.worker_deaths") >= 1


def test_pool_rebuilds_after_crash_and_completes_with_retries():
    """Crash on each worker's second task: with retries the blamed item
    is recomputed on a fresh pool and the whole map still completes."""
    plan = FaultPlan([FaultSpec("parallel.worker", "crash", hit=2)])
    metrics = RunMetrics()
    with faults.installed(plan):
        # Wide retry budget: which item gets blamed per crash round is
        # scheduling-dependent, and sealing needs retries+1 blames on
        # the *same* item.
        with TaskPool(
            _double, workers=2, retries=5, backoff=0.001, metrics=metrics
        ) as pool:
            assert pool.map(list(range(8))) == [x * 2 for x in range(8)]
    assert metrics.counter("faults.worker_deaths") >= 1
    assert metrics.counter("faults.pool_rebuilds") >= 1
    assert metrics.counter("faults.task_retries") >= 1


def test_pool_usable_for_clean_map_after_crash_round():
    plan = FaultPlan([FaultSpec("parallel.worker", "crash", hit=1)])
    with TaskPool(_double, workers=2, quarantine=True) as pool:
        with faults.installed(plan):
            first = pool.map([1, 2, 3])
        assert any(isinstance(r, TaskFailure) for r in first)
        # Disarmed + rebuilt: the same pool object serves clean rounds.
        assert pool.map([5, 6, 7]) == [10, 12, 14]


def test_hung_task_times_out_and_fails():
    plan = FaultPlan([FaultSpec("parallel.worker", "hang", hit=1, arg=60.0)])
    metrics = RunMetrics()
    started = time.monotonic()
    with faults.installed(plan):
        with TaskPool(
            _double, workers=2, task_timeout=0.75, metrics=metrics
        ) as pool:
            with pytest.raises(TaskFailure) as excinfo:
                pool.map([1, 2, 3, 4])
    assert time.monotonic() - started < 20.0
    assert excinfo.value.kind == "timeout"
    assert metrics.counter("faults.task_timeouts") >= 1


def test_single_item_round_still_enforces_timeout():
    """Review regression: a one-item round must go through the pool
    whenever workers allow one — a streaming run's final rounds have a
    single active user, and a hang there used to bypass the timeout by
    taking the serial in-process path."""
    plan = FaultPlan([FaultSpec("parallel.worker", "hang", hit=1, arg=60.0)])
    started = time.monotonic()
    with faults.installed(plan):
        with TaskPool(_double, workers=2, task_timeout=0.75) as pool:
            with pytest.raises(TaskFailure) as excinfo:
                pool.map([7])
    assert time.monotonic() - started < 20.0
    assert excinfo.value.kind == "timeout"


def test_map_tasks_single_item_still_enforces_timeout():
    """Same carve-out for the one-shot helper: requesting a timeout
    disables the small-round serial shortcut."""
    plan = FaultPlan([FaultSpec("parallel.worker", "hang", hit=1, arg=60.0)])
    started = time.monotonic()
    with faults.installed(plan):
        with pytest.raises(TaskFailure) as excinfo:
            map_tasks(_double, [7], workers=2, task_timeout=0.75)
    assert time.monotonic() - started < 20.0
    assert excinfo.value.kind == "timeout"


def test_env_hook_reaches_spawn_workers():
    """The plan must cross into workers that share no memory with this
    process — JSON via the environment, read on first fire."""
    plan = FaultPlan([FaultSpec("parallel.worker", "raise", hit=None)])
    with faults.installed(plan):
        with TaskPool(
            _double, workers=2, quarantine=True, start_method="spawn"
        ) as pool:
            results = pool.map([1, 2, 3])
    assert all(isinstance(r, TaskFailure) for r in results)
    assert all("FaultInjected" in r.cause for r in results)


def test_injected_raise_recovers_with_retries():
    """hit=1 per process: each worker throws once, retries land on a
    worker that already burned its fault — identical results, no abort."""
    plan = FaultPlan([FaultSpec("parallel.worker", "raise", hit=1)])
    with faults.installed(plan):
        with TaskPool(_double, workers=2, retries=3, backoff=0.001) as pool:
            assert pool.map(list(range(6))) == [x * 2 for x in range(6)]


# ----------------------------------------------------------------------
# close() safety (satellite: leak on failed __init__, __del__)
# ----------------------------------------------------------------------
def test_init_failure_leaves_close_and_del_safe():
    with pytest.raises(ValueError, match="workers must be"):
        TaskPool(_double, workers=-2)
    # A half-built instance (resolve_workers raised before _exec was
    # assigned in a subclass scenario) must still close cleanly.
    husk = TaskPool.__new__(TaskPool)
    husk.close()
    husk.__del__()


def test_invalid_policy_arguments_rejected_without_leak():
    with pytest.raises(ValueError, match="retries"):
        TaskPool(_double, workers=2, retries=-1)
    with pytest.raises(ValueError, match="task_timeout"):
        TaskPool(_double, workers=2, task_timeout=0.0)


def test_close_is_idempotent_and_del_safe_after_use():
    pool = TaskPool(_double, workers=2)
    assert pool.map([1, 2, 3]) == [2, 4, 6]
    assert pool._exec is not None
    pool.close()
    assert pool._exec is None
    pool.close()
    pool.__del__()
    # And a never-started pool closes fine too.
    TaskPool(_double, workers=2).close()


# ----------------------------------------------------------------------
# map_tasks carries the same policy
# ----------------------------------------------------------------------
def test_map_tasks_policy_passthrough(tmp_path):
    metrics = RunMetrics()
    results = map_tasks(
        _FlakyOnceTask(tmp_path),
        [1, 2, 3, 4],
        workers=2,
        retries=1,
        metrics=metrics,
    )
    assert results == [101, 102, 103, 104]
    assert metrics.counter("faults.task_retries") >= 1
    quarantined = map_tasks(
        _PoisonTask(poison=9), [8, 9], workers=2, quarantine=True
    )
    assert quarantined[0] == 80
    assert isinstance(quarantined[1], TaskFailure)


def test_map_tasks_serial_and_parallel_agree():
    items = list(range(10))
    assert (
        map_tasks(_double, items, workers=1)
        == map_tasks(_double, items, workers=3)
        == [x * 2 for x in items]
    )
