"""Study-wide energy accounting."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.radio.umts import UMTS_DEFAULT
from repro.core.accounting import StudyEnergy
from repro.units import DAY


def test_conservation_per_user(small_study):
    """The paper's invariant: device total = sum over apps + idle."""
    for user_id in small_study.user_ids:
        result = small_study.user_result(user_id)
        by_app = result.energy_by_app()
        assert sum(by_app.values()) == pytest.approx(result.attributed_energy)


def test_totals_aggregate_users(small_study):
    assert small_study.total_energy == pytest.approx(
        sum(
            small_study.user_result(u).total_energy
            for u in small_study.user_ids
        )
    )
    assert small_study.total_energy == pytest.approx(
        small_study.attributed_energy + small_study.idle_energy
    )


def test_energy_by_app_matches_user_sums(small_study):
    by_app = small_study.energy_by_app()
    assert sum(by_app.values()) == pytest.approx(small_study.attributed_energy)


def test_energy_by_state_sums(small_study):
    assert sum(small_study.energy_by_state().values()) == pytest.approx(
        small_study.attributed_energy
    )


def test_bytes_by_app(small_study, small_dataset):
    by_app = small_study.bytes_by_app()
    assert sum(by_app.values()) == small_dataset.total_bytes


def test_unknown_user_rejected(small_study):
    with pytest.raises(AnalysisError):
        small_study.user_result(999)


def test_daily_energy_partitions_user_total(small_study, small_config):
    user_id = small_study.user_ids[0]
    daily = small_study.daily_energy(user_id)
    assert len(daily) == int(small_config.duration_days)
    assert daily.sum() == pytest.approx(
        small_study.user_result(user_id).attributed_energy
    )


def test_daily_energy_per_app(small_study):
    user_id = small_study.user_ids[0]
    trace_apps = small_study.dataset.user(user_id).app_ids()
    total = sum(
        small_study.daily_energy(user_id, app_id).sum() for app_id in trace_apps
    )
    assert total == pytest.approx(
        small_study.user_result(user_id).attributed_energy
    )


def test_app_days_with_traffic(small_study):
    user_id = small_study.user_ids[0]
    app_id = small_study.dataset.user(user_id).app_ids()[0]
    fg, bg = small_study.app_days_with_traffic(user_id, app_id)
    assert fg.dtype == bool and bg.dtype == bool
    assert len(fg) == len(bg)
    assert (fg | bg).any()


def test_users_with_app(small_study):
    app_id = small_study.app_id("com.sec.spp.push")  # pre-installed
    assert small_study.users_with_app(app_id) == small_study.user_ids


def test_alternate_radio_model(small_dataset):
    umts = StudyEnergy(small_dataset, model=UMTS_DEFAULT)
    lte = StudyEnergy(small_dataset)
    # LTE's high-power tail makes it costlier than 3G for the chatty
    # traffic mix (Huang et al. MobiSys'12's LTE-vs-3G finding), and
    # conservation holds under any model.
    assert lte.attributed_energy > umts.attributed_energy
    assert sum(umts.energy_by_app().values()) == pytest.approx(
        umts.attributed_energy
    )
