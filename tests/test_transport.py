"""repro.shard.transport: the local/remote executor seam.

Three contracts, each tested here:

* **Protocol** — :class:`LocalTransport` and :class:`HttpTransport`
  both satisfy the runtime-checkable :class:`ShardTransport` protocol,
  and ``LocalTransport.dispatch`` is bit-identical to calling
  :func:`run_all_shards` directly (same checkpoint bytes, same merged
  checkpoint).
* **Remote exactness** — a property test sweeps random shard counts,
  worker-pool sizes and kill points (dead URLs in the pool, a live
  worker shut down mid-run, dropped dispatches): however the shards
  were placed, the merged readout is ``array_equal`` to the unsharded
  run and derives the same :class:`~repro.store.keys.StoreKey`/ETag —
  and a real worker *process* killed mid-shard (``transport.worker``
  crash via the env hook) is reassigned with the same exactness.
* **Refusal totality** — a worker refuses a tampered or foreign
  manifest with a 400 before a byte of work; a pool that cannot place
  every shard raises :class:`~repro.errors.TransportError`, which the
  CLI maps to exit 8 (:data:`~repro.cli.EXIT_TRANSPORT_FAILED`).
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys
import threading
import urllib.error
import urllib.request
from contextlib import contextmanager

import pytest

from repro import StudyConfig, generate_study, faults
from repro.cli import EXIT_TRANSPORT_FAILED, main
from repro.core.readout import readout_from_checkpoint
from repro.errors import TransportError
from repro.faults import FaultPlan, FaultSpec
from repro.metrics import RunMetrics
from repro.shard import (
    HttpTransport,
    LocalTransport,
    ShardManifest,
    ShardTransport,
    make_transport,
    make_worker_server,
    merge_to_checkpoint,
    parse_worker_spec,
    run_all_shards,
    shard_checkpoint_path,
)
from repro.store import store_key_for
from repro.stream import NpzStreamSource, StreamIngestor

from test_shard import assert_readouts_identical

CHUNK = 4096

#: A closed port: connecting fails instantly, which is what a crashed
#: worker looks like to the coordinator.
DEAD_URL = "http://127.0.0.1:9"


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def study_npz(tmp_path_factory):
    dataset = generate_study(
        StudyConfig(n_users=4, duration_days=2.0, seed=47)
    )
    path = tmp_path_factory.mktemp("transport") / "study.npz"
    dataset.save(path)
    return path


@pytest.fixture(scope="module")
def unsharded(study_npz, tmp_path_factory):
    """The unsharded streamed run every remote merge is compared to."""
    ckpt = tmp_path_factory.mktemp("plain") / "plain.ckpt.npz"
    StreamIngestor(
        NpzStreamSource(study_npz, chunk_size=CHUNK), checkpoint_path=ckpt
    ).run()
    return ckpt, readout_from_checkpoint(ckpt)


def make_manifest(path, n_shards):
    return ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK), n_shards
    )


@contextmanager
def worker_pool(root, count=2, quiet=True):
    """``count`` in-process worker servers on ephemeral ports.

    Yields ``(urls, servers)``; servers are shut down on exit. Each
    worker gets its own workdir, like separate hosts would have.
    """
    servers = []
    threads = []
    for i in range(count):
        server = make_worker_server(root / f"worker{i}", quiet=quiet)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        servers.append(server)
        threads.append(thread)
    urls = [
        f"http://{host}:{port}"
        for host, port in (s.server_address[:2] for s in servers)
    ]
    try:
        yield urls, servers
    finally:
        for server in servers:
            server.shutdown()
            server.server_close()
        for thread in threads:
            thread.join(timeout=5.0)


def assert_same_as_unsharded(manifest, shard_dir, tmp_path, unsharded):
    """Merged checkpoint == unsharded: readout, provenance, keys, ETags."""
    out = tmp_path / "merged.ckpt.npz"
    merge_to_checkpoint(manifest, shard_dir, out)
    merged = readout_from_checkpoint(out)
    plain_ckpt, plain = unsharded
    assert_readouts_identical(merged, plain)
    assert merged.provenance == plain.provenance
    for analysis in ("fig3", "table1", "headlines"):
        merged_key = store_key_for(merged, analysis)
        plain_key = store_key_for(plain, analysis)
        assert merged_key == plain_key
        assert merged_key.etag() == plain_key.etag()
    return out


# ----------------------------------------------------------------------
# Protocol and option parsing
# ----------------------------------------------------------------------
def test_transports_satisfy_protocol():
    assert isinstance(LocalTransport(), ShardTransport)
    assert isinstance(HttpTransport(["http://h:1"]), ShardTransport)
    assert LocalTransport().name == "local"
    assert HttpTransport(["http://h:1"]).name == "http"


def test_parse_worker_spec():
    assert parse_worker_spec(None) == 1
    assert parse_worker_spec(4) == 4
    assert parse_worker_spec("0") == 0
    assert parse_worker_spec("http://a:1") == ["http://a:1"]
    assert parse_worker_spec("http://a:1/, http://b:2") == [
        "http://a:1",
        "http://b:2",
    ]
    with pytest.raises(ValueError):
        parse_worker_spec("three")


def test_make_transport_rejects_mismatches():
    assert make_transport("local", workers=2).name == "local"
    assert make_transport("http", workers=["http://h:1"]).name == "http"
    with pytest.raises(ValueError, match="--transport http"):
        make_transport("local", workers=["http://h:1"])
    with pytest.raises(ValueError, match="--workers URL"):
        make_transport("http", workers=2)
    with pytest.raises(ValueError, match="unknown transport"):
        make_transport("carrier-pigeon")
    with pytest.raises(ValueError):
        HttpTransport([])


# ----------------------------------------------------------------------
# LocalTransport: bit-identical to run_all_shards
# ----------------------------------------------------------------------
def test_local_transport_bit_identical_to_run_all_shards(
    study_npz, tmp_path
):
    manifest = make_manifest(study_npz, 3)
    direct_dir = tmp_path / "direct"
    via_dir = tmp_path / "via"
    run_all_shards(manifest, direct_dir, shard_workers=2)
    reports = LocalTransport(shard_workers=2).dispatch(manifest, via_dir)
    assert [r["index"] for r in reports] == [0, 1, 2]
    assert all(r["complete"] for r in reports)
    for index in range(manifest.n_shards):
        a = shard_checkpoint_path(direct_dir, index).read_bytes()
        b = shard_checkpoint_path(via_dir, index).read_bytes()
        assert a == b, f"shard {index} checkpoint bytes differ"
    out_a = tmp_path / "a.ckpt.npz"
    out_b = tmp_path / "b.ckpt.npz"
    merge_to_checkpoint(manifest, direct_dir, out_a)
    merge_to_checkpoint(manifest, via_dir, out_b)
    assert out_a.read_bytes() == out_b.read_bytes()


# ----------------------------------------------------------------------
# HttpTransport: exactness across a real worker pool
# ----------------------------------------------------------------------
def test_http_transport_merges_identical_to_unsharded(
    study_npz, unsharded, tmp_path
):
    manifest = make_manifest(study_npz, 3)
    metrics = RunMetrics()
    with worker_pool(tmp_path, count=2) as (urls, _servers):
        reports = HttpTransport(urls).dispatch(
            manifest, tmp_path / "shards", metrics=metrics
        )
    assert [r["index"] for r in reports] == [0, 1, 2]
    assert all(r["complete"] for r in reports)
    out = assert_same_as_unsharded(
        manifest, tmp_path / "shards", tmp_path, unsharded
    )
    # The merged checkpoint is not just readout-equal: same bytes.
    assert out.read_bytes() == unsharded[0].read_bytes()
    counters = metrics.as_dict()["counters"]
    assert counters["transport.dispatches"] == 3
    assert counters["transport.bytes_up"] > 0
    assert counters["transport.bytes_down"] > 0
    assert counters["shard.completed"] == 3


def test_http_transport_skips_complete_shards(study_npz, tmp_path):
    """A re-dispatch over a finished shard dir is pure local skips —
    not a byte on the wire (same idempotence rule as the local path)."""
    manifest = make_manifest(study_npz, 2)
    shard_dir = tmp_path / "shards"
    with worker_pool(tmp_path, count=1) as (urls, _servers):
        HttpTransport(urls).dispatch(manifest, shard_dir)
        metrics = RunMetrics()
        reports = HttpTransport(urls).dispatch(
            manifest, shard_dir, metrics=metrics
        )
    assert all(r["skipped"] for r in reports)
    counters = metrics.as_dict()["counters"]
    assert counters.get("transport.dispatches", 0) == 0
    assert counters["shard.skipped"] == 2


PROPERTY_SEEDS = [500, 501, 502]


@pytest.mark.parametrize("seed", PROPERTY_SEEDS)
def test_property_random_shards_workers_killpoints(
    seed, study_npz, unsharded, tmp_path
):
    """Random shard count, pool size, dead-URL position and dropped
    dispatch: the merged readout never differs from the unsharded run."""
    rng = random.Random(seed)
    n_shards = rng.randint(1, 5)
    n_workers = rng.randint(1, 3)
    manifest = make_manifest(study_npz, n_shards)
    if rng.random() < 0.5:
        plan = FaultPlan(
            [
                FaultSpec(
                    "transport.dispatch",
                    "drop",
                    hit=rng.randint(1, n_shards),
                )
            ],
            seed=seed,
        )
        faults.install(plan)
    with worker_pool(tmp_path, count=n_workers) as (urls, _servers):
        # A dead URL somewhere in the pool is a worker that crashed
        # before the run; its death must cost reassignment, not truth.
        urls.insert(rng.randint(0, len(urls)), DEAD_URL)
        HttpTransport(urls, retries=4).dispatch(
            manifest, tmp_path / "shards"
        )
    assert_same_as_unsharded(
        manifest, tmp_path / "shards", tmp_path, unsharded
    )


def test_live_worker_killed_mid_run_is_reassigned(
    study_npz, unsharded, tmp_path
):
    """One of two workers is shut down as soon as it has answered its
    first shard; its queue drains to the survivor and the merge is
    still exact."""
    manifest = make_manifest(study_npz, 4)
    metrics = RunMetrics()
    with worker_pool(tmp_path, count=2) as (urls, servers):
        victim = servers[0]
        killed = threading.Event()

        def kill_after_first(index, report):
            if not killed.is_set():
                killed.set()
                victim.shutdown()
                victim.server_close()

        HttpTransport(urls, retries=6, timeout=5.0).dispatch(
            manifest,
            tmp_path / "shards",
            metrics=metrics,
            on_report=kill_after_first,
        )
    assert killed.is_set()
    assert_same_as_unsharded(
        manifest, tmp_path / "shards", tmp_path, unsharded
    )
    counters = metrics.as_dict()["counters"]
    assert counters["shard.completed"] == 4


# ----------------------------------------------------------------------
# A worker *process* crashing mid-shard (the transport.worker site)
# ----------------------------------------------------------------------
def spawn_worker(workdir, env=None):
    """A real ``repro shard worker`` subprocess on an ephemeral port."""
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "shard",
            "worker",
            "--workdir",
            str(workdir),
            "--port",
            "0",
            "--quiet",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=env if env is not None else os.environ.copy(),
    )
    banner = proc.stdout.readline()
    assert banner.startswith("listening on http://"), banner
    url = banner.split()[2]
    return proc, url


def test_worker_process_crash_mid_shard_is_reassigned(
    study_npz, unsharded, tmp_path
):
    """The acceptance scenario: two real worker processes, one armed
    (via the env hook) to ``os._exit`` mid-shard with the single-flight
    lock held. The coordinator marks it dead, reassigns to the
    survivor, and the merged checkpoint still equals the unsharded
    run's."""
    manifest = make_manifest(study_npz, 3)
    crash_env = os.environ.copy()
    crash_env.pop(faults.ENV_VAR, None)
    crash_env[faults.ENV_VAR] = FaultPlan(
        [FaultSpec("transport.worker", "crash", hit=1)], seed=0
    ).to_json()
    survivor_env = os.environ.copy()
    survivor_env.pop(faults.ENV_VAR, None)
    victim, victim_url = spawn_worker(tmp_path / "victim", env=crash_env)
    survivor, survivor_url = spawn_worker(
        tmp_path / "survivor", env=survivor_env
    )
    metrics = RunMetrics()
    try:
        HttpTransport(
            [victim_url, survivor_url], retries=6, timeout=10.0
        ).dispatch(manifest, tmp_path / "shards", metrics=metrics)
    finally:
        for proc in (victim, survivor):
            if proc.poll() is None:
                proc.terminate()
        survivor.wait(timeout=10)
        victim.wait(timeout=10)
    assert victim.returncode == faults.CRASH_EXIT_CODE
    counters = metrics.as_dict()["counters"]
    assert counters["transport.worker_deaths"] == 1
    assert counters["transport.reassignments"] >= 1
    assert counters["shard.completed"] == 3
    assert_same_as_unsharded(
        manifest, tmp_path / "shards", tmp_path, unsharded
    )


# ----------------------------------------------------------------------
# Refusals: foreign plans, corrupt downloads, unplaceable shards
# ----------------------------------------------------------------------
def post_manifest(url, index, document):
    request = urllib.request.Request(
        f"{url}/shards/{index}",
        data=json.dumps(document).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, response.read()


def test_worker_refuses_foreign_and_tampered_plans(study_npz, tmp_path):
    manifest = make_manifest(study_npz, 2)
    with worker_pool(tmp_path, count=1) as (urls, servers):
        url = urls[0]
        # Tampered: body edited after the digest was computed.
        tampered = manifest.document()
        tampered["model_name"] = "wifi"
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_manifest(url, 0, tampered)
        assert excinfo.value.code == 400
        assert "digest" in excinfo.value.read().decode()
        # Foreign: not a manifest document at all.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_manifest(url, 0, {"kind": "something-else"})
        assert excinfo.value.code == 400
        # Out-of-range shard index for a valid plan.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_manifest(url, 7, manifest.document())
        assert excinfo.value.code == 400
        assert servers[0].metrics.counter("worker.refused") == 3
        # And a checkpoint download for a shard never run here: 404.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"{url}/checkpoints/{manifest.digest()}/0", timeout=10.0
            )
        assert excinfo.value.code == 404


def test_corrupt_download_never_lands(study_npz, tmp_path):
    """Every downloaded checkpoint corrupts in flight: the checksum
    rejects each one and the dispatch fails typed — the shard dir never
    holds wrong bytes."""
    manifest = make_manifest(study_npz, 1)
    metrics = RunMetrics()
    faults.install(
        FaultPlan(
            [FaultSpec("transport.collect", "corrupt", hit=None)], seed=0
        )
    )
    shard_dir = tmp_path / "shards"
    with worker_pool(tmp_path, count=1) as (urls, _servers):
        with pytest.raises(TransportError):
            HttpTransport(urls, retries=2).dispatch(
                manifest, shard_dir, metrics=metrics
            )
    assert not shard_checkpoint_path(shard_dir, 0).exists()
    counters = metrics.as_dict()["counters"]
    assert counters["transport.corrupt_checkpoints"] == 3  # 1 + 2 retries


def test_dead_pool_raises_transport_error(study_npz, tmp_path):
    manifest = make_manifest(study_npz, 2)
    transport = HttpTransport([DEAD_URL], retries=2, timeout=2.0)
    with pytest.raises(TransportError) as excinfo:
        transport.dispatch(manifest, tmp_path / "shards")
    assert excinfo.value.indices == [0, 1]
    assert "dead" in str(excinfo.value)


def test_cli_exit_8_when_pool_unreachable(study_npz, tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    make_manifest(study_npz, 2).save(plan_path)
    code = main(
        [
            "shard",
            "run",
            str(plan_path),
            "--transport",
            "http",
            "--workers",
            DEAD_URL,
            "--quiet",
        ]
    )
    assert code == EXIT_TRANSPORT_FAILED == 8
    err = capsys.readouterr().err
    assert "could not be placed" in err


def test_cli_transport_mismatch_is_usage_error(study_npz, tmp_path, capsys):
    plan_path = tmp_path / "plan.json"
    make_manifest(study_npz, 2).save(plan_path)
    code = main(
        ["shard", "run", str(plan_path), "--transport", "http", "--quiet"]
    )
    assert code == 2
    assert "--workers URL" in capsys.readouterr().err
