"""Event log and process-state grouping."""

import pytest

from repro.errors import TraceError
from repro.trace.events import (
    BACKGROUND_STATES,
    EventLog,
    FOREGROUND_STATES,
    ProcessState,
    ProcessStateEvent,
    ScreenEvent,
    UserInputEvent,
    is_background,
    is_foreground,
)


def test_paper_grouping():
    assert FOREGROUND_STATES == {ProcessState.FOREGROUND, ProcessState.VISIBLE}
    assert BACKGROUND_STATES == {
        ProcessState.PERCEPTIBLE,
        ProcessState.SERVICE,
        ProcessState.BACKGROUND,
    }
    assert is_foreground(ProcessState.VISIBLE)
    assert is_background(ProcessState.SERVICE)
    assert not is_foreground(ProcessState.NOT_RUNNING)
    assert not is_background(ProcessState.NOT_RUNNING)


def test_events_sort_lazily():
    log = EventLog()
    log.add_process_event(ProcessStateEvent(5.0, 1, ProcessState.BACKGROUND))
    log.add_process_event(ProcessStateEvent(1.0, 1, ProcessState.FOREGROUND))
    times = [e.timestamp for e in log.process_events]
    assert times == [1.0, 5.0]


def test_per_app_lookup():
    log = EventLog(
        process_events=[
            ProcessStateEvent(1.0, 1, ProcessState.FOREGROUND),
            ProcessStateEvent(2.0, 2, ProcessState.FOREGROUND),
            ProcessStateEvent(3.0, 1, ProcessState.BACKGROUND),
        ]
    )
    assert len(log.process_events_for_app(1)) == 2
    assert log.process_events_for_app(3) == []
    assert log.apps() == [1, 2]


def test_per_app_cache_invalidated_on_append():
    log = EventLog()
    log.add_process_event(ProcessStateEvent(1.0, 1, ProcessState.FOREGROUND))
    assert len(log.process_events_for_app(1)) == 1
    log.add_process_event(ProcessStateEvent(2.0, 1, ProcessState.BACKGROUND))
    assert len(log.process_events_for_app(1)) == 2


def test_screen_on_at():
    log = EventLog(
        screen_events=[ScreenEvent(10.0, True), ScreenEvent(20.0, False)]
    )
    assert not log.screen_on_at(5.0)
    assert log.screen_on_at(15.0)
    assert not log.screen_on_at(25.0)
    assert log.screen_on_at(10.0)


def test_merge():
    a = EventLog(process_events=[ProcessStateEvent(1.0, 1, ProcessState.FOREGROUND)])
    b = EventLog(input_events=[UserInputEvent(2.0, 1)])
    merged = a.merge(b)
    assert len(merged) == 2


def test_len_and_iter_order():
    log = EventLog(
        process_events=[ProcessStateEvent(3.0, 1, ProcessState.FOREGROUND)],
        screen_events=[ScreenEvent(1.0, True)],
        input_events=[UserInputEvent(2.0, 1)],
    )
    assert len(log) == 3
    assert [e.timestamp for e in log] == [1.0, 2.0, 3.0]


def test_validate_rejects_negative_timestamp():
    log = EventLog(screen_events=[ScreenEvent(-1.0, True)])
    with pytest.raises(TraceError):
        log.validate()
