"""Shared fixtures.

The study fixtures are session-scoped: generation is deterministic, so
every test sees the same data, and the expensive pieces (generation +
energy attribution) run once per pytest session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import StudyConfig, StudyEnergy, generate_study
from repro.trace.arrays import PacketArray
from repro.trace.events import EventLog, ProcessState, ProcessStateEvent
from repro.trace.packet import Direction


def make_packets(specs):
    """Build a time-sorted PacketArray from (t, size, dir, app[, conn]) tuples."""
    specs = sorted(specs, key=lambda s: s[0])
    times = np.array([s[0] for s in specs], dtype=np.float64)
    sizes = np.array([s[1] for s in specs], dtype=np.uint32)
    dirs = np.array([int(s[2]) for s in specs], dtype=np.uint8)
    apps = np.array([s[3] for s in specs], dtype=np.uint16)
    conns = np.array(
        [s[4] if len(s) > 4 else 1 for s in specs], dtype=np.uint32
    )
    return PacketArray.from_columns(times, sizes, dirs, apps, conns)


@pytest.fixture
def packets_two_apps():
    """Three bursts: app 1 (two close packets), later app 2."""
    return make_packets(
        [
            (10.0, 1000, Direction.DOWNLINK, 1, 5),
            (12.0, 500, Direction.UPLINK, 1, 5),
            (100.0, 2000, Direction.DOWNLINK, 2, 7),
        ]
    )


@pytest.fixture
def simple_events():
    """App 1: foreground at 0, background at 50, not-running at 500."""
    return EventLog(
        process_events=[
            ProcessStateEvent(0.0, 1, ProcessState.FOREGROUND),
            ProcessStateEvent(50.0, 1, ProcessState.BACKGROUND),
            ProcessStateEvent(500.0, 1, ProcessState.NOT_RUNNING),
        ]
    )


@pytest.fixture(scope="session")
def small_config():
    return StudyConfig(n_users=4, duration_days=10.0, seed=1234)


@pytest.fixture(scope="session")
def small_dataset(small_config):
    """A small but complete synthetic study (4 users x 10 days)."""
    return generate_study(small_config)


@pytest.fixture(scope="session")
def small_study(small_dataset):
    """Energy attribution over the small study."""
    return StudyEnergy(small_dataset)


@pytest.fixture(scope="session")
def medium_dataset():
    """A study big enough for Table 2 style day-run statistics."""
    return generate_study(StudyConfig(n_users=8, duration_days=21.0, seed=77))


@pytest.fixture(scope="session")
def medium_study(medium_dataset):
    return StudyEnergy(medium_dataset)
