"""§3.1 longitudinal trends."""

import numpy as np
import pytest

from repro.core.longitudinal import (
    EraComparison,
    EraStats,
    WeeklySeries,
    era_comparison,
    improved_apps,
    weekly_background_energy,
)
from repro.core.periodicity import UpdateFrequency
from repro.errors import AnalysisError


def _freq(median):
    return UpdateFrequency(median, median * 0.95, median * 1.05, 100)


def _era(lo, hi, jpd, freq_median):
    return EraStats(lo, hi, jpd, jpd * 1000, _freq(freq_median))


class TestWeeklySeries:
    def test_fluctuation(self):
        series = WeeklySeries((100.0, 160.0, 100.0))
        assert series.max_fluctuation == pytest.approx(0.6)
        assert series.n_weeks == 3
        assert series.mean == pytest.approx(120.0)

    def test_single_week_no_fluctuation(self):
        assert WeeklySeries((100.0,)).max_fluctuation == 0.0

    def test_zero_week_handled(self):
        series = WeeklySeries((0.0, 50.0))
        assert series.max_fluctuation == 0.0  # undefined growth ignored


class TestEraComparison:
    def test_improved_detection(self):
        comparison = EraComparison(
            "a", ( _era(0.0, 0.5, 1000.0, 300.0), _era(0.5, 1.0, 400.0, 3600.0) )
        )
        assert comparison.improved
        assert comparison.energy_change == pytest.approx(-0.6)

    def test_not_improved_when_interval_static(self):
        comparison = EraComparison(
            "a", (_era(0.0, 0.5, 1000.0, 300.0), _era(0.5, 1.0, 400.0, 310.0))
        )
        assert not comparison.improved

    def test_not_improved_when_energy_static(self):
        comparison = EraComparison(
            "a", (_era(0.0, 0.5, 1000.0, 300.0), _era(0.5, 1.0, 990.0, 3600.0))
        )
        assert not comparison.improved

    def test_single_era(self):
        comparison = EraComparison("a", (_era(0.0, 1.0, 100.0, 300.0),))
        assert not comparison.improved
        assert comparison.energy_change == 0.0


def test_weekly_series_covers_study(medium_study):
    series = weekly_background_energy(medium_study)
    assert series.n_weeks == 3  # 21 days
    assert all(e > 0 for e in series.week_energy)
    # Steady-state synthetic users: fluctuation is modest (< the paper's
    # 60%, which reflects real behaviour change we do not inject weekly).
    assert series.max_fluctuation < 0.6


def test_weekly_series_partial_week_kept(small_study):
    full = weekly_background_energy(small_study, complete_weeks_only=False)
    trimmed = weekly_background_energy(small_study)
    assert full.n_weeks == 2  # 10 days -> 1 full + 1 partial
    assert trimmed.n_weeks == 1


def test_era_comparison_facebook(medium_study):
    """Facebook's catalog schedule: 5-min era then 1-h era."""
    comparison = era_comparison(medium_study, "com.facebook.katana")
    first, last = comparison.eras
    assert first.update_frequency.median_interval == pytest.approx(300.0, rel=0.2)
    assert last.update_frequency.median_interval == pytest.approx(3600.0, rel=0.3)
    assert last.joules_per_day < first.joules_per_day
    assert comparison.improved


def test_era_comparison_stable_app(medium_study):
    """Weibo never improves: same period throughout."""
    comparison = era_comparison(medium_study, "com.sina.weibo")
    assert not comparison.improved
    first, last = comparison.eras
    assert last.update_frequency.median_interval == pytest.approx(
        first.update_frequency.median_interval, rel=0.3
    )


def test_era_boundaries_validation(medium_study):
    with pytest.raises(AnalysisError):
        era_comparison(medium_study, "com.sina.weibo", boundaries=(0.5, 0.2))
    with pytest.raises(AnalysisError):
        era_comparison(medium_study, "com.sina.weibo", boundaries=(0.5,))


def test_improved_apps_finds_evolvers(medium_study):
    improved = improved_apps(
        medium_study,
        apps=["com.facebook.katana", "com.sina.weibo", "com.android.email"],
    )
    assert "com.facebook.katana" in improved
    assert "com.sina.weibo" not in improved
    assert "com.android.email" not in improved
