"""Measurement-software simulation: raw-log round trip."""

import numpy as np
import pytest

from repro import StudyEnergy
from repro.collect import (
    CollectionConfig,
    UNKNOWN_APP,
    collect_dataset,
    parse_dataset,
    read_device_logs,
    write_device_logs,
)
from repro.core.statefrac import background_energy_fraction
from repro.errors import TraceError


@pytest.fixture(scope="module")
def log_root(small_dataset, tmp_path_factory):
    root = tmp_path_factory.mktemp("rawlogs")
    collect_dataset(small_dataset, root)
    return root


@pytest.fixture(scope="module")
def parsed(log_root, small_dataset):
    return parse_dataset(log_root, duration=small_dataset.users[0].duration)


def test_roundtrip_packet_identity(small_dataset, parsed):
    assert len(parsed) == len(small_dataset)
    for original, restored in zip(small_dataset, parsed):
        assert len(restored.packets) == len(original.packets)
        np.testing.assert_allclose(
            restored.packets.timestamps, original.packets.timestamps
        )
        np.testing.assert_array_equal(
            restored.packets.sizes, original.packets.sizes
        )
        np.testing.assert_array_equal(
            restored.packets.directions, original.packets.directions
        )


def test_roundtrip_app_names(small_dataset, parsed):
    """App ids may be renumbered, but every packet keeps its app name."""
    original = small_dataset.users[0]
    restored = parsed.users[0]
    names_a = [small_dataset.registry.name_of(int(a)) for a in original.packets.apps[:500]]
    names_b = [parsed.registry.name_of(int(a)) for a in restored.packets.apps[:500]]
    assert names_a == names_b


def test_roundtrip_events(small_dataset, parsed):
    original = small_dataset.users[0].events
    restored = parsed.users[0].events
    assert len(restored.process_events) == len(original.process_events)
    assert len(restored.screen_events) == len(original.screen_events)
    assert len(restored.input_events) == len(original.input_events)


def test_analyses_survive_roundtrip(small_dataset, parsed):
    """The headline analysis is identical on parsed raw logs."""
    direct = background_energy_fraction(StudyEnergy(small_dataset))
    reparsed = background_energy_fraction(StudyEnergy(parsed))
    assert reparsed == pytest.approx(direct, rel=1e-9)


def test_socket_loss_creates_unknown_bucket(small_dataset, tmp_path):
    trace = small_dataset.users[0]
    directory = tmp_path / "lossy"
    write_device_logs(
        trace,
        small_dataset.registry,
        directory,
        CollectionConfig(socket_record_loss=0.5, seed=3),
    )
    from repro.trace.dataset import AppRegistry

    registry = AppRegistry()
    restored = read_device_logs(directory, registry)
    assert UNKNOWN_APP in registry
    unknown_id = registry.id_of(UNKNOWN_APP)
    unknown_bytes = restored.packets.bytes_by_app().get(unknown_id, 0)
    assert unknown_bytes > 0
    # Total traffic is preserved; only attribution degrades.
    assert restored.packets.total_bytes == trace.packets.total_bytes


def test_no_loss_has_no_unknown(log_root):
    from repro.trace.dataset import AppRegistry

    registry = AppRegistry()
    read_device_logs(sorted(log_root.iterdir())[0], registry)
    assert UNKNOWN_APP not in registry


def test_collection_config_validation():
    with pytest.raises(TraceError):
        CollectionConfig(socket_record_loss=1.0)


def test_parse_empty_root(tmp_path):
    with pytest.raises(TraceError):
        parse_dataset(tmp_path)


def test_missing_packet_log(tmp_path):
    (tmp_path / "user_001").mkdir()
    with pytest.raises(TraceError):
        parse_dataset(tmp_path)


def test_malformed_packet_line(tmp_path):
    device = tmp_path / "user_001"
    device.mkdir()
    (device / "packets.log").write_text("1.0 5 U\n")  # missing size
    with pytest.raises(TraceError):
        read_device_logs(device)
