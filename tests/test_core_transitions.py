"""§4.1 transition analyses (Figs 4-6, first-minute criterion)."""

import numpy as np
import pytest

from repro.core.transitions import (
    PersistenceSample,
    TransitionStats,
    bytes_since_foreground,
    first_minute_fractions,
    fraction_of_apps_above,
    persistence_cdf,
    persistence_durations,
    trace_timeline,
)
from repro.errors import AnalysisError
from repro.trace.dataset import AppInfo, AppRegistry, Dataset
from repro.trace.events import EventLog, ProcessState, ProcessStateEvent
from repro.trace.packet import Direction
from repro.trace.trace import UserTrace

from conftest import make_packets


def _micro_dataset():
    """One app: fg [0,100), bg [100,1000); traffic at known offsets."""
    registry = AppRegistry([AppInfo(1, "app.a", "x"), AppInfo(2, "app.b", "x")])
    events = EventLog(
        process_events=[
            ProcessStateEvent(0.0, 1, ProcessState.FOREGROUND),
            ProcessStateEvent(100.0, 1, ProcessState.BACKGROUND),
            ProcessStateEvent(0.0, 2, ProcessState.FOREGROUND),
            ProcessStateEvent(100.0, 2, ProcessState.SERVICE),
        ]
    )
    packets = make_packets(
        [
            (50.0, 500, Direction.DOWNLINK, 1),    # foreground
            (110.0, 1000, Direction.DOWNLINK, 1),  # +10 s after bg
            (130.0, 1000, Direction.DOWNLINK, 1),  # +30 s
            (900.0, 1000, Direction.DOWNLINK, 1),  # +800 s (after silence)
            (105.0, 4000, Direction.DOWNLINK, 2),  # app 2: all in 1st min
        ]
    )
    trace = UserTrace(1, 0.0, 1000.0, packets, events)
    trace.label_states()
    return Dataset(registry, [trace])


def test_persistence_stops_at_silence_gap():
    ds = _micro_dataset()
    samples = persistence_durations(ds, app="app.a", silence_gap=600.0)
    assert len(samples) == 1
    # Continuous run ends at +30 s; the +800 s packet is past the gap.
    assert samples[0].duration == pytest.approx(30.0)
    assert samples[0].bytes == 2000


def test_persistence_counts_late_run_with_huge_gap_setting():
    ds = _micro_dataset()
    samples = persistence_durations(ds, app="app.a", silence_gap=10_000.0)
    assert samples[0].duration == pytest.approx(800.0)


def test_persistence_silent_transitions_included():
    ds = _micro_dataset()
    all_apps = persistence_durations(ds)
    assert len(all_apps) == 2  # one transition per app
    silent_excluded = persistence_durations(ds, include_silent=False)
    assert len(silent_excluded) == 2  # both apps have traffic here


def test_persistence_cdf():
    samples = [
        PersistenceSample(1, "a", 0.0, d, 0) for d in (10.0, 20.0, 30.0, 40.0)
    ]
    durations, fractions = persistence_cdf(samples)
    assert durations.tolist() == [10.0, 20.0, 30.0, 40.0]
    assert fractions[-1] == pytest.approx(1.0)
    with pytest.raises(AnalysisError):
        persistence_cdf([])


def test_transition_stats_from_samples():
    samples = [PersistenceSample(1, "a", 0.0, d, 0) for d in (0.0, 10.0, 100.0)]
    stats = TransitionStats.from_samples("a", samples)
    assert stats.transitions == 3
    assert stats.median_persistence == pytest.approx(10.0)
    assert stats.max_persistence == pytest.approx(100.0)


def test_bytes_since_foreground_bins():
    ds = _micro_dataset()
    edges, totals = bytes_since_foreground(ds, bin_seconds=10.0, horizon=100.0)
    assert len(edges) == len(totals) == 10
    # App 1: +10 s and +30 s; app 2: +5 s.
    assert totals[1] == pytest.approx(1000.0)
    assert totals[3] == pytest.approx(1000.0)
    assert totals[0] == pytest.approx(4000.0)
    assert totals.sum() == pytest.approx(6000.0)


def test_bytes_since_foreground_app_filter():
    ds = _micro_dataset()
    _, totals = bytes_since_foreground(
        ds, bin_seconds=10.0, horizon=100.0, apps=["app.b"]
    )
    assert totals.sum() == pytest.approx(4000.0)


def test_first_minute_fractions():
    ds = _micro_dataset()
    fractions = first_minute_fractions(ds)
    # App 1: 2000 of 3000 bytes in first minute; app 2: all of it.
    assert fractions["app.a"] == pytest.approx(2000 / 3000)
    assert fractions["app.b"] == pytest.approx(1.0)
    assert fraction_of_apps_above(fractions, 0.8) == pytest.approx(0.5)
    with pytest.raises(AnalysisError):
        fraction_of_apps_above({})


def test_trace_timeline_picks_heaviest_transition():
    ds = _micro_dataset()
    view = trace_timeline(ds, "app.a", min_background_packets=2)
    assert view.transition == pytest.approx(100.0)
    assert view.background_bytes == 3000  # everything after the transition
    assert view.foreground_bytes == 500
    assert np.all(view.times >= -300.0)


def test_trace_timeline_missing_app():
    ds = _micro_dataset()
    with pytest.raises(AnalysisError):
        trace_timeline(ds, "app.b", min_background_packets=5)


def test_study_first_minute_headline(small_dataset):
    """Most apps send most background bytes right after backgrounding."""
    fractions = first_minute_fractions(small_dataset)
    assert fraction_of_apps_above(fractions, 0.8) > 0.55


def test_study_persistence_heavy_tail(medium_dataset):
    samples = persistence_durations(medium_dataset, app="com.android.chrome")
    durations = np.array([s.duration for s in samples])
    assert len(durations) > 50
    # Most transitions die quickly; a heavy tail lingers for > 10 min.
    assert np.median(durations) < 120.0
    assert durations.max() > 600.0


def test_study_fig6_first_minute_heavy(small_dataset):
    edges, totals = bytes_since_foreground(small_dataset, bin_seconds=60.0)
    assert totals[0] > totals[1:5].max()


def test_transition_stats_for_table():
    from repro.core.transitions import transition_stats_for
    from repro.core.report import render_persistence_table

    ds = _micro_dataset()
    stats = transition_stats_for(ds, ["app.a", "app.b"])
    assert [s.app for s in stats] == ["app.a", "app.b"]
    assert stats[0].transitions == 1
    text = render_persistence_table(stats)
    assert "app.a" in text and "persistence" in text.lower()
