"""The EnergyReadout protocol: batch == stream == checkpoint, exactly.

Every totals-tier analysis must produce identical results — dict-equal
floats, byte-identical rendered text — whether it reads the in-memory
batch :class:`StudyEnergy`, a live :class:`StreamResult`, or a
:class:`TotalsReadout` loaded from a finished ingest checkpoint, across
chunk sizes and worker counts. Per-packet analyses must fail fast on
totals-only readouts with the typed :class:`NeedsPacketDetail`.
"""

import numpy as np
import pytest

from repro.core.accounting import StudyEnergy
from repro.core.casestudies import case_study_row, case_study_table
from repro.core.headlines import headline_stats, totals_headline_stats
from repro.core.longitudinal import weekly_background_energy
from repro.core.popularity import top10_appearance_counts, top_consumers
from repro.core.readout import (
    EnergyReadout,
    KeyedTotals,
    TotalsReadout,
    readout_from_checkpoint,
    require_packet_detail,
)
from repro.core.recommend import recommendation_report
from repro.core.report import render_fig1, render_fig2, render_fig3, render_table1
from repro.core.statefrac import state_energy_fractions
from repro.core.whatif import kill_policy_savings
from repro.errors import AnalysisError, NeedsPacketDetail, StreamError
from repro import StudyConfig, generate_study
from repro.stream import NpzStreamSource, StreamIngestor

CASE_APP = "com.sec.spp.push"


@pytest.fixture(scope="module")
def corpus(tmp_path_factory):
    """One saved study, its batch attribution, and a checkpoint dir."""
    dataset = generate_study(StudyConfig(n_users=4, duration_days=10, seed=1234))
    root = tmp_path_factory.mktemp("readout")
    path = root / "study.npz"
    dataset.save(path)
    return path, StudyEnergy(dataset), root


def _ingest(corpus, chunk_size, workers, tag):
    path, _, root = corpus
    ck = root / f"ck_{tag}.npz"
    source = NpzStreamSource(path, chunk_size=chunk_size)
    result = StreamIngestor(
        source, workers=workers, checkpoint_path=ck
    ).run()
    return result, ck


@pytest.fixture(scope="module", params=[(64, 1), (257, 1), (64, 2)])
def readouts(request, corpus):
    """(study, stream result, checkpoint readout) for one config."""
    chunk_size, workers = request.param
    result, ck = _ingest(corpus, chunk_size, workers, f"{chunk_size}_{workers}")
    return corpus[1], result, readout_from_checkpoint(ck)


# ----------------------------------------------------------------------
# Protocol shape
# ----------------------------------------------------------------------
def test_all_three_satisfy_the_protocol(readouts):
    for source in readouts:
        assert isinstance(source, EnergyReadout)
    study, result, loaded = readouts
    assert study.has_packet_detail is True
    assert result.has_packet_detail is False
    assert loaded.has_packet_detail is False


def test_user_ids_and_registry_agree(readouts):
    study, result, loaded = readouts
    assert result.user_ids == study.user_ids
    assert loaded.user_ids == study.user_ids
    app_id = study.app_id(CASE_APP)
    for other in (result, loaded):
        assert other.app_id(CASE_APP) == app_id
        assert other.app_name(app_id) == study.app_name(app_id)
        assert other.app_category(app_id) == study.app_category(app_id)


def test_duration_days_agree(readouts):
    study, result, loaded = readouts
    for uid in study.user_ids:
        assert result.duration_days(uid) == study.duration_days(uid)
        assert loaded.duration_days(uid) == study.duration_days(uid)


# ----------------------------------------------------------------------
# Totals tier: exact equality
# ----------------------------------------------------------------------
def test_study_wide_totals_exact(readouts):
    study, result, loaded = readouts
    for other in (result, loaded):
        assert other.energy_by_app() == study.energy_by_app()
        assert other.energy_by_app_state() == study.energy_by_app_state()
        assert other.energy_by_state() == study.energy_by_state()
        assert other.bytes_by_app() == study.bytes_by_app()
        assert other.idle_energy == study.idle_energy
        assert other.total_energy == pytest.approx(study.total_energy)


def test_user_totals_exact(readouts):
    study, result, loaded = readouts
    app_id = study.app_id(CASE_APP)
    for uid in study.user_ids:
        want = study.user_totals(uid)
        for other in (result, loaded):
            got = other.user_totals(uid)
            assert got.energy_by_app() == want.energy_by_app()
            assert got.energy_by_app_state() == want.energy_by_app_state()
            assert got.bytes_by_app_state() == want.bytes_by_app_state()
            assert got.bytes_by_app() == want.bytes_by_app()
            assert got.idle_energy == want.idle_energy
            assert got.background_energy(app_id) == want.background_energy(
                app_id
            )
            assert got.background_bytes(app_id) == want.background_bytes(app_id)


# ----------------------------------------------------------------------
# Cadence tier: exact equality at the default gaps
# ----------------------------------------------------------------------
def test_background_cadence_exact(readouts):
    study, result, loaded = readouts
    app_id = study.app_id(CASE_APP)
    want = study.background_cadence(app_id)
    for other in (result, loaded):
        got = other.background_cadence(app_id)
        assert got.n_users == want.n_users
        assert got.n_flows == want.n_flows
        for mine, ref in zip(got.per_user, want.per_user):
            assert mine.user_id == ref.user_id
            assert mine.n_flows == ref.n_flows
            assert mine.n_bursts == ref.n_bursts
            assert np.array_equal(mine.intervals, ref.intervals)
        assert got.update_frequency() == want.update_frequency()


def test_cadence_non_default_gaps_need_packets(readouts):
    study, result, _ = readouts
    app_id = study.app_id(CASE_APP)
    # The batch engine recomputes at any gap; a totals readout cannot.
    study.background_cadence(app_id, flow_gap=600.0)
    with pytest.raises(NeedsPacketDetail, match="flow_gap"):
        result.background_cadence(app_id, flow_gap=600.0)


# ----------------------------------------------------------------------
# Analyses: byte-identical rendered output
# ----------------------------------------------------------------------
def test_case_study_row_identical(readouts):
    study, result, loaded = readouts
    want = case_study_row(study, CASE_APP)
    assert case_study_row(result, CASE_APP) == want
    assert case_study_row(loaded, CASE_APP) == want


def test_rendered_outputs_byte_identical(readouts):
    study, result, loaded = readouts
    for other in (result, loaded):
        assert render_fig1(top10_appearance_counts(other)) == render_fig1(
            top10_appearance_counts(study.dataset)
        )
        assert render_fig2(
            top_consumers(other, by="energy"), top_consumers(other, by="data")
        ) == render_fig2(
            top_consumers(study, by="energy"), top_consumers(study, by="data")
        )
        assert render_fig3(state_energy_fractions(other)) == render_fig3(
            state_energy_fractions(study)
        )
        assert render_table1(case_study_table(other)) == render_table1(
            case_study_table(study)
        )


def test_totals_headlines_identical(readouts):
    study, result, loaded = readouts
    want = totals_headline_stats(study)
    assert totals_headline_stats(result) == want
    assert totals_headline_stats(loaded) == want
    # And the batch composite keeps them as its exact first entries.
    assert headline_stats(study)[: len(want)] == want


# ----------------------------------------------------------------------
# Per-packet analyses fail fast and typed
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "call",
    [
        lambda r: headline_stats(r),
        lambda r: kill_policy_savings(r, CASE_APP),
        lambda r: weekly_background_energy(r),
        lambda r: recommendation_report(r),
    ],
)
def test_per_packet_analyses_raise_needs_packet_detail(readouts, call):
    _, result, loaded = readouts
    for other in (result, loaded):
        with pytest.raises(NeedsPacketDetail) as exc:
            call(other)
        # Typed and actionable: an AnalysisError naming the fix.
        assert isinstance(exc.value, AnalysisError)
        assert "--from-checkpoint" in str(exc.value)


def test_require_packet_detail_passes_batch_sources(corpus):
    _, study, _ = corpus
    assert require_packet_detail(study, "x") is study
    assert require_packet_detail(study.dataset, "x") is study.dataset


# ----------------------------------------------------------------------
# Checkpoint loader edge cases
# ----------------------------------------------------------------------
def test_mid_run_checkpoint_refuses_analysis(corpus):
    path, _, root = corpus
    ck = root / "midrun.npz"
    source = NpzStreamSource(path, chunk_size=64)
    StreamIngestor(source, checkpoint_path=ck).run(max_chunks=2)
    with pytest.raises(StreamError, match="--resume"):
        readout_from_checkpoint(ck)


def test_resumed_checkpoint_matches_batch(corpus):
    path, study, root = corpus
    ck = root / "resumed.npz"
    source = NpzStreamSource(path, chunk_size=64)
    StreamIngestor(source, checkpoint_path=ck).run(max_chunks=3)
    source = NpzStreamSource(path, chunk_size=64)
    StreamIngestor(source, checkpoint_path=ck).run(resume=True)
    loaded = readout_from_checkpoint(ck)
    assert loaded.energy_by_app() == study.energy_by_app()
    assert render_table1(case_study_table(loaded)) == render_table1(
        case_study_table(study)
    )


def test_no_cadence_ingest_still_serves_totals(corpus):
    path, study, root = corpus
    ck = root / "nocad.npz"
    source = NpzStreamSource(path, chunk_size=128)
    result = StreamIngestor(
        source, checkpoint_path=ck, cadence=False
    ).run()
    assert result.energy_by_app() == study.energy_by_app()
    with pytest.raises(NeedsPacketDetail, match="cadence"):
        result.background_cadence(study.app_id(CASE_APP))
    loaded = readout_from_checkpoint(ck)
    assert loaded.energy_by_app() == study.energy_by_app()
    with pytest.raises(NeedsPacketDetail):
        case_study_row(loaded, CASE_APP)


def test_readout_without_registry_is_rejected():
    readout = TotalsReadout([])
    with pytest.raises(StreamError, match="registry"):
        readout.app_id("com.a")


def test_keyed_totals_rejects_other_dtypes():
    with pytest.raises(ValueError):
        KeyedTotals(dtype=np.float32)
