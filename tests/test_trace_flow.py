"""Flow reconstruction."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.flow import reconstruct_flows
from repro.trace.packet import Direction

from conftest import make_packets


def test_split_by_conn():
    packets = make_packets(
        [
            (0.0, 100, Direction.UPLINK, 1, 1),
            (1.0, 200, Direction.DOWNLINK, 1, 2),
            (2.0, 300, Direction.DOWNLINK, 1, 1),
        ]
    )
    table = reconstruct_flows(packets)
    assert len(table) == 2
    flows = table.for_app(1)
    assert {f.total_bytes for f in flows} == {400, 200}


def test_split_by_gap_timeout():
    packets = make_packets(
        [
            (0.0, 100, Direction.UPLINK, 1, 1),
            (10.0, 100, Direction.UPLINK, 1, 1),
            (200.0, 100, Direction.UPLINK, 1, 1),  # > 60 s silence
        ]
    )
    table = reconstruct_flows(packets, gap_timeout=60.0)
    assert len(table) == 2


def test_large_timeout_keeps_one_flow():
    packets = make_packets(
        [
            (0.0, 100, Direction.UPLINK, 1, 1),
            (200.0, 100, Direction.UPLINK, 1, 1),
        ]
    )
    assert len(reconstruct_flows(packets, gap_timeout=3600.0)) == 1


def test_split_by_app():
    packets = make_packets(
        [
            (0.0, 100, Direction.UPLINK, 1, 1),
            (1.0, 100, Direction.UPLINK, 2, 1),
        ]
    )
    assert len(reconstruct_flows(packets)) == 2


def test_flow_ids_written_to_packets():
    packets = make_packets(
        [
            (0.0, 100, Direction.UPLINK, 1, 1),
            (1.0, 100, Direction.UPLINK, 1, 1),
            (2.0, 100, Direction.UPLINK, 2, 2),
        ]
    )
    table = reconstruct_flows(packets)
    assert set(np.unique(packets.flows)) == {1, 2}
    for flow in table:
        mask = packets.flows == flow.flow_id
        assert int(packets.sizes[mask].sum()) == flow.total_bytes


def test_flow_direction_split():
    packets = make_packets(
        [
            (0.0, 100, Direction.UPLINK, 1, 1),
            (1.0, 250, Direction.DOWNLINK, 1, 1),
        ]
    )
    flow = next(iter(reconstruct_flows(packets)))
    assert flow.bytes_up == 100
    assert flow.bytes_down == 250
    assert flow.duration == pytest.approx(1.0)
    assert flow.packets == 2


def test_flow_table_lookup():
    packets = make_packets([(0.0, 100, Direction.UPLINK, 1, 1)])
    table = reconstruct_flows(packets)
    assert table[1].app == 1
    with pytest.raises(KeyError):
        table[2]
    assert table.count_for_app(1) == 1
    assert table.count_for_app(9) == 0


def test_empty_packets():
    table = reconstruct_flows(make_packets([]))
    assert len(table) == 0


def test_rejects_bad_timeout():
    with pytest.raises(TraceError):
        reconstruct_flows(make_packets([]), gap_timeout=0.0)


def test_rejects_unsorted():
    packets = make_packets([(0.0, 10, Direction.UPLINK, 1), (1.0, 10, Direction.UPLINK, 1)])
    packets.data["timestamp"][0] = 5.0
    with pytest.raises(TraceError):
        reconstruct_flows(packets)


def test_interleaved_connections_stay_separate():
    packets = make_packets(
        [
            (0.0, 10, Direction.UPLINK, 1, 1),
            (0.5, 10, Direction.UPLINK, 1, 2),
            (1.0, 10, Direction.UPLINK, 1, 1),
            (1.5, 10, Direction.UPLINK, 1, 2),
        ]
    )
    table = reconstruct_flows(packets)
    assert len(table) == 2
    assert all(f.packets == 2 for f in table)
