"""Property-based agreement between the two energy engines.

The event-driven machine is the reference; the vectorised engine must
agree on every component for any packet timeline, under every model.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.radio.lte import LTE_DEFAULT, lte_fast_dormancy_model, lte_model
from repro.radio.machine import RadioStateMachine
from repro.radio.umts import UMTS_DEFAULT
from repro.radio.vectorized import compute_packet_energy
from repro.radio.wifi import WIFI_DEFAULT
from repro.trace.arrays import PacketArray

MODELS = [
    LTE_DEFAULT,
    lte_model(drx_detail=True),
    lte_fast_dormancy_model(),
    UMTS_DEFAULT,
    WIFI_DEFAULT,
]


@st.composite
def packet_timelines(draw):
    """Random sorted packet timelines with adversarial gap structure."""
    n = draw(st.integers(min_value=0, max_value=60))
    # Gaps chosen to straddle tail boundaries (tiny, tail-ish, huge).
    gaps = draw(
        st.lists(
            st.one_of(
                st.floats(0.0, 0.5),
                st.floats(5.0, 20.0),
                st.floats(50.0, 5000.0),
            ),
            min_size=n,
            max_size=n,
        )
    )
    start = draw(st.floats(0.0, 100.0))
    times = np.cumsum(np.array([start] + gaps))[: n or 0]
    if n == 0:
        times = np.empty(0)
    sizes = np.array(
        draw(st.lists(st.integers(40, 2_000_000), min_size=n, max_size=n)),
        dtype=np.uint32,
    )
    dirs = np.array(
        draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)), dtype=np.uint8
    )
    apps = np.array(
        draw(st.lists(st.integers(1, 5), min_size=n, max_size=n)), dtype=np.uint16
    )
    packets = PacketArray.from_columns(times, sizes, dirs, apps)
    end = float(times[-1]) + draw(st.floats(0.0, 1000.0)) if n else 100.0
    return packets, (0.0, end)


@given(data=packet_timelines(), model_idx=st.integers(0, len(MODELS) - 1))
@settings(max_examples=120, deadline=None)
def test_engines_agree(data, model_idx):
    packets, window = data
    model = MODELS[model_idx]
    machine = RadioStateMachine(model).simulate(
        packets, window=window, record_intervals=False
    )
    vector = compute_packet_energy(model, packets, window=window)
    np.testing.assert_allclose(machine.transfer, vector.transfer, rtol=1e-9)
    np.testing.assert_allclose(machine.tail, vector.tail, rtol=1e-9)
    np.testing.assert_allclose(machine.promotion, vector.promotion, rtol=1e-9)
    assert machine.idle_energy == vector.idle_energy or abs(
        machine.idle_energy - vector.idle_energy
    ) < 1e-9 * max(1.0, machine.idle_energy)


@given(data=packet_timelines())
@settings(max_examples=60, deadline=None)
def test_energy_nonnegative_and_conserved(data):
    packets, window = data
    vector = compute_packet_energy(LTE_DEFAULT, packets, window=window)
    assert np.all(vector.per_packet >= 0)
    assert vector.idle_energy >= 0
    assert vector.total_energy >= vector.attributed_energy


@given(data=packet_timelines())
@settings(max_examples=60, deadline=None)
def test_removing_a_packet_costs_at_most_one_promotion(data):
    """Dropping one packet is near-monotone: it can raise total energy
    only by bridging — the removed packet held one active period
    together, and splitting it trades cheap tail time (1.06 W) for a
    fresh promotion (1.2107 W). One removal splits at most one active
    period, so the increase is bounded by a single promotion's energy;
    everything else (transfer, tail truncation, idle) only saves."""
    packets, window = data
    if len(packets) < 2:
        return
    full = compute_packet_energy(LTE_DEFAULT, packets, window=window)
    keep = np.ones(len(packets), dtype=bool)
    keep[len(packets) // 2] = False
    reduced = compute_packet_energy(
        LTE_DEFAULT, packets.select(keep), window=window
    )
    one_promotion = (
        LTE_DEFAULT.promotion_duration * LTE_DEFAULT.promotion_power
    )
    assert reduced.total_energy <= full.total_energy + one_promotion + 1e-9


@given(data=packet_timelines())
@settings(max_examples=60, deadline=None)
def test_tail_bounded_by_full_tail(data):
    packets, window = data
    vector = compute_packet_energy(LTE_DEFAULT, packets, window=window)
    assert np.all(vector.tail <= LTE_DEFAULT.full_tail_energy + 1e-12)
