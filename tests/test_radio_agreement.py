"""Property-based agreement between the three energy engines.

The event-driven machine is the reference; the vectorised engine must
agree on every component for any packet timeline, under every model —
and the streaming engine must settle bit-identical per-packet values
for any chunk split of the same timeline.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.radio.attribution import TailPolicy, attribute_energy
from repro.radio.lte import LTE_DEFAULT, lte_fast_dormancy_model, lte_model
from repro.radio.machine import RadioStateMachine
from repro.radio.nr import NR_DEFAULT
from repro.radio.streaming import StreamingAttribution
from repro.radio.umts import UMTS_DEFAULT
from repro.radio.vectorized import compute_packet_energy
from repro.radio.wifi import WIFI_DEFAULT
from repro.trace.arrays import PacketArray

MODELS = [
    LTE_DEFAULT,
    lte_model(drx_detail=True),
    lte_fast_dormancy_model(),
    UMTS_DEFAULT,
    WIFI_DEFAULT,
    NR_DEFAULT,
]


@st.composite
def packet_timelines(draw):
    """Random sorted packet timelines with adversarial gap structure."""
    n = draw(st.integers(min_value=0, max_value=60))
    # Gaps chosen to straddle tail boundaries (tiny, tail-ish, huge).
    gaps = draw(
        st.lists(
            st.one_of(
                st.floats(0.0, 0.5),
                st.floats(5.0, 20.0),
                st.floats(50.0, 5000.0),
            ),
            min_size=n,
            max_size=n,
        )
    )
    start = draw(st.floats(0.0, 100.0))
    times = np.cumsum(np.array([start] + gaps))[: n or 0]
    if n == 0:
        times = np.empty(0)
    sizes = np.array(
        draw(st.lists(st.integers(40, 2_000_000), min_size=n, max_size=n)),
        dtype=np.uint32,
    )
    dirs = np.array(
        draw(st.lists(st.integers(0, 1), min_size=n, max_size=n)), dtype=np.uint8
    )
    apps = np.array(
        draw(st.lists(st.integers(1, 5), min_size=n, max_size=n)), dtype=np.uint16
    )
    packets = PacketArray.from_columns(times, sizes, dirs, apps)
    end = float(times[-1]) + draw(st.floats(0.0, 1000.0)) if n else 100.0
    return packets, (0.0, end)


@given(data=packet_timelines(), model_idx=st.integers(0, len(MODELS) - 1))
@settings(max_examples=120, deadline=None)
def test_engines_agree(data, model_idx):
    packets, window = data
    model = MODELS[model_idx]
    machine = RadioStateMachine(model).simulate(
        packets, window=window, record_intervals=False
    )
    vector = compute_packet_energy(model, packets, window=window)
    np.testing.assert_allclose(machine.transfer, vector.transfer, rtol=1e-9)
    np.testing.assert_allclose(machine.tail, vector.tail, rtol=1e-9)
    np.testing.assert_allclose(machine.promotion, vector.promotion, rtol=1e-9)
    assert machine.idle_energy == vector.idle_energy or abs(
        machine.idle_energy - vector.idle_energy
    ) < 1e-9 * max(1.0, machine.idle_energy)


@given(data=packet_timelines())
@settings(max_examples=60, deadline=None)
def test_energy_nonnegative_and_conserved(data):
    packets, window = data
    vector = compute_packet_energy(LTE_DEFAULT, packets, window=window)
    assert np.all(vector.per_packet >= 0)
    assert vector.idle_energy >= 0
    assert vector.total_energy >= vector.attributed_energy


@given(data=packet_timelines())
@settings(max_examples=60, deadline=None)
def test_removing_a_packet_costs_at_most_one_promotion(data):
    """Dropping one packet is near-monotone: it can raise total energy
    only by bridging — the removed packet held one active period
    together, and splitting it trades cheap tail time (1.06 W) for a
    fresh promotion (1.2107 W). One removal splits at most one active
    period, so the increase is bounded by a single promotion's energy;
    everything else (transfer, tail truncation, idle) only saves."""
    packets, window = data
    if len(packets) < 2:
        return
    full = compute_packet_energy(LTE_DEFAULT, packets, window=window)
    keep = np.ones(len(packets), dtype=bool)
    keep[len(packets) // 2] = False
    reduced = compute_packet_energy(
        LTE_DEFAULT, packets.select(keep), window=window
    )
    one_promotion = (
        LTE_DEFAULT.promotion_duration * LTE_DEFAULT.promotion_power
    )
    assert reduced.total_energy <= full.total_energy + one_promotion + 1e-9


@given(data=packet_timelines())
@settings(max_examples=60, deadline=None)
def test_tail_bounded_by_full_tail(data):
    packets, window = data
    vector = compute_packet_energy(LTE_DEFAULT, packets, window=window)
    assert np.all(vector.tail <= LTE_DEFAULT.full_tail_energy + 1e-12)


# ----------------------------------------------------------------------
# Streaming differential: any chunk split, bit-identical settlement
# ----------------------------------------------------------------------
@given(
    data=packet_timelines(),
    model_idx=st.integers(0, len(MODELS) - 1),
    policy_idx=st.integers(0, 1),
    cut_seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=120, deadline=None)
def test_streaming_settles_bit_identical_for_any_chunk_split(
    data, model_idx, policy_idx, cut_seed
):
    """Feeding random chunk splits through StreamingAttribution yields
    exactly — np.array_equal, not allclose — the batch per-packet
    attribution and idle energy, for every model including NR."""
    packets, window = data
    model = MODELS[model_idx]
    policy = (TailPolicy.LAST_PACKET, TailPolicy.SPLIT_ADJACENT)[policy_idx]
    batch = attribute_energy(model, packets, window=window, policy=policy)

    rng = np.random.default_rng(cut_seed)
    n = len(packets)
    n_cuts = int(rng.integers(0, 6))
    cuts = sorted(set(rng.integers(0, n + 1, size=n_cuts).tolist()))
    bounds = [0] + cuts + [n]

    sim = StreamingAttribution(model, policy, window)
    pieces = [
        sim.feed(packets[lo:hi]).per_packet
        for lo, hi in zip(bounds, bounds[1:])
    ]
    final, idle = sim.finish()
    pieces.append(final.per_packet)
    streamed = np.concatenate(pieces) if pieces else np.empty(0)

    assert np.array_equal(streamed, batch.per_packet)
    assert idle == batch.energy.idle_energy


def test_nr_streaming_carries_mid_tail_across_chunks():
    """A chunk boundary landing mid-CDRX-tail: the pending packet's
    tail must settle against the *next chunk's* first packet, 4 s into
    NR's 10 s tail, identically to the batch engine."""
    times = np.array([10.0, 14.0, 100.0])
    sizes = np.array([1000, 1000, 1000], dtype=np.uint32)
    dirs = np.zeros(3, dtype=np.uint8)
    apps = np.array([1, 2, 1], dtype=np.uint16)
    packets = PacketArray.from_columns(times, sizes, dirs, apps)
    window = (0.0, 200.0)
    batch = attribute_energy(
        NR_DEFAULT, packets, window=window, policy=TailPolicy.SPLIT_ADJACENT
    )
    sim = StreamingAttribution(
        NR_DEFAULT, TailPolicy.SPLIT_ADJACENT, window
    )
    first = sim.feed(packets[:1])  # pending: packet 0, tail open
    assert len(first) == 0
    second = sim.feed(packets[1:])  # settles 0 (4 s gap) and 1 (full tail)
    final, idle = sim.finish()
    streamed = np.concatenate([second.per_packet, final.per_packet])
    assert np.array_equal(streamed, batch.per_packet)
    assert idle == batch.energy.idle_energy
    # The 4 s gap spans CDRX phases 1+2 and one second of phase 3: the
    # settled tail is strictly between one phase and the full tail.
    assert 0.0 < batch.energy.tail[0] < NR_DEFAULT.full_tail_energy
