"""Bit-identity: indexed analyses equal the boolean-mask originals.

Every refactored figure/table reduction is re-derived here with the
pre-index full-array masks, inline, and compared exactly — float ``==``
and ``np.array_equal``, never ``allclose``. The indexed path may only
change *how* rows are found, never *which* rows or *in what order* they
are reduced.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.appreport import hourly_energy_profile
from repro.core.casestudies import case_study_row
from repro.core.longitudinal import WEEK, era_comparison, weekly_background_energy
from repro.core.popularity import top10_appearance_counts
from repro.core.recommend import _lingering_fraction
from repro.core.transitions import first_minute_fractions, persistence_durations
from repro.core.whatif import _killed_days, _killed_drop_mask
from repro.trace.events import background_state_values, foreground_state_values
from repro.trace.intervals import background_transitions
from repro.units import DAY


def _bg_mask(packets) -> np.ndarray:
    return np.isin(packets.states, background_state_values())


def _top_app_id(study) -> int:
    totals = study.energy_by_app()
    return max(totals, key=lambda a: totals[a])


def test_bytes_by_app_equals_raw_aggregate(medium_study):
    for trace in medium_study.dataset:
        assert trace.index().bytes_by_app() == trace.packets.bytes_by_app()


def test_top10_counts_equal_masked_reference(medium_dataset):
    # reference: the original per-trace raw aggregate
    counts = {}
    for trace in medium_dataset:
        by_app = trace.packets.bytes_by_app()
        ranked = sorted(by_app, key=lambda a: by_app[a], reverse=True)[:10]
        for app_id in ranked:
            name = medium_dataset.registry.name_of(app_id)
            counts[name] = counts.get(name, 0) + 1
    expected = {n: c for n, c in counts.items() if c >= 2}
    expected = dict(sorted(expected.items(), key=lambda kv: (-kv[1], kv[0])))
    assert top10_appearance_counts(medium_dataset) == expected


def test_daily_energy_equals_masked_reference(medium_study):
    app_id = _top_app_id(medium_study)
    for trace in medium_study.dataset:
        result = medium_study.user_result(trace.user_id)
        n_days = int(np.ceil((trace.end - trace.start) / DAY))
        mask = trace.packets.apps == app_id
        days = ((trace.packets.timestamps[mask] - trace.start) // DAY).astype(
            np.int64
        )
        expected = np.bincount(
            days, weights=result.per_packet[mask], minlength=n_days
        )[:n_days]
        got = medium_study.daily_energy(trace.user_id, app_id)
        assert np.array_equal(got, expected)


def test_app_days_equal_masked_reference(medium_study):
    app_id = _top_app_id(medium_study)
    fg_values = foreground_state_values()
    bg_values = background_state_values()
    for trace in medium_study.dataset:
        packets = trace.packets
        n_days = int(np.ceil((trace.end - trace.start) / DAY))
        app = packets.apps == app_id
        days = ((packets.timestamps - trace.start) // DAY).astype(np.int64)
        fg = np.zeros(n_days, dtype=bool)
        bg = np.zeros(n_days, dtype=bool)
        fg[np.unique(days[app & np.isin(packets.states, fg_values)])] = True
        bg[np.unique(days[app & np.isin(packets.states, bg_values)])] = True
        got_fg, got_bg = medium_study.app_days_with_traffic(trace.user_id, app_id)
        assert np.array_equal(got_fg, fg)
        assert np.array_equal(got_bg, bg)


def test_hourly_profile_equals_masked_reference(medium_study):
    app = medium_study.dataset.registry.name_of(_top_app_id(medium_study))
    app_id = medium_study.dataset.registry.id_of(app)
    bins = np.zeros(24)
    for trace in medium_study.dataset:
        packets = trace.packets
        mask = packets.apps == app_id
        if not np.any(mask):
            continue
        result = medium_study.user_result(trace.user_id)
        seconds_of_day = (packets.timestamps[mask] - trace.start) % DAY
        hours = (seconds_of_day // 3600).astype(np.int64)
        bins += np.bincount(
            np.clip(hours, 0, 23),
            weights=result.per_packet[mask],
            minlength=24,
        )
    expected = tuple(float(v) for v in bins)
    assert hourly_energy_profile(medium_study, app) == expected


def test_case_study_energy_equals_masked_reference(medium_study):
    app = "com.android.email"
    app_id = medium_study.dataset.registry.id_of(app)
    energy = 0.0
    volume = 0
    for trace in medium_study.dataset:
        mask = (trace.packets.apps == app_id) & _bg_mask(trace.packets)
        if not np.any(mask):
            continue
        result = medium_study.user_result(trace.user_id)
        energy += float(result.per_packet[mask].sum())
        volume += trace.packets.select(mask).total_bytes
    row = case_study_row(medium_study, app)
    # The row folds per-(app, state) totals (the readout-protocol
    # addition order, shared with streaming); the masked np.sum
    # reference is a pairwise reduction, so equality holds to ULPs.
    assert row.total_energy == pytest.approx(energy, rel=1e-12)
    assert row.total_bytes == volume
    # Against the protocol-order reference the match is exact.
    exact = 0.0
    for uid in medium_study.user_ids:
        exact += medium_study.user_totals(uid).background_energy(app_id)
    assert row.total_energy == exact


def test_weekly_series_equals_masked_reference(medium_study):
    longest = max((t.end - t.start) for t in medium_study.dataset)
    n_weeks = int(np.ceil(longest / WEEK))
    totals = np.zeros(n_weeks)
    for trace in medium_study.dataset:
        result = medium_study.user_result(trace.user_id)
        mask = _bg_mask(trace.packets)
        weeks = ((trace.packets.timestamps[mask] - trace.start) // WEEK).astype(
            np.int64
        )
        totals += np.bincount(
            np.clip(weeks, 0, n_weeks - 1),
            weights=result.per_packet[mask],
            minlength=n_weeks,
        )
    if longest % WEEK > 0 and n_weeks > 1:
        totals = totals[:-1]
    expected = tuple(float(v) for v in totals)
    assert weekly_background_energy(medium_study).week_energy == expected


def test_era_energy_equals_masked_reference(medium_study):
    app = medium_study.dataset.registry.name_of(_top_app_id(medium_study))
    app_id = medium_study.dataset.registry.id_of(app)
    comparison = era_comparison(medium_study, app)
    for era in comparison.eras:
        energy = 0.0
        days = 0.0
        for trace in medium_study.dataset:
            duration = trace.end - trace.start
            lo = trace.start + era.start_fraction * duration
            hi = trace.start + era.end_fraction * duration
            packets = trace.packets
            mask = (
                (packets.apps == app_id)
                & _bg_mask(packets)
                & (packets.timestamps >= lo)
                & (packets.timestamps < hi)
            )
            if not np.any(mask):
                continue
            result = medium_study.user_result(trace.user_id)
            energy += float(result.per_packet[mask].sum())
            days += (hi - lo) / DAY
        assert era.joules_per_day == (energy / days if days else 0.0)


def test_lingering_fraction_equals_masked_reference(medium_study):
    app = medium_study.dataset.registry.name_of(_top_app_id(medium_study))
    app_id = medium_study.dataset.registry.id_of(app)
    window = 2 * 3600.0
    lingering = 0.0
    total = 0.0
    for trace in medium_study.dataset:
        result = medium_study.user_result(trace.user_id)
        mask = trace.packets.apps == app_id
        if not np.any(mask):
            continue
        total += float(result.per_packet[mask].sum())
        idx = np.flatnonzero(mask)
        app_ts = trace.packets.timestamps[idx]
        for episode in background_transitions(trace.events, app_id, trace.end):
            lo = np.searchsorted(app_ts, episode.start + 60.0)
            hi = np.searchsorted(app_ts, min(episode.start + window, episode.end))
            if hi > lo:
                lingering += float(result.per_packet[idx[lo:hi]].sum())
    expected = lingering / total if total > 0 else 0.0
    assert _lingering_fraction(medium_study, app) == expected


def test_killed_drop_mask_equals_masked_reference(medium_study):
    app_id = _top_app_id(medium_study)
    checked = 0
    for trace in medium_study.dataset:
        fg, bg = medium_study.app_days_with_traffic(trace.user_id, app_id)
        killed = _killed_days(fg, bg, 1)
        if not killed.any():
            continue
        packets = trace.packets
        days = ((packets.timestamps - trace.start) // DAY).astype(np.int64)
        days = np.clip(days, 0, len(killed) - 1)
        expected = (packets.apps == app_id) & _bg_mask(packets) & killed[days]
        got = _killed_drop_mask(
            medium_study.index_for(trace.user_id), app_id, killed, trace.start
        )
        assert np.array_equal(got, expected)
        checked += 1
    assert checked > 0, "policy never activated; reference untested"


def test_transition_samples_equal_masked_reference(medium_study):
    app = "com.android.email"
    dataset = medium_study.dataset
    app_id = dataset.registry.id_of(app)
    expected = []
    for trace in dataset:
        packets = trace.packets.select(trace.packets.apps == app_id)
        ts = packets.timestamps
        sizes = packets.sizes.astype(np.int64)
        for episode in background_transitions(trace.events, app_id, trace.end):
            lo = np.searchsorted(ts, episode.start, side="left")
            hi = np.searchsorted(ts, episode.end, side="left")
            ep_ts = ts[lo:hi]
            if len(ep_ts) == 0:
                expected.append((trace.user_id, episode.start, 0.0, 0))
                continue
            gaps = np.diff(np.concatenate([[episode.start], ep_ts]))
            breaks = np.flatnonzero(gaps > 600.0)
            last = (breaks[0] - 1) if len(breaks) else (len(ep_ts) - 1)
            if last < 0:
                expected.append((trace.user_id, episode.start, 0.0, 0))
            else:
                expected.append(
                    (
                        trace.user_id,
                        episode.start,
                        float(ep_ts[last] - episode.start),
                        int(sizes[lo : lo + last + 1].sum()),
                    )
                )
    got = [
        (s.user_id, s.start, s.duration, s.bytes)
        for s in persistence_durations(dataset, app=app)
    ]
    assert got == expected


def test_first_minute_fractions_stable(medium_dataset):
    # the dict is rebuilt from the index path; values must be exact
    first = first_minute_fractions(medium_dataset)
    again = first_minute_fractions(medium_dataset)
    assert first == again and len(first) > 0
