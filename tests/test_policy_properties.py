"""Invariants and porting identity for every registered policy.

Two layers:

* **Properties** — for every policy in the registry, on seeded
  generated studies: the transformed trace never gains packets or
  bytes, stays time-sorted and inside the window; no-op parameters
  save exactly zero; savings are bounded (negative savings only within
  the promotion-bridging allowance — moving or removing a packet can
  split an active radio period, costing at most one promotion each, the
  same bound ``test_radio_agreement`` establishes for single drops);
  kill savings are monotone in ``idle_days``.

* **Porting identity** — the five legacy ``core.whatif`` entry points
  (kill/doze/batching/coalescing/frequency-cap) were reimplemented on
  the :class:`CounterfactualPolicy` engine. The original hand-rolled
  implementations are frozen below (``legacy_*``, copied verbatim from
  the pre-refactor module) and every ported function must reproduce
  their outputs exactly — float-for-float, not approximately.
"""

import numpy as np
import pytest

from repro import StudyConfig, StudyEnergy, generate_study
from repro.core.periodicity import burst_starts
from repro.errors import NeedsPacketDetail
from repro.policy import (
    AppBatchingPolicy,
    DelayTolerantPolicy,
    DozePolicy,
    FrequencyCapPolicy,
    KillIdlePolicy,
    OsCoalescingPolicy,
    PolicyContext,
    PushConversionPolicy,
    available_policies,
    batching_savings,
    doze_savings,
    evaluate_policy,
    frequency_cap_savings,
    get_policy,
    kill_policy_savings,
    os_coalescing_savings,
    savings_on_affected_days,
    total_savings,
)
from repro.radio.attribution import attribute_energy
from repro.trace.arrays import PacketArray
from repro.units import DAY

#: One representative (active) instance per registered policy.
ACTIVE = {
    "kill": KillIdlePolicy(idle_days=2),
    "doze": DozePolicy(screen_off_threshold=1800.0),
    "batching": AppBatchingPolicy(period=3600.0),
    "coalesce": OsCoalescingPolicy(period=3600.0),
    "frequency-cap": FrequencyCapPolicy(min_period=1800.0),
    "push": PushConversionPolicy(min_payload_bytes=4096),
    "deadline": DelayTolerantPolicy(deadline=900.0),
}

#: Parameters that make each policy the identity transform.
NOOP = {
    "kill": KillIdlePolicy(idle_days=10**6),
    "doze": DozePolicy(screen_off_threshold=float("inf")),
    "batching": AppBatchingPolicy(apps=()),
    "coalesce": OsCoalescingPolicy(apps=()),
    "frequency-cap": FrequencyCapPolicy(min_period=30.0),
    "push": PushConversionPolicy(min_payload_bytes=0),
    "deadline": DelayTolerantPolicy(deadline=0.0),
}


def test_every_registered_policy_is_covered():
    """Guard the guard: the property tables span the whole registry."""
    assert set(ACTIVE) == set(available_policies())
    assert set(NOOP) == set(available_policies())


def _context(study, trace):
    return PolicyContext(
        index=study.index_for(trace.user_id),
        start=trace.start,
        end=trace.end,
        id_of=study.dataset.registry.id_of,
    )


@pytest.fixture(scope="module")
def seeded_studies(small_study):
    """The shared small study plus an independently seeded one."""
    other = StudyEnergy(
        generate_study(StudyConfig(n_users=3, duration_days=7.0, seed=2027))
    )
    return [small_study, other]


@pytest.mark.parametrize("name", sorted(ACTIVE))
def test_transform_never_gains_packets_or_bytes(name, seeded_studies):
    for study in seeded_studies:
        policy = ACTIVE[name]
        for trace in study.dataset:
            out = policy.transform(trace.packets, _context(study, trace))
            assert len(out.packets) <= len(trace.packets)
            assert int(out.packets.sizes.sum()) <= int(trace.packets.sizes.sum())
            assert out.packets.is_time_sorted()
            if len(out.packets):
                assert out.packets.timestamps[0] >= trace.start
                assert out.packets.timestamps[-1] <= trace.end
            # Drop-style and shift-style bookkeeping are exclusive.
            if out.moved_packets:
                assert len(out.packets) == len(trace.packets)
                assert out.delay_seconds >= 0.0


@pytest.mark.parametrize("name", sorted(NOOP))
def test_noop_params_save_exactly_zero(name, seeded_studies):
    for study in seeded_studies:
        result = evaluate_policy(study, NOOP[name])
        assert result.savings.total_after == result.savings.total_before
        assert result.savings.overall_pct == 0.0
        assert result.moved_packets == 0
        assert result.dropped_packets == 0
        # The no-op must be the identity *object*, not a copy — that is
        # what makes it free.
        for trace in study.dataset:
            out = NOOP[name].transform(trace.packets, _context(study, trace))
            assert out.packets is trace.packets


@pytest.mark.parametrize("name", sorted(ACTIVE))
def test_savings_bounded(name, seeded_studies):
    """Savings never exceed the total, and any *negative* savings stay
    within the promotion-bridging allowance: each dropped or moved
    packet can split at most one active period, trading tail time for
    at most one fresh promotion (plus its own burst cost when moved)."""
    for study in seeded_studies:
        result = evaluate_policy(study, ACTIVE[name])
        savings = result.savings
        assert savings.total_after >= 0.0
        assert savings.total_after - savings.total_before <= 1e-9 + (
            result.dropped_packets + result.moved_packets
        ) * (study.model.promotion_energy + study.model.full_tail_energy)
        assert savings.overall_pct <= 100.0


def test_kill_savings_monotone_in_idle_days(medium_study):
    """Longer idle thresholds kill less, so they save less — and drop
    strictly fewer packets."""
    results = [
        evaluate_policy(medium_study, KillIdlePolicy(idle_days=k))
        for k in (2, 3, 5, 8)
    ]
    for tighter, looser in zip(results, results[1:]):
        assert looser.dropped_packets <= tighter.dropped_packets
        assert (
            looser.savings.overall_pct
            <= tighter.savings.overall_pct + 1e-9
        )


def test_policies_refuse_totals_readouts(medium_study, tmp_path):
    """Every policy routes through the packet-detail gate."""
    from repro.core.readout import readout_from_checkpoint
    from repro.stream import NpzStreamSource, StreamIngestor

    npz = tmp_path / "study.npz"
    medium_study.dataset.save(npz)
    checkpoint = tmp_path / "totals.npz"
    StreamIngestor(
        NpzStreamSource(npz), checkpoint_path=checkpoint
    ).run()
    readout = readout_from_checkpoint(checkpoint)
    for name in available_policies():
        with pytest.raises(NeedsPacketDetail):
            evaluate_policy(readout, ACTIVE[name])
    # The legacy entry points refuse identically (typed, exit 3 in the
    # CLI) — including the two this PR's issue called out.
    for call in (
        lambda: frequency_cap_savings(readout, min_period=1800.0),
        lambda: os_coalescing_savings(readout, period=1800.0),
        lambda: doze_savings(readout),
        lambda: total_savings(readout),
        lambda: kill_policy_savings(readout, "com.sina.weibo"),
        lambda: batching_savings(readout, "com.sina.weibo", 3600.0),
        lambda: savings_on_affected_days(readout, "com.sina.weibo"),
    ):
        with pytest.raises(NeedsPacketDetail):
            call()


def test_registry_param_coercion():
    policy = get_policy(
        "kill", {"idle_days": "7", "apps": "com.a,com.b"}
    )
    assert policy.idle_days == 7
    assert policy.apps == ("com.a", "com.b")
    doze = get_policy("doze", {"screen_off_threshold": "inf"})
    assert doze.screen_off_threshold == float("inf")
    assert get_policy("coalesce", {"apps": "()"}).apps == ()
    from repro.errors import AnalysisError

    with pytest.raises(AnalysisError):
        get_policy("nope")
    with pytest.raises(AnalysisError):
        get_policy("kill", {"bogus": "1"})
    with pytest.raises(AnalysisError):
        get_policy("kill", {"idle_days": "three"})


def test_policy_spec_is_canonical():
    assert (
        KillIdlePolicy(idle_days=3).spec == "kill(apps=None, idle_days=3)"
    )
    assert "period=1800.0" in OsCoalescingPolicy().spec


# ----------------------------------------------------------------------
# Porting identity: frozen pre-refactor implementations
# ----------------------------------------------------------------------
# Copied verbatim from core/whatif.py as of the commit before the
# policy engine existed (modulo the `require_packet_detail` gates and
# result dataclasses, which the ported functions still provide).


def _legacy_killed_days(fg, bg, idle_days):
    n = len(fg)
    killed = np.zeros(n, dtype=bool)
    idle = 0
    dead = False
    for day in range(n):
        if fg[day]:
            idle = 0
            dead = False
            continue
        if bg[day] or dead:
            idle += 1
        if idle >= idle_days:
            dead = True
            killed[day] = True
    return killed


def _legacy_killed_drop_mask(index, app_id, killed, start):
    packets = index.packets
    idx = index.app_background_indices(app_id)
    days = ((packets.timestamps[idx] - start) // DAY).astype(np.int64)
    days = np.clip(days, 0, len(killed) - 1)
    drop = np.zeros(len(packets), dtype=bool)
    drop[idx[killed[days]]] = True
    return drop


def _legacy_max_bounded_run(fg, bg_only):
    best = 0
    run = 0
    seen_fg = False
    for day in range(len(fg)):
        if fg[day]:
            if seen_fg:
                best = max(best, run)
            run = 0
            seen_fg = True
        elif bg_only[day] and seen_fg:
            run += 1
        else:
            run = 0
    return best


def legacy_kill_policy_savings(study, app, idle_days=3):
    """Returns per-user tuples (uid, before, after, killed, bg_only,
    traffic, max_run) — the fields of the legacy ``UserKillOutcome``."""
    app_id = study.dataset.registry.id_of(app)
    outcomes = []
    for trace in study.dataset:
        before = study.user_app_energy(trace.user_id, app_id)
        if before <= 0:
            continue
        fg, bg = study.app_days_with_traffic(trace.user_id, app_id)
        bg_only = bg & ~fg
        killed = _legacy_killed_days(fg, bg, idle_days)
        if killed.any():
            drop = _legacy_killed_drop_mask(
                study.index_for(trace.user_id), app_id, killed, trace.start
            )
            kept = trace.packets.select(~drop)
            result = attribute_energy(
                study.model,
                kept,
                window=(trace.start, trace.end),
                policy=study.policy,
            )
            after = result.energy_by_app().get(app_id, 0.0)
        else:
            after = before
        outcomes.append(
            (
                trace.user_id,
                before,
                after,
                int(killed.sum()),
                int(bg_only.sum()),
                int((fg | bg).sum()),
                _legacy_max_bounded_run(fg, bg_only),
            )
        )
    return outcomes


def legacy_total_savings(study, idle_days=3, apps=None):
    registry = study.dataset.registry
    app_ids = None if apps is None else [registry.id_of(a) for a in apps]
    total_before = 0.0
    total_after = 0.0
    per_user = []
    for trace in study.dataset:
        before = study.user_result(trace.user_id).attributed_energy
        index = study.index_for(trace.user_id)
        drop = np.zeros(len(trace.packets), dtype=bool)
        candidates = app_ids if app_ids is not None else trace.app_ids()
        for app_id in candidates:
            fg, bg = study.app_days_with_traffic(trace.user_id, app_id)
            killed = _legacy_killed_days(fg, bg, idle_days)
            if killed.any():
                drop |= _legacy_killed_drop_mask(
                    index, app_id, killed, trace.start
                )
        kept = trace.packets.select(~drop)
        after = attribute_energy(
            study.model, kept, window=(trace.start, trace.end), policy=study.policy
        ).attributed_energy
        total_before += before
        total_after += after
        per_user.append(100.0 * (1.0 - after / before) if before > 0 else 0.0)
    return total_before, total_after, tuple(per_user)


def legacy_savings_on_affected_days(study, app, idle_days=3):
    app_id = study.dataset.registry.id_of(app)
    affected_before = 0.0
    affected_after = 0.0
    for trace in study.dataset:
        fg, bg = study.app_days_with_traffic(trace.user_id, app_id)
        killed = _legacy_killed_days(fg, bg, idle_days)
        if not killed.any():
            continue
        daily_before = study.daily_energy(trace.user_id)
        drop = _legacy_killed_drop_mask(
            study.index_for(trace.user_id), app_id, killed, trace.start
        )
        kept = trace.packets.select(~drop)
        result = attribute_energy(
            study.model, kept, window=(trace.start, trace.end), policy=study.policy
        )
        days = ((kept.timestamps - trace.start) // DAY).astype(np.int64)
        daily_after = np.bincount(
            days, weights=result.per_packet, minlength=len(daily_before)
        )[: len(daily_before)]
        affected_before += float(daily_before[killed].sum())
        affected_after += float(daily_after[killed].sum())
    return 100.0 * (1.0 - affected_after / affected_before)


def legacy_doze_savings(study, screen_off_threshold=3600.0, whitelist=()):
    registry = study.dataset.registry
    exempt = {registry.id_of(a) for a in whitelist}
    total_before = 0.0
    total_after = 0.0
    per_user = []
    for trace in study.dataset:
        before = study.user_result(trace.user_id).attributed_energy
        ts = trace.packets.timestamps
        screen = trace.events.screen_events
        ev_times = np.array([e.timestamp for e in screen])
        ev_on = np.array([e.on for e in screen], dtype=bool)
        idx = np.searchsorted(ev_times, ts, side="right") - 1
        off_since = np.where(
            (idx >= 0) & ~ev_on[np.clip(idx, 0, None)],
            ts - ev_times[np.clip(idx, 0, None)],
            0.0,
        )
        is_bg = study.index_for(trace.user_id).background_mask
        drop = is_bg & (off_since > screen_off_threshold)
        if exempt:
            drop &= ~np.isin(trace.packets.apps, np.array(sorted(exempt)))
        kept = trace.packets.select(~drop)
        after = attribute_energy(
            study.model, kept, window=(trace.start, trace.end), policy=study.policy
        ).attributed_energy
        total_before += before
        total_after += after
        per_user.append(100.0 * (1.0 - after / before) if before > 0 else 0.0)
    return total_before, total_after, tuple(per_user)


def legacy_batching_savings(study, app, target_period):
    app_id = study.dataset.registry.id_of(app)
    tail_cost = study.model.full_tail_energy + study.model.promotion_energy
    app_energy = 0.0
    saved = 0.0
    for trace in study.dataset:
        idx = study.index_for(trace.user_id).app_background_indices(app_id)
        if len(idx) == 0:
            continue
        result = study.user_result(trace.user_id)
        app_energy += float(result.per_packet[idx].sum())
        ts = trace.packets.timestamps[idx]
        starts = burst_starts(ts)
        if len(starts) < 2:
            continue
        days = ((starts - trace.start) // DAY).astype(np.int64)
        for day in np.unique(days):
            day_starts = starts[days == day]
            if len(day_starts) < 2:
                continue
            span = float(day_starts[-1] - day_starts[0])
            batched = max(1, int(np.ceil(span / target_period)) + 1)
            eliminated = max(0, len(day_starts) - batched)
            saved += eliminated * tail_cost
    return 100.0 * min(saved / app_energy, 1.0)


def legacy_os_coalescing_savings(study, period=1800.0):
    total_before = 0.0
    total_after = 0.0
    moved = 0
    delay_sum = 0.0
    for trace in study.dataset:
        total_before += study.user_result(trace.user_id).attributed_energy
        packets = trace.packets
        data = packets.data.copy()
        ts = data["timestamp"]
        is_bg = study.index_for(trace.user_id).background_mask
        rel = ts[is_bg] - trace.start
        shifted = np.ceil(rel / period) * period + trace.start
        shifted = np.minimum(shifted, trace.end - 1e-6)
        delay_sum += float((shifted - ts[is_bg]).sum())
        moved += int(is_bg.sum())
        data["timestamp"][is_bg] = shifted
        coalesced = PacketArray(data).sorted_by_time()
        total_after += attribute_energy(
            study.model,
            coalesced,
            window=(trace.start, trace.end),
            policy=study.policy,
        ).attributed_energy
    return total_before, total_after, moved, delay_sum / moved if moved else 0.0


def legacy_frequency_cap_savings(study, min_period=1800.0):
    total_before = 0.0
    total_after = 0.0
    per_user = []
    for trace in study.dataset:
        before = study.user_result(trace.user_id).attributed_energy
        packets = trace.packets
        index = study.index_for(trace.user_id)
        keep = np.ones(len(packets), dtype=bool)
        ts = packets.timestamps
        for app_id in index:
            idx = index.app_background_indices(app_id)
            if len(idx) == 0:
                continue
            app_ts = ts[idx]
            last_kept = -np.inf
            for i, t in enumerate(app_ts):
                if t - last_kept >= min_period:
                    last_kept = t
                elif t - last_kept > 30.0:
                    keep[idx[i]] = False
        kept = packets.select(keep)
        after = attribute_energy(
            study.model, kept, window=(trace.start, trace.end), policy=study.policy
        ).attributed_energy
        total_before += before
        total_after += after
        per_user.append(100.0 * (1.0 - after / before) if before > 0 else 0.0)
    return total_before, total_after, tuple(per_user)


class TestPortingIdentity:
    """The engine reproduces the legacy numbers exactly — not approx."""

    def test_kill_policy_savings(self, medium_study):
        ported = kill_policy_savings(medium_study, "com.sina.weibo", 3)
        legacy = legacy_kill_policy_savings(medium_study, "com.sina.weibo", 3)
        assert [
            (
                u.user_id,
                u.app_energy_before,
                u.app_energy_after,
                u.killed_days,
                u.bg_only_days,
                u.traffic_days,
                u.max_consecutive_bg_only,
            )
            for u in ported.per_user
        ] == legacy

    def test_total_savings(self, medium_study):
        ported = total_savings(medium_study, idle_days=3)
        before, after, per_user = legacy_total_savings(medium_study, 3)
        assert ported.total_before == before
        assert ported.total_after == after
        assert ported.per_user_pct == per_user

    def test_total_savings_scoped_to_apps(self, medium_study):
        apps = ["com.sina.weibo", "com.espn.score_center"]
        ported = total_savings(medium_study, idle_days=3, apps=apps)
        before, after, per_user = legacy_total_savings(medium_study, 3, apps)
        assert (ported.total_before, ported.total_after) == (before, after)
        assert ported.per_user_pct == per_user

    def test_savings_on_affected_days(self, medium_study):
        assert savings_on_affected_days(
            medium_study, "com.sina.weibo", 3
        ) == legacy_savings_on_affected_days(medium_study, "com.sina.weibo", 3)

    def test_doze_savings(self, medium_study):
        ported = doze_savings(
            medium_study,
            screen_off_threshold=1800.0,
            whitelist=["com.sec.spp.push"],
        )
        before, after, per_user = legacy_doze_savings(
            medium_study, 1800.0, ["com.sec.spp.push"]
        )
        assert (ported.total_before, ported.total_after) == (before, after)
        assert ported.per_user_pct == per_user

    def test_batching_savings(self, medium_study):
        assert batching_savings(
            medium_study, "com.sina.weibo", 3600.0
        ) == legacy_batching_savings(medium_study, "com.sina.weibo", 3600.0)

    def test_os_coalescing_savings(self, medium_study):
        ported = os_coalescing_savings(medium_study, period=1800.0)
        before, after, moved, mean_delay = legacy_os_coalescing_savings(
            medium_study, 1800.0
        )
        assert ported.total_before == before
        assert ported.total_after == after
        assert ported.moved_packets == moved
        assert ported.mean_delay == mean_delay

    def test_frequency_cap_savings(self, medium_study):
        ported = frequency_cap_savings(medium_study, min_period=1800.0)
        before, after, per_user = legacy_frequency_cap_savings(
            medium_study, 1800.0
        )
        assert (ported.total_before, ported.total_after) == (before, after)
        assert ported.per_user_pct == per_user

    def test_transform_mask_matches_legacy_drop(self, medium_study):
        """Row-identical packet views, not just equal energies."""
        for trace in medium_study.dataset:
            index = medium_study.index_for(trace.user_id)
            drop = np.zeros(len(trace.packets), dtype=bool)
            for app_id in trace.app_ids():
                fg, bg = medium_study.app_days_with_traffic(
                    trace.user_id, app_id
                )
                killed = _legacy_killed_days(fg, bg, 3)
                if killed.any():
                    drop |= _legacy_killed_drop_mask(
                        index, app_id, killed, trace.start
                    )
            out = KillIdlePolicy(idle_days=3).transform(
                trace.packets,
                PolicyContext(
                    index=index,
                    start=trace.start,
                    end=trace.end,
                    id_of=medium_study.dataset.registry.id_of,
                ),
            )
            expected = trace.packets.select(~drop)
            assert np.array_equal(out.packets.data, expected.data)
