"""Packet and Direction basics."""

import pytest

from repro.errors import TraceError
from repro.trace.packet import Direction, Packet


def test_direction_values():
    assert int(Direction.UPLINK) == 0
    assert int(Direction.DOWNLINK) == 1


def test_packet_fields():
    pkt = Packet(timestamp=1.5, size=100, direction=Direction.UPLINK, app=3, conn=9)
    assert pkt.timestamp == 1.5
    assert pkt.size == 100
    assert pkt.direction is Direction.UPLINK
    assert pkt.app == 3
    assert pkt.conn == 9
    assert pkt.flow == 0


def test_packet_rejects_zero_size():
    with pytest.raises(TraceError):
        Packet(timestamp=0.0, size=0, direction=Direction.UPLINK, app=1)


def test_packet_rejects_negative_timestamp():
    with pytest.raises(TraceError):
        Packet(timestamp=-1.0, size=10, direction=Direction.UPLINK, app=1)


def test_packet_rejects_negative_app():
    with pytest.raises(TraceError):
        Packet(timestamp=0.0, size=10, direction=Direction.UPLINK, app=-1)


def test_packet_equality_ignores_flow():
    a = Packet(1.0, 10, Direction.UPLINK, 1, flow=0)
    b = Packet(1.0, 10, Direction.UPLINK, 1, flow=7)
    assert a == b
