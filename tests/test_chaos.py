"""Chaos suite: seeded fault plans against the streaming pipeline.

Every test arms a deterministic :class:`~repro.faults.FaultPlan` —
worker crashes, task hangs, corrupted CSV rows, torn checkpoint writes
— and runs a real ingestion through it. The contract under test is the
acceptance bar from the issue: each plan must end either in a
structured failure (:class:`~repro.errors.TaskFailure` or
:class:`~repro.errors.StreamError`) with on-disk state intact enough to
recover from, or in a completed run — and in *both* cases the final
grouped totals must be ``array_equal`` to the fault-free batch
reference. Faults may cost retries, rebuilds and resumes; they may
never cost correctness.

Seeds are fixed so ``scripts/check_tier1.sh --chaos`` replays the
exact same fault schedule every time.
"""

from __future__ import annotations

import random

import pytest

from repro import StudyConfig, StudyEnergy, generate_study
from repro.errors import (
    FaultInjected,
    ShardError,
    ShardIncomplete,
    StreamError,
    TaskFailure,
)
from repro.faults import FaultPlan, FaultSpec
from repro import faults
from repro.follow import Follower, TailCsvSource, WindowSpec
from repro.metrics import RunMetrics
from repro.shard import (
    ShardManifest,
    merge_shard_checkpoints,
    merged_readout,
    run_all_shards,
    run_shard,
    shard_checkpoint_path,
)
from repro.stream import CsvStreamSource, NpzStreamSource, StreamIngestor
from repro.trace.io_text import (
    dataset_from_csv,
    write_events_csv,
    write_packets_csv,
)

from test_stream import assert_streams_equal_batch

# Fixed seed partitions — 36 plans total, ≥20 required by the issue.
CRASH_SEEDS = [0, 4, 8, 12, 16, 20]
HANG_SEEDS = [1, 5, 9, 13, 17, 21]
CORRUPT_SEEDS = [2, 6, 10, 14, 18, 22]
TORN_SEEDS = [3, 7, 11, 15, 19, 23]
RANDOM_SEEDS = [100, 101, 102, 103, 104, 105]
TRANSPORT_DROP_SEEDS = [400, 401]
TRANSPORT_CORRUPT_SEEDS = [410, 411]
TRANSPORT_HANG_SEEDS = [420]
TRANSPORT_RAISE_SEEDS = [430]

CHUNK = 2048


@pytest.fixture(autouse=True)
def disarm():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture(scope="module")
def npz_study(tmp_path_factory):
    """A 3-user study on disk (~42k packets) plus its batch reference."""
    dataset = generate_study(
        StudyConfig(n_users=3, duration_days=3.0, seed=17)
    )
    path = tmp_path_factory.mktemp("chaos") / "study.npz"
    dataset.save(path)
    return path, StudyEnergy(dataset)


@pytest.fixture(scope="module")
def csv_study(tmp_path_factory):
    """Per-user CSV pairs (~20k rows) plus the batch-from-CSV reference."""
    dataset = generate_study(
        StudyConfig(n_users=2, duration_days=2.0, seed=23)
    )
    root = tmp_path_factory.mktemp("chaos_csv")
    pairs = []
    for trace in dataset:
        p = root / f"u{trace.user_id}_packets.csv"
        e = root / f"u{trace.user_id}_events.csv"
        write_packets_csv(p, trace.packets, dataset.registry)
        write_events_csv(e, trace.events, dataset.registry)
        pairs.append((p, e))
    return pairs, StudyEnergy(dataset_from_csv(pairs))


def run_with_recovery(plan, make_ingestor, max_chunks=None):
    """The chaos harness: armed run, then the documented recovery path.

    Phase 1 runs under the plan and is allowed exactly two outcomes —
    completion, or a structured ``TaskFailure``/``StreamError`` abort
    (anything else, a hang included, fails the test). Phase 2 recovers
    disarmed: resume from the checkpoint the abort left behind, falling
    back to a fresh run when the checkpoint itself was the casualty.
    """
    with faults.installed(plan):
        try:
            result = make_ingestor().run(max_chunks=max_chunks)
        except (TaskFailure, StreamError):
            result = None
    if result is None:
        try:
            result = make_ingestor().run(resume=True)
        except StreamError:
            result = make_ingestor().run()
    assert result is not None
    assert not result.failures
    return result


def test_seed_census():
    """The suite ships the promised number of deterministic plans."""
    seeds = (
        CRASH_SEEDS
        + HANG_SEEDS
        + CORRUPT_SEEDS
        + TORN_SEEDS
        + RANDOM_SEEDS
        + TRANSPORT_DROP_SEEDS
        + TRANSPORT_CORRUPT_SEEDS
        + TRANSPORT_HANG_SEEDS
        + TRANSPORT_RAISE_SEEDS
    )
    assert len(seeds) == len(set(seeds)) == 36 >= 20


# ----------------------------------------------------------------------
# Worker crashes (os._exit from inside a fork pool worker)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CRASH_SEEDS)
def test_crash_plans(seed, npz_study, tmp_path):
    path, study = npz_study
    rng = random.Random(seed)
    plan = FaultPlan(
        [FaultSpec("parallel.worker", "crash", hit=1 + seed % 3)], seed=seed
    )
    ckpt = tmp_path / "run.ckpt.npz"
    retries = rng.randint(0, 2)

    def make_ingestor():
        return StreamIngestor(
            NpzStreamSource(path, chunk_size=CHUNK),
            workers=2,
            retries=retries,
            checkpoint_path=ckpt,
        )

    result = run_with_recovery(plan, make_ingestor)
    assert_streams_equal_batch(result, study)


# ----------------------------------------------------------------------
# Hung tasks (worker sleeps far past the per-task timeout)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", HANG_SEEDS)
def test_hang_plans(seed, npz_study, tmp_path):
    path, study = npz_study
    rng = random.Random(seed)
    plan = FaultPlan(
        [FaultSpec("parallel.worker", "hang", hit=1, arg=30.0)], seed=seed
    )
    ckpt = tmp_path / "run.ckpt.npz"
    retries = rng.randint(0, 1)

    def make_ingestor():
        return StreamIngestor(
            NpzStreamSource(path, chunk_size=CHUNK),
            workers=2,
            retries=retries,
            task_timeout=0.75,
            checkpoint_path=ckpt,
        )

    result = run_with_recovery(plan, make_ingestor)
    assert_streams_equal_batch(result, study)


# ----------------------------------------------------------------------
# Corrupted CSV rows (unparseable size field injected mid-stream)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", CORRUPT_SEEDS)
def test_corrupt_row_plans(seed, csv_study, tmp_path):
    """Without quarantine a corrupted row is a hard, typed abort — and
    the checkpoint written on the way out makes the retry cheap."""
    pairs, study = csv_study
    rng = random.Random(seed)
    plan = FaultPlan(
        [FaultSpec("io.packet_row", "corrupt", hit=rng.randint(1, 15000))],
        seed=seed,
    )
    ckpt = tmp_path / "run.ckpt.npz"

    def make_ingestor():
        return StreamIngestor(
            CsvStreamSource(pairs, chunk_size=CHUNK),
            checkpoint_path=ckpt,
        )

    with faults.installed(plan):
        with pytest.raises(StreamError, match="malformed packet row"):
            make_ingestor().run()
    assert ckpt.exists()
    result = make_ingestor().run(resume=True)
    assert_streams_equal_batch(result, study)


# ----------------------------------------------------------------------
# Torn checkpoint writes (truncated mid-write, before the rename)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", TORN_SEEDS)
def test_torn_checkpoint_plans(seed, npz_study, tmp_path):
    path, study = npz_study
    rng = random.Random(seed)
    fraction = rng.uniform(0.2, 0.8)
    ckpt = tmp_path / "run.ckpt.npz"

    def make_ingestor(metrics=None):
        return StreamIngestor(
            NpzStreamSource(path, chunk_size=CHUNK),
            checkpoint_path=ckpt,
            checkpoint_every=2 if seed % 2 else 0,
            metrics=metrics,
        )

    if seed % 2 == 0:
        # Only save is the kill-point save, and it tears: the checksum
        # must reject it and the recovery is a fresh, full run.
        plan = FaultPlan(
            [FaultSpec("checkpoint.save", "torn", hit=1, arg=fraction)],
            seed=seed,
        )
        with faults.installed(plan):
            assert make_ingestor().run(max_chunks=4) is None
        with pytest.raises(StreamError):
            make_ingestor().run(resume=True)
        result = make_ingestor().run()
    else:
        # The second save tears; the first survives as ``.prev`` and
        # resume silently falls back to it.
        plan = FaultPlan(
            [FaultSpec("checkpoint.save", "torn", hit=2, arg=fraction)],
            seed=seed,
        )
        with faults.installed(plan):
            assert make_ingestor().run(max_chunks=4) is None
        metrics = RunMetrics()
        result = make_ingestor(metrics).run(resume=True)
        assert metrics.counter("faults.checkpoint_fallback") == 1
    assert_streams_equal_batch(result, study)


# ----------------------------------------------------------------------
# Sharded ingestion under fire (repro.shard)
# ----------------------------------------------------------------------
SHARD_KILL_SEEDS = [200, 201, 202]


@pytest.mark.parametrize("seed", SHARD_KILL_SEEDS)
def test_shard_worker_killed_mid_ingest(seed, npz_study, tmp_path):
    """A shard-executor process crashes mid-ingest. The run surfaces a
    typed ShardError naming the shard, the merge refuses the partial
    state, and the documented recovery — rerun the same command —
    resumes from the per-shard checkpoints to an exact merge."""
    path, study = npz_study
    rng = random.Random(seed)
    manifest = ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK), 3
    )
    shard_dir = tmp_path / "shards"
    plan = FaultPlan(
        [
            FaultSpec(
                "parallel.worker", "crash", hit=1 + rng.randint(0, 2)
            )
        ],
        seed=seed,
    )
    with faults.installed(plan):
        try:
            run_all_shards(
                manifest,
                shard_dir,
                shard_workers=2,
                checkpoint_every=1,
            )
            completed = True
        except ShardError:
            completed = False
    if not completed:
        # The partial state must never merge silently.
        with pytest.raises((ShardIncomplete, StreamError)):
            merge_shard_checkpoints(manifest, shard_dir)
        run_all_shards(
            manifest, shard_dir, shard_workers=2, checkpoint_every=1
        )
    result = merged_readout(manifest, shard_dir)
    assert_streams_equal_batch(result, study)


def test_torn_shard_manifest_refused(npz_study, tmp_path):
    """A manifest write torn mid-file (the ``shard.manifest`` fault
    site) fails digest verification on load — never a half-read plan."""
    path, _ = npz_study
    manifest = ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK), 2
    )
    out = tmp_path / "plan.json"
    plan = FaultPlan(
        [FaultSpec("shard.manifest", "torn", hit=1, arg=0.5)], seed=5
    )
    with faults.installed(plan):
        manifest.save(out)
    with pytest.raises(StreamError):
        ShardManifest.load(out)
    # The rewrite (disarmed) heals the plan in place.
    manifest.save(out)
    assert ShardManifest.load(out).digest() == manifest.digest()


def test_corrupt_shard_checkpoint_never_merges_wrong(npz_study, tmp_path):
    """Corrupt bytes in one shard's checkpoint: the merge refuses with
    a typed error naming the shard, the rerun fails typed too (the
    corruption is detected, not resumed into), and after clearing the
    bad file the plan converges to an exact merge."""
    path, study = npz_study
    manifest = ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK), 2
    )
    shard_dir = tmp_path / "shards"
    for index in range(2):
        run_shard(manifest, index, shard_dir)
    victim = shard_checkpoint_path(shard_dir, 1)
    victim.write_bytes(b"\x00" * 128)
    with pytest.raises(ShardIncomplete) as excinfo:
        merge_shard_checkpoints(manifest, shard_dir)
    assert excinfo.value.indices == [1]
    with pytest.raises(StreamError):
        run_shard(manifest, 1, shard_dir)
    victim.unlink()
    run_shard(manifest, 1, shard_dir)
    assert_streams_equal_batch(
        merged_readout(manifest, shard_dir), study
    )


# ----------------------------------------------------------------------
# Remote transport under fire (repro.shard.transport)
# ----------------------------------------------------------------------
# These plans hit the three transport fault sites with every action
# that is safe to fire in-process (``crash`` would ``os._exit`` the
# test runner; the worker-process crash lives in
# tests/test_transport.py with real subprocess workers). The bar is
# the same as everywhere else in this file: faults may cost retries
# and reassignment, never correctness — the merged readout must stay
# ``array_equal`` to the fault-free batch reference.

from test_transport import worker_pool  # noqa: E402

from repro.shard import HttpTransport  # noqa: E402


def run_http_sharded(manifest, shard_dir, tmp_path, **transport_kw):
    """Dispatch over a 2-worker in-process pool and return the merge."""
    with worker_pool(tmp_path / "pool", count=2) as (urls, _servers):
        HttpTransport(urls, **transport_kw).dispatch(manifest, shard_dir)
    return merged_readout(manifest, shard_dir)


@pytest.mark.parametrize("seed", TRANSPORT_DROP_SEEDS)
def test_transport_dropped_dispatch_plans(seed, npz_study, tmp_path):
    """A shard POST evaporates before reaching any worker (the
    ``transport.dispatch`` site). The scheduler retries the shard and
    the merge is exact."""
    path, study = npz_study
    rng = random.Random(seed)
    manifest = ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK), 3
    )
    plan = FaultPlan(
        [
            FaultSpec(
                "transport.dispatch", "drop", hit=1 + rng.randint(0, 2)
            )
        ],
        seed=seed,
    )
    metrics = RunMetrics()
    with faults.installed(plan):
        with worker_pool(tmp_path / "pool", count=2) as (urls, _servers):
            HttpTransport(urls, retries=4).dispatch(
                manifest, tmp_path / "shards", metrics=metrics
            )
    counters = metrics.as_dict()["counters"]
    assert counters["transport.dropped_dispatches"] == 1
    result = merged_readout(manifest, tmp_path / "shards")
    assert_streams_equal_batch(result, study)


@pytest.mark.parametrize("seed", TRANSPORT_CORRUPT_SEEDS)
def test_transport_corrupt_download_plans(seed, npz_study, tmp_path):
    """A checkpoint download corrupts in flight (the
    ``transport.collect`` site). The checksum rejects it before it
    lands, the re-download is clean, and the merge is exact."""
    path, study = npz_study
    rng = random.Random(seed)
    manifest = ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK), 3
    )
    plan = FaultPlan(
        [
            FaultSpec(
                "transport.collect", "corrupt", hit=1 + rng.randint(0, 2)
            )
        ],
        seed=seed,
    )
    metrics = RunMetrics()
    with faults.installed(plan):
        with worker_pool(tmp_path / "pool", count=2) as (urls, _servers):
            HttpTransport(urls, retries=4).dispatch(
                manifest, tmp_path / "shards", metrics=metrics
            )
    counters = metrics.as_dict()["counters"]
    assert counters["transport.corrupt_checkpoints"] == 1
    result = merged_readout(manifest, tmp_path / "shards")
    assert_streams_equal_batch(result, study)


@pytest.mark.parametrize("seed", TRANSPORT_HANG_SEEDS)
def test_transport_worker_hang_plans(seed, npz_study, tmp_path):
    """A worker stalls mid-shard, single-flight lock held (the
    ``transport.worker`` site, ``hang``). The coordinator times the
    attempt out and reassigns; the eventual merge is exact."""
    path, study = npz_study
    manifest = ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK), 3
    )
    plan = FaultPlan(
        [FaultSpec("transport.worker", "hang", hit=1, arg=1.0)],
        seed=seed,
    )
    with faults.installed(plan):
        result = run_http_sharded(
            manifest,
            tmp_path / "shards",
            tmp_path,
            retries=6,
            timeout=0.3,
        )
    assert_streams_equal_batch(result, study)


@pytest.mark.parametrize("seed", TRANSPORT_RAISE_SEEDS)
def test_transport_worker_raise_plans(seed, npz_study, tmp_path):
    """A worker's shard handler dies with an unhandled exception (the
    ``transport.worker`` site, ``raise``): the connection drops without
    a response, the coordinator retries, the merge is exact."""
    path, study = npz_study
    manifest = ShardManifest.plan(
        NpzStreamSource(path, chunk_size=CHUNK), 3
    )
    plan = FaultPlan(
        [FaultSpec("transport.worker", "raise", hit=1)], seed=seed
    )
    with faults.installed(plan):
        result = run_http_sharded(
            manifest, tmp_path / "shards", tmp_path, retries=6
        )
    assert_streams_equal_batch(result, study)


# ----------------------------------------------------------------------
# Live-follow kills (repro.follow): eviction, checkpoint rotation, tail
# ----------------------------------------------------------------------
FOLLOW_EVICT_SEEDS = [300, 301]
FOLLOW_TORN_SEEDS = [310, 311]
FOLLOW_TAIL_SEEDS = [320, 321]

FOLLOW_WINDOWS = (WindowSpec("lastfour", 14400, 3600),)


def make_follower(pairs, checkpoint, metrics=None):
    """A follower with cadence checkpoints off — every save in these
    plans is a deliberate one (on stop, error, or idle)."""
    return Follower(
        TailCsvSource(pairs, chunk_size=512),
        checkpoint_path=checkpoint,
        windows=FOLLOW_WINDOWS,
        checkpoint_every=10**6,
        poll_interval=0.0,
        metrics=metrics,
        emit=lambda line: None,
    )


def follow_state(follower):
    """What resume identity is judged on: the headline log plus each
    ring's final evaluated bucket and exact fold digest."""
    return (
        list(follower.headline_log),
        {
            name: (ring.last_evaluated, ring.fold_digest(ring.last_evaluated))
            for name, ring in follower.rings.items()
        },
    )


@pytest.fixture(scope="module")
def follow_reference(csv_study, tmp_path_factory):
    """The uninterrupted follow over the chaos CSVs."""
    pairs, _ = csv_study
    checkpoint = tmp_path_factory.mktemp("follow_ref") / "follow.npz"
    follower = make_follower(pairs, checkpoint)
    assert follower.run(idle_exit=2) == "idle"
    return follow_state(follower)


@pytest.mark.parametrize("seed", FOLLOW_EVICT_SEEDS)
def test_follow_killed_during_eviction(seed, csv_study, follow_reference, tmp_path):
    """The fault strikes inside ``WindowRing.evict_through`` — after a
    window evaluation, before its buckets drop. The error path must
    still checkpoint, and the resume must replay to the exact windows
    and headlines of the uninterrupted run."""
    pairs, _ = csv_study
    checkpoint = tmp_path / "follow.npz"
    plan = FaultPlan([FaultSpec("follow.evict", "raise", hit=1)], seed=seed)
    with faults.installed(plan):
        with pytest.raises(FaultInjected):
            make_follower(pairs, checkpoint).run(idle_exit=2)
    assert checkpoint.exists()
    resumed = make_follower(pairs, checkpoint)
    assert resumed.run(resume=True, idle_exit=2) == "idle"
    assert follow_state(resumed) == follow_reference


@pytest.mark.parametrize("seed", FOLLOW_TORN_SEEDS)
def test_follow_torn_checkpoint_rotation(seed, csv_study, follow_reference, tmp_path):
    """A checkpoint save torn mid-rotation: the torn file has replaced
    the good generation, which survives as ``.prev``. Resume falls back
    to it silently and converges to the uninterrupted state."""
    pairs, _ = csv_study
    checkpoint = tmp_path / "follow.npz"
    rng = random.Random(seed)
    first = make_follower(pairs, checkpoint)
    assert first.run(max_polls=1) == "stopped"  # save #1, intact
    plan = FaultPlan(
        [
            FaultSpec(
                "checkpoint.save", "torn", hit=1, arg=rng.uniform(0.2, 0.8)
            )
        ],
        seed=seed,
    )
    with faults.installed(plan):
        # This run's only save (at stop) tears, rotating save #1 to
        # ``.prev`` and leaving a corrupt current file.
        second = make_follower(pairs, checkpoint)
        assert second.run(resume=True, max_polls=1) == "stopped"
    metrics = RunMetrics()
    final = make_follower(pairs, checkpoint, metrics=metrics)
    assert final.run(resume=True, idle_exit=2) == "idle"
    assert metrics.counter("faults.checkpoint_fallback") == 1
    assert follow_state(final) == follow_reference


@pytest.mark.parametrize("seed", FOLLOW_TAIL_SEEDS)
def test_follow_killed_during_partial_tail_read(
    seed, csv_study, follow_reference, tmp_path
):
    """The fault strikes a tail poll — after some users were polled,
    with their chunks pending but unprocessed. Dropped pending chunks
    were never cursor-adopted, so the resumed tail re-reads them."""
    pairs, _ = csv_study
    checkpoint = tmp_path / "follow.npz"
    plan = FaultPlan(
        [FaultSpec("follow.tail", "raise", hit=1 + seed % 2)], seed=seed
    )
    with faults.installed(plan):
        with pytest.raises(FaultInjected):
            make_follower(pairs, checkpoint).run(idle_exit=2)
    assert checkpoint.exists()
    resumed = make_follower(pairs, checkpoint)
    assert resumed.run(resume=True, idle_exit=2) == "idle"
    assert follow_state(resumed) == follow_reference


# ----------------------------------------------------------------------
# Randomised plans (multiple faults, sites and hit counts per seed)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", RANDOM_SEEDS)
def test_random_plans(seed, npz_study, tmp_path):
    path, study = npz_study
    plan = FaultPlan.random(seed)
    ckpt = tmp_path / "run.ckpt.npz"

    def make_ingestor():
        return StreamIngestor(
            NpzStreamSource(path, chunk_size=CHUNK),
            workers=2,
            retries=3,
            task_timeout=1.0,
            checkpoint_path=ckpt,
        )

    result = run_with_recovery(plan, make_ingestor)
    assert_streams_equal_batch(result, study)
