"""End-to-end integration: the paper's qualitative claims hold on a
generated study.

These tests run on the shared medium fixture (8 users x 21 days) and
check *shapes* — who wins, by what order, where the mass lies — not the
paper's absolute numbers (see EXPERIMENTS.md for the full-scale
comparison).
"""

import numpy as np
import pytest

from repro.core.casestudies import case_study_table
from repro.core.popularity import top10_appearance_counts, top_consumers
from repro.core.statefrac import (
    background_energy_fraction,
    state_energy_fractions,
    state_energy_share,
)
from repro.core.transitions import (
    bytes_since_foreground,
    first_minute_fractions,
    fraction_of_apps_above,
    persistence_durations,
)
from repro.core.whatif import kill_policy_savings, total_savings
from repro.trace.events import ProcessState


def test_background_dominates_study_energy(medium_study):
    """§4: 84% of network energy is consumed in background states."""
    frac = background_energy_fraction(medium_study)
    assert 0.65 <= frac <= 0.95


def test_perceptible_minor_service_major(medium_study):
    """§4: perceptible is a small slice; service is a large one."""
    share = state_energy_share(medium_study)
    assert share[ProcessState.PERCEPTIBLE] < 0.15
    assert share[ProcessState.SERVICE] > 0.2


def test_top12_apps_mostly_background(medium_study):
    """Fig 3: for all but ~3 of the twelve hungry apps, background
    energy exceeds half of the app's total."""
    fractions = state_energy_fractions(medium_study)
    bg_states = (
        ProcessState.PERCEPTIBLE,
        ProcessState.SERVICE,
        ProcessState.BACKGROUND,
    )
    majority_bg = sum(
        1
        for by_state in fractions.values()
        if sum(by_state[s] for s in bg_states) > 0.5
    )
    assert majority_bg >= 8


def test_chrome_background_share(medium_study):
    """§4.1: about 30% of Chrome's energy is background."""
    frac = background_energy_fraction(medium_study, "com.android.chrome")
    assert 0.15 <= frac <= 0.55


def test_first_minute_criterion(medium_dataset):
    """§4.1: >80% of apps send >80% of bg bytes in the first minute."""
    fractions = first_minute_fractions(medium_dataset)
    assert fraction_of_apps_above(fractions, 0.8) >= 0.6


def test_persistence_heavy_tail(medium_dataset):
    """Fig 5: persistence is heavy-tailed, with multi-hour stragglers."""
    samples = persistence_durations(medium_dataset, app="com.android.chrome")
    durations = np.sort([s.duration for s in samples])
    assert durations[len(durations) // 2] < 5 * 60.0
    assert durations[-1] > 30 * 60.0


def test_fig6_shape(medium_dataset):
    """Fig 6: heavy first minute, periodic 5-min structure, long tail."""
    edges, totals = bytes_since_foreground(medium_dataset, bin_seconds=10.0)
    first_minute = totals[edges < 60].sum()
    any_other_minute = max(
        totals[(edges >= 60 * k) & (edges < 60 * (k + 1))].sum()
        for k in range(1, 30)
    )
    assert first_minute > any_other_minute
    # Phase-locked periodic structure: bins at multiples of 300 s carry
    # far more than their immediate neighbours on average.
    multiples = [k * 300.0 for k in range(2, 20)]
    on_peak = np.mean([totals[(edges >= m) & (edges < m + 10)].sum() for m in multiples])
    off_peak = np.mean(
        [totals[(edges >= m + 30) & (edges < m + 40)].sum() for m in multiples]
    )
    assert on_peak > 2 * off_peak
    # Long tail: background traffic continues past an hour.
    assert totals[edges > 3600].sum() > 0


def test_table1_orderings(medium_study):
    """Table 1: the paper's efficiency orderings between app pairs."""
    rows = {r.app: r for r in case_study_table(medium_study)}

    def get(name):
        row = rows.get(name)
        if row is None:
            pytest.skip(f"{name} absent from sampled study")
        return row

    weibo = get("com.sina.weibo")
    twitter = get("com.twitter.android")
    assert weibo.joules_per_mb > 10 * twitter.joules_per_mb
    assert weibo.joules_per_day > twitter.joules_per_day

    app = get("com.accuweather.android")
    widget = get("com.accuweather.widget")
    assert app.joules_per_day > 3 * widget.joules_per_day
    assert app.joules_per_mb > widget.joules_per_mb


def test_podcast_strategies(medium_study):
    """Table 1: chunked downloads (Podcastaddict) cost more energy than
    whole-episode downloads (Pocketcasts)."""
    rows = {r.app: r for r in case_study_table(medium_study)}
    chunked = rows.get("com.bambuna.podcastaddict")
    whole = rows.get("au.com.shiftyjelly.pocketcasts")
    if chunked is None or whole is None:
        pytest.skip("podcast apps absent from sampled study")
    assert chunked.joules_per_mb > whole.joules_per_mb


def test_table2_shape(medium_study):
    """Table 2: rarely-used apps have high background-only-day shares
    and meaningful kill savings; per-app savings far exceed the total."""
    weibo = kill_policy_savings(medium_study, "com.sina.weibo")
    assert weibo.pct_background_only_days > 50.0
    assert weibo.avg_energy_reduction_pct > 25.0
    overall = total_savings(medium_study)
    assert overall.overall_pct < weibo.avg_energy_reduction_pct


def test_fig1_universal_and_diverse(medium_dataset):
    counts = top10_appearance_counts(medium_dataset, min_users=1)
    n_users = len(medium_dataset)
    universal = [a for a, c in counts.items() if c >= 0.75 * n_users]
    assert universal  # media player / Facebook / Google Play analogues
    assert len(counts) >= 3 * len(universal)  # diverse tail


def test_fig2_energy_data_decoupled(medium_study):
    by_energy = {r.app: i for i, r in enumerate(top_consumers(medium_study, 15, "energy"))}
    by_data = {r.app: i for i, r in enumerate(top_consumers(medium_study, 15, "data"))}
    common = set(by_energy) & set(by_data)
    assert any(abs(by_energy[a] - by_data[a]) >= 3 for a in common)
