"""The run-metrics layer."""

import json

import pytest

from repro.metrics import RunMetrics


def test_stage_accumulates_time_and_calls():
    metrics = RunMetrics()
    with metrics.stage("work"):
        pass
    with metrics.stage("work"):
        pass
    report = metrics.as_dict()
    assert report["stages"]["work"]["calls"] == 2
    assert report["stages"]["work"]["seconds"] >= 0.0
    assert metrics.stage_seconds("work") >= 0.0
    assert metrics.stage_seconds("never-ran") == 0.0


def test_stage_records_even_on_exception():
    metrics = RunMetrics()
    with pytest.raises(RuntimeError):
        with metrics.stage("boom"):
            raise RuntimeError("x")
    assert metrics.as_dict()["stages"]["boom"]["calls"] == 1


def test_counters():
    metrics = RunMetrics()
    metrics.count("packets", 10)
    metrics.count("packets", 5)
    metrics.count("users")
    assert metrics.counter("packets") == 15
    assert metrics.counter("users") == 1
    assert metrics.counter("missing") == 0


def test_rate_requires_both_series():
    metrics = RunMetrics()
    assert metrics.rate("packets", "attribute") is None
    metrics.count("packets", 100)
    assert metrics.rate("packets", "attribute") is None
    with metrics.stage("attribute"):
        sum(range(1000))
    rate = metrics.rate("packets", "attribute")
    assert rate is not None and rate > 0


def test_derived_rates_in_report():
    metrics = RunMetrics()
    metrics.count("attribution.packets", 1000)
    with metrics.stage("attribute"):
        sum(range(1000))
    report = metrics.as_dict()
    assert report["derived"]["attribute_packets_per_s"] > 0
    assert "generate_packets_per_s" not in report["derived"]


def test_wall_time_monotonic():
    metrics = RunMetrics()
    first = metrics.wall_time
    assert first >= 0.0
    assert metrics.wall_time >= first


def test_json_round_trip(tmp_path):
    metrics = RunMetrics()
    metrics.count("n", 3)
    parsed = json.loads(metrics.to_json())
    assert parsed["counters"] == {"n": 3}
    out = tmp_path / "metrics.json"
    metrics.write_json(out)
    assert json.loads(out.read_text())["counters"] == {"n": 3}


def test_write_json_dash_prints(capsys):
    metrics = RunMetrics()
    metrics.write_json("-")
    assert '"wall_time_s"' in capsys.readouterr().out


def test_cli_metrics_json_flag(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "m.json"
    rc = main(
        [
            "figure",
            "1",
            "--users",
            "2",
            "--days",
            "2",
            "--metrics-json",
            str(out),
        ]
    )
    assert rc == 0
    report = json.loads(out.read_text())
    assert "generate" in report["stages"]
    assert "command" in report["stages"]
    assert report["counters"]["generation.packets"] > 0
