"""Concrete behaviours: traffic shape checks."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.units import HOUR, MINUTE
from repro.workload.behavior import ConnAllocator, TrafficContext
from repro.workload.behaviors import (
    BulkDownloadBehavior,
    ForegroundSessionBehavior,
    LingeringForegroundBehavior,
    PeriodicUpdateBehavior,
    PostSessionSyncBehavior,
    PushNotificationBehavior,
    StreamingBehavior,
)
from repro.workload.rng import substream


def ctx():
    return TrafficContext(1, 1, ConnAllocator(), study_duration=7 * 86400.0)


def rng(key="x"):
    return substream(99, key)


class TestPeriodicUpdate:
    def test_update_count(self):
        b = PeriodicUpdateBehavior(period=300.0, bytes_per_update=1000.0)
        block = b.generate(0.0, 3600.0, ctx(), rng())
        bursts = len(block) / b.packets_per_burst
        assert bursts == pytest.approx(11, abs=1)  # phase=period -> ~11

    def test_first_update_one_period_in(self):
        b = PeriodicUpdateBehavior(
            period=300.0, bytes_per_update=1000.0, jitter_fraction=0.0
        )
        block = b.generate(1000.0, 3000.0, ctx(), rng())
        assert block.timestamps.min() == pytest.approx(1300.0)

    def test_conn_rotation(self):
        b = PeriodicUpdateBehavior(
            period=60.0, bytes_per_update=1000.0, conn_lifetime=600.0
        )
        block = b.generate(0.0, 3600.0, ctx(), rng())
        assert len(np.unique(block.conns)) >= 5

    def test_short_window_empty(self):
        b = PeriodicUpdateBehavior(period=300.0, bytes_per_update=1000.0)
        assert len(b.generate(0.0, 100.0, ctx(), rng())) == 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PeriodicUpdateBehavior(period=0.0, bytes_per_update=10.0)
        with pytest.raises(WorkloadError):
            PeriodicUpdateBehavior(period=10.0, bytes_per_update=-1.0)
        with pytest.raises(WorkloadError):
            PeriodicUpdateBehavior(period=10.0, bytes_per_update=1.0, conn_lifetime=0)

    def test_describe(self):
        assert "300" in PeriodicUpdateBehavior(300.0, 10.0).describe()


class TestPush:
    def test_keepalives_dominate_count(self):
        b = PushNotificationBehavior(
            keepalive_period=300.0, push_mean_interval=6 * HOUR
        )
        block = b.generate(0.0, 6 * HOUR, ctx(), rng())
        # ~71 keepalives, ~1 push; 2 packets per burst.
        assert len(block) >= 2 * 60

    def test_nearly_empty_requests(self):
        b = PushNotificationBehavior(keepalive_period=300.0, keepalive_bytes=200.0)
        block = b.generate(0.0, 2 * HOUR, ctx(), rng())
        # Median burst is tiny even though pushes are bigger.
        assert np.median(block.sizes) < 500

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PushNotificationBehavior(keepalive_period=0.0)


class TestStreaming:
    def test_first_chunk_at_start(self):
        b = StreamingBehavior(chunk_interval=600.0, chunk_bytes=1e6)
        block = b.generate(100.0, 2000.0, ctx(), rng())
        assert block.timestamps.min() < 110.0

    def test_bytes_scale_with_duration(self):
        b = StreamingBehavior(chunk_interval=300.0, chunk_bytes=1e6)
        short = b.generate(0.0, 600.0, ctx(), rng("a")).total_bytes
        long = b.generate(0.0, 6000.0, ctx(), rng("a")).total_bytes
        assert long > 5 * short

    def test_validation(self):
        with pytest.raises(WorkloadError):
            StreamingBehavior(chunk_interval=0.0, chunk_bytes=1.0)


class TestBulkDownload:
    def test_one_download_at_window_start(self):
        b = BulkDownloadBehavior(download_bytes=50e6, probability=1.0)
        block = b.generate(500.0, 4000.0, ctx(), rng())
        assert block.total_bytes == pytest.approx(50e6, rel=0.4)
        assert block.timestamps.min() >= 500.0
        assert block.timestamps.max() <= 500.0 + 2 * b.duration

    def test_probability_zero(self):
        b = BulkDownloadBehavior(download_bytes=1e6, probability=0.0)
        assert len(b.generate(0.0, 1000.0, ctx(), rng())) == 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            BulkDownloadBehavior(download_bytes=0.0)
        with pytest.raises(WorkloadError):
            BulkDownloadBehavior(download_bytes=1.0, probability=2.0)


class TestForeground:
    def test_session_always_has_traffic(self):
        b = ForegroundSessionBehavior(burst_mean_interval=600.0)
        block = b.generate(0.0, 30.0, ctx(), rng())
        assert len(block) >= 1

    def test_burst_rate(self):
        b = ForegroundSessionBehavior(burst_mean_interval=10.0)
        block = b.generate(0.0, 10_000.0, ctx(), rng())
        bursts = len(block) / 4
        assert bursts == pytest.approx(1000, rel=0.2)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ForegroundSessionBehavior(burst_mean_interval=0.0)
        with pytest.raises(WorkloadError):
            ForegroundSessionBehavior(conns_per_session=0)


class TestPostSessionSync:
    def test_sync_lands_in_first_minute(self):
        b = PostSessionSyncBehavior(sync_bytes=1000.0, probability=1.0)
        for i in range(20):
            block = b.generate(100.0, 10_000.0, ctx(), rng(f"s{i}"))
            if len(block):
                assert block.timestamps.min() < 160.0

    def test_probability_respected(self):
        b = PostSessionSyncBehavior(probability=0.0)
        assert len(b.generate(0.0, 1000.0, ctx(), rng())) == 0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PostSessionSyncBehavior(sync_bytes=0.0)


class TestLingering:
    def test_requests_follow_transition(self):
        b = LingeringForegroundBehavior(
            probability=1.0, median_duration=600.0, sigma=0.01, request_period=10.0
        )
        block = b.generate(0.0, 10_000.0, ctx(), rng())
        assert len(block) > 0
        # All traffic within the drawn duration (~600 s) of the transition.
        assert block.timestamps.max() < 700.0

    def test_heavy_tail_produces_long_episodes(self):
        b = LingeringForegroundBehavior(
            probability=1.0, median_duration=120.0, sigma=2.2, request_period=30.0
        )
        durations = [b.draw_duration(rng(f"d{i}")) for i in range(300)]
        assert max(durations) > 3600.0  # hours-long stragglers exist
        assert float(np.median(durations)) == pytest.approx(120.0, rel=0.5)

    def test_truncated_by_episode_end(self):
        b = LingeringForegroundBehavior(
            probability=1.0, median_duration=1e6, sigma=0.01, request_period=5.0
        )
        block = b.generate(0.0, 100.0, ctx(), rng())
        assert block.timestamps.max() < 100.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            LingeringForegroundBehavior(probability=1.5)
        with pytest.raises(WorkloadError):
            LingeringForegroundBehavior(median_duration=0.0)
