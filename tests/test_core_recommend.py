"""§6 recommendation engine."""

import pytest

from repro.core.recommend import (
    Diagnosis,
    recommend,
    recommendation_report,
)
from repro.errors import AnalysisError


def test_chatty_updater_gets_batching_advice(medium_study):
    rec = recommend(medium_study, "com.sina.weibo")
    assert Diagnosis.CHATTY_BACKGROUND in rec.diagnoses
    assert rec.batching_saving_pct > 40.0
    assert rec.update_interval == pytest.approx(420.0, rel=0.3)


def test_idle_drainer_gets_kill_advice(medium_study):
    rec = recommend(medium_study, "com.sina.weibo")
    assert Diagnosis.IDLE_DRAIN in rec.diagnoses
    assert rec.kill_saving_pct > 20.0


def test_chrome_gets_lingering_advice(medium_study):
    rec = recommend(medium_study, "com.android.chrome")
    assert Diagnosis.LINGERING_FOREGROUND in rec.diagnoses
    assert rec.lingering_energy_fraction > 0.10


def test_clean_browser_not_flagged_for_lingering(medium_study):
    rec = recommend(medium_study, "org.mozilla.firefox")
    assert Diagnosis.LINGERING_FOREGROUND not in rec.diagnoses


def test_describe_mentions_primary(medium_study):
    rec = recommend(medium_study, "com.sina.weibo")
    text = rec.describe()
    assert "com.sina.weibo" in text
    assert rec.primary.value in text


def test_unknown_app(medium_study):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        recommend(medium_study, "no.such.app")


def test_report_ranks_by_energy(medium_study):
    recs = recommendation_report(medium_study, top_n=8)
    assert len(recs) == 8
    energies = [r.total_energy for r in recs]
    assert energies == sorted(energies, reverse=True)


def test_report_explicit_apps(medium_study):
    recs = recommendation_report(
        medium_study, apps=["com.android.chrome", "com.sina.weibo"]
    )
    assert [r.app for r in recs] == ["com.android.chrome", "com.sina.weibo"]
