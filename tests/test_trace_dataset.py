"""UserTrace, AppRegistry and Dataset persistence."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.dataset import AppInfo, AppRegistry, Dataset
from repro.trace.events import EventLog, ProcessState, ProcessStateEvent, ScreenEvent, UserInputEvent
from repro.trace.packet import Direction
from repro.trace.trace import UserTrace

from conftest import make_packets


def _registry():
    return AppRegistry([AppInfo(1, "app.one", "social"), AppInfo(2, "app.two", "game")])


def _trace(user_id=1):
    packets = make_packets(
        [
            (10.0, 100, Direction.UPLINK, 1),
            (20.0, 200, Direction.DOWNLINK, 2),
        ]
    )
    events = EventLog(
        process_events=[ProcessStateEvent(5.0, 1, ProcessState.FOREGROUND)],
        screen_events=[ScreenEvent(5.0, True)],
        input_events=[UserInputEvent(6.0, 1)],
    )
    return UserTrace(user_id, 0.0, 100.0, packets, events)


def test_registry_lookup():
    reg = _registry()
    assert reg.id_of("app.one") == 1
    assert reg.name_of(2) == "app.two"
    assert "app.one" in reg
    assert 1 in reg
    assert "missing" not in reg
    assert len(reg) == 2
    assert [a.name for a in reg] == ["app.one", "app.two"]


def test_registry_rejects_duplicates():
    reg = _registry()
    with pytest.raises(TraceError):
        reg.add(AppInfo(1, "other", "x"))
    with pytest.raises(TraceError):
        reg.add(AppInfo(3, "app.one", "x"))


def test_registry_register_assigns_next_id():
    reg = _registry()
    info = reg.register("app.three", "tools")
    assert info.app_id == 3


def test_registry_unknown_lookups():
    reg = _registry()
    with pytest.raises(TraceError):
        reg.by_id(99)
    with pytest.raises(TraceError):
        reg.by_name("nope")


def test_registry_categories_and_json():
    reg = _registry()
    assert [a.name for a in reg.in_category("game")] == ["app.two"]
    restored = AppRegistry.from_json(reg.to_json())
    assert restored.name_of(1) == "app.one"
    assert restored.by_id(2).category == "game"


def test_trace_basics():
    trace = _trace()
    assert trace.duration == 100.0
    assert trace.app_ids() == [1, 2]
    assert len(trace.packets_for_app(1)) == 1
    trace.validate()


def test_trace_rejects_reversed_window():
    with pytest.raises(TraceError):
        UserTrace(1, 10.0, 5.0, make_packets([]), EventLog())


def test_trace_validate_packets_outside_window():
    packets = make_packets([(500.0, 10, Direction.UPLINK, 1)])
    trace = UserTrace(1, 0.0, 100.0, packets, EventLog())
    with pytest.raises(TraceError):
        trace.validate()


def test_trace_label_states():
    trace = _trace()
    trace.label_states()
    labelled = trace.packets.for_app(1)
    assert ProcessState(int(labelled.states[0])) is ProcessState.FOREGROUND


def test_trace_flow_cache():
    trace = _trace()
    table1 = trace.flows()
    assert trace.flows() is table1
    trace.invalidate_flows()
    assert trace.flows() is not table1


def test_dataset_roundtrip(tmp_path):
    dataset = Dataset(_registry(), [_trace(1), _trace(2)], {"seed": 7})
    path = tmp_path / "study.npz"
    dataset.save(path)
    restored = Dataset.load(path)
    assert len(restored) == 2
    assert restored.metadata == {"seed": 7}
    assert restored.registry.name_of(1) == "app.one"
    original = dataset.user(1)
    loaded = restored.user(1)
    assert np.array_equal(original.packets.data, loaded.packets.data)
    assert len(loaded.events.process_events) == 1
    assert loaded.events.screen_events[0].on is True
    assert loaded.events.input_events[0].app == 1
    restored.validate()


def test_dataset_unknown_user():
    dataset = Dataset(_registry(), [_trace(1)])
    with pytest.raises(TraceError):
        dataset.user(9)


def test_dataset_totals():
    dataset = Dataset(_registry(), [_trace(1), _trace(2)])
    assert dataset.total_packets == 4
    assert dataset.total_bytes == 600


def test_dataset_validate_checks_registry():
    packets = make_packets([(1.0, 10, Direction.UPLINK, 42)])
    trace = UserTrace(1, 0.0, 10.0, packets, EventLog())
    dataset = Dataset(_registry(), [trace])
    with pytest.raises(TraceError):
        dataset.validate()


def test_append_user_and_extend():
    dataset = Dataset(_registry(), [_trace(1)])
    dataset.append_user(_trace(2))
    assert [t.user_id for t in dataset.users] == [1, 2]
    dataset.extend([_trace(3), _trace(4)])
    assert [t.user_id for t in dataset.users] == [1, 2, 3, 4]
    dataset.validate()


def test_append_user_rejects_duplicate_id():
    dataset = Dataset(_registry(), [_trace(1)])
    with pytest.raises(TraceError):
        dataset.append_user(_trace(1))
    with pytest.raises(TraceError):
        dataset.extend([_trace(2), _trace(2)])


def test_fingerprint_cached_and_invalidated_by_mutation():
    dataset = Dataset(_registry(), [_trace(1)])
    before = dataset.fingerprint()
    # Cached: repeated calls return the same digest object state.
    assert dataset.fingerprint() == before
    dataset.append_user(_trace(2))
    after = dataset.fingerprint()
    assert after != before
    dataset.extend([_trace(3)])
    assert dataset.fingerprint() != after


def test_label_states_invalidates_fingerprint():
    dataset = Dataset(_registry(), [_trace(1)])
    before = dataset.fingerprint()
    dataset.label_states()
    assert dataset.fingerprint() != before


def test_stale_fingerprint_cannot_poison_cache_key():
    """Regression: a mutated dataset must never reuse the pre-mutation
    attribution cache key, or cached per-user payloads for the old
    dataset would be served for the new one."""
    from repro.core.cache import study_cache_key
    from repro.radio.attribution import TailPolicy
    from repro.radio.lte import LTE_DEFAULT

    dataset = Dataset(_registry(), [_trace(1)])
    key_before = study_cache_key(
        dataset, LTE_DEFAULT, TailPolicy.LAST_PACKET
    )
    dataset.append_user(_trace(2))
    key_after = study_cache_key(
        dataset, LTE_DEFAULT, TailPolicy.LAST_PACKET
    )
    assert key_after != key_before
