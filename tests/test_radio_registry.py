"""Radio model registry."""

import pytest

from repro.errors import ModelError
from repro.radio.registry import available_models, get_model


def test_available_models():
    names = available_models()
    for expected in ("lte", "lte-fd", "umts", "wifi", "3g", "lte-drx"):
        assert expected in names


def test_get_model_names_match():
    assert get_model("lte").name == "lte"
    assert get_model("LTE").name == "lte"
    assert get_model("3g").name == "umts"
    assert get_model("wifi").name == "wifi"
    assert get_model("lte-fd").tail_duration < get_model("lte").tail_duration


def test_unknown_model():
    with pytest.raises(ModelError):
        get_model("5g-advanced")
