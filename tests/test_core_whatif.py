"""§5 what-if analyses: kill policy, Doze, batching."""

import numpy as np
import pytest

from repro.core.whatif import (
    _killed_days,
    _max_bounded_run,
    batching_savings,
    doze_savings,
    kill_policy_savings,
    savings_on_affected_days,
    total_savings,
)
from repro.errors import AnalysisError


class TestKilledDays:
    def test_kill_after_three_idle_days(self):
        fg = np.array([1, 0, 0, 0, 0, 1, 0], dtype=bool)
        bg = np.array([0, 1, 1, 1, 1, 0, 1], dtype=bool)
        killed = _killed_days(fg, bg, idle_days=3)
        assert killed.tolist() == [False, False, False, True, True, False, False]

    def test_foreground_resets_counter(self):
        fg = np.array([0, 0, 1, 0, 0, 0, 0], dtype=bool)
        bg = np.ones(7, dtype=bool)
        killed = _killed_days(fg, bg, idle_days=3)
        assert killed.tolist() == [False, False, False, False, False, True, True]

    def test_dead_app_stays_dead_without_fg(self):
        fg = np.zeros(8, dtype=bool)
        bg = np.array([1, 1, 1, 0, 0, 0, 1, 1], dtype=bool)
        killed = _killed_days(fg, bg, idle_days=3)
        # Once dead, silence doesn't revive it.
        assert killed[3:].all()

    def test_no_background_traffic_never_killed(self):
        fg = np.zeros(5, dtype=bool)
        bg = np.zeros(5, dtype=bool)
        assert not _killed_days(fg, bg, 3).any()


class TestMaxBoundedRun:
    def test_basic_run(self):
        fg = np.array([1, 0, 0, 0, 1], dtype=bool)
        bg_only = np.array([0, 1, 1, 1, 0], dtype=bool)
        assert _max_bounded_run(fg, bg_only) == 3

    def test_run_must_be_bounded_by_fg(self):
        fg = np.array([0, 0, 0, 1], dtype=bool)
        bg_only = np.array([1, 1, 1, 0], dtype=bool)
        assert _max_bounded_run(fg, bg_only) == 0  # no fg before the run

    def test_silent_day_breaks_run(self):
        fg = np.array([1, 0, 0, 0, 0, 1], dtype=bool)
        bg_only = np.array([0, 1, 0, 1, 1, 0], dtype=bool)
        assert _max_bounded_run(fg, bg_only) == 2


def test_kill_policy_end_to_end(medium_study):
    result = kill_policy_savings(medium_study, "com.sina.weibo")
    assert result.per_user
    assert 0.0 <= result.pct_background_only_days <= 100.0
    assert result.max_consecutive_background_days >= 0
    assert 0.0 <= result.avg_energy_reduction_pct <= 100.0
    for outcome in result.per_user:
        assert outcome.app_energy_after <= outcome.app_energy_before + 1e-9


def test_rarely_used_app_saves_more_than_daily_app(medium_study):
    weibo = kill_policy_savings(medium_study, "com.sina.weibo")
    espn = kill_policy_savings(medium_study, "com.espn.score_center")
    assert (
        weibo.avg_energy_reduction_pct > espn.avg_energy_reduction_pct
    )


def test_longer_threshold_saves_less(medium_study):
    three = kill_policy_savings(medium_study, "com.sina.weibo", idle_days=3)
    seven = kill_policy_savings(medium_study, "com.sina.weibo", idle_days=7)
    assert seven.avg_energy_reduction_pct <= three.avg_energy_reduction_pct + 1e-9


def test_kill_policy_validation(medium_study):
    with pytest.raises(AnalysisError):
        kill_policy_savings(medium_study, "com.sina.weibo", idle_days=0)


def test_total_savings_bounds(medium_study):
    result = total_savings(medium_study)
    assert 0.0 <= result.overall_pct < 100.0
    assert result.total_after <= result.total_before
    assert len(result.per_user_pct) == len(medium_study.user_ids)


def test_total_savings_single_app_smaller_than_all(medium_study):
    one = total_savings(medium_study, apps=["com.sina.weibo"])
    everything = total_savings(medium_study)
    assert one.overall_pct <= everything.overall_pct + 1e-9


def test_savings_on_affected_days(medium_study):
    pct = savings_on_affected_days(medium_study, "com.sina.weibo")
    assert 0.0 < pct < 100.0


def test_doze_savings(medium_study):
    result = doze_savings(medium_study, screen_off_threshold=3600.0)
    assert result.total_after <= result.total_before
    assert result.overall_pct > 0  # overnight background traffic exists


def test_doze_whitelist_reduces_savings(medium_study):
    plain = doze_savings(medium_study)
    exempted = doze_savings(
        medium_study,
        whitelist=["com.sec.spp.push", "com.android.email"],
    )
    assert exempted.overall_pct <= plain.overall_pct + 1e-9


def test_doze_threshold_monotone(medium_study):
    aggressive = doze_savings(medium_study, screen_off_threshold=600.0)
    lenient = doze_savings(medium_study, screen_off_threshold=4 * 3600.0)
    assert lenient.overall_pct <= aggressive.overall_pct + 1e-9


def test_batching_savings(medium_study):
    pct = batching_savings(medium_study, "com.sina.weibo", target_period=3600.0)
    assert 0.0 < pct <= 100.0
    # Batching a chatty 7-min updater to hourly kills most of its tails.
    assert pct > 40.0


def test_batching_monotone_in_period(medium_study):
    hourly = batching_savings(medium_study, "com.sina.weibo", 3600.0)
    daily = batching_savings(medium_study, "com.sina.weibo", 86400.0)
    assert daily >= hourly - 1e-9


def test_batching_validation(medium_study):
    with pytest.raises(AnalysisError):
        batching_savings(medium_study, "com.sina.weibo", target_period=0.0)


class TestOsCoalescing:
    def test_saves_energy_without_dropping_traffic(self, medium_study):
        from repro.core.whatif import os_coalescing_savings

        result = os_coalescing_savings(medium_study, period=1800.0)
        assert result.total_after < result.total_before
        assert result.savings_pct > 20.0
        assert result.moved_packets > 0
        # Delay averages about half the window.
        assert 0.2 * 1800.0 < result.mean_delay < 0.8 * 1800.0

    def test_longer_window_saves_more(self, medium_study):
        from repro.core.whatif import os_coalescing_savings

        short = os_coalescing_savings(medium_study, period=600.0)
        long = os_coalescing_savings(medium_study, period=3600.0)
        assert long.savings_pct > short.savings_pct
        assert long.mean_delay > short.mean_delay

    def test_validation(self, medium_study):
        from repro.core.whatif import os_coalescing_savings

        with pytest.raises(AnalysisError):
            os_coalescing_savings(medium_study, period=0.0)


class TestFrequencyCap:
    def test_cap_saves_energy(self, medium_study):
        from repro.core.whatif import frequency_cap_savings

        result = frequency_cap_savings(medium_study, min_period=1800.0)
        assert result.total_after < result.total_before
        assert result.overall_pct > 10.0  # chatty background is common

    def test_stricter_cap_saves_more(self, medium_study):
        from repro.core.whatif import frequency_cap_savings

        loose = frequency_cap_savings(medium_study, min_period=600.0)
        strict = frequency_cap_savings(medium_study, min_period=3600.0)
        assert strict.overall_pct >= loose.overall_pct - 1e-9

    def test_validation(self, medium_study):
        from repro.core.whatif import frequency_cap_savings

        with pytest.raises(AnalysisError):
            frequency_cap_savings(medium_study, min_period=0.0)
