"""The `repro serve` HTTP API: status codes, ETags, store behaviour."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro import StudyConfig, StudyEnergy, generate_study
from repro.cli import main
from repro.core.readout import readout_from_checkpoint
from repro.errors import AnalysisError
from repro.follow import Follower, TailCsvSource, WindowSpec
from repro.store import ResultStore, make_server
from repro.store.server import (
    LIVE_MANIFEST_NAME,
    ROUTES,
    SERVABLE_FIGURES,
    etag_matches,
)
from repro.trace.io_text import write_events_csv, write_packets_csv


@pytest.fixture(scope="module")
def dataset():
    return generate_study(StudyConfig(n_users=2, duration_days=4.0, seed=11))


@pytest.fixture(scope="module")
def study(dataset):
    return StudyEnergy(dataset, lazy=True)


@pytest.fixture
def served(study, tmp_path):
    """A live server on an ephemeral port; yields (base_url, server, store)."""
    store = ResultStore(tmp_path / "store")
    server = make_server(study, store, quiet=True)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", server, store
    server.shutdown()
    server.server_close()


def fetch(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def test_routes_tuple_matches_handler():
    assert ROUTES == (
        "/",
        "/figures/{fig}",
        "/tables/table1",
        "/headlines",
        "/readouts/{study}",
        "/live/",
        "/live/{window}/{analysis}",
    )
    assert SERVABLE_FIGURES == ("fig1", "fig2", "fig3")


def test_index_lists_endpoints_and_study(served):
    base, server, _ = served
    status, _, body = fetch(base + "/")
    assert status == 200
    payload = json.loads(body)
    assert payload["study"] == server.study_id
    assert f"/readouts/{server.study_id}" in payload["endpoints"]
    assert payload["users"] == 2


def test_artefacts_serve_with_strong_etags(served):
    base, server, _ = served
    for path in ("/figures/fig1", "/figures/fig2", "/figures/fig3",
                 "/tables/table1", "/headlines"):
        status, headers, body = fetch(base + path)
        assert status == 200, path
        assert body, path
        etag = headers["ETag"]
        assert etag.startswith('"') and etag.endswith('"')
        analysis = path.rsplit("/", 1)[1]
        assert etag == server.key_for(analysis).etag()


def test_conditional_request_returns_304(served):
    base, _, store = served
    status, headers, body = fetch(base + "/headlines")
    assert status == 200
    etag = headers["ETag"]
    status, headers, body = fetch(
        base + "/headlines", {"If-None-Match": etag}
    )
    assert status == 304
    assert body == b""
    assert headers["ETag"] == etag
    # Wildcard revalidation is honoured too.
    status, _, _ = fetch(base + "/headlines", {"If-None-Match": "*"})
    assert status == 304
    assert store.metrics.counter("serve.not_modified") == 2


def test_etag_matches_covers_rfc7232_shapes():
    etag = '"abc123"'
    assert etag_matches(etag, etag)
    assert etag_matches("*", etag)
    assert etag_matches(f'W/{etag}', etag)  # weak comparison
    assert etag_matches(f'"zzz", {etag}', etag)  # comma list
    assert etag_matches(f'W/"zzz", W/{etag}, "yyy"', etag)
    assert not etag_matches(None, etag)
    assert not etag_matches("", etag)
    assert not etag_matches('"zzz"', etag)
    assert not etag_matches('"abc123', etag)  # malformed quoting
    assert not etag_matches('abc123', etag)  # unquoted never matches


def test_if_none_match_comma_lists_and_weak_validators(served):
    """Satellite regression: comma-separated lists and W/ weak
    validators revalidate; a wrong key never 304s."""
    base, _, _ = served
    status, headers, _ = fetch(base + "/headlines")
    assert status == 200
    etag = headers["ETag"]
    for header in (
        etag,
        f'W/{etag}',
        f'"deadbeef", {etag}',
        f'W/"deadbeef", W/{etag}',
        "*",
    ):
        status, _, body = fetch(
            base + "/headlines", {"If-None-Match": header}
        )
        assert status == 304, header
        assert body == b""
    for header in ('"deadbeef"', 'W/"deadbeef"', etag.strip('"')):
        status, _, body = fetch(
            base + "/headlines", {"If-None-Match": header}
        )
        assert status == 200, header
        assert body


def test_wrong_key_never_304s_across_routes(served):
    """An ETag taken from one artefact must not revalidate another."""
    base, _, _ = served
    _, headers, _ = fetch(base + "/figures/fig1")
    fig1_etag = headers["ETag"]
    status, _, body = fetch(
        base + "/headlines", {"If-None-Match": fig1_etag}
    )
    assert status == 200
    assert body


def test_304_answers_without_touching_the_store(served):
    """The ETag is the key digest, so revalidation is pure string
    comparison — no store lookup at all."""
    base, _, store = served
    status, headers, _ = fetch(base + "/figures/fig1")
    assert status == 200
    lookups = store.metrics.counter("store.hits") + store.metrics.counter(
        "store.misses"
    )
    status, _, _ = fetch(
        base + "/figures/fig1", {"If-None-Match": headers["ETag"]}
    )
    assert status == 304
    after = store.metrics.counter("store.hits") + store.metrics.counter(
        "store.misses"
    )
    assert after == lookups


def test_readout_endpoint_serves_study_json(served):
    base, server, _ = served
    status, headers, body = fetch(base + f"/readouts/{server.study_id}")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    payload = json.loads(body)
    assert payload["study"] == server.study_id
    assert payload["total_energy_j"] > 0
    assert set(payload["energy_by_state_j"]) <= {
        "foreground",
        "visible",
        "perceptible",
        "service",
        "background",
        "not_running",
    }


def test_unknown_routes_404_with_reasons(served):
    base, server, _ = served
    for path, marker in [
        ("/figures/fig4", "per-packet"),
        ("/figures/fig9", "unknown figure"),
        ("/tables/table2", "only table1"),
        ("/readouts/deadbeef", "unknown study"),
        ("/nonsense", "no route"),
    ]:
        status, _, body = fetch(base + path)
        assert status == 404, path
        assert marker in body.decode(), path
    assert server.metrics.counter("serve.not_found") == 5


def test_non_get_methods_are_405(served):
    base, _, _ = served
    request = urllib.request.Request(base + "/headlines", data=b"x")
    with pytest.raises(urllib.error.HTTPError) as caught:
        urllib.request.urlopen(request)
    assert caught.value.code == 405


def test_second_request_is_a_store_hit(served):
    base, _, store = served
    fetch(base + "/tables/table1")
    misses = store.metrics.counter("store.misses")
    status, _, first = fetch(base + "/tables/table1")
    assert status == 200
    assert store.metrics.counter("store.misses") == misses
    assert store.metrics.counter("store.hits") >= 1


def test_parallel_cold_requests_render_once(served):
    base, _, store = served
    barrier = threading.Barrier(4)
    bodies = []

    def client():
        barrier.wait()
        status, _, body = fetch(base + "/figures/fig2")
        assert status == 200
        bodies.append(body)

    threads = [threading.Thread(target=client) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len({bytes(b) for b in bodies}) == 1
    # Single-flight: exactly one render/publish despite the race.
    assert store.metrics.counter("store.puts") == 1


# ----------------------------------------------------------------------
# Live windows (/live/...)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_store(dataset, tmp_path_factory):
    """A store a follower has published live windows into."""
    root = tmp_path_factory.mktemp("live")
    pairs = []
    for user in dataset.users:
        packets = root / f"u{user.user_id}.csv"
        events = root / f"u{user.user_id}_events.csv"
        write_packets_csv(packets, user.packets, dataset.registry)
        write_events_csv(events, user.events, dataset.registry)
        pairs.append((packets, events))
    store = ResultStore(root / "store")
    follower = Follower(
        TailCsvSource(pairs, chunk_size=2048),
        checkpoint_path=root / "follow.npz",
        windows=(WindowSpec("short", 43200, 7200),),
        store=store,
        poll_interval=0.0,
        emit=lambda line: None,
    )
    assert follower.run(idle_exit=2) == "idle"
    return store


@pytest.fixture
def live_served(live_store):
    """A live-only server (no study loaded) over the published store."""
    server = make_server(None, live_store, quiet=True)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://{host}:{port}", server, live_store
    server.shutdown()
    server.server_close()


def test_live_only_index_and_manifest(live_served):
    base, _, store = live_served
    status, _, body = fetch(base + "/")
    assert status == 200
    payload = json.loads(body)
    assert payload["study"] is None
    assert payload["live"] == ["short"]
    assert "/live/" in payload["endpoints"]

    status, headers, body = fetch(base + "/live/")
    assert status == 200
    assert headers["Content-Type"] == "application/json"
    manifest = json.loads(body)
    assert manifest == json.loads(
        (store.directory / LIVE_MANIFEST_NAME).read_text()
    )
    assert "short" in manifest["windows"]


def test_live_window_serves_with_stable_etag(live_served):
    base, _, _ = live_served
    status, headers, body = fetch(base + "/live/short/fig2")
    assert status == 200
    assert body
    etag = headers["ETag"]
    # The ETag is stable while the fold is: refetch matches.
    again_status, again_headers, again_body = fetch(base + "/live/short/fig2")
    assert again_status == 200
    assert again_headers["ETag"] == etag
    assert again_body == body
    for header in (etag, f'W/{etag}', f'"nope", {etag}', "*"):
        status, _, _ = fetch(
            base + "/live/short/fig2", {"If-None-Match": header}
        )
        assert status == 304, header
    status, _, _ = fetch(
        base + "/live/short/fig2", {"If-None-Match": '"nope"'}
    )
    assert status == 200


def test_live_404s_name_the_problem(live_served):
    base, _, _ = live_served
    for path, marker in [
        ("/live/month/fig1", "short"),  # unknown window lists published
        ("/live/short/table1", "not published live"),
        ("/headlines", "no study loaded"),  # live-only server
        ("/figures/fig1", "no study loaded"),
    ]:
        status, _, body = fetch(base + path)
        assert status == 404, path
        assert marker in body.decode(), path


def test_live_routes_coexist_with_a_study(study, live_store):
    """A study server over a store with live publishes serves both."""
    server = make_server(study, live_store, quiet=True)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://{host}:{port}"
    try:
        status, _, body = fetch(base + "/")
        payload = json.loads(body)
        assert status == 200
        assert payload["study"] == server.study_id
        assert payload["live"] == ["short"]
        status, _, _ = fetch(base + "/live/short/headlines")
        assert status == 200
        status, _, _ = fetch(base + "/headlines")
        assert status == 200
    finally:
        server.shutdown()
        server.server_close()


def test_live_404_when_store_has_no_manifest(served):
    base, _, _ = served
    status, _, body = fetch(base + "/live/")
    assert status == 404
    assert "no live windows" in body.decode()


def test_server_requires_provenance(tmp_path):
    class Bare:
        provenance = None

    with pytest.raises(AnalysisError):
        make_server(Bare(), ResultStore(tmp_path / "store"))


def test_http_body_matches_cli_checkpoint_output(tmp_path, capsys):
    """The serving contract's byte-identity: HTTP body == CLI output."""
    study_file = str(tmp_path / "study.npz")
    ck = str(tmp_path / "ck.npz")
    argv = ["--users", "2", "--days", "4", "--seed", "11"]
    assert main(["generate", *argv, "--out", study_file]) == 0
    assert main(["ingest", "--dataset", study_file, "--checkpoint", ck]) == 0
    capsys.readouterr()
    assert main(["figure", "fig3", "--from-checkpoint", ck]) == 0
    cli_out = capsys.readouterr().out

    readout = readout_from_checkpoint(ck)
    store = ResultStore(tmp_path / "store")
    server = make_server(readout, store, quiet=True)
    host, port = server.server_address
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        status, _, body = fetch(f"http://{host}:{port}/figures/fig3")
    finally:
        server.shutdown()
        server.server_close()
    assert status == 200
    # The CLI prints the artefact plus a trailing newline.
    assert body.decode("utf-8") + "\n" == cli_out


def test_serve_cli_bounded_run(tmp_path, capsys):
    """`repro serve --max-requests N` serves N requests then exits 0."""
    study_file = str(tmp_path / "study.npz")
    argv = ["--users", "2", "--days", "4", "--seed", "11"]
    assert main(["generate", *argv, "--out", study_file]) == 0
    capsys.readouterr()

    codes = []
    banner = {}
    ready = threading.Event()

    class Capture:
        def __init__(self, stream):
            self.stream = stream

        def write(self, text):
            if text.startswith("serving study"):
                banner["line"] = text
                ready.set()
            return self.stream.write(text)

        def flush(self):
            self.stream.flush()

    def serve():
        import sys

        original = sys.stdout
        sys.stdout = Capture(original)
        try:
            codes.append(
                main(
                    [
                        "serve",
                        "--dataset",
                        study_file,
                        "--store",
                        str(tmp_path / "store"),
                        "--quiet",
                        "--max-requests",
                        "2",
                    ]
                )
            )
        finally:
            sys.stdout = original

    thread = threading.Thread(target=serve)
    thread.start()
    assert ready.wait(timeout=30), "serve never printed its banner"
    url = banner["line"].split(" on ")[1].split(" ")[0]
    status, headers, _ = fetch(url + "/headlines")
    assert status == 200
    status, _, _ = fetch(url + "/headlines", {"If-None-Match": headers["ETag"]})
    assert status == 304
    thread.join(timeout=30)
    assert not thread.is_alive()
    assert codes == [0]
