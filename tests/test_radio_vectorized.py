"""Vectorised engine and attribution policies."""

import numpy as np
import pytest

from repro.radio.attribution import TailPolicy, attribute_energy
from repro.radio.lte import LTE_DEFAULT
from repro.radio.vectorized import compute_packet_energy
from repro.trace.events import ProcessState
from repro.trace.packet import Direction

from conftest import make_packets
from test_radio_machine import TOY


def test_empty_trace():
    pe = compute_packet_energy(TOY, make_packets([]), window=(0.0, 50.0))
    assert pe.total_energy == pytest.approx(0.5)
    assert len(pe) == 0


def test_matches_hand_computation():
    packets = make_packets([(50.0, 1000, Direction.DOWNLINK, 1)])
    pe = compute_packet_energy(TOY, packets, window=(0.0, 100.0))
    assert pe.promotion[0] == pytest.approx(2.0)
    assert pe.tail[0] == pytest.approx(10.0)
    assert pe.idle_energy == pytest.approx(0.89)


def test_attribution_conservation(packets_two_apps):
    result = attribute_energy(LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0))
    by_app = result.energy_by_app()
    assert sum(by_app.values()) == pytest.approx(result.attributed_energy)
    assert result.total_energy == pytest.approx(
        result.attributed_energy + result.energy.idle_energy
    )


def test_attribution_by_flow(packets_two_apps):
    from repro.trace.flow import reconstruct_flows

    reconstruct_flows(packets_two_apps)
    result = attribute_energy(LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0))
    by_flow = result.energy_by_flow()
    assert set(by_flow) == {1, 2}
    assert sum(by_flow.values()) == pytest.approx(result.attributed_energy)


def test_attribution_by_app_state(packets_two_apps):
    packets_two_apps.data["state"] = int(ProcessState.SERVICE)
    packets_two_apps.data["state"][0] = int(ProcessState.FOREGROUND)
    result = attribute_energy(LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0))
    by_app_state = result.energy_by_app_state()
    assert (1, int(ProcessState.FOREGROUND)) in by_app_state
    assert sum(by_app_state.values()) == pytest.approx(result.attributed_energy)


def test_split_adjacent_policy_conserves_total(packets_two_apps):
    last = attribute_energy(
        LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0),
        policy=TailPolicy.LAST_PACKET,
    )
    split = attribute_energy(
        LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0),
        policy=TailPolicy.SPLIT_ADJACENT,
    )
    assert split.attributed_energy == pytest.approx(last.attributed_energy)
    # ...but the per-app shares move.
    assert split.energy_by_app() != pytest.approx(last.energy_by_app())


def test_split_adjacent_moves_half_inner_tail():
    packets = make_packets(
        [
            (0.0, 1000, Direction.DOWNLINK, 1),
            (5.0, 1000, Direction.DOWNLINK, 2),
        ]
    )
    last = attribute_energy(TOY, packets, window=(0.0, 30.0))
    split = attribute_energy(
        TOY, packets, window=(0.0, 30.0), policy=TailPolicy.SPLIT_ADJACENT
    )
    # Inner gap tail = 5 J fully on packet 0 under LAST_PACKET; 2.5 J
    # moves to packet 1 under SPLIT_ADJACENT.
    assert last.tail[0] == pytest.approx(5.0)
    assert split.tail[0] == pytest.approx(2.5)
    assert split.tail[1] == pytest.approx(10.0 + 2.5)


def test_energy_in_range(packets_two_apps):
    result = attribute_energy(LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0))
    early = result.energy_in_range(0.0, 50.0)
    late = result.energy_in_range(50.0, 200.0)
    assert early + late == pytest.approx(result.attributed_energy)


def test_tail_attribution_to_last_packet_avoids_double_counting():
    """Two apps alternating within one radio-on period: total device
    energy is the sum of both apps' attributed energy — the exact
    double-counting guarantee §3.1 describes."""
    packets = make_packets(
        [
            (0.0, 1000, Direction.DOWNLINK, 1),
            (2.0, 1000, Direction.DOWNLINK, 2),
            (4.0, 1000, Direction.DOWNLINK, 1),
            (6.0, 1000, Direction.DOWNLINK, 2),
        ]
    )
    result = attribute_energy(TOY, packets, window=(0.0, 30.0))
    by_app = result.energy_by_app()
    assert by_app[1] + by_app[2] == pytest.approx(result.attributed_energy)
    # Device was radio-on from 0 to 16 s (6 + full tail): sanity-check
    # the total is what one radio would plausibly consume.
    assert result.total_energy < 2.0 + 16.0 * 1.0 + 30 * 0.01 + 1.0
