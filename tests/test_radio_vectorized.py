"""Vectorised engine and attribution policies."""

import numpy as np
import pytest

from repro.radio.attribution import TailPolicy, attribute_energy
from repro.radio.lte import LTE_DEFAULT
from repro.radio.vectorized import compute_packet_energy
from repro.trace.events import ProcessState
from repro.trace.packet import Direction

from conftest import make_packets
from test_radio_machine import TOY


def test_empty_trace():
    pe = compute_packet_energy(TOY, make_packets([]), window=(0.0, 50.0))
    assert pe.total_energy == pytest.approx(0.5)
    assert len(pe) == 0


def test_matches_hand_computation():
    packets = make_packets([(50.0, 1000, Direction.DOWNLINK, 1)])
    pe = compute_packet_energy(TOY, packets, window=(0.0, 100.0))
    assert pe.promotion[0] == pytest.approx(2.0)
    assert pe.tail[0] == pytest.approx(10.0)
    assert pe.idle_energy == pytest.approx(0.89)


def test_attribution_conservation(packets_two_apps):
    result = attribute_energy(LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0))
    by_app = result.energy_by_app()
    assert sum(by_app.values()) == pytest.approx(result.attributed_energy)
    assert result.total_energy == pytest.approx(
        result.attributed_energy + result.energy.idle_energy
    )


def test_attribution_by_flow(packets_two_apps):
    from repro.trace.flow import reconstruct_flows

    reconstruct_flows(packets_two_apps)
    result = attribute_energy(LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0))
    by_flow = result.energy_by_flow()
    assert set(by_flow) == {1, 2}
    assert sum(by_flow.values()) == pytest.approx(result.attributed_energy)


def test_attribution_by_app_state(packets_two_apps):
    packets_two_apps.data["state"] = int(ProcessState.SERVICE)
    packets_two_apps.data["state"][0] = int(ProcessState.FOREGROUND)
    result = attribute_energy(LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0))
    by_app_state = result.energy_by_app_state()
    assert (1, int(ProcessState.FOREGROUND)) in by_app_state
    assert sum(by_app_state.values()) == pytest.approx(result.attributed_energy)


def test_split_adjacent_policy_conserves_total(packets_two_apps):
    last = attribute_energy(
        LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0),
        policy=TailPolicy.LAST_PACKET,
    )
    split = attribute_energy(
        LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0),
        policy=TailPolicy.SPLIT_ADJACENT,
    )
    assert split.attributed_energy == pytest.approx(last.attributed_energy)
    # ...but the per-app shares move.
    assert split.energy_by_app() != pytest.approx(last.energy_by_app())


def test_split_adjacent_moves_half_inner_tail():
    packets = make_packets(
        [
            (0.0, 1000, Direction.DOWNLINK, 1),
            (5.0, 1000, Direction.DOWNLINK, 2),
        ]
    )
    last = attribute_energy(TOY, packets, window=(0.0, 30.0))
    split = attribute_energy(
        TOY, packets, window=(0.0, 30.0), policy=TailPolicy.SPLIT_ADJACENT
    )
    # Inner gap tail = 5 J fully on packet 0 under LAST_PACKET; 2.5 J
    # moves to packet 1 under SPLIT_ADJACENT.
    assert last.tail[0] == pytest.approx(5.0)
    assert split.tail[0] == pytest.approx(2.5)
    assert split.tail[1] == pytest.approx(10.0 + 2.5)


def test_energy_in_range(packets_two_apps):
    result = attribute_energy(LTE_DEFAULT, packets_two_apps, window=(0.0, 200.0))
    early = result.energy_in_range(0.0, 50.0)
    late = result.energy_in_range(50.0, 200.0)
    assert early + late == pytest.approx(result.attributed_energy)


class TestNrModel:
    """The 5G NR CDRX model, through registry and both engines."""

    def test_registry_exposes_nr(self):
        from repro.radio.registry import available_models, get_model

        assert "nr" in available_models()
        assert "5g" in available_models()
        nr = get_model("nr")
        assert nr.name == "nr"
        assert get_model("5g").name == "nr"
        assert len(nr.tail_phases) == 3

    def test_cdrx_tail_shape(self):
        from repro.radio.nr import NR_DEFAULT

        assert NR_DEFAULT.tail_duration == pytest.approx(10.0)
        # Front-loaded: 0.1 s @ 1.75 W + 2.9 s @ 1.21 W + 7 s @ 0.64 W.
        assert NR_DEFAULT.full_tail_energy == pytest.approx(
            0.1 * 1.75 + 2.9 * 1.21 + 7.0 * 0.64
        )
        # The step-down is monotone, as CDRX sleep states must be.
        powers = [p.power for p in NR_DEFAULT.tail_phases]
        assert powers == sorted(powers, reverse=True)

    def test_per_byte_energy_from_throughput_curve(self):
        from repro.radio.nr import NR_DEFAULT

        # uplink: (240 * 40 + 1580) mW at 40 Mbps
        assert NR_DEFAULT.energy_per_byte_up == pytest.approx(
            (240.0 * 40 + 1580.0) * 1e-3 * 8.0 / (40 * 1e6)
        )
        # downlink: (7.6 * 250 + 1580) mW at 250 Mbps
        assert NR_DEFAULT.energy_per_byte_down == pytest.approx(
            (7.6 * 250 + 1580.0) * 1e-3 * 8.0 / (250 * 1e6)
        )
        # NR moves a byte far cheaper than LTE, down and up.
        assert NR_DEFAULT.energy_per_byte_down < LTE_DEFAULT.energy_per_byte_down
        assert NR_DEFAULT.energy_per_byte_up < LTE_DEFAULT.energy_per_byte_up

    def test_single_packet_hand_computation(self):
        from repro.radio.nr import NR_DEFAULT

        packets = make_packets([(50.0, 10_000, Direction.DOWNLINK, 1)])
        pe = compute_packet_energy(NR_DEFAULT, packets, window=(0.0, 100.0))
        assert pe.promotion[0] == pytest.approx(0.110 * 1.530)
        assert pe.tail[0] == pytest.approx(NR_DEFAULT.full_tail_energy)
        assert pe.transfer[0] == pytest.approx(
            10_000 * NR_DEFAULT.energy_per_byte_down
        )
        # Idle covers the whole window except the promotion lead-in and
        # the 10 s CDRX tail (the transfer itself is instantaneous).
        assert pe.idle_energy == pytest.approx((100.0 - 0.110 - 10.0) * 0.020)

    def test_partial_tail_crosses_phase_boundary(self):
        from repro.radio.nr import NR_DEFAULT

        # 2 s gap: 0.1 s of phase 1 + 1.9 s of phase 2, no re-promotion.
        packets = make_packets(
            [
                (10.0, 1000, Direction.DOWNLINK, 1),
                (12.0, 1000, Direction.DOWNLINK, 1),
            ]
        )
        pe = compute_packet_energy(NR_DEFAULT, packets, window=(0.0, 50.0))
        assert pe.tail[0] == pytest.approx(0.1 * 1.75 + 1.9 * 1.21)
        assert pe.promotion[1] == 0.0

    def test_nr_attribution_end_to_end(self, packets_two_apps):
        from repro.radio.nr import NR_DEFAULT

        result = attribute_energy(
            NR_DEFAULT, packets_two_apps, window=(0.0, 200.0)
        )
        by_app = result.energy_by_app()
        assert sum(by_app.values()) == pytest.approx(result.attributed_energy)
        assert result.total_energy == pytest.approx(
            result.attributed_energy + result.energy.idle_energy
        )


def test_tail_attribution_to_last_packet_avoids_double_counting():
    """Two apps alternating within one radio-on period: total device
    energy is the sum of both apps' attributed energy — the exact
    double-counting guarantee §3.1 describes."""
    packets = make_packets(
        [
            (0.0, 1000, Direction.DOWNLINK, 1),
            (2.0, 1000, Direction.DOWNLINK, 2),
            (4.0, 1000, Direction.DOWNLINK, 1),
            (6.0, 1000, Direction.DOWNLINK, 2),
        ]
    )
    result = attribute_energy(TOY, packets, window=(0.0, 30.0))
    by_app = result.energy_by_app()
    assert by_app[1] + by_app[2] == pytest.approx(result.attributed_energy)
    # Device was radio-on from 0 to 16 s (6 + full tail): sanity-check
    # the total is what one radio would plausibly consume.
    assert result.total_energy < 2.0 + 16.0 * 1.0 + 30 * 0.01 + 1.0
