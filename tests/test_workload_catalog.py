"""Catalog structure and paper-derived parameterisation."""

import pytest

from repro.errors import WorkloadError
from repro.units import MINUTE
from repro.workload.appprofile import (
    AppProfile,
    BehaviorSchedule,
    UsagePattern,
    evolving,
)
from repro.workload.behaviors import PeriodicUpdateBehavior
from repro.workload.catalog import (
    CatalogConfig,
    TOTAL_APPS,
    build_catalog,
    named_profiles,
)


def by_name(catalog):
    return {p.name: p for p in catalog}


@pytest.fixture(scope="module")
def catalog():
    return build_catalog()


def test_catalog_size_matches_paper(catalog):
    assert len(catalog) == TOTAL_APPS == 342


def test_catalog_names_unique(catalog):
    names = [p.name for p in catalog]
    assert len(set(names)) == len(names)


def test_catalog_deterministic():
    a = build_catalog(CatalogConfig(seed=5))
    b = build_catalog(CatalogConfig(seed=5))
    assert [p.name for p in a] == [p.name for p in b]
    assert [p.install_probability for p in a] == [p.install_probability for p in b]


def test_catalog_seed_changes_generics():
    a = build_catalog(CatalogConfig(seed=5))
    b = build_catalog(CatalogConfig(seed=6))
    generic_a = [p.install_probability for p in a if p.name.startswith("com.generic")]
    generic_b = [p.install_probability for p in b if p.name.startswith("com.generic")]
    assert generic_a != generic_b


def test_all_table1_apps_present(catalog):
    apps = by_name(catalog)
    for name in (
        "com.sina.weibo",
        "com.twitter.android",
        "com.facebook.katana",
        "com.google.android.apps.plus",
        "com.sec.spp.push",
        "com.urbanairship.push",
        "com.google.android.apps.maps",
        "com.google.android.gm",
        "com.gau.go.launcherex.gowidget.weatherwidget",
        "com.gau.go.weatherex",
        "com.accuweather.android",
        "com.accuweather.widget",
        "com.spotify.music",
        "com.pandora.android",
        "au.com.shiftyjelly.pocketcasts",
        "com.bambuna.podcastaddict",
    ):
        assert name in apps, name


def test_browsers_differ_in_lingering(catalog):
    apps = by_name(catalog)
    chrome = apps["com.android.chrome"]
    firefox = apps["org.mozilla.firefox"]
    from repro.workload.behaviors import LingeringForegroundBehavior

    assert any(
        isinstance(b, LingeringForegroundBehavior) for b in chrome.on_background
    )
    assert not any(
        isinstance(b, LingeringForegroundBehavior) for b in firefox.on_background
    )


def test_weibo_high_frequency_small_updates(catalog):
    weibo = by_name(catalog)["com.sina.weibo"]
    periodic = weibo.background[0].behavior
    assert isinstance(periodic, PeriodicUpdateBehavior)
    assert 5 * MINUTE <= periodic.period <= 10 * MINUTE
    assert periodic.bytes_per_update < 100_000


def test_twitter_batches_hourly(catalog):
    twitter = by_name(catalog)["com.twitter.android"]
    periodic = twitter.background[0].behavior
    assert periodic.period == pytest.approx(3600.0)
    assert periodic.bytes_per_update > 1e6


def test_facebook_evolves_5min_to_hourly(catalog):
    facebook = by_name(catalog)["com.facebook.katana"]
    assert len(facebook.background) == 2
    early, late = facebook.background
    assert early.behavior.period == pytest.approx(300.0)
    assert late.behavior.period == pytest.approx(3600.0)
    assert early.end_fraction == late.start_fraction


def test_widget_screen_on_only_vs_app(catalog):
    apps = by_name(catalog)
    assert apps["com.accuweather.widget"].background_screen_on_only
    assert not apps["com.accuweather.android"].background_screen_on_only


def test_autostart_services(catalog):
    apps = by_name(catalog)
    assert apps["com.sec.spp.push"].autostarts
    assert apps["com.sina.weibo"].autostarts
    assert not apps["com.android.chrome"].autostarts


def test_generic_category_names(catalog):
    generics = [p for p in catalog if p.name.startswith("com.generic")]
    assert len(generics) > 300
    assert all(p.category in p.name for p in generics)


def test_schedule_validation():
    with pytest.raises(WorkloadError):
        BehaviorSchedule(PeriodicUpdateBehavior(60.0, 10.0), 0.6, 0.4)
    sched = BehaviorSchedule(PeriodicUpdateBehavior(60.0, 10.0), 0.25, 0.75)
    assert sched.window(100.0) == (25.0, 75.0)


def test_evolving_helper():
    a = PeriodicUpdateBehavior(60.0, 10.0)
    b = PeriodicUpdateBehavior(600.0, 10.0)
    schedules = evolving(a, b, 0.3)
    assert schedules[0].end_fraction == pytest.approx(0.3)
    assert schedules[1].start_fraction == pytest.approx(0.3)


def test_profile_validation():
    with pytest.raises(WorkloadError):
        AppProfile(name="", category="x")
    with pytest.raises(WorkloadError):
        AppProfile(name="a", category="x", install_probability=1.5)
    with pytest.raises(WorkloadError):
        AppProfile(name="a", category="x", background_survival_days=0.0)
    with pytest.raises(WorkloadError):
        UsagePattern(active_day_probability=0.0)
    with pytest.raises(WorkloadError):
        UsagePattern(session_minutes=-1.0)


def test_config_rejects_too_small_catalog():
    with pytest.raises(WorkloadError):
        CatalogConfig(total_apps=3)


def test_has_background_traffic_property():
    plain = AppProfile(name="a", category="x")
    assert not plain.has_background_traffic
    assert by_name(build_catalog())["com.sina.weibo"].has_background_traffic
