"""Generator self-calibration: catalog promises vs. measured traffic."""

import pytest

from repro.workload.calibration import CalibrationRow, calibrate


def test_calibration_passes_on_generated_study(medium_dataset):
    report = calibrate(medium_dataset)
    assert report.checked >= 5  # several steady periodic apps sampled
    details = "; ".join(
        f"{r.app}: period {r.configured_period:.0f}->{r.measured_period:.0f}, "
        f"bytes {r.configured_bytes:.0f}->{r.measured_bytes_per_burst:.0f}"
        for r in report.failures
    )
    assert not report.failures, details


def test_calibration_measures_weibo(medium_dataset):
    report = calibrate(medium_dataset)
    weibo = [r for r in report.rows if r.app == "com.sina.weibo"]
    assert weibo
    assert weibo[0].measured_period == pytest.approx(420.0, rel=0.25)


def test_calibration_row_tolerances():
    good = CalibrationRow("a", 300.0, 310.0, 1000.0, 1050.0, n_bursts=100)
    assert good.ok
    drifted = CalibrationRow("a", 300.0, 500.0, 1000.0, 1000.0, n_bursts=100)
    assert not drifted.ok
    wrong_bytes = CalibrationRow("a", 300.0, 300.0, 1000.0, 2500.0, n_bursts=100)
    assert not wrong_bytes.ok
    sparse = CalibrationRow("a", 300.0, 900.0, 1000.0, 9000.0, n_bursts=5)
    assert sparse.ok  # not enough data to judge


def test_calibration_skips_evolving_apps(medium_dataset):
    report = calibrate(medium_dataset)
    names = {r.app for r in report.rows}
    assert "com.facebook.katana" not in names  # evolving schedule
    assert "com.gau.go.launcherex.gowidget.weatherwidget" not in names  # screen-gated
