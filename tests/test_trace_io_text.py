"""CSV trace interchange."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.dataset import AppRegistry
from repro.trace.events import ProcessState
from repro.trace.io_text import (
    dataset_from_csv,
    read_events_csv,
    read_packets_csv,
    write_events_csv,
    write_packets_csv,
)

PACKETS_CSV = """timestamp,size,direction,app,conn
12.5,1448,down,com.example.app,17
12.6,60,up,com.example.app,17
90.0,500,DOWN,com.other.app,3
"""

EVENTS_CSV = """timestamp,kind,app,value
10.0,process,com.example.app,foreground
80.0,process,com.example.app,background
5.0,screen,,on
85.0,screen,,off
11.0,input,com.example.app,
"""


@pytest.fixture
def packets_file(tmp_path):
    path = tmp_path / "packets.csv"
    path.write_text(PACKETS_CSV)
    return path


@pytest.fixture
def events_file(tmp_path):
    path = tmp_path / "events.csv"
    path.write_text(EVENTS_CSV)
    return path


def test_read_packets(packets_file):
    registry = AppRegistry()
    packets = read_packets_csv(packets_file, registry)
    assert len(packets) == 3
    assert packets.is_time_sorted()
    assert registry.id_of("com.example.app") == 1
    assert registry.id_of("com.other.app") == 2
    assert packets.sizes.tolist() == [1448, 60, 500]
    assert packets.directions.tolist() == [1, 0, 1]
    assert packets.conns.tolist() == [17, 17, 3]


def test_read_packets_bad_direction(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("timestamp,size,direction,app\n1.0,10,sideways,a\n")
    with pytest.raises(TraceError):
        read_packets_csv(path, AppRegistry())


def test_read_packets_missing_columns(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("timestamp,size\n1.0,10\n")
    with pytest.raises(TraceError):
        read_packets_csv(path, AppRegistry())


def test_read_events(events_file):
    registry = AppRegistry()
    log = read_events_csv(events_file, registry)
    assert len(log.process_events) == 2
    assert log.process_events[0].state is ProcessState.FOREGROUND
    assert len(log.screen_events) == 2
    assert log.screen_on_at(50.0)
    assert len(log.input_events) == 1


def test_read_events_bad_state(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("timestamp,kind,app,value\n1.0,process,a,floating\n")
    with pytest.raises(TraceError):
        read_events_csv(path, AppRegistry())


def test_read_events_bad_kind(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("timestamp,kind,app,value\n1.0,teleport,a,x\n")
    with pytest.raises(TraceError):
        read_events_csv(path, AppRegistry())


def test_dataset_from_csv_end_to_end(packets_file, events_file):
    dataset = dataset_from_csv([(packets_file, events_file)])
    assert len(dataset) == 1
    trace = dataset.users[0]
    assert trace.duration == 86400.0  # rounded up to a day
    # State labelling happened: packet at 12.5 while app foregrounded.
    first = trace.packets.for_app(dataset.registry.id_of("com.example.app"))
    assert ProcessState(int(first.states[0])) is ProcessState.FOREGROUND
    dataset.validate()


def test_dataset_from_csv_requires_users():
    with pytest.raises(TraceError):
        dataset_from_csv([])


def test_roundtrip(small_dataset, tmp_path):
    """Export a generated user's trace and re-import it losslessly."""
    trace = small_dataset.users[0]
    packets_path = tmp_path / "p.csv"
    events_path = tmp_path / "e.csv"
    # Export a manageable slice.
    subset = trace.packets.in_range(0.0, 6 * 3600.0)
    write_packets_csv(packets_path, subset, small_dataset.registry)
    write_events_csv(events_path, trace.events, small_dataset.registry)

    dataset = dataset_from_csv([(packets_path, events_path)])
    imported = dataset.users[0].packets
    assert len(imported) == len(subset)
    np.testing.assert_allclose(imported.timestamps, subset.timestamps)
    np.testing.assert_array_equal(imported.sizes, subset.sizes)
    np.testing.assert_array_equal(imported.directions, subset.directions)
    # App ids may be renumbered, but names must agree per packet.
    original_names = [
        small_dataset.registry.name_of(int(a)) for a in subset.apps[:100]
    ]
    imported_names = [
        dataset.registry.name_of(int(a)) for a in imported.apps[:100]
    ]
    assert original_names == imported_names


def test_analysis_runs_on_imported_data(packets_file, events_file):
    from repro import StudyEnergy

    dataset = dataset_from_csv([(packets_file, events_file)])
    study = StudyEnergy(dataset)
    assert study.attributed_energy > 0


def test_malformed_packet_row_names_file_and_line(tmp_path):
    path = tmp_path / "p.csv"
    path.write_text(
        "timestamp,size,direction,app\n"
        "1.0,100,up,a.one\n"
        "not-a-number,100,down,a.two\n"
    )
    with pytest.raises(TraceError, match=r"p\.csv:3:"):
        read_packets_csv(path, AppRegistry())


def test_malformed_packet_direction_names_file_and_line(tmp_path):
    path = tmp_path / "p.csv"
    path.write_text(
        "timestamp,size,direction,app\n"
        "1.0,100,up,a.one\n"
        "2.0,100,down,a.two\n"
        "3.0,50,sideways,a.one\n"
    )
    with pytest.raises(TraceError, match=r"p\.csv:4:"):
        read_packets_csv(path, AppRegistry())


def test_malformed_event_row_names_file_and_line(tmp_path):
    path = tmp_path / "e.csv"
    path.write_text(
        "timestamp,kind,app,value\n"
        "1.0,process,a.one,foreground\n"
        "2.0,process,a.one,warp-speed\n"
    )
    with pytest.raises(TraceError, match=r"e\.csv:3:"):
        read_events_csv(path, AppRegistry())


def test_iterators_match_batch_readers(packets_file, events_file):
    from repro.trace.io_text import iter_event_rows, iter_packet_rows

    batch_registry = AppRegistry()
    packets = read_packets_csv(packets_file, batch_registry)
    iter_registry = AppRegistry()
    rows = list(iter_packet_rows(packets_file, iter_registry))
    assert len(rows) == len(packets)
    # Same registration order, hence the same app ids per row.
    assert iter_registry.to_json() == batch_registry.to_json()
    assert [r[0] for r in rows] == packets.timestamps.tolist()
    assert [r[1] for r in rows] == packets.sizes.tolist()
    assert [r[3] for r in rows] == packets.apps.tolist()

    read_events_csv(events_file, batch_registry)
    n_events = sum(1 for _ in iter_event_rows(events_file, iter_registry))
    assert n_events == 5
