"""Unit-conversion helpers."""

import pytest

from repro import units


def test_time_constants():
    assert units.MINUTE == 60.0
    assert units.HOUR == 3600.0
    assert units.DAY == 24 * 3600.0


def test_mw_and_ms():
    assert units.mw(1000.0) == pytest.approx(1.0)
    assert units.ms(260.0) == pytest.approx(0.26)


def test_joules_per_megabyte():
    assert units.joules_per_megabyte(10.0, 2 * units.MB) == pytest.approx(5.0)


def test_joules_per_megabyte_zero_bytes():
    assert units.joules_per_megabyte(10.0, 0) == 0.0


def test_bytes_to_mb():
    assert units.bytes_to_mb(1_500_000) == pytest.approx(1.5)


def test_days():
    assert units.days(units.DAY * 2.5) == pytest.approx(2.5)


def test_per_day():
    assert units.per_day(100.0, 2 * units.DAY) == pytest.approx(50.0)


def test_per_day_zero_duration():
    assert units.per_day(100.0, 0.0) == 0.0
