"""Table 1 case studies."""

import pytest

from repro.core.casestudies import (
    CASE_STUDY_CLASSES,
    case_study_row,
    case_study_table,
    efficiency_spread,
)
from repro.errors import AnalysisError
from repro.units import MB


def test_classes_match_paper_structure():
    names = [cls for cls, _ in CASE_STUDY_CLASSES]
    assert names == [
        "Social media",
        "Periodic update services",
        "Widgets",
        "Streaming",
        "Podcasts",
    ]
    assert sum(len(apps) for _, apps in CASE_STUDY_CLASSES) == 16


def test_row_metrics_consistent(medium_study):
    row = case_study_row(medium_study, "com.android.email")
    assert row.users > 0
    assert row.joules_per_day > 0
    # Internal consistency: J/MB == (J/flow) / (MB/flow).
    assert row.joules_per_mb == pytest.approx(
        row.joules_per_flow / row.mb_per_flow, rel=1e-6
    )
    assert row.total_bytes / MB / row.n_flows == pytest.approx(row.mb_per_flow)


def test_unknown_background_app(medium_study):
    from repro.errors import ReproError

    with pytest.raises(ReproError):
        case_study_row(medium_study, "org.mozilla.firefox.nonexistent")


def test_table_covers_most_apps(medium_study):
    rows = case_study_table(medium_study)
    assert len(rows) >= 10
    classes = {r.app_class for r in rows}
    assert "Social media" in classes
    assert "Periodic update services" in classes


def test_chatty_vs_batched_efficiency(medium_study):
    """The paper's headline: order-of-magnitude J/MB differences between
    functionally similar apps (Weibo vs Twitter)."""
    rows = {r.app: r for r in case_study_table(medium_study)}
    weibo = rows.get("com.sina.weibo")
    twitter = rows.get("com.twitter.android")
    if weibo is None or twitter is None:
        pytest.skip("sampled study lacks one of the apps")
    assert weibo.joules_per_mb > 10 * twitter.joules_per_mb


def test_push_services_energy_hungry(medium_study):
    rows = {r.app: r for r in case_study_table(medium_study)}
    push = rows["com.sec.spp.push"]
    assert push.joules_per_day > 300
    assert push.joules_per_mb > 20


def test_widget_cheaper_than_app(medium_study):
    """Accuweather app ≫ Accuweather widget in J/day (Table 1)."""
    rows = {r.app: r for r in case_study_table(medium_study)}
    app = rows.get("com.accuweather.android")
    widget = rows.get("com.accuweather.widget")
    if app is None or widget is None:
        pytest.skip("sampled study lacks one of the apps")
    assert app.joules_per_day > 3 * widget.joules_per_day


def test_efficiency_spread(medium_study):
    rows = case_study_table(medium_study)
    assert efficiency_spread(rows) > 10.0
    with pytest.raises(AnalysisError):
        efficiency_spread([])


def test_flow_gap_changes_flow_count(medium_study):
    tight = case_study_row(medium_study, "com.sina.weibo", flow_gap=60.0)
    loose = case_study_row(medium_study, "com.sina.weibo", flow_gap=3600.0)
    assert tight.n_flows >= loose.n_flows
    assert loose.mb_per_flow >= tight.mb_per_flow
