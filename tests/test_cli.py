"""CLI commands (small in-process runs)."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


SMALL = ["--users", "2", "--days", "5", "--seed", "3"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_lab_command(capsys):
    code, out = run(capsys, "lab")
    assert code == 0
    assert "chrome" in out
    assert "push library" in out


def test_generate_and_reload(tmp_path, capsys):
    out_file = str(tmp_path / "study.npz")
    code, out = run(capsys, "generate", *SMALL, "--out", out_file)
    assert code == 0
    assert "wrote" in out
    code, out = run(capsys, "figure", "1", "--dataset", out_file)
    assert code == 0
    assert "Figure 1" in out


def test_figure_commands(capsys):
    for number, marker in [("1", "Figure 1"), ("3", "Figure 3"), ("6", "Figure 6")]:
        code, out = run(capsys, "figure", number, *SMALL)
        assert code == 0
        assert marker in out


def test_figure_5_for_app(capsys):
    code, out = run(capsys, "figure", "5", "--app", "com.android.chrome", *SMALL)
    assert code == 0
    assert "Figure 5" in out


def test_table_1(capsys):
    code, out = run(capsys, "table", "1", *SMALL)
    assert code == 0
    assert "Table 1" in out


def test_whatif_command(capsys):
    code, out = run(capsys, "whatif", "--app", "com.sec.spp.push", *SMALL)
    assert code == 0
    assert "Table 2" in out
    assert "affected-days" in out


def test_recommend_command(capsys):
    code, out = run(capsys, "recommend", "--top", "5", *SMALL)
    assert code == 0
    assert "recommendation" in out


def test_longitudinal_command(capsys):
    code, out = run(capsys, "longitudinal", *SMALL)
    assert code == 0
    assert "Weekly background energy" in out
    assert "fluctuation" in out


def test_coalesce_command(capsys):
    code, out = run(capsys, "coalesce", "--period", "900", *SMALL)
    assert code == 0
    assert "energy saved" in out


def test_summary_command(capsys):
    code, out = run(capsys, "summary", *SMALL)
    assert code == 0
    assert "Per-user trace summary" in out
    assert "Traffic by app category" in out


def test_scenario_flag(capsys):
    code, out = run(capsys, "figure", "1", "--scenario", "smoke")
    assert code == 0
    assert "Figure 1" in out


def test_model_flag(capsys):
    code, out = run(capsys, "table", "1", "--model", "umts", *SMALL)
    assert code == 0
    assert "Table 1" in out


def test_import_command(tmp_path, capsys):
    packets = tmp_path / "p.csv"
    events = tmp_path / "e.csv"
    packets.write_text(
        "timestamp,size,direction,app,conn\n1.0,100,down,com.a,1\n"
    )
    events.write_text(
        "timestamp,kind,app,value\n0.5,process,com.a,foreground\n"
    )
    out_file = str(tmp_path / "imported.npz")
    code, out = run(capsys, "import", f"{packets}:{events}", "--out", out_file)
    assert code == 0
    assert "wrote" in out
    code, out = run(capsys, "figure", "1", "--dataset", out_file)
    assert code == 0


def test_app_command(capsys):
    code, out = run(capsys, "app", "--app", "com.sec.spp.push", *SMALL)
    assert code == 0
    assert "com.sec.spp.push" in out
    assert "recommendation:" in out
