"""CLI commands (small in-process runs)."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


SMALL = ["--users", "2", "--days", "5", "--seed", "3"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_lab_command(capsys):
    code, out = run(capsys, "lab")
    assert code == 0
    assert "chrome" in out
    assert "push library" in out


def test_generate_and_reload(tmp_path, capsys):
    out_file = str(tmp_path / "study.npz")
    code, out = run(capsys, "generate", *SMALL, "--out", out_file)
    assert code == 0
    assert "wrote" in out
    code, out = run(capsys, "figure", "1", "--dataset", out_file)
    assert code == 0
    assert "Figure 1" in out


def test_figure_commands(capsys):
    for number, marker in [("1", "Figure 1"), ("3", "Figure 3"), ("6", "Figure 6")]:
        code, out = run(capsys, "figure", number, *SMALL)
        assert code == 0
        assert marker in out


def test_figure_5_for_app(capsys):
    code, out = run(capsys, "figure", "5", "--app", "com.android.chrome", *SMALL)
    assert code == 0
    assert "Figure 5" in out


def test_table_1(capsys):
    code, out = run(capsys, "table", "1", *SMALL)
    assert code == 0
    assert "Table 1" in out


def test_whatif_command(capsys):
    code, out = run(capsys, "whatif", "--app", "com.sec.spp.push", *SMALL)
    assert code == 0
    assert "Table 2" in out
    assert "affected-days" in out


def test_recommend_command(capsys):
    code, out = run(capsys, "recommend", "--top", "5", *SMALL)
    assert code == 0
    assert "recommendation" in out


def test_longitudinal_command(capsys):
    code, out = run(capsys, "longitudinal", *SMALL)
    assert code == 0
    assert "Weekly background energy" in out
    assert "fluctuation" in out


def test_coalesce_command(capsys):
    code, out = run(capsys, "coalesce", "--period", "900", *SMALL)
    assert code == 0
    assert "energy saved" in out


def test_summary_command(capsys):
    code, out = run(capsys, "summary", *SMALL)
    assert code == 0
    assert "Per-user trace summary" in out
    assert "Traffic by app category" in out


def test_scenario_flag(capsys):
    code, out = run(capsys, "figure", "1", "--scenario", "smoke")
    assert code == 0
    assert "Figure 1" in out


def test_model_flag(capsys):
    code, out = run(capsys, "table", "1", "--model", "umts", *SMALL)
    assert code == 0
    assert "Table 1" in out


def test_import_command(tmp_path, capsys):
    packets = tmp_path / "p.csv"
    events = tmp_path / "e.csv"
    packets.write_text(
        "timestamp,size,direction,app,conn\n1.0,100,down,com.a,1\n"
    )
    events.write_text(
        "timestamp,kind,app,value\n0.5,process,com.a,foreground\n"
    )
    out_file = str(tmp_path / "imported.npz")
    code, out = run(capsys, "import", f"{packets}:{events}", "--out", out_file)
    assert code == 0
    assert "wrote" in out
    code, out = run(capsys, "figure", "1", "--dataset", out_file)
    assert code == 0


def test_app_command(capsys):
    code, out = run(capsys, "app", "--app", "com.sec.spp.push", *SMALL)
    assert code == 0
    assert "com.sec.spp.push" in out
    assert "recommendation:" in out


@pytest.fixture(scope="module")
def checkpointed(tmp_path_factory):
    """A saved study and a finished ingest checkpoint over it."""
    root = tmp_path_factory.mktemp("cli_ck")
    study = str(root / "study.npz")
    ck = str(root / "ck.npz")
    assert main(["generate", *SMALL, "--out", study]) == 0
    assert main(["ingest", "--dataset", study, "--checkpoint", ck]) == 0
    return study, ck


def test_from_checkpoint_byte_identical(checkpointed, capsys):
    study, ck = checkpointed
    capsys.readouterr()
    for batch_argv, ck_argv in [
        (["figure", "3", "--dataset", study], ["figure", "fig3", "--from-checkpoint", ck]),
        (["figure", "1", "--dataset", study], ["figure", "1", "--from-checkpoint", ck]),
        (["table", "1", "--dataset", study], ["table", "table1", "--from-checkpoint", ck]),
    ]:
        code, batch_out = run(capsys, *batch_argv)
        assert code == 0
        code, ck_out = run(capsys, *ck_argv)
        assert code == 0
        assert ck_out == batch_out


def test_headlines_from_checkpoint_match_batch_values(checkpointed, capsys):
    study, ck = checkpointed
    capsys.readouterr()
    code, batch_out = run(capsys, "headlines", "--dataset", study)
    assert code == 0
    code, ck_out = run(capsys, "headlines", "--from-checkpoint", ck)
    assert code == 0
    # The checkpoint renders the totals-tier headlines; each line must
    # appear in the batch output with the identical measured value
    # (column padding differs because batch has more rows).
    batch_lines = {" ".join(l.split()) for l in batch_out.splitlines()}
    ck_lines = [
        " ".join(l.split())
        for l in ck_out.splitlines()
        if "background states" in l
    ]
    assert len(ck_lines) == 2
    for line in ck_lines:
        assert line in batch_lines


def test_per_packet_figure_from_checkpoint_fails_typed(checkpointed, capsys):
    _, ck = checkpointed
    code = main(["figure", "4", "--from-checkpoint", ck])
    captured = capsys.readouterr()
    assert code == 3
    assert captured.out == ""
    assert "figure 4 needs per-packet arrays" in captured.err
    assert "without --from-checkpoint" in captured.err
    code = main(["table", "2", "--from-checkpoint", ck])
    captured = capsys.readouterr()
    assert code == 3
    assert "table 2 needs per-packet arrays" in captured.err


def test_whatif_from_checkpoint_fails_typed(checkpointed, capsys):
    """Counterfactual policies need packets; a totals checkpoint must
    refuse with the typed exit code, for the generic engine path too."""
    _, ck = checkpointed
    for argv in (
        ["whatif", "--from-checkpoint", ck],
        ["whatif", "--policy", "frequency-cap", "--from-checkpoint", ck],
        ["coalesce", "--from-checkpoint", ck],
    ):
        code = main(argv)
        captured = capsys.readouterr()
        assert code == 3
        assert captured.out == ""
        assert "per-packet arrays" in captured.err
        assert "without --from-checkpoint" in captured.err


def test_whatif_policy_flag(capsys):
    code, out = run(
        capsys, "whatif", "--policy", "doze",
        "--param", "screen_off_threshold=1800", *SMALL,
    )
    assert code == 0
    assert "Policy doze(" in out
    assert "screen_off_threshold=1800" in out
    assert "energy saved" in out


def test_whatif_policy_with_app_detail(capsys):
    code, out = run(
        capsys, "whatif", "--policy", "deadline", "--app",
        "com.sec.spp.push", *SMALL,
    )
    assert code == 0
    assert "Policy deadline(" in out
    # Per-app columns use the last name component, like Table 2.
    assert "push" in out
    assert "packets delayed" in out


def test_whatif_rejects_bad_param(capsys):
    code = main(["whatif", "--policy", "kill", "--param", "bogus=1", *SMALL])
    captured = capsys.readouterr()
    assert code == 2
    assert "bogus" in captured.err


def test_table2_policy_flag_renders_end_to_end(capsys):
    code, out = run(
        capsys, "table", "2", "--policy", "kill", "--model", "nr", *SMALL
    )
    assert code == 0
    assert "Policy kill(" in out
    assert "on nr" in out
    assert "per-app effect" in out
    assert "energy saved" in out


def test_report_from_checkpoint_is_totals_tier(checkpointed, capsys):
    _, ck = checkpointed
    code, out = run(capsys, "report", "--from-checkpoint", ck)
    assert code == 0
    for marker in ("Figure 1", "Figure 2", "Figure 3", "Table 1"):
        assert marker in out
    assert "Figure 4" not in out
    assert "totals-tier report from checkpoint" in out


def test_ingest_no_cadence_table1_fails_typed(tmp_path, capsys):
    study = str(tmp_path / "study.npz")
    ck = str(tmp_path / "ck.npz")
    assert main(["generate", *SMALL, "--out", study]) == 0
    assert main(
        ["ingest", "--dataset", study, "--checkpoint", ck, "--no-cadence"]
    ) == 0
    capsys.readouterr()
    code = main(["table", "1", "--from-checkpoint", ck])
    captured = capsys.readouterr()
    assert code == 3
    assert "cadence" in captured.err
