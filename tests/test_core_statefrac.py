"""Fig 3 and the background-fraction headline."""

import pytest

from repro.core.statefrac import (
    STATE_ORDER,
    background_energy_fraction,
    background_fraction_per_app,
    state_energy_fractions,
    state_energy_share,
)
from repro.errors import AnalysisError
from repro.trace.events import ProcessState


def test_fractions_sum_to_one(small_study):
    fractions = state_energy_fractions(small_study)
    assert len(fractions) == 12  # the paper's twelve hungry apps
    for app, by_state in fractions.items():
        assert sum(by_state.values()) == pytest.approx(1.0)
        assert set(by_state) == set(STATE_ORDER)


def test_explicit_app_selection(small_study):
    fractions = state_energy_fractions(
        small_study, apps=["com.android.email", "com.android.chrome"]
    )
    assert set(fractions) == {"com.android.email", "com.android.chrome"}


def test_unknown_app_raises(small_study):
    with pytest.raises(Exception):
        state_energy_fractions(small_study, apps=["does.not.exist"])


def test_state_share_sums_to_one(small_study):
    share = state_energy_share(small_study)
    assert sum(share.values()) == pytest.approx(1.0)


def test_background_fraction_matches_share(small_study):
    share = state_energy_share(small_study)
    bg = (
        share[ProcessState.PERCEPTIBLE]
        + share[ProcessState.SERVICE]
        + share[ProcessState.BACKGROUND]
    )
    assert background_energy_fraction(small_study) == pytest.approx(bg)


def test_background_dominates(small_study):
    """The paper's 84% headline: background states dominate."""
    assert background_energy_fraction(small_study) > 0.6


def test_service_is_largest_background_state(small_study):
    """The paper: 32% service vs 8% perceptible."""
    share = state_energy_share(small_study)
    assert share[ProcessState.SERVICE] > share[ProcessState.PERCEPTIBLE]


def test_chrome_background_fraction(small_study):
    """§4.1: ~30% of Chrome's energy is background."""
    frac = background_energy_fraction(small_study, "com.android.chrome")
    assert 0.1 < frac < 0.6


def test_browsers_differ(small_study):
    chrome = background_energy_fraction(small_study, "com.android.chrome")
    firefox = background_energy_fraction(small_study, "org.mozilla.firefox")
    assert chrome > 2 * firefox


def test_per_app_fractions_bounded(small_study):
    fractions = background_fraction_per_app(small_study)
    assert fractions
    assert all(0.0 <= v <= 1.0 + 1e-9 for v in fractions.values())


def test_pure_service_apps_fully_background(small_study):
    fractions = background_fraction_per_app(small_study)
    assert fractions["com.urbanairship.push"] > 0.95
