"""End-to-end study generation."""

import numpy as np
import pytest

from repro import StudyConfig, generate_study
from repro.errors import WorkloadError
from repro.trace.arrays import STATE_UNLABELLED
from repro.trace.events import ProcessState
from repro.units import DAY
from repro.workload.generator import StudyGenerator
from repro.workload.rng import substream


def test_config_validation():
    with pytest.raises(WorkloadError):
        StudyConfig(n_users=0)
    with pytest.raises(WorkloadError):
        StudyConfig(duration_days=0.0)


def test_config_duration_seconds():
    assert StudyConfig(duration_days=2.0).duration == pytest.approx(2 * DAY)


def test_structure(small_dataset, small_config):
    assert len(small_dataset) == small_config.n_users
    assert len(small_dataset.registry) == 342
    assert small_dataset.metadata["seed"] == small_config.seed
    for trace in small_dataset:
        assert trace.duration == pytest.approx(small_config.duration)
        assert trace.packets.is_time_sorted()


def test_validates(small_dataset):
    small_dataset.validate()


def test_states_labelled(small_dataset):
    for trace in small_dataset:
        assert not np.any(trace.packets.states == STATE_UNLABELLED)


def test_all_five_states_present(small_dataset):
    states = set()
    for trace in small_dataset:
        states |= set(np.unique(trace.packets.states).tolist())
    assert {int(s) for s in (
        ProcessState.FOREGROUND,
        ProcessState.PERCEPTIBLE,
        ProcessState.SERVICE,
        ProcessState.BACKGROUND,
    )} <= states


def test_determinism():
    config = StudyConfig(n_users=2, duration_days=3.0, seed=5)
    a = generate_study(config)
    b = generate_study(config)
    for ta, tb in zip(a, b):
        assert np.array_equal(ta.packets.data, tb.packets.data)
        assert len(ta.events.process_events) == len(tb.events.process_events)


def test_seed_changes_output():
    a = generate_study(StudyConfig(n_users=2, duration_days=3.0, seed=5))
    b = generate_study(StudyConfig(n_users=2, duration_days=3.0, seed=6))
    assert not np.array_equal(a.users[0].packets.data, b.users[0].packets.data)


def test_users_differ(small_dataset):
    a, b = small_dataset.users[0], small_dataset.users[1]
    assert len(a.packets) != len(b.packets) or not np.array_equal(
        a.packets.data, b.packets.data
    )


def test_app_diversity(small_dataset):
    """Different users install different app sets (Fig 1's premise)."""
    sets = [frozenset(t.app_ids()) for t in small_dataset]
    assert len(set(sets)) == len(sets)


def test_conn_ids_assigned(small_dataset):
    trace = small_dataset.users[0]
    assert np.all(trace.packets.conns > 0)


def test_packets_within_window(small_dataset):
    for trace in small_dataset:
        ts = trace.packets.timestamps
        assert ts.min() >= 0.0
        assert ts.max() < trace.end


def test_generator_registry_covers_catalog():
    gen = StudyGenerator(StudyConfig(n_users=1, duration_days=1.0))
    assert len(gen.registry) == len(gen.profiles)
    assert gen.registry.name_of(1) == gen.profiles[0].name


def test_order_independent_rng():
    """Per-(user, app, slot) substreams: identical keys, identical draws."""
    a = substream(42, "traffic", 1, 7, "bg0")
    b = substream(42, "traffic", 1, 7, "bg0")
    c = substream(42, "traffic", 1, 8, "bg0")
    assert a.random() == b.random()
    assert a.random() != c.random()


def test_longer_study_has_proportionally_more_traffic():
    short = generate_study(StudyConfig(n_users=2, duration_days=3.0, seed=9))
    long = generate_study(StudyConfig(n_users=2, duration_days=9.0, seed=9))
    ratio = long.total_bytes / short.total_bytes
    assert 1.5 < ratio < 6.0


def test_parallel_generation_identical():
    """Worker count never changes the output (per-user determinism)."""
    config = StudyConfig(n_users=3, duration_days=2.0, seed=12)
    serial = generate_study(config)
    parallel = generate_study(config, workers=2)
    for a, b in zip(serial, parallel):
        assert np.array_equal(a.packets.data, b.packets.data)
        assert len(a.events.process_events) == len(b.events.process_events)
