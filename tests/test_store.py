"""The persistent results store: keys, durability, single-flight, CLI."""

import threading

import pytest

from repro import StudyConfig, StudyEnergy, generate_study
from repro.cli import EXIT_STORE_MISS, main
from repro.core.readout import readout_from_checkpoint
from repro.errors import AnalysisError
from repro.store import (
    ANALYSIS_NAMES,
    ResultStore,
    StoreKey,
    render_analysis,
    store_key_for,
)
from repro.store.render import ANALYSIS_KINDS

SMALL = StudyConfig(n_users=2, duration_days=4.0, seed=11)


@pytest.fixture(scope="module")
def dataset():
    return generate_study(SMALL)


@pytest.fixture(scope="module")
def study(dataset):
    return StudyEnergy(dataset, lazy=True)


@pytest.fixture
def store(tmp_path):
    return ResultStore(tmp_path / "store")


# ----------------------------------------------------------------------
# Keys and ETags
# ----------------------------------------------------------------------
def test_key_digest_is_stable_and_distinct():
    key = StoreKey("abc", "RadioModel(...)", "last-packet", "fig1")
    assert key.digest() == StoreKey(
        "abc", "RadioModel(...)", "last-packet", "fig1"
    ).digest()
    others = [
        StoreKey("abd", "RadioModel(...)", "last-packet", "fig1"),
        StoreKey("abc", "RadioModel(. .)", "last-packet", "fig1"),
        StoreKey("abc", "RadioModel(...)", "fixed-tail", "fig1"),
        StoreKey("abc", "RadioModel(...)", "fig2", "fig1"),
        # Field-boundary confusion must not collide.
        StoreKey("abcRadioModel(...)", "", "last-packet", "fig1"),
    ]
    digests = {key.digest()} | {other.digest() for other in others}
    assert len(digests) == len(others) + 1
    assert key.etag() == f'"{key.digest()}"'


def test_store_key_for_study_reads_fingerprint_only(dataset):
    lazy = StudyEnergy(dataset, lazy=True)
    key = store_key_for(lazy, "fig3")
    assert key.fingerprint == dataset.fingerprint()
    assert key.analysis == "fig3"
    # Deriving the key must not have triggered attribution.
    assert lazy._results == {}


def test_store_key_for_rejects_unknown_analysis(study):
    with pytest.raises(AnalysisError):
        store_key_for(study, "fig9")


def test_store_key_for_rejects_provenance_free_source():
    with pytest.raises(AnalysisError):
        store_key_for(object(), "fig1")


# ----------------------------------------------------------------------
# Store round trips and durability
# ----------------------------------------------------------------------
def test_put_get_roundtrip(store, study):
    key = store_key_for(study, "fig1")
    text = render_analysis("fig1", study)
    put = store.put(key, text.encode("utf-8"))
    assert put.fresh
    got = store.get(key)
    assert got is not None and not got.fresh
    assert got.text == text
    assert got.etag == key.etag()
    assert store.metrics.counter("store.hits") == 1


def test_get_on_empty_store_is_a_miss(store, study):
    assert store.get(store_key_for(study, "fig1")) is None
    assert store.metrics.counter("store.misses") == 1


def test_corrupt_blob_falls_back_to_prev_then_misses(store, study):
    key = store_key_for(study, "fig1")
    data = b"generation one"
    store.put(key, data)
    store.put(key, b"generation two")  # rotates gen one to .prev
    path = store.blobs.path_for(key.digest(), "text")
    path.write_bytes(b"torn write")
    got = store.get(key)
    # Current file fails its checksum; .prev holds generation one,
    # whose checksum no longer matches the index row -> clean miss.
    assert got is None
    # A torn current file with a matching .prev generation serves it.
    store.put(key, data)
    store.put(key, data)  # .prev now holds the same verified bytes
    path.write_bytes(b"torn again")
    got = store.get(key)
    assert got is not None and got.data == data


def test_get_or_render_computes_once(store, study):
    key = store_key_for(study, "table1")
    calls = []

    def render():
        calls.append(1)
        return render_analysis("table1", study).encode("utf-8")

    first = store.get_or_render(key, render)
    second = store.get_or_render(key, render)
    assert len(calls) == 1
    assert first.fresh and not second.fresh
    assert first.data == second.data
    assert store.metrics.counter("store.puts") == 1


def test_single_flight_under_concurrency(store, study):
    """Parallel clients racing one cold key render exactly once."""
    key = store_key_for(study, "headlines")
    payload = render_analysis("headlines", study).encode("utf-8")
    calls = []
    barrier = threading.Barrier(4)
    results = []

    def client():
        def render():
            calls.append(1)
            return payload

        barrier.wait()
        results.append(store.get_or_render(key, render))

    threads = [threading.Thread(target=client) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(calls) == 1
    assert store.metrics.counter("store.puts") == 1
    assert len(results) == 4
    assert all(r.data == payload for r in results)


def test_render_failure_releases_the_lock(store, study):
    key = store_key_for(study, "fig2")

    def boom():
        raise RuntimeError("renderer died")

    with pytest.raises(RuntimeError):
        store.get_or_render(key, boom)
    # The lock must not leak: a follow-up render succeeds immediately.
    ok = store.get_or_render(key, lambda: b"recovered")
    assert ok.data == b"recovered"
    assert not list((store.directory / "locks").glob("*.lock"))


# ----------------------------------------------------------------------
# Maintenance: ls / invalidate / gc
# ----------------------------------------------------------------------
def _fill(store, study, names=("fig1", "fig3", "headlines")):
    for name in names:
        store.get_or_render(
            store_key_for(study, name),
            lambda n=name: render_analysis(n, study).encode("utf-8"),
            kind=ANALYSIS_KINDS[name],
        )


def test_invalidate_by_fingerprint_prefix(store, study, dataset):
    _fill(store, study)
    fingerprint = dataset.fingerprint()
    removed, files = store.invalidate(fingerprint=fingerprint[:10])
    assert removed == 3
    assert files >= 3
    assert store.entries() == []
    assert store.get(store_key_for(study, "fig1")) is None


def test_invalidate_by_analysis(store, study):
    _fill(store, study)
    removed, _ = store.invalidate(analysis="fig3")
    assert removed == 1
    left = {e.analysis for e in store.entries()}
    assert left == {"fig1", "headlines"}


def test_invalidate_requires_a_selector(store):
    with pytest.raises(ValueError):
        store.invalidate()


def test_gc_reclaims_orphans_and_dead_rows(store, study):
    _fill(store, study)
    # Orphan blob: a file no index row references.
    (store.blobs.directory / "deadbeef.txt").write_bytes(b"orphan")
    # Dead row: delete one entry's blob files outright.
    victim = store.entries()[0]
    store.blobs.delete(victim.digest, victim.kind)
    rows, files = store.gc()
    assert rows == 1
    assert files == 1
    assert len(store.entries()) == 2


def test_gc_reclaims_prev_rotations_and_stale_locks(store, study):
    """Regression: gc also removes a live entry's mismatched ``.prev``
    rotation, stale ``.tmp`` spills and compute locks past the
    single-flight timeout — while sparing everything still useful."""
    import os
    import time

    from repro.store.index import LOCK_TIMEOUT_S

    mismatched = store_key_for(study, "fig1")
    store.put(mismatched, b"generation one")
    store.put(mismatched, b"generation two")  # .prev no longer matches
    matching = store_key_for(study, "fig3")
    store.put(matching, b"same bytes")
    store.put(matching, b"same bytes")  # .prev matches the row

    blobs = store.blobs.directory
    bad_prev = blobs / (
        store.blobs.path_for(mismatched.digest(), "text").name + ".prev"
    )
    good_prev = blobs / (
        store.blobs.path_for(matching.digest(), "text").name + ".prev"
    )
    assert bad_prev.exists() and good_prev.exists()

    old = time.time() - LOCK_TIMEOUT_S - 10.0
    stale_tmp = blobs / "feedface.txt.tmp"
    stale_tmp.write_bytes(b"abandoned spill")
    os.utime(stale_tmp, (old, old))
    young_tmp = blobs / "cafebabe.txt.tmp"
    young_tmp.write_bytes(b"in-flight publish")

    locks = store.directory / "locks"
    locks.mkdir(exist_ok=True)
    stale_lock = locks / "feedface.lock"
    stale_lock.write_bytes(b"")
    os.utime(stale_lock, (old, old))
    fresh_lock = locks / "cafebabe.lock"
    fresh_lock.write_bytes(b"")

    rows, files = store.gc()
    assert rows == 0
    assert files == 3  # bad .prev + stale .tmp + stale lock
    assert not bad_prev.exists()
    assert not stale_tmp.exists()
    assert not stale_lock.exists()
    assert good_prev.exists()
    assert young_tmp.exists()  # may be an in-flight publish
    assert fresh_lock.exists()  # its holder may still be rendering
    # Both entries still serve after the sweep.
    assert store.get(mismatched).data == b"generation two"
    assert store.get(matching).data == b"same bytes"


# ----------------------------------------------------------------------
# Fingerprint invalidation end to end (append_user regression)
# ----------------------------------------------------------------------
def test_append_user_invalidates_store_keys(tmp_path):
    """Mutating the dataset reroutes every store key; the old entries
    are orphaned and removable by the old fingerprint."""
    dataset = generate_study(StudyConfig(n_users=2, duration_days=3.0, seed=5))
    donor = generate_study(StudyConfig(n_users=3, duration_days=3.0, seed=6))
    store = ResultStore(tmp_path / "store")

    old_fingerprint = dataset.fingerprint()
    study = StudyEnergy(dataset, lazy=True)
    old_key = store_key_for(study, "fig1")
    store.put(old_key, b"stale fig1")

    dataset.append_user(donor.users[-1])
    assert dataset.fingerprint() != old_fingerprint

    new_key = store_key_for(StudyEnergy(dataset, lazy=True), "fig1")
    assert new_key.digest() != old_key.digest()
    # The mutated dataset can never be served the stale artefact ...
    assert store.get(new_key) is None
    # ... and the orphaned entry is reclaimable by the old fingerprint.
    removed, _ = store.invalidate(fingerprint=old_fingerprint)
    assert removed == 1
    assert store.entries() == []


# ----------------------------------------------------------------------
# Checkpoint provenance
# ----------------------------------------------------------------------
def test_checkpoint_readout_carries_provenance(tmp_path):
    study_file = str(tmp_path / "study.npz")
    ck = str(tmp_path / "ck.npz")
    argv = ["--users", "2", "--days", "4", "--seed", "11"]
    assert main(["generate", *argv, "--out", study_file]) == 0
    assert main(["ingest", "--dataset", study_file, "--checkpoint", ck]) == 0
    readout = readout_from_checkpoint(ck)
    assert readout.provenance is not None
    key = store_key_for(readout, "fig1")
    assert key.fingerprint == readout.provenance.fingerprint
    assert key.policy == "last-packet"


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


CLI_SMALL = ["--users", "2", "--days", "4", "--seed", "11"]


@pytest.fixture(scope="module")
def saved_study(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("store_cli") / "study.npz")
    assert main(["generate", *CLI_SMALL, "--out", out]) == 0
    return out


def test_cli_figure_store_is_byte_identical(saved_study, tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    capsys.readouterr()
    code, direct = run(capsys, "figure", "3", "--dataset", saved_study)
    assert code == 0
    code, cold = run(
        capsys, "figure", "3", "--dataset", saved_study, "--store", store_dir
    )
    assert code == 0
    code, warm = run(
        capsys, "figure", "3", "--dataset", saved_study, "--store", store_dir
    )
    assert code == 0
    assert cold == direct
    assert warm == direct


def test_cli_store_only_miss_exits_4(saved_study, tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    code = main(
        [
            "figure",
            "1",
            "--dataset",
            saved_study,
            "--store",
            store_dir,
            "--store-only",
        ]
    )
    captured = capsys.readouterr()
    assert code == EXIT_STORE_MISS == 4
    assert captured.out == ""
    assert "no cached fig1" in captured.err


def test_cli_store_only_serves_after_warmup(saved_study, tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    capsys.readouterr()
    code, warm = run(
        capsys, "table", "1", "--dataset", saved_study, "--store", store_dir
    )
    assert code == 0
    code, cached = run(
        capsys,
        "table",
        "1",
        "--dataset",
        saved_study,
        "--store",
        store_dir,
        "--store-only",
    )
    assert code == 0
    assert cached == warm


def test_cli_store_ls_gc_invalidate(saved_study, tmp_path, capsys):
    store_dir = str(tmp_path / "store")
    capsys.readouterr()
    for analysis in ("1", "3"):
        assert (
            main(
                [
                    "figure",
                    analysis,
                    "--dataset",
                    saved_study,
                    "--store",
                    store_dir,
                ]
            )
            == 0
        )
    capsys.readouterr()
    code, out = run(capsys, "store", "--store", store_dir, "ls")
    assert code == 0
    assert "fig1" in out and "fig3" in out and "2 entries" in out
    code, out = run(
        capsys, "store", "--store", store_dir, "invalidate", "--analysis", "fig1"
    )
    assert code == 0
    assert "invalidated 1 entry" in out
    code, out = run(capsys, "store", "--store", store_dir, "gc")
    assert code == 0
    assert "removed 0" in out
    code = main(["store", "--store", store_dir, "invalidate"])
    captured = capsys.readouterr()
    assert code == 2
    assert "needs --fingerprint" in captured.err


def test_all_analyses_render_for_any_totals_readout(study):
    for name in ANALYSIS_NAMES:
        text = render_analysis(name, study)
        assert isinstance(text, str) and text
