"""Text renderers for every figure and table."""

import numpy as np
import pytest

from repro.core import report
from repro.core.casestudies import case_study_table
from repro.core.popularity import top10_appearance_counts, top_consumers
from repro.core.statefrac import state_energy_fractions
from repro.core.transitions import (
    bytes_since_foreground,
    persistence_durations,
    trace_timeline,
)
from repro.core.whatif import kill_policy_savings


def test_render_table_alignment():
    text = report.render_table(
        ["name", "value"], [("a", 1), ("bbbb", 22)], title="T"
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert len(lines) == 5


def test_cell_formatting():
    text = report.render_table(["x"], [(0.000123,), (1234567.0,), (3.14159,), (0,)])
    assert "0.000123" in text
    assert "3.14" in text


def test_format_duration():
    assert report.format_duration(30) == "30s"
    assert report.format_duration(600) == "10min"
    assert report.format_duration(7300) == "2.0h"
    assert report.format_duration(3 * 86400) == "3.0d"


def test_render_fig1(small_dataset):
    text = report.render_fig1(top10_appearance_counts(small_dataset))
    assert "Figure 1" in text
    assert "top10" in text


def test_render_fig2(small_study):
    text = report.render_fig2(
        top_consumers(small_study, by="energy"),
        top_consumers(small_study, by="data"),
    )
    assert "Figure 2a" in text and "Figure 2b" in text
    assert "J/MB" in text


def test_render_fig3(small_study):
    text = report.render_fig3(state_energy_fractions(small_study))
    assert "Figure 3" in text
    assert "foreground" in text and "service" in text
    assert "%" in text


def test_render_fig4(small_dataset):
    view = trace_timeline(small_dataset, "com.android.chrome")
    text = report.render_fig4(view)
    assert "Figure 4" in text
    assert "background" in text


def test_render_fig5(small_dataset):
    samples = persistence_durations(small_dataset, app="com.android.chrome")
    text = report.render_fig5(samples)
    assert "Figure 5" in text
    assert "p50" in text


def test_render_fig6(small_dataset):
    edges, totals = bytes_since_foreground(small_dataset)
    text = report.render_fig6(edges, totals)
    assert "Figure 6" in text
    assert "MB" in text


def test_render_table1(small_study):
    text = report.render_table1(case_study_table(small_study))
    assert "Table 1" in text
    assert "J/day" in text
    # Class labels appear once per block.
    assert text.count("Social media") == 1


def test_render_table2(medium_study):
    results = [
        kill_policy_savings(medium_study, app)
        for app in ("com.sina.weibo", "com.facebook.orca")
    ]
    text = report.render_table2(results)
    assert "Table 2" in text
    assert "weibo" in text
    assert "A: % days only bg traffic" in text


def test_render_headlines():
    text = report.render_headlines({"background fraction": 0.84})
    assert "0.84" in text
