"""PacketArray column store."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.arrays import PacketArray, STATE_UNLABELLED
from repro.trace.packet import Direction, Packet

from conftest import make_packets


def _packets():
    return [
        Packet(1.0, 100, Direction.UPLINK, 1, conn=2),
        Packet(2.0, 200, Direction.DOWNLINK, 2, conn=3),
        Packet(3.0, 300, Direction.DOWNLINK, 1, conn=2),
    ]


def test_roundtrip_object_form():
    arr = PacketArray.from_packets(_packets())
    assert arr.to_packets() == _packets()


def test_empty_array():
    arr = PacketArray()
    assert len(arr) == 0
    assert arr.total_bytes == 0
    assert arr.duration() == 0.0
    assert arr.is_time_sorted()
    assert arr.bytes_by_app() == {}


def test_from_columns_length_mismatch():
    with pytest.raises(TraceError):
        PacketArray.from_columns(
            np.array([1.0, 2.0]),
            np.array([10]),
            np.array([0, 1]),
            np.array([1, 1]),
        )


def test_columns_and_aggregates():
    arr = PacketArray.from_packets(_packets())
    assert arr.total_bytes == 600
    assert arr.bytes_by_app() == {1: 400, 2: 200}
    assert arr.duration() == pytest.approx(2.0)
    assert list(arr.states) == [STATE_UNLABELLED] * 3


def test_sorting():
    arr = make_packets(
        [(5.0, 10, Direction.UPLINK, 1), (1.0, 20, Direction.UPLINK, 1)]
    )
    assert arr.is_time_sorted()
    assert arr.timestamps[0] == 1.0


def test_unsorted_detection():
    data = PacketArray.from_packets(_packets()).data.copy()
    data["timestamp"][0] = 99.0
    assert not PacketArray(data).is_time_sorted()


def test_for_app_and_in_range():
    arr = PacketArray.from_packets(_packets())
    assert len(arr.for_app(1)) == 2
    assert len(arr.in_range(1.5, 2.5)) == 1


def test_select_mask():
    arr = PacketArray.from_packets(_packets())
    picked = arr.select(arr.sizes >= 200)
    assert len(picked) == 2


def test_concat():
    a = PacketArray.from_packets(_packets())
    b = PacketArray.from_packets(_packets())
    merged = PacketArray.concat([a, b])
    assert len(merged) == 6
    assert PacketArray.concat([]).data.shape == (0,)


def test_validate_rejects_bad_direction():
    arr = PacketArray.from_packets(_packets())
    arr.data["direction"][0] = 9
    with pytest.raises(TraceError):
        arr.validate()


def test_validate_rejects_zero_size():
    arr = PacketArray.from_packets(_packets())
    arr.data["size"][0] = 0
    with pytest.raises(TraceError):
        arr.validate()


def test_validate_accepts_good_array():
    PacketArray.from_packets(_packets()).validate()


def test_repr_mentions_counts():
    arr = PacketArray.from_packets(_packets())
    assert "n=3" in repr(arr)
    assert "empty" in repr(PacketArray())


def test_wrong_dtype_rejected():
    with pytest.raises(TraceError):
        PacketArray(np.zeros(3, dtype=np.float64))


def test_iteration_yields_packets():
    arr = PacketArray.from_packets(_packets())
    assert [p.size for p in arr] == [100, 200, 300]
