"""Radio model parameterisation (LTE, UMTS, WiFi)."""

import pytest

from repro.errors import ModelError
from repro.radio.base import (
    RadioModel,
    TailPhase,
    energy_per_byte_from_throughput_curve,
)
from repro.radio.lte import (
    LTE_DEFAULT,
    lte_fast_dormancy_model,
    lte_model,
)
from repro.radio.umts import UMTS_DEFAULT, umts_model
from repro.radio.wifi import WIFI_DEFAULT
from repro.trace.packet import Direction


def test_lte_published_constants():
    m = LTE_DEFAULT
    assert m.idle_power == pytest.approx(0.0114)
    assert m.promotion_duration == pytest.approx(0.26)
    assert m.promotion_power == pytest.approx(1.2107)
    assert m.tail_duration == pytest.approx(11.576)
    assert m.full_tail_energy == pytest.approx(11.576 * 1.060)
    assert m.promotion_energy == pytest.approx(0.26 * 1.2107)


def test_lte_per_byte_energy_derivation():
    # alpha_up=438.39 mW/Mbps, beta=1288.04 mW at 5 Mbps:
    # P = 3.48 W; t/byte = 1.6e-6 s -> ~5.57 uJ/B.
    assert LTE_DEFAULT.energy_per_byte_up == pytest.approx(5.568e-6, rel=1e-3)
    assert LTE_DEFAULT.energy_per_byte_down == pytest.approx(1.103e-6, rel=1e-3)
    # Uplink costs more per byte than downlink on every model.
    for model in (LTE_DEFAULT, UMTS_DEFAULT, WIFI_DEFAULT):
        assert model.energy_per_byte_up > model.energy_per_byte_down


def test_drx_detail_tail_matches_average():
    detailed = lte_model(drx_detail=True)
    assert detailed.tail_duration == pytest.approx(11.576)
    assert detailed.full_tail_energy == pytest.approx(
        LTE_DEFAULT.full_tail_energy, rel=0.02
    )


def test_fast_dormancy_cuts_tail():
    fd = lte_fast_dormancy_model(tail_duration=3.0)
    assert fd.tail_duration == pytest.approx(3.0)
    assert fd.full_tail_energy < LTE_DEFAULT.full_tail_energy / 3


def test_umts_two_phase_tail():
    m = UMTS_DEFAULT
    assert len(m.tail_phases) == 2
    assert m.tail_duration == pytest.approx(17.0)  # 5 s DCH + 12 s FACH
    # The DCH phase drains faster than FACH.
    assert m.tail_phases[0].power > m.tail_phases[1].power


def test_wifi_burst_far_cheaper_than_lte():
    size = 100_000
    wifi = WIFI_DEFAULT.burst_energy(size, Direction.DOWNLINK)
    lte = LTE_DEFAULT.burst_energy(size, Direction.DOWNLINK)
    assert lte / wifi > 20  # orders of magnitude, per the paper


def test_tail_energy_partial():
    m = LTE_DEFAULT
    assert m.tail_energy(0.0) == 0.0
    assert m.tail_energy(-5.0) == 0.0
    assert m.tail_energy(1.0) == pytest.approx(1.060)
    assert m.tail_energy(100.0) == pytest.approx(m.full_tail_energy)


def test_tail_energy_piecewise_umts():
    m = UMTS_DEFAULT
    assert m.tail_energy(5.0) == pytest.approx(5.0 * 0.8)
    assert m.tail_energy(6.0) == pytest.approx(5.0 * 0.8 + 1.0 * 0.46)


def test_tail_energy_vector_matches_scalar():
    import numpy as np

    m = UMTS_DEFAULT
    times = np.array([0.0, 2.5, 5.0, 9.0, 17.0, 30.0])
    vec = m.tail_energy_vector(times)
    for t, e in zip(times, vec):
        assert e == pytest.approx(m.tail_energy(float(t)))


def test_transfer_energy_linear():
    m = LTE_DEFAULT
    one = m.transfer_energy(1000, Direction.DOWNLINK)
    ten = m.transfer_energy(10000, Direction.DOWNLINK)
    assert ten == pytest.approx(10 * one)
    with pytest.raises(ModelError):
        m.transfer_energy(-1, Direction.DOWNLINK)


def test_burst_energy_dominated_by_tail_for_small_updates():
    """The paper's core premise: small periodic transfers pay mostly tail."""
    m = LTE_DEFAULT
    burst = m.burst_energy(50_000, Direction.DOWNLINK)
    assert m.full_tail_energy / burst > 0.9


def test_invalid_model_configs():
    with pytest.raises(ModelError):
        TailPhase(duration=0.0, power=1.0)
    with pytest.raises(ModelError):
        TailPhase(duration=1.0, power=-1.0)
    with pytest.raises(ModelError):
        RadioModel(
            name="bad",
            idle_power=0.01,
            promotion_duration=0.1,
            promotion_power=1.0,
            tail_phases=(),
            energy_per_byte_up=1e-6,
            energy_per_byte_down=1e-6,
        )
    with pytest.raises(ModelError):
        energy_per_byte_from_throughput_curve(100.0, 100.0, 0.0)
    with pytest.raises(ModelError):
        lte_model(uplink_mbps=-1.0)


def test_umts_per_byte_higher_than_lte():
    """3G transfers are slower, so per-byte energy exceeds LTE's."""
    assert UMTS_DEFAULT.energy_per_byte_down > LTE_DEFAULT.energy_per_byte_down
    assert UMTS_DEFAULT.energy_per_byte_up > LTE_DEFAULT.energy_per_byte_up
