"""State intervals, packet labelling, background transitions."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.events import EventLog, ProcessState, ProcessStateEvent
from repro.trace.intervals import (
    app_state_intervals,
    background_transitions,
    label_packet_states,
    state_durations,
    unlabelled_count,
)
from repro.trace.packet import Direction

from conftest import make_packets


def test_intervals_basic(simple_events):
    intervals = app_state_intervals(simple_events, 1, 0.0, 600.0)
    assert [(i.start, i.end, i.state) for i in intervals] == [
        (0.0, 50.0, ProcessState.FOREGROUND),
        (50.0, 500.0, ProcessState.BACKGROUND),
        (500.0, 600.0, ProcessState.NOT_RUNNING),
    ]


def test_intervals_initial_state_before_events(simple_events):
    intervals = app_state_intervals(simple_events, 2, 0.0, 100.0)
    assert len(intervals) == 1
    assert intervals[0].state is ProcessState.NOT_RUNNING


def test_intervals_window_clipping(simple_events):
    intervals = app_state_intervals(simple_events, 1, 20.0, 60.0)
    assert intervals[0].start == 20.0
    assert intervals[0].state is ProcessState.FOREGROUND
    assert intervals[-1].end == 60.0


def test_intervals_rejects_reversed_window(simple_events):
    with pytest.raises(TraceError):
        app_state_intervals(simple_events, 1, 10.0, 5.0)


def test_state_durations(simple_events):
    intervals = app_state_intervals(simple_events, 1, 0.0, 600.0)
    totals = state_durations(intervals)
    assert totals[ProcessState.FOREGROUND] == pytest.approx(50.0)
    assert totals[ProcessState.BACKGROUND] == pytest.approx(450.0)


def test_label_packet_states(simple_events):
    packets = make_packets(
        [
            (10.0, 100, Direction.UPLINK, 1),   # foreground
            (60.0, 100, Direction.UPLINK, 1),   # background
            (550.0, 100, Direction.UPLINK, 1),  # not running
            (10.0, 100, Direction.UPLINK, 2),   # no events -> default
        ]
    )
    labels = label_packet_states(packets, simple_events)
    by_time = sorted(zip(packets.timestamps, packets.apps, labels))
    states = {
        (t, a): ProcessState(int(s)) for t, a, s in by_time
    }
    assert states[(10.0, 1)] is ProcessState.FOREGROUND
    assert states[(60.0, 1)] is ProcessState.BACKGROUND
    assert states[(550.0, 1)] is ProcessState.NOT_RUNNING
    assert states[(10.0, 2)] is ProcessState.SERVICE  # default
    assert unlabelled_count(packets) == 0


def test_label_empty_array(simple_events):
    packets = make_packets([])
    labels = label_packet_states(packets, simple_events)
    assert len(labels) == 0


def test_background_transitions_basic(simple_events):
    transitions = background_transitions(simple_events, 1, 600.0)
    assert len(transitions) == 1
    assert transitions[0].start == 50.0
    assert transitions[0].end == 500.0  # ends when the app stops running


def test_background_transition_open_at_end():
    log = EventLog(
        process_events=[
            ProcessStateEvent(0.0, 1, ProcessState.FOREGROUND),
            ProcessStateEvent(10.0, 1, ProcessState.SERVICE),
        ]
    )
    transitions = background_transitions(log, 1, 100.0)
    assert transitions == [type(transitions[0])(1, 10.0, 100.0)]


def test_background_requires_prior_foreground():
    log = EventLog(
        process_events=[ProcessStateEvent(5.0, 1, ProcessState.SERVICE)]
    )
    assert background_transitions(log, 1, 100.0) == []


def test_foreground_to_foreground_is_not_transition():
    log = EventLog(
        process_events=[
            ProcessStateEvent(0.0, 1, ProcessState.FOREGROUND),
            ProcessStateEvent(5.0, 1, ProcessState.VISIBLE),
            ProcessStateEvent(10.0, 1, ProcessState.FOREGROUND),
        ]
    )
    assert background_transitions(log, 1, 100.0) == []


def test_multiple_episodes():
    log = EventLog(
        process_events=[
            ProcessStateEvent(0.0, 1, ProcessState.FOREGROUND),
            ProcessStateEvent(10.0, 1, ProcessState.BACKGROUND),
            ProcessStateEvent(20.0, 1, ProcessState.FOREGROUND),
            ProcessStateEvent(30.0, 1, ProcessState.SERVICE),
            ProcessStateEvent(40.0, 1, ProcessState.NOT_RUNNING),
        ]
    )
    transitions = background_transitions(log, 1, 100.0)
    assert [(t.start, t.end) for t in transitions] == [(10.0, 20.0), (30.0, 40.0)]
