"""The parallel / lazy / disk-cached attribution engine.

Contract under test: every knob combination (workers, lazy, cache_dir)
produces *bit-identical* results to the plain serial engine — the knobs
may only change when and where the work happens, never the numbers.
"""

import numpy as np
import pytest

import repro.radio.attribution as attribution
from repro import RunMetrics, StudyConfig, StudyEnergy, generate_study
from repro.core.cache import AttributionCache, study_cache_key
from repro.errors import AnalysisError
from repro.parallel import map_tasks, resolve_workers
from repro.radio import TailPolicy
from repro.radio.umts import UMTS_DEFAULT


@pytest.fixture
def counted_attribute(monkeypatch):
    """Route attribute_energy through a call counter."""
    calls = []
    real = attribution.attribute_energy

    def counting(model, packets, window=None, policy=TailPolicy.LAST_PACKET):
        calls.append(packets)
        return real(model, packets, window=window, policy=policy)

    monkeypatch.setattr(attribution, "attribute_energy", counting)
    return calls


# ----------------------------------------------------------------------
# Parallel == serial
# ----------------------------------------------------------------------
def test_parallel_identical_to_serial(small_dataset, small_study):
    parallel = StudyEnergy(small_dataset, workers=2)
    for uid in small_study.user_ids:
        a = small_study.user_result(uid)
        b = parallel.user_result(uid)
        assert np.array_equal(a.per_packet, b.per_packet)
        assert np.array_equal(a.tail, b.tail)
        assert a.energy.idle_energy == b.energy.idle_energy
        assert a.energy.window == b.energy.window
    assert parallel.total_energy == small_study.total_energy
    assert parallel.energy_by_app() == small_study.energy_by_app()


def test_workers_zero_means_cpu_count(small_dataset):
    study = StudyEnergy(small_dataset, workers=0)
    assert study.workers >= 1
    assert study.total_energy > 0


# ----------------------------------------------------------------------
# Lazy evaluation
# ----------------------------------------------------------------------
def test_lazy_defers_and_computes_each_user_once(
    small_dataset, counted_attribute
):
    study = StudyEnergy(small_dataset, lazy=True)
    assert counted_attribute == []

    uid = study.user_ids[0]
    first = study.user_result(uid)
    again = study.user_result(uid)
    assert first is again
    assert len(counted_attribute) == 1

    # A study-wide reduction materializes exactly the remaining users.
    study.total_energy
    assert len(counted_attribute) == len(small_dataset)
    study.total_energy
    study.energy_by_app()
    study.energy_by_app_state()
    assert len(counted_attribute) == len(small_dataset)


def test_lazy_totals_bit_identical_to_eager(small_dataset, small_study):
    lazy = StudyEnergy(small_dataset, lazy=True)
    # Touch users out of dataset order first: reductions must still sum
    # in dataset order, so the float totals match the eager engine bit
    # for bit.
    for uid in reversed(lazy.user_ids):
        lazy.user_result(uid)
    assert lazy.total_energy == small_study.total_energy
    assert lazy.attributed_energy == small_study.attributed_energy
    assert lazy.idle_energy == small_study.idle_energy


def test_lazy_unknown_user_raises_without_computing(
    small_dataset, counted_attribute
):
    study = StudyEnergy(small_dataset, lazy=True)
    with pytest.raises(AnalysisError):
        study.user_result(999)
    assert counted_attribute == []


def test_lazy_user_ids_and_dataset_iteration_untouched(small_dataset):
    study = StudyEnergy(small_dataset, lazy=True)
    assert study.user_ids == [t.user_id for t in small_dataset]
    assert study.bytes_by_app()  # packet-only path needs no attribution
    assert not study._results


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
def test_cache_round_trip_identical(small_dataset, small_study, tmp_path):
    cold = RunMetrics()
    StudyEnergy(small_dataset, cache_dir=tmp_path, metrics=cold)
    assert cold.counter("attribution.cache_misses") == len(small_dataset)
    assert cold.counter("attribution.users") == len(small_dataset)

    warm = RunMetrics()
    cached = StudyEnergy(small_dataset, cache_dir=tmp_path, metrics=warm)
    assert warm.counter("attribution.cache_hits") == len(small_dataset)
    assert warm.counter("attribution.users") == 0
    for uid in small_study.user_ids:
        assert np.array_equal(
            cached.user_result(uid).per_packet,
            small_study.user_result(uid).per_packet,
        )
    assert cached.total_energy == small_study.total_energy


@pytest.mark.parametrize(
    "variant",
    [
        dict(model=UMTS_DEFAULT),
        dict(policy=TailPolicy.SPLIT_ADJACENT),
    ],
    ids=["model", "policy"],
)
def test_cache_invalidates_on_model_or_policy_change(
    small_dataset, tmp_path, variant
):
    StudyEnergy(small_dataset, cache_dir=tmp_path)
    metrics = RunMetrics()
    StudyEnergy(small_dataset, cache_dir=tmp_path, metrics=metrics, **variant)
    assert metrics.counter("attribution.cache_hits") == 0
    assert metrics.counter("attribution.cache_misses") == len(small_dataset)


def test_cache_invalidates_on_dataset_change(tmp_path):
    a = generate_study(StudyConfig(n_users=2, duration_days=2.0, seed=1))
    b = generate_study(StudyConfig(n_users=2, duration_days=2.0, seed=2))
    assert a.fingerprint() != b.fingerprint()
    StudyEnergy(a, cache_dir=tmp_path)
    metrics = RunMetrics()
    StudyEnergy(b, cache_dir=tmp_path, metrics=metrics)
    assert metrics.counter("attribution.cache_hits") == 0


def test_corrupt_cache_entry_is_a_miss(small_dataset, tmp_path):
    StudyEnergy(small_dataset, cache_dir=tmp_path)
    cache = AttributionCache.for_study(
        tmp_path, small_dataset, StudyEnergy(small_dataset, lazy=True).model,
        TailPolicy.LAST_PACKET,
    )
    uid = next(iter(small_dataset)).user_id
    cache.path_for(uid).write_bytes(b"not an npz archive")
    metrics = RunMetrics()
    study = StudyEnergy(small_dataset, cache_dir=tmp_path, metrics=metrics)
    assert metrics.counter("attribution.cache_misses") == 1
    assert metrics.counter("attribution.cache_hits") == len(small_dataset) - 1
    assert study.total_energy > 0


def test_cache_key_depends_on_all_components(small_dataset):
    from repro.radio.lte import LTE_DEFAULT

    base = study_cache_key(small_dataset, LTE_DEFAULT, TailPolicy.LAST_PACKET)
    assert base == study_cache_key(
        small_dataset, LTE_DEFAULT, TailPolicy.LAST_PACKET
    )
    assert base != study_cache_key(
        small_dataset, UMTS_DEFAULT, TailPolicy.LAST_PACKET
    )
    assert base != study_cache_key(
        small_dataset, LTE_DEFAULT, TailPolicy.SPLIT_ADJACENT
    )


def test_lazy_plus_cache_writes_only_accessed_users(
    small_dataset, tmp_path
):
    study = StudyEnergy(small_dataset, lazy=True, cache_dir=tmp_path)
    uid = study.user_ids[0]
    study.user_result(uid)
    assert study._cache.path_for(uid).exists()
    others = [u for u in study.user_ids if u != uid]
    assert not any(study._cache.path_for(u).exists() for u in others)


# ----------------------------------------------------------------------
# Pool helper
# ----------------------------------------------------------------------
def _double(x):
    return 2 * x


def test_resolve_workers():
    assert resolve_workers(1) == 1
    assert resolve_workers(7) == 7
    assert resolve_workers(None) >= 1
    assert resolve_workers(0) >= 1
    with pytest.raises(ValueError):
        resolve_workers(-1)


def test_map_tasks_serial_and_parallel_preserve_order():
    items = list(range(11))
    expected = [2 * x for x in items]
    assert map_tasks(_double, items, workers=1) == expected
    assert map_tasks(_double, items, workers=2) == expected
    assert map_tasks(_double, [5], workers=4) == [10]  # pool skipped
    assert map_tasks(_double, [], workers=4) == []
