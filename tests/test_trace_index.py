"""Property tests for the shared per-user TraceIndex.

The index's contract is exact equivalence with the boolean-mask scans it
replaces: for any trace, every grouped view must select the same rows in
the same order as ``packets.apps == app`` / ``np.isin(states, ...)``
masking — bit for bit, including the degenerate shapes (empty traces,
apps with a single packet, unlabelled-state sentinels).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.metrics import RunMetrics
from repro.trace.arrays import PacketArray, PACKET_DTYPE, STATE_UNLABELLED
from repro.trace.events import (
    BACKGROUND_STATES,
    FOREGROUND_STATES,
    EventLog,
    ProcessState,
    ProcessStateEvent,
    background_state_values,
    foreground_state_values,
)
from repro.trace.index import IndexTask, TraceIndex, build_index_payload
from repro.trace.trace import UserTrace


def _random_packets(rng: np.random.Generator, n: int, n_apps: int) -> PacketArray:
    """A time-sorted random trace with random (possibly unlabelled) states."""
    data = np.empty(n, dtype=PACKET_DTYPE)
    data["timestamp"] = np.sort(rng.uniform(0.0, 1000.0, size=n))
    data["size"] = rng.integers(40, 1500, size=n)
    data["direction"] = rng.integers(0, 2, size=n)
    data["app"] = rng.integers(1, n_apps + 1, size=n)
    data["conn"] = rng.integers(1, 5, size=n)
    data["flow"] = 0
    states = [int(s) for s in ProcessState] + [STATE_UNLABELLED]
    data["state"] = rng.choice(states, size=n)
    return PacketArray(data)


def _bg_mask(packets: PacketArray) -> np.ndarray:
    return np.isin(packets.states, background_state_values())


def _fg_mask(packets: PacketArray) -> np.ndarray:
    return np.isin(packets.states, foreground_state_values())


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
@pytest.mark.parametrize("n,n_apps", [(0, 3), (1, 1), (257, 5), (1000, 40)])
def test_grouped_views_equal_boolean_masks(seed, n, n_apps):
    rng = np.random.default_rng(seed)
    packets = _random_packets(rng, n, n_apps)
    index = TraceIndex(packets)
    present = set(int(a) for a in np.unique(packets.apps))
    assert set(int(a) for a in index.app_ids) == present
    # probe every present app plus one guaranteed-absent id
    for app in sorted(present) + [n_apps + 99]:
        mask = packets.apps == app
        idx = index.app_indices(app)
        np.testing.assert_array_equal(idx, np.flatnonzero(mask))
        assert np.all(np.diff(idx) > 0) or len(idx) <= 1  # ascending
        np.testing.assert_array_equal(
            index.app_packets(app).data, packets.data[mask]
        )
        np.testing.assert_array_equal(
            index.app_timestamps(app), packets.timestamps[mask]
        )
        assert index.app_count(app) == int(mask.sum())
        assert index.has_app(app) == bool(mask.any())
        np.testing.assert_array_equal(
            index.app_background_indices(app),
            np.flatnonzero(mask & _bg_mask(packets)),
        )
        np.testing.assert_array_equal(
            index.app_foreground_indices(app),
            np.flatnonzero(mask & _fg_mask(packets)),
        )


@pytest.mark.parametrize("seed", [0, 7])
def test_state_masks_and_bytes(seed):
    rng = np.random.default_rng(seed)
    packets = _random_packets(rng, 500, 12)
    index = TraceIndex(packets)
    np.testing.assert_array_equal(index.background_mask, _bg_mask(packets))
    np.testing.assert_array_equal(index.foreground_mask, _fg_mask(packets))
    np.testing.assert_array_equal(
        index.background_indices, np.flatnonzero(_bg_mask(packets))
    )
    assert index.bytes_by_app() == packets.bytes_by_app()


def test_single_packet_apps_and_sentinel():
    data = np.zeros(3, dtype=PACKET_DTYPE)
    data["timestamp"] = [1.0, 2.0, 3.0]
    data["size"] = [100, 200, 300]
    data["app"] = [7, 3, 9]
    data["state"] = [
        STATE_UNLABELLED,
        int(ProcessState.BACKGROUND),
        int(ProcessState.FOREGROUND),
    ]
    packets = PacketArray(data)
    index = TraceIndex(packets)
    assert list(index) == [3, 7, 9]
    assert index.app_count(3) == 1
    # the unlabelled sentinel (255) is neither foreground nor background
    assert len(index.app_background_indices(7)) == 0
    assert len(index.app_foreground_indices(7)) == 0
    np.testing.assert_array_equal(index.app_background_indices(3), [1])
    np.testing.assert_array_equal(index.app_foreground_indices(9), [2])
    assert 3 in index and 4 not in index and "3" not in index


def test_empty_trace():
    index = TraceIndex(PacketArray())
    assert len(index.app_ids) == 0
    assert list(index) == []
    assert index.bytes_by_app() == {}
    assert len(index.app_indices(1)) == 0
    assert len(index.background_indices) == 0
    assert not index.has_app(1)


def test_interned_state_values_match_enum_groups():
    assert set(background_state_values()) == {int(s) for s in BACKGROUND_STATES}
    assert set(foreground_state_values()) == {int(s) for s in FOREGROUND_STATES}
    assert background_state_values().dtype == np.uint8
    with pytest.raises(ValueError):
        background_state_values()[0] = 0  # interned arrays are read-only


def test_payload_roundtrip_equals_local_build():
    rng = np.random.default_rng(5)
    packets = _random_packets(rng, 400, 9)
    local = TraceIndex(packets)
    adopted = TraceIndex(packets).adopt_payload(build_index_payload(packets))
    assert adopted.is_grouped
    np.testing.assert_array_equal(adopted.app_ids, local.app_ids)
    for app in local:
        np.testing.assert_array_equal(
            adopted.app_indices(app), local.app_indices(app)
        )
        np.testing.assert_array_equal(
            adopted.app_background_indices(app),
            local.app_background_indices(app),
        )
    np.testing.assert_array_equal(adopted.background_mask, local.background_mask)


def test_index_task_is_pool_shaped():
    rng = np.random.default_rng(6)
    traces = {uid: _random_packets(rng, 50, 4) for uid in (1, 2)}
    task = IndexTask(traces)
    uid, payload = task(2)
    assert uid == 2
    expected = build_index_payload(traces[2])
    for key in expected:
        np.testing.assert_array_equal(payload[key], expected[key])


def test_lazy_build_hits_and_metrics():
    rng = np.random.default_rng(8)
    packets = _random_packets(rng, 300, 6)
    metrics = RunMetrics()
    index = TraceIndex(packets, metrics=metrics)
    assert not index.is_grouped and index.build_seconds == 0.0
    index.app_indices(1)  # builds the grouping
    assert index.is_grouped
    built = index.build_seconds
    assert built > 0.0
    hits_before = index.hits
    index.app_indices(1)
    index.app_indices(2)
    assert index.hits > hits_before
    assert metrics.counter("index.hits") == index.hits
    assert metrics.stage_seconds("index.build") > 0.0
    # memo-served calls add no build time
    assert index.build_seconds == built


def test_invalidate_states_preserves_grouping():
    rng = np.random.default_rng(9)
    packets = _random_packets(rng, 200, 5)
    index = TraceIndex(packets)
    order_before = index.app_indices(1).copy()
    bg_before = index.background_mask.copy()
    # relabel every packet in place, as label_packet_states does
    packets.data["state"] = int(ProcessState.FOREGROUND)
    index.invalidate_states()
    assert index.is_grouped  # grouping survives: apps did not move
    np.testing.assert_array_equal(index.app_indices(1), order_before)
    assert index.background_mask.sum() == 0
    assert not np.array_equal(index.background_mask, bg_before) or not bg_before.any()
    np.testing.assert_array_equal(index.foreground_mask, np.ones(200, dtype=bool))


def test_trace_label_states_invalidates_index():
    data = np.zeros(2, dtype=PACKET_DTYPE)
    data["timestamp"] = [10.0, 20.0]
    data["size"] = [100, 100]
    data["app"] = [1, 1]
    data["state"] = STATE_UNLABELLED
    events = EventLog(
        process_events=[ProcessStateEvent(0.0, 1, ProcessState.BACKGROUND)]
    )
    trace = UserTrace(1, 0.0, 100.0, PacketArray(data), events)
    index = trace.index()
    assert index.background_mask.sum() == 0  # unlabelled
    trace.label_states()
    assert trace.index() is index  # same object, memos dropped
    assert index.background_mask.sum() == 2


def test_background_episodes_need_events():
    rng = np.random.default_rng(10)
    packets = _random_packets(rng, 20, 2)
    with pytest.raises(TraceError):
        TraceIndex(packets).background_episodes(1)
