"""Headline collection and seed-sweep robustness."""

import pytest

from repro import StudyConfig, StudyEnergy, generate_study
from repro.core.headlines import Headline, headline_stats, seed_sweep
from repro.errors import AnalysisError


def test_headline_stats_structure(medium_study):
    headlines = headline_stats(medium_study)
    keys = [h.key for h in headlines]
    assert "background_fraction" in keys
    assert "chrome_background_fraction" in keys
    assert "first_minute_apps" in keys
    for headline in headlines:
        assert headline.measured >= 0
        assert headline.description


def test_headline_values_in_plausible_ranges(medium_study):
    by_key = {h.key: h for h in headline_stats(medium_study)}
    assert 0.6 < by_key["background_fraction"].measured < 0.95
    assert 0.1 < by_key["chrome_background_fraction"].measured < 0.6
    assert 0.6 < by_key["first_minute_apps"].measured < 0.95


def test_seed_sweep_stability():
    def build(seed):
        return StudyEnergy(
            generate_study(StudyConfig(n_users=4, duration_days=7.0, seed=seed))
        )

    results = seed_sweep(build, seeds=[1, 2, 3])
    bg = results["background_fraction"]
    assert len(bg.values) == 3
    # The headline is a population property, not a seed artefact.
    assert bg.spread < 0.15
    assert 0.6 < bg.mean < 0.95
    assert bg.std < 0.08


def test_seed_sweep_requires_seeds():
    with pytest.raises(AnalysisError):
        seed_sweep(lambda s: None, seeds=[])
