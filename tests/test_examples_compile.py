"""Every example script must at least compile and expose a main()."""

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_has_main_guard(path):
    tree = ast.parse(path.read_text())
    assert any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    ), f"{path.name} lacks an `if __name__ == '__main__'` guard"


def test_expected_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "app_energy_audit.py",
        "browser_linger.py",
        "whatif_doze.py",
        "import_real_trace.py",
    } <= names
