"""Event-driven state machine: hand-computed energy cases."""

import numpy as np
import pytest

from repro.errors import ModelError, TraceError
from repro.radio.base import RadioModel, RadioState, TailPhase
from repro.radio.machine import RadioStateMachine
from repro.trace.packet import Direction

from conftest import make_packets

#: A model with round numbers so every joule is hand-checkable.
TOY = RadioModel(
    name="toy",
    idle_power=0.01,
    promotion_duration=1.0,
    promotion_power=2.0,
    tail_phases=(TailPhase(10.0, 1.0),),
    energy_per_byte_up=2e-6,
    energy_per_byte_down=1e-6,
)


def test_empty_trace_is_pure_idle():
    sim = RadioStateMachine(TOY).simulate(make_packets([]), window=(0.0, 100.0))
    assert sim.total_energy == pytest.approx(1.0)  # 100 s * 0.01 W
    assert sim.attributed_energy == 0.0
    assert sim.time_in_state(RadioState.IDLE) == pytest.approx(100.0)


def test_single_packet_energy():
    packets = make_packets([(50.0, 1000, Direction.DOWNLINK, 1)])
    sim = RadioStateMachine(TOY).simulate(packets, window=(0.0, 100.0))
    # promotion 1 s * 2 W = 2 J; transfer 1000 B * 1e-6 = 0.001 J;
    # full tail 10 s * 1 W = 10 J; idle (100 - 1 - 10) s... lead-in idle
    # is 49 s (promotion carved out), post-tail idle is 40 s.
    assert sim.promotion[0] == pytest.approx(2.0)
    assert sim.transfer[0] == pytest.approx(0.001)
    assert sim.tail[0] == pytest.approx(10.0)
    assert sim.idle_energy == pytest.approx((49.0 + 40.0) * 0.01)
    assert sim.total_energy == pytest.approx(2.0 + 0.001 + 10.0 + 0.89)


def test_two_packets_within_tail_share_one_promotion():
    packets = make_packets(
        [
            (10.0, 1000, Direction.DOWNLINK, 1),
            (15.0, 1000, Direction.DOWNLINK, 1),
        ]
    )
    sim = RadioStateMachine(TOY).simulate(packets, window=(0.0, 40.0))
    assert sim.promotion[0] == pytest.approx(2.0)
    assert sim.promotion[1] == 0.0  # radio still connected
    # First packet owns the 5 s of radio-on before the second (paper's
    # last-packet tail attribution); second owns the full 10 s tail.
    assert sim.tail[0] == pytest.approx(5.0)
    assert sim.tail[1] == pytest.approx(10.0)


def test_gap_longer_than_tail_promotes_again():
    packets = make_packets(
        [
            (10.0, 1000, Direction.DOWNLINK, 1),
            (40.0, 1000, Direction.DOWNLINK, 1),
        ]
    )
    sim = RadioStateMachine(TOY).simulate(packets, window=(0.0, 60.0))
    assert sim.promotion[1] == pytest.approx(2.0)
    assert sim.tail[0] == pytest.approx(10.0)  # full tail, then demote
    # Gap 30 s: 10 s tail + 1 s next promotion -> 19 s idle.
    assert sim.idle_energy == pytest.approx((9.0 + 19.0 + 10.0) * 0.01)


def test_uplink_vs_downlink_transfer():
    packets = make_packets(
        [
            (0.0, 1000, Direction.UPLINK, 1),
            (1.0, 1000, Direction.DOWNLINK, 1),
        ]
    )
    sim = RadioStateMachine(TOY).simulate(packets)
    assert sim.transfer[0] == pytest.approx(0.002)
    assert sim.transfer[1] == pytest.approx(0.001)


def test_interval_log_states():
    packets = make_packets([(20.0, 1000, Direction.DOWNLINK, 1)])
    sim = RadioStateMachine(TOY).simulate(packets, window=(0.0, 60.0))
    states = [i.state for i in sim.intervals]
    assert states == [
        RadioState.IDLE,
        RadioState.PROMOTION,
        RadioState.TAIL,
        RadioState.IDLE,
    ]
    promo = sim.intervals[1]
    assert (promo.start, promo.end) == (19.0, 20.0)
    assert sim.intervals[2].duration == pytest.approx(10.0)


def test_interval_energies_cover_totals():
    packets = make_packets(
        [(20.0, 1000, Direction.DOWNLINK, 1), (50.0, 500, Direction.UPLINK, 1)]
    )
    sim = RadioStateMachine(TOY).simulate(packets, window=(0.0, 100.0))
    interval_energy = sum(i.energy for i in sim.intervals)
    # Interval log covers everything except per-byte transfer energy.
    assert interval_energy == pytest.approx(
        sim.total_energy - sim.transfer.sum(), rel=1e-9
    )


def test_record_intervals_off():
    packets = make_packets([(5.0, 100, Direction.UPLINK, 1)])
    sim = RadioStateMachine(TOY).simulate(
        packets, window=(0.0, 10.0), record_intervals=False
    )
    assert sim.intervals == []
    assert sim.total_energy > 0


def test_window_validation():
    packets = make_packets([(5.0, 100, Direction.UPLINK, 1)])
    with pytest.raises(TraceError):
        RadioStateMachine(TOY).simulate(packets, window=(6.0, 10.0))
    with pytest.raises(ModelError):
        RadioStateMachine(TOY).simulate(packets, window=(10.0, 0.0))


def test_unsorted_rejected():
    packets = make_packets(
        [(0.0, 10, Direction.UPLINK, 1), (1.0, 10, Direction.UPLINK, 1)]
    )
    packets.data["timestamp"][0] = 5.0
    with pytest.raises(TraceError):
        RadioStateMachine(TOY).simulate(packets)


def test_multiphase_tail_intervals():
    model = RadioModel(
        name="two-phase",
        idle_power=0.01,
        promotion_duration=0.5,
        promotion_power=1.0,
        tail_phases=(TailPhase(2.0, 1.0), TailPhase(3.0, 0.5)),
        energy_per_byte_up=1e-6,
        energy_per_byte_down=1e-6,
    )
    packets = make_packets([(10.0, 100, Direction.UPLINK, 1)])
    sim = RadioStateMachine(model).simulate(packets, window=(0.0, 30.0))
    tails = [i for i in sim.intervals if i.state == RadioState.TAIL]
    assert [t.phase for t in tails] == [0, 1]
    assert sim.tail[0] == pytest.approx(2.0 * 1.0 + 3.0 * 0.5)
