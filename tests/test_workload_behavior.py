"""Behaviour framework: burst synthesis, timers, contexts."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workload.behavior import (
    ConnAllocator,
    PacketBlock,
    TrafficContext,
    periodic_times,
    poisson_times,
    synthesize_bursts,
)
from repro.workload.rng import substream


def rng():
    return substream(1, "test")


def test_conn_allocator_unique_ranges():
    alloc = ConnAllocator()
    first = alloc.take(3)
    second = alloc.take(2)
    assert first == 1
    assert second == 4
    with pytest.raises(WorkloadError):
        alloc.take(0)


def test_packet_block_empty_and_concat():
    empty = PacketBlock.empty()
    assert len(empty) == 0
    assert empty.total_bytes == 0
    assert len(PacketBlock.concat([empty, empty])) == 0


def test_packet_block_clip():
    block = synthesize_bursts(np.array([0.0, 100.0]), 1000, 1, rng())
    clipped = block.clip(50.0, 200.0)
    assert np.all(clipped.timestamps >= 50.0)
    assert len(clipped) < len(block)


def test_synthesize_bursts_shape():
    times = np.array([10.0, 50.0, 90.0])
    block = synthesize_bursts(times, 10_000, 7, rng(), packets_per_burst=4)
    assert len(block) == 12
    assert set(np.unique(block.conns)) == {7}
    # First packet of each burst is the uplink request at the burst time.
    firsts = block.timestamps.reshape(3, 4)[:, 0]
    np.testing.assert_allclose(firsts, times)
    assert np.all(block.directions.reshape(3, 4)[:, 0] == 0)
    assert np.all(block.directions.reshape(3, 4)[:, 1:] == 1)


def test_synthesize_bursts_byte_totals_close():
    block = synthesize_bursts(
        np.array([0.0]), 100_000, 1, rng(), packets_per_burst=6, up_fraction=0.1
    )
    assert block.total_bytes == pytest.approx(100_000, rel=0.15)


def test_synthesize_bursts_minimum_sizes():
    block = synthesize_bursts(np.array([0.0]), 10, 1, rng())
    assert np.all(block.sizes >= 60)


def test_synthesize_bursts_per_burst_arrays():
    sizes = np.array([1000.0, 50_000.0])
    block = synthesize_bursts(np.array([0.0, 100.0]), sizes, np.array([1, 2]), rng())
    first = block.sizes[:4].sum()
    second = block.sizes[4:].sum()
    assert second > first
    assert set(block.conns[:4]) == {1}
    assert set(block.conns[4:]) == {2}


def test_synthesize_bursts_validation():
    with pytest.raises(WorkloadError):
        synthesize_bursts(np.array([0.0]), 100, 1, rng(), packets_per_burst=1)
    with pytest.raises(WorkloadError):
        synthesize_bursts(np.array([0.0]), 100, 1, rng(), up_fraction=1.5)


def test_synthesize_empty():
    assert len(synthesize_bursts(np.empty(0), 100, 1, rng())) == 0


def test_periodic_times_phase_and_period():
    times = periodic_times(100.0, 1000.0, 60.0, rng(), phase=60.0)
    assert times[0] == pytest.approx(160.0)
    assert np.all(np.diff(times) == pytest.approx(60.0))
    assert times[-1] < 1000.0


def test_periodic_times_jitter_stays_in_window():
    times = periodic_times(0.0, 500.0, 60.0, rng(), jitter=30.0)
    assert np.all(times >= 0.0)
    assert np.all(times < 500.0)
    assert np.all(np.diff(times) >= 0)


def test_periodic_times_empty_window():
    assert len(periodic_times(10.0, 10.0, 5.0, rng())) == 0
    with pytest.raises(WorkloadError):
        periodic_times(0.0, 10.0, 0.0, rng())


def test_poisson_times_rate():
    times = poisson_times(0.0, 100_000.0, 100.0, rng())
    assert len(times) == pytest.approx(1000, rel=0.15)
    assert np.all(np.diff(times) >= 0)
    with pytest.raises(WorkloadError):
        poisson_times(0.0, 10.0, 0.0, rng())


def test_traffic_context_fields():
    ctx = TrafficContext(
        user_id=1, app_id=2, conns=ConnAllocator(), study_duration=100.0
    )
    assert ctx.user_id == 1
    assert ctx.conns.take() == 1
