"""Single-app deep-dive report."""

import pytest

from repro.core.appreport import app_report, hourly_energy_profile, render_app_report
from repro.errors import AnalysisError, ReproError


def test_weibo_report(medium_study):
    report = app_report(medium_study, "com.sina.weibo")
    assert report.users > 0
    assert report.total_energy > 0
    assert report.joules_per_day > 500
    assert 0.0 < report.battery_per_user_day < 0.3
    # A resident 7-minute updater: almost all background, drains around
    # the clock.
    assert report.background_fraction > 0.8
    assert report.overnight_fraction == pytest.approx(6 / 24, rel=0.4)
    assert report.update_frequency.median_interval == pytest.approx(420, rel=0.2)


def test_browser_report_contrasts(medium_study):
    chrome = app_report(medium_study, "com.android.chrome")
    weibo = app_report(medium_study, "com.sina.weibo")
    assert chrome.background_fraction < weibo.background_fraction
    # Browsing follows waking hours; the resident service does not.
    assert chrome.overnight_fraction < weibo.overnight_fraction


def test_hourly_profile_partitions_energy(medium_study):
    app_id = medium_study.app_id("com.sina.weibo")
    profile = hourly_energy_profile(medium_study, "com.sina.weibo")
    assert len(profile) == 24
    assert sum(profile) == pytest.approx(
        medium_study.energy_by_app()[app_id], rel=1e-9
    )


def test_render_app_report(medium_study):
    text = render_app_report(app_report(medium_study, "com.sina.weibo"))
    assert "com.sina.weibo" in text
    assert "battery per user-day" in text
    assert "energy by hour of day" in text
    assert "recommendation:" in text


def test_unknown_app(medium_study):
    with pytest.raises(ReproError):
        app_report(medium_study, "no.such.app")
