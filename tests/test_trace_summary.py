"""Dataset summary statistics."""

import pytest

from repro.trace.summary import summarize
from repro.units import MB


def test_summary_structure(small_dataset):
    summary = summarize(small_dataset)
    assert len(summary.users) == len(small_dataset)
    assert summary.total_apps == 342
    assert 0 < summary.apps_with_traffic <= summary.total_apps
    assert summary.total_packets == small_dataset.total_packets
    assert summary.total_megabytes == pytest.approx(
        small_dataset.total_bytes / MB
    )


def test_summary_per_user_fields(small_dataset):
    summary = summarize(small_dataset)
    for user in summary.users:
        assert user.days == pytest.approx(10.0)
        assert user.packets > 0
        assert user.apps_with_traffic > 5
        assert user.sessions > 0
        assert user.top_app != "-"


def test_summary_categories_sorted(small_dataset):
    summary = summarize(small_dataset)
    volumes = [v for _, v in summary.category_megabytes]
    assert volumes == sorted(volumes, reverse=True)
    assert sum(volumes) == pytest.approx(summary.total_megabytes)


def test_summary_top_app_is_biggest(small_dataset):
    summary = summarize(small_dataset)
    trace = small_dataset.users[0]
    by_app = trace.packets.bytes_by_app()
    expected = small_dataset.registry.name_of(max(by_app, key=lambda a: by_app[a]))
    assert summary.users[0].top_app == expected
