"""User model: sessions, state machines, screen intervals."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.trace.events import ProcessState, is_background, is_foreground
from repro.units import DAY
from repro.workload.appprofile import AppProfile, UsagePattern
from repro.workload.behaviors import ForegroundSessionBehavior, StreamingBehavior
from repro.workload.usermodel import (
    UserConfig,
    UserModel,
    intersect_with,
    merge_intervals,
)


def _catalog():
    return {
        1: AppProfile(
            name="app.daily",
            category="social",
            install_probability=1.0,
            usage=UsagePattern(active_day_probability=1.0, sessions_per_active_day=3.0),
            foreground=ForegroundSessionBehavior(),
            runs_as_service=True,
            background_survival_days=1.0,
        ),
        2: AppProfile(
            name="app.media",
            category="music",
            install_probability=1.0,
            usage=UsagePattern(
                active_day_probability=1.0,
                playback_minutes_per_active_day=30.0,
            ),
            perceptible=StreamingBehavior(chunk_interval=300.0, chunk_bytes=1e6),
        ),
        3: AppProfile(
            name="app.autostart",
            category="service",
            install_probability=1.0,
            usage=UsagePattern(active_day_probability=0.05),
            autostarts=True,
            runs_as_service=True,
        ),
    }


@pytest.fixture(scope="module")
def timeline():
    model = UserModel(1, _catalog(), seed=7)
    return model.build_timeline(7 * DAY)


def test_merge_intervals():
    merged = merge_intervals([(0.0, 2.0), (1.0, 3.0), (5.0, 6.0)])
    assert merged.tolist() == [[0.0, 3.0], [5.0, 6.0]]
    assert merge_intervals([]).shape == (0, 2)


def test_intersect_with():
    merged = merge_intervals([(0.0, 10.0), (20.0, 30.0)])
    assert intersect_with(merged, (5.0, 25.0)) == [(5.0, 10.0), (20.0, 25.0)]
    assert intersect_with(merged, (12.0, 15.0)) == []


def test_determinism():
    a = UserModel(1, _catalog(), seed=7).build_timeline(3 * DAY)
    b = UserModel(1, _catalog(), seed=7).build_timeline(3 * DAY)
    assert [(s.app_id, s.start) for s in a.sessions] == [
        (s.app_id, s.start) for s in b.sessions
    ]


def test_different_users_differ():
    a = UserModel(1, _catalog(), seed=7).build_timeline(3 * DAY)
    b = UserModel(2, _catalog(), seed=7).build_timeline(3 * DAY)
    assert [(s.app_id, s.start) for s in a.sessions] != [
        (s.app_id, s.start) for s in b.sessions
    ]


def test_sessions_do_not_overlap(timeline):
    spans = sorted((s.start, s.full_end) for s in timeline.sessions)
    for (s1, e1), (s2, _) in zip(spans, spans[1:]):
        assert s2 >= e1


def test_daily_app_has_sessions_most_days(timeline):
    days = {int(s.start // DAY) for s in timeline.sessions if s.app_id == 1}
    assert len(days) >= 5  # p=1.0 nominally, lognormal factor may skip few


def test_playback_windows_only_for_media(timeline):
    assert timeline.playback_windows[2]
    assert not timeline.playback_windows.get(1)


def test_process_event_stream_consistency(timeline):
    """Per app: events alternate sensibly and timestamps are ordered."""
    by_app = {}
    for event in sorted(timeline.process_events, key=lambda e: e.timestamp):
        by_app.setdefault(event.app, []).append(event)
    for app, events in by_app.items():
        times = [e.timestamp for e in events]
        assert times == sorted(times)
        for prev, cur in zip(events, events[1:]):
            if prev.state == ProcessState.FOREGROUND:
                assert cur.state != ProcessState.NOT_RUNNING


def test_autostart_app_in_background_from_t0(timeline):
    events = [e for e in timeline.process_events if e.app == 3]
    first = min(events, key=lambda e: e.timestamp)
    assert first.timestamp == 0.0
    assert is_background(first.state)
    # Autostart apps are never reaped.
    assert all(e.state != ProcessState.NOT_RUNNING for e in events)


def test_bg_windows_follow_sessions(timeline):
    for app_id, windows in timeline.bg_windows.items():
        for start, end in windows:
            assert end > start
            assert 0.0 <= start <= timeline.duration
            assert end <= timeline.duration


def test_fg_windows_match_sessions(timeline):
    n_sessions_app1 = sum(1 for s in timeline.sessions if s.app_id == 1)
    assert len(timeline.fg_windows[1]) == n_sessions_app1


def test_screen_intervals_cover_sessions(timeline):
    intervals = timeline.screen_intervals
    for session in timeline.sessions[:20]:
        mid = session.start + session.duration / 2
        covered = np.any(
            (intervals[:, 0] <= mid) & (mid < intervals[:, 1])
        )
        assert covered


def test_screen_events_alternate(timeline):
    states = [e.on for e in timeline.screen_events]
    assert states == [v for pair in zip([True] * (len(states) // 2), [False] * (len(states) // 2)) for v in pair]


def test_input_events_inside_sessions(timeline):
    session_spans = [(s.app_id, s.start, s.end) for s in timeline.sessions]
    for event in timeline.input_events[:50]:
        assert any(
            app == event.app and start <= event.timestamp <= end + 1.0
            for app, start, end in session_spans
        )


def test_usage_rate_heterogeneity():
    model = UserModel(1, _catalog(), seed=7)
    rates = {
        uid: UserModel(uid, _catalog(), seed=7).usage_rate(3, _catalog()[3])[0]
        for uid in range(1, 30)
    }
    values = list(rates.values())
    assert max(values) / min(values) > 2.0


def test_invalid_duration():
    with pytest.raises(WorkloadError):
        UserModel(1, _catalog(), seed=7).build_timeline(0.0)


def test_user_config_validation():
    with pytest.raises(WorkloadError):
        UserConfig(awake_start_hour_mean=25.0)
    with pytest.raises(WorkloadError):
        UserConfig(screen_checks_per_day=-1.0)
