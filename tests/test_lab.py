"""In-lab harness: browser rules and push-library observation."""

import pytest

from repro.errors import WorkloadError
from repro.lab import (
    CHROME,
    FIREFOX,
    STOCK_BROWSER,
    browser_background_experiment,
    push_library_experiment,
    transit_page,
    xhr_test_page,
)
from repro.lab.harness import Phase
from repro.radio.lte import lte_fast_dormancy_model


def test_browser_rules_match_paper():
    # Chrome: everything allowed.
    assert CHROME.permits(foreground=False, screen_on=False, tab_active=False)
    # Firefox: background, screen-off and inactive tabs all blocked.
    assert not FIREFOX.permits(False, True, True)
    assert not FIREFOX.permits(True, False, True)
    assert not FIREFOX.permits(True, True, False)
    assert FIREFOX.permits(True, True, True)
    # Stock browser: blocks background/screen-off but not inactive tabs.
    assert not STOCK_BROWSER.permits(False, True, True)
    assert STOCK_BROWSER.permits(True, True, False)


def test_chrome_transfers_in_background():
    result = browser_background_experiment(CHROME, xhr_test_page())
    assert result.phase_packets[1] > 0       # minimised
    assert result.phase_packets[2] > 0       # screen off
    assert result.phase_energy[1] > 100.0    # radio held active


def test_firefox_and_stock_go_silent():
    for browser in (FIREFOX, STOCK_BROWSER):
        result = browser_background_experiment(browser, xhr_test_page())
        assert result.phase_packets[0] > 0
        assert result.phase_packets[1] == 0
        assert result.phase_packets[2] == 0
        assert result.phase_energy[1] == 0.0


def test_background_energy_ordering():
    chrome = browser_background_experiment(CHROME, xhr_test_page())
    firefox = browser_background_experiment(FIREFOX, xhr_test_page())
    assert chrome.total_energy > 5 * firefox.total_energy


def test_transit_page_keeps_radio_alive():
    """Polls every 2 s < tail: the radio never demotes while lingering."""
    result = browser_background_experiment(CHROME, transit_page())
    bg_seconds = result.phases[1].duration + result.phases[2].duration
    bg_energy = result.phase_energy[1] + result.phase_energy[2]
    # Sustained power close to the LTE tail power (~1 W).
    assert bg_energy / bg_seconds > 0.5


def test_custom_phases():
    phases = (Phase(60.0, True, True), Phase(60.0, True, True, tab_active=False))
    result = browser_background_experiment(FIREFOX, xhr_test_page(), phases=phases)
    assert result.phase_packets[0] > 0
    assert result.phase_packets[1] == 0  # Firefox blocks inactive tabs
    stock = browser_background_experiment(STOCK_BROWSER, xhr_test_page(), phases=phases)
    assert stock.phase_packets[1] > 0  # stock browser does not


def test_phases_required():
    with pytest.raises(WorkloadError):
        browser_background_experiment(CHROME, xhr_test_page(), phases=())


def test_push_library_matches_paper_anecdote():
    result = push_library_experiment(
        keepalive_period=300.0, hours=5.0, notifications=1
    )
    assert result.requests == 59  # every 5 min for 5 h
    assert result.notifications == 1
    # Hundreds of joules for one visible notification.
    assert result.joules_per_notification > 300.0


def test_push_library_no_notifications():
    result = push_library_experiment(notifications=0, hours=1.0)
    assert result.joules_per_notification == float("inf")


def test_push_library_fast_dormancy_saves_energy():
    normal = push_library_experiment(hours=2.0)
    fd = push_library_experiment(hours=2.0, model=lte_fast_dormancy_model())
    assert fd.total_energy < 0.5 * normal.total_energy


def test_push_library_validation():
    with pytest.raises(WorkloadError):
        push_library_experiment(hours=0.0)
