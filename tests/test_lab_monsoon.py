"""Simulated Monsoon calibration loop."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ModelError
from repro.lab.monsoon import PowerTrace, estimate_parameters, record
from repro.radio.lte import LTE_DEFAULT
from repro.radio.machine import RadioStateMachine
from repro.trace.packet import Direction

from conftest import make_packets


@pytest.fixture(scope="module")
def burst_recording():
    """One isolated burst: promotion + tail + long idle, at 100 Hz."""
    packets = make_packets([(20.0, 50_000, Direction.DOWNLINK, 1)])
    sim = RadioStateMachine(LTE_DEFAULT).simulate(packets, window=(0.0, 120.0))
    return sim, record(sim, rate_hz=100.0, noise_watts=0.003)


def test_recording_structure(burst_recording):
    sim, trace = burst_recording
    assert trace.sample_rate == pytest.approx(100.0, rel=0.01)
    assert trace.duration == pytest.approx(120.0, rel=0.02)
    assert trace.watts.min() >= 0.0


def test_recording_energy_matches_simulation(burst_recording):
    sim, trace = burst_recording
    # The integral of the sampled power reproduces the simulated energy
    # (within sampling/noise error).
    assert trace.energy() == pytest.approx(sim.total_energy, rel=0.05)


def test_calibration_recovers_lte_parameters(burst_recording):
    """The paper's Monsoon validation, in simulation: the published
    parameters are recoverable from the power trace alone."""
    _, trace = burst_recording
    estimated = estimate_parameters(trace)
    assert estimated.idle_power == pytest.approx(LTE_DEFAULT.idle_power, abs=0.01)
    assert estimated.tail_power == pytest.approx(
        LTE_DEFAULT.tail_phases[0].power, rel=0.1
    )
    # Active run = promotion + tail.
    expected = LTE_DEFAULT.tail_duration + LTE_DEFAULT.promotion_duration
    assert estimated.tail_duration == pytest.approx(expected, rel=0.05)


def test_calibration_on_multi_burst_recording():
    packets = make_packets(
        [(50.0 + 60.0 * k, 10_000, Direction.DOWNLINK, 1) for k in range(5)]
    )
    sim = RadioStateMachine(LTE_DEFAULT).simulate(packets, window=(0.0, 400.0))
    trace = record(sim, rate_hz=50.0, noise_watts=0.002)
    estimated = estimate_parameters(trace)
    assert estimated.tail_duration == pytest.approx(
        LTE_DEFAULT.tail_duration + LTE_DEFAULT.promotion_duration, rel=0.1
    )


def test_record_validation():
    packets = make_packets([(1.0, 100, Direction.UPLINK, 1)])
    sim = RadioStateMachine(LTE_DEFAULT).simulate(
        packets, window=(0.0, 10.0), record_intervals=False
    )
    with pytest.raises(AnalysisError):
        record(sim)
    sim2 = RadioStateMachine(LTE_DEFAULT).simulate(packets, window=(0.0, 10.0))
    with pytest.raises(ModelError):
        record(sim2, rate_hz=0.0)


def test_estimate_validation():
    with pytest.raises(AnalysisError):
        estimate_parameters(PowerTrace(np.arange(3.0), np.ones(3)))
    # All-idle recording: nothing active to calibrate from.
    flat = PowerTrace(np.arange(0, 10, 0.01), np.full(1000, 0.0114))
    with pytest.raises(AnalysisError):
        estimate_parameters(flat, active_threshold=1.0)
