"""Guards: no raw scans in the analysis layer, no swallowed errors in
the fault-handling layer.

Every figure/table analysis used to rediscover per-app and per-state
groups with full-array boolean masks. Those all moved behind the shared
:class:`~repro.trace.index.TraceIndex`; this test greps the analysis
layer for the tell-tale patterns so a future edit cannot quietly
reintroduce an O(apps x packets) scan.

The second guard covers the hardened failure paths (``repro.faults``,
``repro.parallel``, ``repro.stream``, the CSV reader): error handling
there must count, quarantine, wrap or re-raise — a bare
``except ...: pass`` would turn a structured failure back into silent
data loss, which is exactly what the fault-injection work exists to
rule out.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

CORE = Path(__file__).resolve().parents[1] / "src" / "repro" / "core"
STREAM = Path(__file__).resolve().parents[1] / "src" / "repro" / "stream"
SHARD = Path(__file__).resolve().parents[1] / "src" / "repro" / "shard"

#: Patterns that indicate an ad-hoc per-app or per-state scan.
FORBIDDEN = (
    # per-app boolean masks: packets.apps == app_id
    re.compile(r"\.apps\s*=="),
    # ad-hoc state-group membership: np.isin(<...>states<...>, ...)
    re.compile(r"np\.isin\([^)]*\.states"),
    re.compile(r"np\.isin\([^)]*\[[\"']state[\"']\]"),
    # per-app row copies that bypass the grouped views
    re.compile(r"\.for_app\("),
    # rebuilding the interned state-value arrays by hand
    re.compile(r"int\(s\)\s*for\s*s\s*in\s*BACKGROUND_STATES"),
    re.compile(r"int\(s\)\s*for\s*s\s*in\s*FOREGROUND_STATES"),
)


def _core_sources():
    return sorted(CORE.glob("*.py"))


def _stream_sources():
    return sorted(STREAM.glob("*.py"))


def _shard_sources():
    return sorted(SHARD.glob("*.py"))


def _scan(path):
    offending = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            continue
        for pattern in FORBIDDEN:
            if pattern.search(line):
                offending.append(f"{path.name}:{lineno}: {stripped}")
    return offending


def test_core_package_exists():
    assert _core_sources(), f"no sources under {CORE}"


def test_stream_package_exists():
    assert _stream_sources(), f"no sources under {STREAM}"


def test_shard_package_exists():
    assert _shard_sources(), f"no sources under {SHARD}"


@pytest.mark.parametrize("path", _core_sources(), ids=lambda p: p.name)
def test_no_raw_scans_in_core(path):
    offending = _scan(path)
    assert not offending, (
        "raw per-app/per-state scans in repro.core — route these through "
        "TraceIndex (trace.index() / study.index_for()):\n"
        + "\n".join(offending)
    )


SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

#: Files on the hardened failure paths: everything that catches an
#: exception here must surface it (count, quarantine, wrap, re-raise).
FAULT_PATH_SOURCES = (
    SRC / "faults.py",
    SRC / "parallel.py",
    SRC / "trace" / "io_text.py",
    SRC / "stream" / "accumulate.py",
    SRC / "stream" / "cadence.py",
    SRC / "stream" / "checkpoint.py",
    SRC / "stream" / "chunks.py",
    SRC / "stream" / "ingest.py",
    # The shard layers exist to refuse partial state with typed
    # errors; a swallowed exception there is a wrong merge waiting.
    SRC / "shard" / "plan.py",
    SRC / "shard" / "execute.py",
    SRC / "shard" / "merge.py",
    # The readout layer gates per-packet analyses with typed errors;
    # swallowing one would hide the gate and return wrong answers.
    SRC / "core" / "readout.py",
)

#: ``except <anything>:`` followed by nothing but ``pass`` (comments
#: allowed in between) — the swallow idiom.
_EXCEPT_LINE = re.compile(r"^\s*except\b[^:]*:\s*(#.*)?$")
_EXCEPT_INLINE_PASS = re.compile(r"^\s*except\b[^:]*:\s*pass\b")


def _swallows(path):
    lines = path.read_text().splitlines()
    offending = []
    for lineno, line in enumerate(lines, start=1):
        if _EXCEPT_INLINE_PASS.match(line):
            offending.append(f"{path.name}:{lineno}: {line.strip()}")
            continue
        if not _EXCEPT_LINE.match(line):
            continue
        for follower in lines[lineno:]:
            body = follower.strip()
            if not body or body.startswith("#"):
                continue
            if body == "pass":
                offending.append(f"{path.name}:{lineno}: {line.strip()}")
            break
    return offending


@pytest.mark.parametrize(
    "path", FAULT_PATH_SOURCES, ids=lambda p: p.name
)
def test_no_swallowed_errors_on_fault_paths(path):
    assert path.exists(), f"hardened source moved or deleted: {path}"
    offending = _swallows(path)
    assert not offending, (
        "bare `except ...: pass` on a hardened failure path — count it, "
        "quarantine it, wrap it or re-raise it:\n" + "\n".join(offending)
    )


@pytest.mark.parametrize("path", _stream_sources(), ids=lambda p: p.name)
def test_no_raw_scans_in_stream(path):
    """The streaming accumulators group with bincount over chunk-local
    keys; whole-trace boolean masks would silently reintroduce the
    O(apps x packets) cost the chunked design exists to avoid."""
    offending = _scan(path)
    assert not offending, (
        "raw per-app/per-state scans in repro.stream — accumulate through "
        "KeyedTotals / the carry-bincount path instead:\n"
        + "\n".join(offending)
    )


@pytest.mark.parametrize("path", _shard_sources(), ids=lambda p: p.name)
def test_no_raw_scans_in_shard(path):
    """The shard layers only route users and fold checkpoints; any
    per-app/per-state scan here would mean analysis logic leaked out
    of the accumulators into the orchestration layer."""
    offending = _scan(path)
    assert not offending, (
        "raw per-app/per-state scans in repro.shard — shard code routes "
        "users and merges checkpoints, it never touches packet columns:\n"
        + "\n".join(offending)
    )
