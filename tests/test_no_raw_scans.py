"""Guard: repro.core analyses must use the TraceIndex, not raw scans.

Every figure/table analysis used to rediscover per-app and per-state
groups with full-array boolean masks. Those all moved behind the shared
:class:`~repro.trace.index.TraceIndex`; this test greps the analysis
layer for the tell-tale patterns so a future edit cannot quietly
reintroduce an O(apps x packets) scan.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

CORE = Path(__file__).resolve().parents[1] / "src" / "repro" / "core"
STREAM = Path(__file__).resolve().parents[1] / "src" / "repro" / "stream"

#: Patterns that indicate an ad-hoc per-app or per-state scan.
FORBIDDEN = (
    # per-app boolean masks: packets.apps == app_id
    re.compile(r"\.apps\s*=="),
    # ad-hoc state-group membership: np.isin(<...>states<...>, ...)
    re.compile(r"np\.isin\([^)]*\.states"),
    re.compile(r"np\.isin\([^)]*\[[\"']state[\"']\]"),
    # per-app row copies that bypass the grouped views
    re.compile(r"\.for_app\("),
    # rebuilding the interned state-value arrays by hand
    re.compile(r"int\(s\)\s*for\s*s\s*in\s*BACKGROUND_STATES"),
    re.compile(r"int\(s\)\s*for\s*s\s*in\s*FOREGROUND_STATES"),
)


def _core_sources():
    return sorted(CORE.glob("*.py"))


def _stream_sources():
    return sorted(STREAM.glob("*.py"))


def _scan(path):
    offending = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            continue
        for pattern in FORBIDDEN:
            if pattern.search(line):
                offending.append(f"{path.name}:{lineno}: {stripped}")
    return offending


def test_core_package_exists():
    assert _core_sources(), f"no sources under {CORE}"


def test_stream_package_exists():
    assert _stream_sources(), f"no sources under {STREAM}"


@pytest.mark.parametrize("path", _core_sources(), ids=lambda p: p.name)
def test_no_raw_scans_in_core(path):
    offending = _scan(path)
    assert not offending, (
        "raw per-app/per-state scans in repro.core — route these through "
        "TraceIndex (trace.index() / study.index_for()):\n"
        + "\n".join(offending)
    )


@pytest.mark.parametrize("path", _stream_sources(), ids=lambda p: p.name)
def test_no_raw_scans_in_stream(path):
    """The streaming accumulators group with bincount over chunk-local
    keys; whole-trace boolean masks would silently reintroduce the
    O(apps x packets) cost the chunked design exists to avoid."""
    offending = _scan(path)
    assert not offending, (
        "raw per-app/per-state scans in repro.stream — accumulate through "
        "PartialTotals / the carry-bincount path instead:\n"
        + "\n".join(offending)
    )
