"""docs/API.md cannot rot: every documented symbol must import.

The reference's contract (stated at the top of the file): each code
span in the first column of a section table is either an attribute of
that section's package or a dotted module path. This test parametrizes
over every such span and imports it, so renaming or dropping a symbol
without updating the docs — or documenting a symbol that was never
exported — fails the tier-1 run. The CLI block is checked too: every
`repro <command>` line must name real subcommands.
"""

import re
from importlib import import_module
from pathlib import Path

import pytest

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"
SECTION_RE = re.compile(r"^## `(repro[a-z_.]*)`")
CODE_RE = re.compile(r"`([^`]+)`")
IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
DOTTED_RE = re.compile(r"^[a-z_]+(\.[a-z_]+)+$")


def _documented_symbols():
    """(package, span) for every first-column code span in API.md."""
    section = None
    for line in API_MD.read_text().splitlines():
        match = SECTION_RE.match(line)
        if match:
            section = match.group(1)
            continue
        if section is None or not line.startswith("|"):
            continue
        first_cell = line.split("|")[1].strip()
        if first_cell == "name" or set(first_cell) <= {"-", ":", " "}:
            continue  # header / separator rows
        for span in CODE_RE.findall(first_cell):
            yield section, span.strip()


SYMBOLS = sorted(set(_documented_symbols()))


def test_api_md_was_parsed():
    """Guard the guard: an empty parse would vacuously pass."""
    assert len(SYMBOLS) > 80
    assert len({package for package, _ in SYMBOLS}) >= 7


@pytest.mark.parametrize(
    "package,span", SYMBOLS, ids=[f"{p}:{s}" for p, s in SYMBOLS]
)
def test_documented_symbol_imports(package, span):
    if DOTTED_RE.match(span):
        import_module(span)
        return
    assert IDENTIFIER_RE.match(span), (
        f"docs/API.md first-column span {span!r} under {package} is not a "
        "plain identifier or module path; move call examples/prose to the "
        "second column"
    )
    module = import_module(package)
    assert hasattr(module, span), (
        f"docs/API.md documents {package}.{span}, which does not exist"
    )


def test_cli_block_commands_exist():
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    known = set(subparsers.choices)

    in_block = False
    documented = set()
    for line in API_MD.read_text().splitlines():
        if line.startswith("```"):
            in_block = not in_block
            continue
        if in_block and line.startswith("repro "):
            head = line.split()[1]
            documented.update(head.split("|"))
    assert documented, "no CLI lines found in docs/API.md"
    missing = documented - known
    assert not missing, f"docs/API.md documents unknown CLI commands: {missing}"
