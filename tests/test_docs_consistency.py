"""docs/API.md, SERVING.md, SCALING.md, MONITORING.md and POLICIES.md
cannot rot.

Six contracts are enforced on every tier-1 run:

* Every code span in the first column of a ``## `repro...```-titled
  section table (in any of the five files) is an attribute of that
  section's package or a dotted module path, and must import.
* docs/SERVING.md's endpoint table documents exactly the routes the
  server implements (``repro.store.server.ROUTES``).
* Each file's exit-code table matches the constants the CLI actually
  exits with, and the union of the three tables equals the
  ``repro.exitcodes`` module exactly — no orphan constants, no
  undocumented codes.
* docs/SCALING.md's manifest format number matches
  ``repro.shard.MANIFEST_FORMAT``.
* docs/MONITORING.md's published-analysis list matches
  ``repro.follow.LIVE_ANALYSES``.
* docs/POLICIES.md's policy vocabulary matches
  ``repro.policy.available_policies()``.

The CLI block in docs/API.md is checked too: every ``repro <command>``
line must name real subcommands.
"""

import re
from importlib import import_module
from pathlib import Path

import pytest

DOCS = Path(__file__).resolve().parent.parent / "docs"
API_MD = DOCS / "API.md"
SERVING_MD = DOCS / "SERVING.md"
SCALING_MD = DOCS / "SCALING.md"
MONITORING_MD = DOCS / "MONITORING.md"
POLICIES_MD = DOCS / "POLICIES.md"
SECTION_RE = re.compile(r"^## `(repro[a-z_.]*)`")
HEADING_RE = re.compile(r"^#{1,6} ")
CODE_RE = re.compile(r"`([^`]+)`")
IDENTIFIER_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")
DOTTED_RE = re.compile(r"^[a-z_]+(\.[a-z_]+)+$")


def _documented_symbols(path):
    """(package, span) for every first-column code span under a
    ``## `repro...``` section heading. Any other heading *ends* the
    section, so prose tables (endpoints, exit codes) are never parsed
    as symbols."""
    section = None
    for line in path.read_text().splitlines():
        match = SECTION_RE.match(line)
        if match:
            section = match.group(1)
            continue
        if HEADING_RE.match(line):
            section = None
            continue
        if section is None or not line.startswith("|"):
            continue
        first_cell = line.split("|")[1].strip()
        if first_cell == "name" or set(first_cell) <= {"-", ":", " "}:
            continue  # header / separator rows
        for span in CODE_RE.findall(first_cell):
            yield section, span.strip()


SYMBOLS = sorted(
    set(_documented_symbols(API_MD))
    | set(_documented_symbols(SERVING_MD))
    | set(_documented_symbols(SCALING_MD))
    | set(_documented_symbols(MONITORING_MD))
    | set(_documented_symbols(POLICIES_MD))
)


def test_docs_were_parsed():
    """Guard the guard: an empty parse would vacuously pass."""
    assert len(SYMBOLS) > 90
    packages = {package for package, _ in SYMBOLS}
    assert len(packages) >= 8
    assert "repro.store" in packages
    assert "repro.shard" in packages
    assert "repro.follow" in packages
    assert "repro.policy" in packages


@pytest.mark.parametrize(
    "package,span", SYMBOLS, ids=[f"{p}:{s}" for p, s in SYMBOLS]
)
def test_documented_symbol_imports(package, span):
    if DOTTED_RE.match(span):
        import_module(span)
        return
    assert IDENTIFIER_RE.match(span), (
        f"docs first-column span {span!r} under {package} is not a "
        "plain identifier or module path; move call examples/prose to the "
        "second column"
    )
    module = import_module(package)
    assert hasattr(module, span), (
        f"the docs document {package}.{span}, which does not exist"
    )


def _table_first_cells(path, heading):
    """First-column code spans of the table under one ``## heading``."""
    in_section = False
    for line in path.read_text().splitlines():
        if line.startswith("## "):
            in_section = line[3:].strip() == heading
            continue
        if not in_section or not line.startswith("|"):
            continue
        first_cell = line.split("|")[1].strip()
        if set(first_cell) <= {"-", ":", " "}:
            continue
        spans = CODE_RE.findall(first_cell)
        if spans:
            yield spans[0], line


def test_serving_md_documents_exactly_the_served_routes():
    from repro.store.server import ROUTES

    documented = {
        span for span, _ in _table_first_cells(SERVING_MD, "HTTP endpoints")
    }
    assert documented, "no endpoint table found in docs/SERVING.md"
    assert documented == set(ROUTES), (
        f"docs/SERVING.md endpoint table disagrees with server ROUTES: "
        f"documented-only={documented - set(ROUTES)}, "
        f"implemented-only={set(ROUTES) - documented}"
    )


def test_serving_md_exit_codes_match_cli_constants():
    from repro import cli

    rows = {
        span: line
        for span, line in _table_first_cells(SERVING_MD, "CLI exit codes")
    }
    assert set(rows) == {"0", "2", "3", "4"}
    assert cli.EXIT_NEEDS_PACKET_DETAIL == 3
    assert "NeedsPacketDetail" in rows[str(cli.EXIT_NEEDS_PACKET_DETAIL)]
    assert cli.EXIT_STORE_MISS == 4
    assert "--store-only" in rows[str(cli.EXIT_STORE_MISS)]


def test_scaling_md_exit_codes_match_cli_constants():
    """docs/SCALING.md documents the full exit-code set including the
    shard-merge refusal and transport-failure codes."""
    from repro import cli

    rows = {
        span: line
        for span, line in _table_first_cells(SCALING_MD, "CLI exit codes")
    }
    assert set(rows) == {"0", "2", "3", "4", "5", "8"}
    assert cli.EXIT_SHARD_INCOMPLETE == 5
    assert "ShardIncomplete" in rows[str(cli.EXIT_SHARD_INCOMPLETE)]
    assert "repro shard run" in rows[str(cli.EXIT_SHARD_INCOMPLETE)]
    assert cli.EXIT_TRANSPORT_FAILED == 8
    transport_row = rows[str(cli.EXIT_TRANSPORT_FAILED)]
    assert "TransportError" in transport_row
    assert "repro shard run" in transport_row


def test_monitoring_md_exit_codes_match_cli_constants():
    """docs/MONITORING.md documents the follow-specific codes."""
    from repro import exitcodes

    rows = {
        span: line
        for span, line in _table_first_cells(MONITORING_MD, "CLI exit codes")
    }
    assert set(rows) == {"0", "2", "6", "7"}
    assert exitcodes.EXIT_FOLLOW_INTERRUPTED == 6
    follow_row = rows[str(exitcodes.EXIT_FOLLOW_INTERRUPTED)]
    assert "SIGTERM" in follow_row and "--resume" in follow_row
    assert exitcodes.EXIT_SOURCE_TRUNCATED == 7
    assert "SourceTruncated" in rows[str(exitcodes.EXIT_SOURCE_TRUNCATED)]


def test_documented_exit_codes_cover_exitcodes_module_exactly():
    """The union of the three exit-code tables is the whole vocabulary:
    every ``EXIT_*`` constant in ``repro.exitcodes`` appears in some
    docs table, and no table invents a code the module lacks."""
    from repro import exitcodes

    defined = {
        str(value)
        for name, value in vars(exitcodes).items()
        if name.startswith("EXIT_")
    }
    documented = {
        span
        for path in (SERVING_MD, SCALING_MD, MONITORING_MD)
        for span, _ in _table_first_cells(path, "CLI exit codes")
    }
    assert documented == defined, (
        f"undocumented codes: {defined - documented}; "
        f"documented-but-undefined: {documented - defined}"
    )


def test_monitoring_md_live_analyses_are_current():
    """The documented published-analysis list is the implemented one."""
    from repro.follow import LIVE_ANALYSES

    text = MONITORING_MD.read_text()
    assert f"`{' '.join(LIVE_ANALYSES)}`" in text, (
        "docs/MONITORING.md must list the live analyses exactly as "
        f"{' '.join(LIVE_ANALYSES)}"
    )


def test_scaling_md_manifest_format_is_current():
    from repro.shard import MANIFEST_FORMAT

    text = SCALING_MD.read_text()
    assert f"reads format `{MANIFEST_FORMAT}`" in text, (
        "docs/SCALING.md must document the current manifest format "
        f"({MANIFEST_FORMAT})"
    )


def test_serving_md_analysis_names_are_current():
    """The documented analysis vocabulary is the implemented one."""
    from repro.store import ANALYSIS_NAMES

    text = SERVING_MD.read_text()
    assert f"`{' '.join(ANALYSIS_NAMES)}`" in text, (
        "docs/SERVING.md must list the storable analyses exactly as "
        f"{' '.join(ANALYSIS_NAMES)}"
    )


def test_policies_md_vocabulary_is_current():
    """The documented policy vocabulary is the registered one."""
    from repro.policy import available_policies

    text = POLICIES_MD.read_text()
    assert f"`{' '.join(available_policies())}`" in text, (
        "docs/POLICIES.md must list the registered policies exactly as "
        f"{' '.join(available_policies())}"
    )


def test_policies_md_documents_every_policy_params():
    """Each registered policy's table row names its real dataclass
    fields, so parameter docs cannot drift from the code."""
    from dataclasses import fields

    from repro.policy import available_policies, policy_class

    rows = {
        span: line
        for span, line in _table_first_cells(POLICIES_MD, "Policy vocabulary")
    }
    assert set(rows) == set(available_policies())
    for name in available_policies():
        cls = policy_class(name)
        for f in fields(cls):
            assert f.name in rows[name], (
                f"docs/POLICIES.md row for {name!r} does not mention its "
                f"parameter {f.name!r}"
            )


def test_cli_block_commands_exist():
    from repro.cli import build_parser

    parser = build_parser()
    subparsers = next(
        action
        for action in parser._actions
        if hasattr(action, "choices") and action.choices
    )
    known = set(subparsers.choices)

    in_block = False
    documented = set()
    for line in API_MD.read_text().splitlines():
        if line.startswith("```"):
            in_block = not in_block
            continue
        if in_block and line.startswith("repro "):
            head = line.split()[1]
            documented.update(head.split("|"))
    assert documented, "no CLI lines found in docs/API.md"
    missing = documented - known
    assert not missing, f"docs/API.md documents unknown CLI commands: {missing}"
