"""Fig 1 and Fig 2 analyses."""

import pytest

from repro.core.popularity import ConsumerRow, top10_appearance_counts, top_consumers


def test_top10_counts_structure(small_dataset):
    counts = top10_appearance_counts(small_dataset)
    assert counts
    values = list(counts.values())
    assert values == sorted(values, reverse=True)
    assert all(v >= 2 for v in values)
    assert max(values) <= len(small_dataset)


def test_top10_min_users_filter(small_dataset):
    all_counts = top10_appearance_counts(small_dataset, min_users=1)
    filtered = top10_appearance_counts(small_dataset, min_users=2)
    assert len(filtered) <= len(all_counts)
    assert set(filtered) <= set(all_counts)


def test_top10_diversity(small_dataset):
    """A few apps are near-universal, the tail is diverse (Fig 1)."""
    counts = top10_appearance_counts(small_dataset, min_users=1)
    n_users = len(small_dataset)
    assert any(v >= n_users * 0.75 for v in counts.values())
    assert len(counts) > 15  # many distinct apps across top-10 lists


def test_top_consumers_ordering(small_study):
    by_energy = top_consumers(small_study, n=10, by="energy")
    energies = [r.total_energy for r in by_energy]
    assert energies == sorted(energies, reverse=True)
    by_data = top_consumers(small_study, n=10, by="data")
    volumes = [r.total_bytes for r in by_data]
    assert volumes == sorted(volumes, reverse=True)


def test_top_consumers_differ_by_metric(small_study):
    """Fig 2's point: the top-energy and top-data lists differ."""
    by_energy = [r.app for r in top_consumers(small_study, n=8, by="energy")]
    by_data = [r.app for r in top_consumers(small_study, n=8, by="data")]
    assert by_energy != by_data


def test_email_energy_disproportionate(small_study):
    """Default email: high J/MB; media server: low J/MB (Fig 2)."""
    rows = {r.app: r for r in top_consumers(small_study, n=400, by="energy")}
    email = rows["com.android.email"]
    media = rows["android.process.media"]
    assert email.joules_per_mb > 10 * media.joules_per_mb


def test_invalid_by_rejected_before_any_work():
    with pytest.raises(ValueError):
        top_consumers(None, by="nope")


def test_consumer_row_j_per_mb():
    row = ConsumerRow("a", "x", total_bytes=2_000_000, total_energy=10.0)
    assert row.joules_per_mb == pytest.approx(5.0)
    zero = ConsumerRow("b", "x", total_bytes=0, total_energy=1.0)
    assert zero.joules_per_mb == 0.0
