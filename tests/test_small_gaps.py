"""Small coverage gaps: edge cases across modules."""

import numpy as np
import pytest

from repro.errors import (
    AnalysisError,
    ModelError,
    ReproError,
    TraceError,
    WorkloadError,
)
from repro.radio.base import RadioInterval, RadioState
from repro.radio.attribution import TailPolicy, _apply_tail_policy
from repro.trace.arrays import PacketArray
from repro.trace.packet import Direction

from conftest import make_packets


def test_error_hierarchy():
    for exc in (TraceError, ModelError, WorkloadError, AnalysisError):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)


def test_radio_interval_energy():
    interval = RadioInterval(1.0, 3.0, RadioState.TAIL, power=0.5, phase=1)
    assert interval.duration == pytest.approx(2.0)
    assert interval.energy == pytest.approx(1.0)
    assert interval.phase == 1


def test_tail_policy_single_packet_unchanged():
    tail = np.array([5.0])
    out = _apply_tail_policy(tail, TailPolicy.SPLIT_ADJACENT)
    assert out.tolist() == [5.0]


def test_tail_policy_last_packet_identity():
    tail = np.array([1.0, 2.0, 3.0])
    out = _apply_tail_policy(tail, TailPolicy.LAST_PACKET)
    assert out is tail


def test_packet_array_getitem_slice():
    packets = make_packets(
        [(float(i), 100, Direction.UPLINK, 1) for i in range(5)]
    )
    head = packets[:2]
    assert isinstance(head, PacketArray)
    assert len(head) == 2
    single = packets[np.array([0, 3])]
    assert len(single) == 2
    assert single.timestamps.tolist() == [0.0, 3.0]


def test_flow_total_and_duration_properties():
    from repro.trace.flow import Flow

    flow = Flow(1, 2, 3, start=1.0, end=4.0, packets=2, bytes_up=10, bytes_down=20)
    assert flow.total_bytes == 30
    assert flow.duration == pytest.approx(3.0)


def test_update_frequency_edge_describe():
    from repro.core.periodicity import UpdateFrequency

    sparse = UpdateFrequency(0.0, 0.0, 0.0, 0)
    assert not sparse.is_periodic
    assert "varying" in sparse.describe()


def test_case_study_row_skip_missing_false(medium_study):
    from repro.core.casestudies import case_study_table

    with pytest.raises(ReproError):
        case_study_table(
            medium_study,
            classes=(("X", ("does.not.exist",)),),
            skip_missing=False,
        )


def test_kill_policy_unknown_app(medium_study):
    from repro.core.whatif import kill_policy_savings

    with pytest.raises(ReproError):
        kill_policy_savings(medium_study, "does.not.exist")


def test_consumer_row_repr_fields(medium_study):
    from repro.core.popularity import top_consumers

    row = top_consumers(medium_study, n=1)[0]
    assert row.category
    assert row.total_energy > 0


def test_dataset_save_load_empty_events(tmp_path):
    from repro.trace.dataset import AppInfo, AppRegistry, Dataset
    from repro.trace.events import EventLog
    from repro.trace.trace import UserTrace

    registry = AppRegistry([AppInfo(1, "a", "x")])
    trace = UserTrace(
        1, 0.0, 10.0,
        make_packets([(1.0, 100, Direction.UPLINK, 1)]),
        EventLog(),
    )
    path = tmp_path / "d.npz"
    Dataset(registry, [trace]).save(path)
    restored = Dataset.load(path)
    assert len(restored.users[0].events) == 0
    assert len(restored.users[0].packets) == 1


def test_behavior_describe_strings():
    from repro.workload.behaviors import (
        BulkDownloadBehavior,
        ForegroundSessionBehavior,
        LingeringForegroundBehavior,
        PostSessionSyncBehavior,
        PushNotificationBehavior,
        StreamingBehavior,
    )

    assert "bulk" in BulkDownloadBehavior(1e6).describe()
    assert "foreground" in ForegroundSessionBehavior().describe()
    assert "lingering" in LingeringForegroundBehavior().describe()
    assert "sync" in PostSessionSyncBehavior().describe()
    assert "push" in PushNotificationBehavior(300.0).describe()
    assert "streaming" in StreamingBehavior(300.0, 1e6).describe()


def test_scripts_compile():
    import py_compile
    from pathlib import Path

    scripts = sorted(
        (Path(__file__).parent.parent / "scripts").glob("*.py")
    )
    assert scripts
    for path in scripts:
        py_compile.compile(str(path), doraise=True)
