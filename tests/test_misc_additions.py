"""Battery units, ASCII bars, category energy."""

import pytest

from repro.core.popularity import category_energy
from repro.core.report import render_bars
from repro.units import GALAXY_S3_BATTERY_J, battery_fraction


def test_battery_constant():
    # 2100 mAh * 3.8 V * 3600 s/h
    assert GALAXY_S3_BATTERY_J == pytest.approx(28728.0)


def test_battery_fraction():
    assert battery_fraction(GALAXY_S3_BATTERY_J) == pytest.approx(1.0)
    assert battery_fraction(2872.8) == pytest.approx(0.1)
    assert battery_fraction(100.0, battery_joules=0.0) == 0.0


def test_weibo_daily_battery_impact(medium_study):
    """Weibo's background drain alone is several percent of a charge
    per day — the user-visible framing of Table 1."""
    from repro.core.casestudies import case_study_row

    row = case_study_row(medium_study, "com.sina.weibo")
    daily = battery_fraction(row.joules_per_day)
    assert 0.03 < daily < 0.25


def test_render_bars_scaling():
    text = render_bars([1.0, 2.0, 4.0], ["a", "b", "c"], width=8, title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].count("#") == 2
    assert lines[2].count("#") == 4
    assert lines[3].count("#") == 8


def test_render_bars_empty_and_zero():
    assert render_bars([], [], title=None) == ""
    text = render_bars([0.0, 0.0], ["a", "b"])
    assert "#" not in text


def test_render_bars_validation():
    with pytest.raises(ValueError):
        render_bars([1.0], ["a", "b"])


def test_category_energy(medium_study):
    totals = category_energy(medium_study)
    assert totals
    values = list(totals.values())
    assert values == sorted(values, reverse=True)
    assert sum(values) == pytest.approx(medium_study.attributed_energy)
    # Services and social apps dominate the energy roll-up.
    top3 = list(totals)[:3]
    assert set(top3) & {"service", "social", "communication"}
