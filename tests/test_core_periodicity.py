"""Update-frequency estimation."""

import numpy as np
import pytest

from repro.core.periodicity import (
    UpdateFrequency,
    burst_starts,
    estimate_update_frequency,
    inter_burst_intervals,
)
from repro.errors import AnalysisError


def test_burst_clustering():
    ts = np.array([0.0, 1.0, 2.0, 100.0, 101.0, 300.0])
    starts = burst_starts(ts, burst_gap=30.0)
    assert starts.tolist() == [0.0, 100.0, 300.0]


def test_burst_starts_empty():
    assert len(burst_starts(np.empty(0))) == 0


def test_burst_gap_validation():
    with pytest.raises(AnalysisError):
        burst_starts(np.array([1.0]), burst_gap=0.0)


def test_inter_burst_intervals():
    ts = np.array([0.0, 1.0, 300.0, 301.0, 600.0])
    intervals = inter_burst_intervals(ts, burst_gap=30.0)
    assert intervals.tolist() == [300.0, 300.0]


def test_clean_periodic_detection():
    ts = np.arange(0.0, 86400.0, 300.0)
    freq = estimate_update_frequency([ts])
    assert freq.median_interval == pytest.approx(300.0)
    assert freq.is_periodic
    assert "5min" in freq.describe()


def test_jittered_period_still_periodic():
    rng = np.random.default_rng(1)
    ts = np.cumsum(rng.uniform(280.0, 320.0, size=200))
    freq = estimate_update_frequency([ts])
    assert freq.median_interval == pytest.approx(300.0, rel=0.05)
    assert freq.is_periodic


def test_irregular_not_periodic():
    rng = np.random.default_rng(2)
    ts = np.cumsum(rng.exponential(600.0, size=200))
    freq = estimate_update_frequency([ts])
    assert not freq.is_periodic
    assert "varying" in freq.describe()


def test_groups_do_not_leak_gaps():
    """The gap BETWEEN two users' traces must not appear as an interval."""
    a = np.arange(0.0, 3600.0, 300.0)
    b = np.arange(1e6, 1e6 + 3600.0, 300.0)
    freq = estimate_update_frequency([a, b])
    assert freq.median_interval == pytest.approx(300.0)
    assert freq.p75 < 301.0


def test_max_interval_filter():
    ts = np.array([0.0, 300.0, 600.0, 300000.0])
    freq = estimate_update_frequency([ts], max_interval=86400.0)
    assert freq.median_interval == pytest.approx(300.0)


def test_no_data():
    freq = estimate_update_frequency([])
    assert freq.median_interval == 0.0
    assert freq.n_bursts == 0
    assert not freq.is_periodic


def test_describe_formats():
    assert "s" in UpdateFrequency(45.0, 44.0, 46.0, 100).describe()
    assert "h" in UpdateFrequency(7200.0, 7100.0, 7300.0, 100).describe()


def test_case_app_frequencies(small_study):
    """Estimated cadences of the case-study apps match their profiles."""
    from repro.core.casestudies import case_study_row

    row = case_study_row(small_study, "com.android.email")
    assert row.update_frequency.median_interval == pytest.approx(600.0, rel=0.2)
