"""Named scenario factories."""

import pytest

from repro.errors import WorkloadError
from repro.workload.scenarios import (
    available_scenarios,
    bench_scale,
    get_scenario,
    month_scale,
    paper_scale,
    smoke_scale,
)


def test_available():
    assert available_scenarios() == ["bench", "month", "paper", "smoke"]


def test_paper_scale_matches_study():
    config = paper_scale()
    assert config.n_users == 20
    assert config.duration_days == 623.0
    assert config.catalog.total_apps == 342


def test_bench_scale():
    config = bench_scale(seed=7)
    assert config.n_users == 20
    assert config.duration_days == 28.0
    assert config.seed == 7


def test_smoke_and_month():
    assert smoke_scale().n_users == 2
    assert month_scale().n_users == 10


def test_get_scenario_case_insensitive():
    assert get_scenario("PAPER").duration_days == 623.0


def test_unknown_scenario():
    with pytest.raises(WorkloadError):
        get_scenario("galaxy")


def test_smoke_scenario_generates():
    from repro import generate_study

    dataset = generate_study(get_scenario("smoke"))
    assert len(dataset) == 2
    assert dataset.total_packets > 0
