"""Synthetic test pages.

The paper's validation page "only sends XMLHttpRequest asynchronously
to a server every second"; the in-the-wild worst case was "a popular
local transit information webpage [that] sends background requests
roughly every 2 seconds, indefinitely".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class WebPage:
    """A page that polls its server at a fixed period."""

    name: str
    request_period: float
    request_bytes: int = 600
    response_bytes: int = 1200

    def __post_init__(self) -> None:
        if self.request_period <= 0:
            raise WorkloadError(
                f"request_period must be positive: {self.request_period}"
            )
        if self.request_bytes <= 0 or self.response_bytes <= 0:
            raise WorkloadError("request/response bytes must be positive")

    @property
    def bytes_per_poll(self) -> int:
        """Total bytes exchanged per poll."""
        return self.request_bytes + self.response_bytes


def xhr_test_page(period: float = 1.0) -> WebPage:
    """The paper's custom validation page: one async XHR per second."""
    return WebPage(name="xhr-test", request_period=period)


def transit_page() -> WebPage:
    """The egregious transit-information page: a poll every ~2 s,
    indefinitely, "keeping the cellular radio alive and draining the
    battery until the app is killed or the tab is closed"."""
    return WebPage(name="transit", request_period=2.0, response_bytes=4000)
