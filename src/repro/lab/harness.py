"""Controlled single-app experiments.

Each experiment builds a small, exact trace (one app, one device, no
concurrent traffic), runs the event-driven radio state machine over it,
and reports the quantities the paper's in-lab section discusses. These
are also the integration tests' ground truth: with one app and known
timing, every joule is hand-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.lab.browsers import BrowserModel
from repro.lab.webpage import WebPage
from repro.radio.base import RadioModel
from repro.radio.lte import LTE_DEFAULT
from repro.radio.machine import RadioStateMachine, SimulationResult
from repro.trace.arrays import PacketArray
from repro.trace.packet import Direction


@dataclass(frozen=True)
class Phase:
    """One experiment phase: the device context over a time span."""

    duration: float
    foreground: bool
    screen_on: bool
    tab_active: bool = True


@dataclass
class BrowserExperimentResult:
    """Outcome of one browser/page experiment."""

    browser: str
    page: str
    phases: Tuple[Phase, ...]
    phase_packets: Tuple[int, ...]
    phase_bytes: Tuple[int, ...]
    phase_energy: Tuple[float, ...]
    simulation: SimulationResult

    @property
    def total_energy(self) -> float:
        """Radio energy over the whole experiment, joules."""
        return self.simulation.total_energy

    def energy_in_phase(self, index: int) -> float:
        """Attributed energy of one phase, joules."""
        return self.phase_energy[index]


def _page_packets(
    page: WebPage,
    browser: BrowserModel,
    phases: Tuple[Phase, ...],
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, List[Tuple[float, float]]]:
    """Poll packets the browser lets through, over all phases."""
    times: List[float] = []
    sizes: List[int] = []
    directions: List[int] = []
    spans: List[Tuple[float, float]] = []
    cursor = 0.0
    for phase in phases:
        start, end = cursor, cursor + phase.duration
        spans.append((start, end))
        if browser.permits(phase.foreground, phase.screen_on, phase.tab_active):
            for t in np.arange(start, end, page.request_period):
                times.extend([t, t + 0.1])
                sizes.extend([page.request_bytes, page.response_bytes])
                directions.extend([int(Direction.UPLINK), int(Direction.DOWNLINK)])
        cursor = end
    return (
        np.array(times),
        np.array(sizes),
        np.array(directions),
        spans,
    )


def browser_background_experiment(
    browser: BrowserModel,
    page: WebPage,
    phases: Tuple[Phase, ...] = (
        Phase(duration=120.0, foreground=True, screen_on=True),
        Phase(duration=600.0, foreground=False, screen_on=True),
        Phase(duration=600.0, foreground=False, screen_on=False),
    ),
    model: RadioModel = LTE_DEFAULT,
) -> BrowserExperimentResult:
    """Open ``page`` in ``browser``, then minimise, then screen off.

    Default phases mirror the paper's validation: browse, send to the
    background, turn the screen off. Chrome keeps polling through all
    three; Firefox and the stock browser go silent after the first.
    """
    if not phases:
        raise WorkloadError("at least one phase is required")
    times, sizes, directions, spans = _page_packets(page, browser, phases)
    total = sum(p.duration for p in phases)
    if len(times):
        packets = PacketArray.from_columns(
            times, sizes, directions, np.ones(len(times), dtype=np.uint16)
        ).sorted_by_time()
    else:
        packets = PacketArray()
    sim = RadioStateMachine(model).simulate(packets, window=(0.0, total))
    per_packet = sim.per_packet
    ts = packets.timestamps
    phase_packets, phase_bytes, phase_energy = [], [], []
    for start, end in spans:
        mask = (ts >= start) & (ts < end)
        phase_packets.append(int(mask.sum()))
        phase_bytes.append(int(packets.sizes[mask].sum()) if len(ts) else 0)
        phase_energy.append(float(per_packet[mask].sum()) if len(ts) else 0.0)
    return BrowserExperimentResult(
        browser=browser.name,
        page=page.name,
        phases=tuple(phases),
        phase_packets=tuple(phase_packets),
        phase_bytes=tuple(phase_bytes),
        phase_energy=tuple(phase_energy),
        simulation=sim,
    )


@dataclass
class PushLibraryResult:
    """Outcome of the push-library observation."""

    requests: int
    notifications: int
    total_bytes: int
    total_energy: float
    duration: float

    @property
    def joules_per_notification(self) -> float:
        """Energy paid per user-visible notification."""
        if self.notifications == 0:
            return float("inf")
        return self.total_energy / self.notifications


def push_library_experiment(
    keepalive_period: float = 300.0,
    keepalive_bytes: int = 400,
    hours: float = 5.0,
    notifications: int = 1,
    notification_bytes: int = 2000,
    model: RadioModel = LTE_DEFAULT,
) -> PushLibraryResult:
    """The paper's push-library observation: "one third-party library
    transmitted nearly empty HTTP requests every five minutes for
    hours, but only provided one user-visible notification".

    Notifications are spread evenly through the observation window.
    """
    if hours <= 0:
        raise WorkloadError(f"hours must be positive: {hours}")
    duration = hours * 3600.0
    keepalive_times = np.arange(keepalive_period, duration, keepalive_period)
    notif_times = (
        duration * (np.arange(1, notifications + 1) / (notifications + 1))
        if notifications
        else np.empty(0)
    )
    times = np.concatenate([keepalive_times, notif_times])
    sizes = np.concatenate(
        [
            np.full(len(keepalive_times), keepalive_bytes),
            np.full(len(notif_times), notification_bytes),
        ]
    )
    order = np.argsort(times)
    packets = PacketArray.from_columns(
        times[order],
        sizes[order],
        np.full(len(times), int(Direction.DOWNLINK), dtype=np.uint8),
        np.ones(len(times), dtype=np.uint16),
    )
    sim = RadioStateMachine(model).simulate(packets, window=(0.0, duration))
    return PushLibraryResult(
        requests=len(keepalive_times),
        notifications=notifications,
        total_bytes=int(sizes.sum()),
        total_energy=sim.total_energy,
        duration=duration,
    )
