"""Browser behavioural models.

The paper's in-lab findings, encoded as rules:

* **Chrome** allows pages to keep transferring "when tabs are not
  selected and thus invisible to the user; when the screen is off; and
  even when the app has been sent to the background".
* **Firefox** blocks transfers when backgrounded or screen-off, *and*
  "blocks data from being sent by inactive tabs".
* The **stock Android browser** blocks backgrounded/screen-off
  transfers but lets inactive (non-selected) tabs transfer while the
  app is foregrounded.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BrowserModel:
    """What page-initiated traffic a browser permits in each context."""

    name: str
    allows_background_transfer: bool
    allows_screen_off_transfer: bool
    allows_inactive_tab_transfer: bool

    def permits(
        self, foreground: bool, screen_on: bool, tab_active: bool
    ) -> bool:
        """Whether a page request goes out in the given context."""
        if not foreground and not self.allows_background_transfer:
            return False
        if not screen_on and not self.allows_screen_off_transfer:
            return False
        if not tab_active and not self.allows_inactive_tab_transfer:
            return False
        return True


CHROME = BrowserModel(
    name="chrome",
    allows_background_transfer=True,
    allows_screen_off_transfer=True,
    allows_inactive_tab_transfer=True,
)

FIREFOX = BrowserModel(
    name="firefox",
    allows_background_transfer=False,
    allows_screen_off_transfer=False,
    allows_inactive_tab_transfer=False,
)

STOCK_BROWSER = BrowserModel(
    name="stock",
    allows_background_transfer=False,
    allows_screen_off_transfer=False,
    allows_inactive_tab_transfer=True,
)
