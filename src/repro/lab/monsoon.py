"""Simulated Monsoon power monitor.

The paper's power model is "supported by measurements gathered with a
Monsoon power monitor" (§3.1): the authors attached a power meter to
the device, replayed controlled traffic, and checked the published LTE
parameters. This module closes the same loop in simulation:

* :func:`record` samples the event-driven engine's power timeline the
  way a Monsoon samples a device rail — fixed rate, additive noise;
* :func:`estimate_parameters` recovers the model's idle power, tail
  power and tail duration from a recording alone, exactly as a
  calibration pass would on hardware.

``tests/test_lab_monsoon.py`` asserts the recovered parameters match
the model that generated the recording — the reproduction's analogue of
the paper's Monsoon validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import AnalysisError, ModelError
from repro.radio.base import RadioState
from repro.radio.machine import SimulationResult


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power recording."""

    times: np.ndarray  # seconds
    watts: np.ndarray  # instantaneous power samples

    @property
    def duration(self) -> float:
        """Recording length, seconds."""
        return float(self.times[-1] - self.times[0]) if len(self.times) > 1 else 0.0

    @property
    def sample_rate(self) -> float:
        """Samples per second."""
        if len(self.times) < 2:
            return 0.0
        return 1.0 / float(np.median(np.diff(self.times)))

    def energy(self) -> float:
        """Trapezoidal integral of the recording, joules."""
        if len(self.times) < 2:
            return 0.0
        dt = np.diff(self.times)
        mid = 0.5 * (self.watts[1:] + self.watts[:-1])
        return float((mid * dt).sum())


def record(
    sim: SimulationResult,
    rate_hz: float = 100.0,
    noise_watts: float = 0.005,
    rng: Optional[np.random.Generator] = None,
) -> PowerTrace:
    """Sample a simulation's power timeline like a power monitor.

    The interval log (idle / promotion / tail states) provides the
    instantaneous power; per-byte transfer energy is a point process
    the meter's anti-aliasing would smear, so it is spread over the
    sample that contains each packet.
    """
    if rate_hz <= 0:
        raise ModelError(f"rate_hz must be positive: {rate_hz}")
    if not sim.intervals:
        raise AnalysisError("simulation has no interval log to record")
    rng = rng if rng is not None else np.random.default_rng(0)
    start = sim.intervals[0].start
    end = sim.intervals[-1].end
    times = np.arange(start, end, 1.0 / rate_hz)
    watts = np.zeros_like(times)
    for interval in sim.intervals:
        mask = (times >= interval.start) & (times < interval.end)
        watts[mask] = interval.power
    # Smear transfer energy into the samples containing the packets.
    # (SimulationResult has no packet times; approximate by adding each
    # packet's transfer energy to the nearest tail/promotion sample —
    # transfers only happen while connected.)
    connected = watts > 2 * sim.model.idle_power
    if connected.any():
        extra = float(sim.transfer.sum()) / (connected.sum() / rate_hz)
        watts[connected] += extra
    if noise_watts > 0:
        watts = np.maximum(watts + rng.normal(0.0, noise_watts, len(watts)), 0.0)
    return PowerTrace(times, watts)


@dataclass(frozen=True)
class EstimatedParameters:
    """Model parameters recovered from a recording."""

    idle_power: float
    tail_power: float
    tail_duration: float


def estimate_parameters(
    trace: PowerTrace, active_threshold: Optional[float] = None
) -> EstimatedParameters:
    """Recover idle power, tail power and tail duration from a recording.

    Method (the standard bench procedure): idle power is the mode of
    the low-power samples; the tail plateau is the sustained high-power
    level; tail duration is the mean length of the trailing high-power
    runs that end in demotion to idle.
    """
    if len(trace.watts) < 10:
        raise AnalysisError("recording too short to calibrate from")
    watts = trace.watts
    if active_threshold is None:
        active_threshold = float(watts.min() + 0.25 * (watts.max() - watts.min()))
    idle_samples = watts[watts < active_threshold]
    active_samples = watts[watts >= active_threshold]
    if len(idle_samples) == 0 or len(active_samples) == 0:
        raise AnalysisError(
            "recording lacks both idle and active periods; capture a burst "
            "followed by silence"
        )
    idle_power = float(np.median(idle_samples))
    tail_power = float(np.median(active_samples))

    # Tail duration: lengths of active runs that terminate in idle.
    active = watts >= active_threshold
    changes = np.flatnonzero(np.diff(active.astype(np.int8)))
    run_lengths = []
    run_start = None
    for i in range(len(active)):
        if active[i] and run_start is None:
            run_start = i
        elif not active[i] and run_start is not None:
            run_lengths.append(i - run_start)
            run_start = None
    if not run_lengths:
        raise AnalysisError("no completed active runs in the recording")
    dt = 1.0 / trace.sample_rate
    return EstimatedParameters(
        idle_power=idle_power,
        tail_power=tail_power,
        tail_duration=float(np.median(run_lengths)) * dt,
    )
