"""In-lab validation harness.

§4.1 validates the trace findings with controlled experiments: a custom
web page issuing an XMLHttpRequest every second, opened in Chrome,
Firefox and the stock Android browser, with the app foregrounded,
minimised, and the screen turned off; and a push library observed to
send nearly-empty requests every five minutes while producing a single
visible notification.

This package reproduces those experiments against the behavioural rules
the paper established for each browser, producing single-app traces and
exact (event-driven) energy numbers.
"""

from repro.lab.browsers import (
    BrowserModel,
    CHROME,
    FIREFOX,
    STOCK_BROWSER,
)
from repro.lab.webpage import WebPage, transit_page, xhr_test_page
from repro.lab.monsoon import (
    EstimatedParameters,
    PowerTrace,
    estimate_parameters,
    record,
)
from repro.lab.harness import (
    BrowserExperimentResult,
    PushLibraryResult,
    browser_background_experiment,
    push_library_experiment,
)

__all__ = [
    "BrowserExperimentResult",
    "BrowserModel",
    "EstimatedParameters",
    "PowerTrace",
    "estimate_parameters",
    "record",
    "CHROME",
    "FIREFOX",
    "PushLibraryResult",
    "STOCK_BROWSER",
    "WebPage",
    "browser_background_experiment",
    "push_library_experiment",
    "transit_page",
    "xhr_test_page",
]
