"""Per-app process-state timelines.

Analyses need two views of the process-state event stream:

* contiguous per-app state intervals (who was in which state when), and
* a per-packet state label (which state was the sending app in when the
  packet was captured) — the basis of the paper's Figure 3.

Both are built here. Labelling is vectorised per app via
``numpy.searchsorted`` so it stays cheap on million-packet traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.arrays import PacketArray, STATE_UNLABELLED
from repro.trace.events import (
    EventLog,
    ProcessState,
    is_background,
    is_foreground,
)


@dataclass(frozen=True)
class StateInterval:
    """App was in ``state`` during ``[start, end)``."""

    start: float
    end: float
    state: ProcessState

    @property
    def duration(self) -> float:
        """Interval length in seconds."""
        return self.end - self.start


def app_state_intervals(
    log: EventLog,
    app: int,
    t_start: float,
    t_end: float,
    initial_state: ProcessState = ProcessState.NOT_RUNNING,
) -> List[StateInterval]:
    """Contiguous state intervals of one app over ``[t_start, t_end)``.

    Events outside the window still determine the state *at* the window
    edges. Zero-length intervals (two events at the same instant) are
    dropped.
    """
    if t_end < t_start:
        raise TraceError(f"t_end {t_end} before t_start {t_start}")
    events = log.process_events_for_app(app)
    intervals: List[StateInterval] = []
    state = initial_state
    cursor = t_start
    for event in events:
        if event.timestamp <= t_start:
            state = event.state
            continue
        if event.timestamp >= t_end:
            break
        if event.timestamp > cursor:
            intervals.append(StateInterval(cursor, event.timestamp, state))
        cursor = event.timestamp
        state = event.state
    if t_end > cursor:
        intervals.append(StateInterval(cursor, t_end, state))
    return intervals


def state_durations(intervals: Sequence[StateInterval]) -> dict:
    """Total seconds spent in each state across ``intervals``."""
    totals: dict = {}
    for interval in intervals:
        totals[interval.state] = totals.get(interval.state, 0.0) + interval.duration
    return totals


def label_packet_states(
    packets: PacketArray,
    log: EventLog,
    default_state: ProcessState = ProcessState.SERVICE,
) -> np.ndarray:
    """Label every packet with its app's process state at capture time.

    Packets of apps with no process events at all get ``default_state``
    (the measurement software occasionally misses transitions for
    short-lived system services; ``SERVICE`` is the paper's conservative
    bucket for such traffic). The label column of ``packets`` is
    updated in place and the label array returned.
    """
    n = len(packets)
    labels = np.full(n, int(default_state), dtype=np.uint8)
    if n == 0:
        packets.data["state"] = labels
        return labels
    ts = packets.timestamps
    apps = packets.apps
    for app in np.unique(apps):
        events = log.process_events_for_app(int(app))
        mask = apps == app
        if not events:
            continue
        ev_times = np.array([e.timestamp for e in events])
        ev_states = np.array([int(e.state) for e in events], dtype=np.uint8)
        idx = np.searchsorted(ev_times, ts[mask], side="right") - 1
        app_labels = np.where(
            idx >= 0, ev_states[np.clip(idx, 0, None)], int(default_state)
        ).astype(np.uint8)
        labels[mask] = app_labels
    packets.data["state"] = labels
    return labels


@dataclass(frozen=True)
class BackgroundTransition:
    """One foreground-group -> background-group transition of an app.

    ``end`` is when the app next left the background group (back to
    foreground, or killed), or the end of the observation window.
    """

    app: int
    start: float
    end: float


def background_transitions(
    log: EventLog,
    app: int,
    t_end: float,
) -> List[BackgroundTransition]:
    """All transitions of ``app`` from the foreground group to the
    background group, each with the time the background episode ended.

    An episode ends when the app returns to a foreground state or stops
    running; episodes still open at ``t_end`` are truncated there.
    """
    events = log.process_events_for_app(app)
    transitions: List[BackgroundTransition] = []
    prev_fg = False
    open_start: float = -1.0
    for event in events:
        if event.timestamp >= t_end:
            break
        now_fg = is_foreground(event.state)
        now_bg = is_background(event.state)
        if open_start >= 0 and not now_bg:
            transitions.append(BackgroundTransition(app, open_start, event.timestamp))
            open_start = -1.0
        if prev_fg and now_bg:
            open_start = event.timestamp
        prev_fg = now_fg
    if open_start >= 0:
        transitions.append(BackgroundTransition(app, open_start, t_end))
    return transitions


def unlabelled_count(packets: PacketArray) -> int:
    """Number of packets still carrying the unlabelled sentinel."""
    return int(np.count_nonzero(packets.states == STATE_UNLABELLED))
