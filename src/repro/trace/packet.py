"""Single-packet representation.

The object form defined here is the convenient API for small traces,
tests and examples. Large traces use the columnar
:class:`~repro.trace.arrays.PacketArray`; the two forms convert losslessly
into each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from repro.errors import TraceError


class Direction(IntEnum):
    """Direction of a packet relative to the device."""

    UPLINK = 0
    DOWNLINK = 1


#: Sentinel connection id for packets not associated with any connection.
NO_CONNECTION = 0

#: Sentinel flow id meaning "flows not reconstructed yet".
NO_FLOW = 0


@dataclass(frozen=True)
class Packet:
    """One captured packet.

    Attributes:
        timestamp: Capture time in seconds since the start of the study.
        size: Payload plus header size in bytes (must be positive).
        direction: Uplink or downlink.
        app: Numeric app id, resolved through the
            :class:`~repro.trace.dataset.AppRegistry`.
        conn: Connection id; packets of the same logical transport
            connection share a ``conn``. ``NO_CONNECTION`` when unknown.
        flow: Flow id assigned by
            :func:`~repro.trace.flow.reconstruct_flows`; ``NO_FLOW``
            before reconstruction.
    """

    timestamp: float
    size: int
    direction: Direction
    app: int
    conn: int = NO_CONNECTION
    flow: int = field(default=NO_FLOW, compare=False)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise TraceError(f"packet size must be positive, got {self.size}")
        if self.timestamp < 0:
            raise TraceError(
                f"packet timestamp must be non-negative, got {self.timestamp}"
            )
        if self.app < 0:
            raise TraceError(f"app id must be non-negative, got {self.app}")
