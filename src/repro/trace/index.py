"""Shared per-user trace index: one sort, zero repeated scans.

Every analysis in :mod:`repro.core` is a per-app, per-state reduction
over one user's packet timeline. Before this layer existed, each of
them rediscovered the same groups with full-array boolean masks —
``packets.apps == app_id`` here, ``np.isin(states, bg)`` there — making
every figure O(apps × packets). :class:`TraceIndex` computes the
partition once per user and hands every analysis O(group) views:

* **App grouping** — one stable O(n log n) argsort of the app column.
  Because packet arrays are time-sorted and the sort is stable, each
  app's packets form one contiguous slice of the order array, and the
  per-app index arrays it yields are ascending — so ``data[indices]``
  is row-identical to ``data[apps == app]``, bit for bit.
* **State masks** — the foreground/background membership tests
  (``np.isin`` against the interned state-value arrays of
  :mod:`repro.trace.events`) run once per trace; per-app intersections
  are O(group), not O(n).
* **Background episodes** — the per-app foreground→background interval
  boundaries (:func:`~repro.trace.intervals.background_transitions`)
  are memoized per app and shared by the transitions, case-study and
  recommendation analyses.

Everything is lazy: constructing a :class:`TraceIndex` costs nothing,
each structure is built on first use and memoized, and reuse is
observable (``hits`` / ``build_seconds``, mirrored into an attached
:class:`~repro.metrics.RunMetrics` as the ``index.build`` stage and the
``index.hits`` counter). The index is derived state — it is never
persisted and takes no part in the attribution disk-cache key.

For batch pipelines, :func:`build_index_payload` / :class:`IndexTask`
are the picklable pool boundary: workers ship back only the order
array, group boundaries and state masks, and the parent adopts them
via :meth:`TraceIndex.adopt_payload`.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import TraceError
from repro.trace.arrays import PacketArray
from repro.trace.events import (
    EventLog,
    background_state_values,
    foreground_state_values,
)
from repro.trace.intervals import BackgroundTransition, background_transitions

_EMPTY_INDICES = np.empty(0, dtype=np.int64)
_EMPTY_INDICES.setflags(write=False)


def _compute_grouping(
    packets: PacketArray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(order, app_ids, starts): stable argsort of the app column.

    ``order[starts[i]:starts[i+1]]`` are the ascending positions of
    ``app_ids[i]``'s packets in the original (time-sorted) array.
    """
    apps = packets.apps
    order = np.argsort(apps, kind="stable").astype(np.int64, copy=False)
    if len(order) == 0:
        return order, np.empty(0, dtype=apps.dtype), np.zeros(1, dtype=np.int64)
    sorted_apps = apps[order]
    change = np.flatnonzero(sorted_apps[1:] != sorted_apps[:-1]) + 1
    starts = np.concatenate(
        [np.zeros(1, dtype=np.int64), change, np.array([len(apps)])]
    )
    return order, sorted_apps[starts[:-1]], starts


def _compute_state_masks(packets: PacketArray) -> Tuple[np.ndarray, np.ndarray]:
    """(foreground, background) membership masks over all packets."""
    states = packets.states
    return (
        np.isin(states, foreground_state_values()),
        np.isin(states, background_state_values()),
    )


def build_index_payload(packets: PacketArray) -> Dict[str, np.ndarray]:
    """The shippable form of a built index (grouping + state masks).

    Everything here is derived from the packet array alone, so a worker
    holding the packets can build it and send only these arrays back;
    the parent re-attaches them with :meth:`TraceIndex.adopt_payload`.
    Background episodes need the event log and stay lazy in the parent.
    """
    order, app_ids, starts = _compute_grouping(packets)
    fg_mask, bg_mask = _compute_state_masks(packets)
    return {
        "order": order,
        "app_ids": app_ids,
        "starts": starts,
        "fg_mask": fg_mask,
        "bg_mask": bg_mask,
    }


class TraceIndex:
    """Lazily-built, memoized per-app / per-state index of one trace.

    Args:
        packets: The user's time-sorted packet array. The index keeps a
            reference; it copies nothing until a structure is built.
        events: The user's event log (needed only for
            :meth:`background_episodes`).
        t_end: End of the observation window (episode truncation).
        metrics: Optional :class:`~repro.metrics.RunMetrics`; build
            time accumulates under the ``index.build`` stage and every
            memo-served access increments the ``index.hits`` counter.
    """

    def __init__(
        self,
        packets: PacketArray,
        events: Optional[EventLog] = None,
        t_end: Optional[float] = None,
        metrics=None,
    ) -> None:
        self.packets = packets
        self.events = events
        self.t_end = t_end
        self.metrics = metrics
        #: Seconds spent building structures (this instance, in-process).
        self.build_seconds = 0.0
        #: Number of accesses served from an already-built structure.
        self.hits = 0
        self._order: Optional[np.ndarray] = None
        self._app_ids: Optional[np.ndarray] = None
        self._starts: Optional[np.ndarray] = None
        self._slices: Dict[int, slice] = {}
        self._fg_mask: Optional[np.ndarray] = None
        self._bg_mask: Optional[np.ndarray] = None
        self._bg_indices: Optional[np.ndarray] = None
        self._app_fg: Dict[int, np.ndarray] = {}
        self._app_bg: Dict[int, np.ndarray] = {}
        self._episodes: Dict[int, Tuple[BackgroundTransition, ...]] = {}
        self._bytes_by_app: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def _hit(self) -> None:
        self.hits += 1
        if self.metrics is not None:
            self.metrics.count("index.hits")

    def _build(self, builder) -> None:
        """Run ``builder`` under the build timer (and metrics stage)."""
        started = time.perf_counter()
        if self.metrics is not None:
            with self.metrics.stage("index.build"):
                builder()
        else:
            builder()
        self.build_seconds += time.perf_counter() - started

    # ------------------------------------------------------------------
    # App grouping
    # ------------------------------------------------------------------
    @property
    def is_grouped(self) -> bool:
        """True once the app grouping has been built (or adopted)."""
        return self._order is not None

    def _ensure_grouping(self) -> None:
        if self._order is not None:
            self._hit()
            return

        def builder() -> None:
            self._order, self._app_ids, self._starts = _compute_grouping(
                self.packets
            )
            self._slices = {
                int(app): slice(int(lo), int(hi))
                for app, lo, hi in zip(
                    self._app_ids, self._starts[:-1], self._starts[1:]
                )
            }

        self._build(builder)

    @property
    def app_ids(self) -> np.ndarray:
        """Ascending ids of apps with at least one packet."""
        self._ensure_grouping()
        return self._app_ids

    def has_app(self, app: int) -> bool:
        """True when the app has at least one packet in this trace."""
        self._ensure_grouping()
        return int(app) in self._slices

    def __contains__(self, app: object) -> bool:
        return isinstance(app, (int, np.integer)) and self.has_app(int(app))

    def __iter__(self) -> Iterator[int]:
        """Iterate over app ids in ascending order."""
        return iter(int(a) for a in self.app_ids)

    def app_count(self, app: int) -> int:
        """Number of packets of one app (0 when absent)."""
        self._ensure_grouping()
        group = self._slices.get(int(app))
        return 0 if group is None else group.stop - group.start

    def app_indices(self, app: int) -> np.ndarray:
        """Ascending positions of one app's packets in the trace.

        A zero-copy view into the order array; equal to
        ``np.flatnonzero(packets.apps == app)``. Treat it as read-only.
        """
        self._ensure_grouping()
        group = self._slices.get(int(app))
        if group is None:
            return _EMPTY_INDICES
        return self._order[group]

    def app_packets(self, app: int) -> PacketArray:
        """One app's packets, row-identical to ``packets.for_app(app)``."""
        return PacketArray(self.packets.data[self.app_indices(app)])

    def app_timestamps(self, app: int) -> np.ndarray:
        """One app's packet timestamps, ascending."""
        return self.packets.timestamps[self.app_indices(app)]

    def bytes_by_app(self) -> Dict[int, int]:
        """App id → total bytes, from one reduceat over the grouping.

        Equal to :meth:`~repro.trace.arrays.PacketArray.bytes_by_app`.
        """
        if self._bytes_by_app is None:
            self._ensure_grouping()

            def builder() -> None:
                if len(self.packets) == 0:
                    self._bytes_by_app = {}
                    return
                sorted_sizes = self.packets.sizes.astype(np.int64)[self._order]
                sums = np.add.reduceat(sorted_sizes, self._starts[:-1])
                self._bytes_by_app = {
                    int(app): int(total)
                    for app, total in zip(self._app_ids, sums)
                }

            self._build(builder)
        else:
            self._hit()
        return dict(self._bytes_by_app)

    # ------------------------------------------------------------------
    # State masks
    # ------------------------------------------------------------------
    def _ensure_masks(self) -> None:
        if self._fg_mask is not None:
            self._hit()
            return

        def builder() -> None:
            self._fg_mask, self._bg_mask = _compute_state_masks(self.packets)

        self._build(builder)

    @property
    def foreground_mask(self) -> np.ndarray:
        """Per-packet membership in the paper's foreground group."""
        self._ensure_masks()
        return self._fg_mask

    @property
    def background_mask(self) -> np.ndarray:
        """Per-packet membership in the paper's background group."""
        self._ensure_masks()
        return self._bg_mask

    @property
    def background_indices(self) -> np.ndarray:
        """Ascending positions of all background-state packets."""
        if self._bg_indices is None:
            mask = self.background_mask

            def builder() -> None:
                self._bg_indices = np.flatnonzero(mask)

            self._build(builder)
        else:
            self._hit()
        return self._bg_indices

    def app_foreground_indices(self, app: int) -> np.ndarray:
        """Ascending positions of one app's foreground-state packets."""
        key = int(app)
        cached = self._app_fg.get(key)
        if cached is None:
            idx = self.app_indices(key)
            mask = self.foreground_mask

            def builder() -> None:
                self._app_fg[key] = idx[mask[idx]]

            self._build(builder)
            cached = self._app_fg[key]
        else:
            self._hit()
        return cached

    def app_background_indices(self, app: int) -> np.ndarray:
        """Ascending positions of one app's background-state packets.

        Equal to ``np.flatnonzero((apps == app) & np.isin(states, bg))``
        but O(group) once the masks exist.
        """
        key = int(app)
        cached = self._app_bg.get(key)
        if cached is None:
            idx = self.app_indices(key)
            mask = self.background_mask

            def builder() -> None:
                self._app_bg[key] = idx[mask[idx]]

            self._build(builder)
            cached = self._app_bg[key]
        else:
            self._hit()
        return cached

    def app_background_packets(self, app: int) -> PacketArray:
        """One app's background-state packets as a PacketArray."""
        return PacketArray(self.packets.data[self.app_background_indices(app)])

    # ------------------------------------------------------------------
    # Background episodes
    # ------------------------------------------------------------------
    def background_episodes(self, app: int) -> Tuple[BackgroundTransition, ...]:
        """The app's foreground→background episodes, memoized.

        Requires the index to have been built with the trace's event
        log and window end (as :meth:`UserTrace.index` does).
        """
        key = int(app)
        cached = self._episodes.get(key)
        if cached is None:
            if self.events is None or self.t_end is None:
                raise TraceError(
                    "TraceIndex was built without events/t_end; "
                    "background episodes are unavailable"
                )

            def builder() -> None:
                self._episodes[key] = tuple(
                    background_transitions(self.events, key, self.t_end)
                )

            self._build(builder)
            cached = self._episodes[key]
        else:
            self._hit()
        return cached

    # ------------------------------------------------------------------
    # Pool boundary / invalidation
    # ------------------------------------------------------------------
    def adopt_payload(self, payload: Dict[str, np.ndarray]) -> "TraceIndex":
        """Install a :func:`build_index_payload` result (pool ship-back)."""
        self._order = np.asarray(payload["order"], dtype=np.int64)
        self._app_ids = np.asarray(payload["app_ids"])
        self._starts = np.asarray(payload["starts"], dtype=np.int64)
        self._slices = {
            int(app): slice(int(lo), int(hi))
            for app, lo, hi in zip(
                self._app_ids, self._starts[:-1], self._starts[1:]
            )
        }
        self._fg_mask = np.asarray(payload["fg_mask"], dtype=bool)
        self._bg_mask = np.asarray(payload["bg_mask"], dtype=bool)
        return self

    def invalidate_states(self) -> None:
        """Drop state-derived memos (after relabelling packet states).

        The app grouping survives — relabelling never moves packets.
        """
        self._fg_mask = None
        self._bg_mask = None
        self._bg_indices = None
        self._app_fg.clear()
        self._app_bg.clear()

    def __repr__(self) -> str:
        built = "grouped" if self.is_grouped else "unbuilt"
        return (
            f"TraceIndex(n={len(self.packets)}, {built}, "
            f"hits={self.hits}, build_s={self.build_seconds:.4f})"
        )


class IndexTask:
    """Picklable per-user index build for worker pools.

    Mirrors :class:`~repro.radio.attribution.AttributionTask`: the bulky
    packet arrays ride on the task (copy-on-write under ``fork``, once
    per worker under ``spawn``) and the item stream is bare user ids;
    each call returns ``(user_id, payload)`` for
    :meth:`TraceIndex.adopt_payload`.
    """

    def __init__(self, traces: Dict[int, PacketArray]) -> None:
        self.traces = traces

    def __call__(self, user_id: int) -> Tuple[int, Dict[str, np.ndarray]]:
        return user_id, build_index_payload(self.traces[user_id])
