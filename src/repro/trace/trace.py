"""Per-user trace container."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import units
from repro.errors import TraceError
from repro.trace.arrays import PacketArray
from repro.trace.events import EventLog, ProcessState
from repro.trace.flow import FlowTable, reconstruct_flows
from repro.trace.index import TraceIndex
from repro.trace.intervals import label_packet_states


class UserTrace:
    """Everything collected from one device: packets plus event streams.

    Mirrors the paper's per-user collection: complete (cellular) packet
    traces, user input events and process-state context over
    ``[start, end)`` seconds of study time.
    """

    def __init__(
        self,
        user_id: int,
        start: float,
        end: float,
        packets: PacketArray,
        events: EventLog,
    ) -> None:
        if end < start:
            raise TraceError(f"trace end {end} before start {start}")
        self.user_id = user_id
        self.start = start
        self.end = end
        self.packets = packets if packets.is_time_sorted() else packets.sorted_by_time()
        self.events = events
        self._flows: Optional[FlowTable] = None
        self._index: Optional[TraceIndex] = None

    @property
    def duration(self) -> float:
        """Observation window length in seconds."""
        return self.end - self.start

    @property
    def duration_days(self) -> float:
        """Observation window length in days."""
        return units.days(self.duration)

    def label_states(
        self, default_state: ProcessState = ProcessState.SERVICE
    ) -> np.ndarray:
        """Label every packet with its app's process state (in place)."""
        labels = label_packet_states(self.packets, self.events, default_state)
        if self._index is not None:
            self._index.invalidate_states()
        return labels

    def flows(self, gap_timeout: float = 60.0) -> FlowTable:
        """Reconstruct (and cache) the trace's flow table."""
        if self._flows is None:
            self._flows = reconstruct_flows(self.packets, gap_timeout)
        return self._flows

    def invalidate_flows(self) -> None:
        """Drop the cached flow table (after mutating packets)."""
        self._flows = None

    def index(self, metrics=None) -> TraceIndex:
        """The trace's shared :class:`~repro.trace.index.TraceIndex`.

        Built lazily and memoized on the trace, so every analysis that
        asks sees the same partition — one sort per user, ever. Passing
        ``metrics`` (re)attaches a :class:`~repro.metrics.RunMetrics`
        so build time and reuse counts are recorded.
        """
        if self._index is None:
            self._index = TraceIndex(
                self.packets, self.events, self.end, metrics=metrics
            )
        elif metrics is not None:
            self._index.metrics = metrics
        return self._index

    def invalidate_index(self) -> None:
        """Drop the cached index (after replacing or reordering packets)."""
        self._index = None

    def packets_for_app(self, app: int) -> PacketArray:
        """Packets of a single app."""
        return self.index().app_packets(app)

    def app_ids(self) -> list:
        """Sorted ids of apps with at least one packet."""
        return [int(a) for a in self.index().app_ids]

    def validate(self) -> None:
        """Structural validation of packets and events."""
        self.packets.validate()
        self.events.validate()
        ts = self.packets.timestamps
        if len(ts) and (ts[0] < self.start or ts[-1] > self.end):
            raise TraceError(
                f"user {self.user_id}: packets outside trace window "
                f"[{self.start}, {self.end}]"
            )

    def __repr__(self) -> str:
        return (
            f"UserTrace(user={self.user_id}, days={self.duration_days:.1f}, "
            f"packets={len(self.packets)})"
        )
