"""Flow reconstruction.

The paper reports several per-flow metrics (Table 1: J/flow, MB/flow). A
*flow* here is the trace-level analogue of a transport connection: the
packets sharing an ``(app, conn)`` pair, split whenever the connection is
silent for longer than ``gap_timeout`` (TCP connections in the traces are
torn down or NATed out long before that).

Reconstruction is fully vectorised: one lexsort plus boundary detection,
so million-packet traces reconstruct in tens of milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List

import numpy as np

from repro.errors import TraceError
from repro.trace.arrays import PacketArray
from repro.trace.packet import Direction

#: Default flow idle timeout in seconds.
DEFAULT_GAP_TIMEOUT = 60.0


@dataclass(frozen=True)
class Flow:
    """Aggregate view of one reconstructed flow."""

    flow_id: int
    app: int
    conn: int
    start: float
    end: float
    packets: int
    bytes_up: int
    bytes_down: int

    @property
    def total_bytes(self) -> int:
        """Bytes in both directions."""
        return self.bytes_up + self.bytes_down

    @property
    def duration(self) -> float:
        """Seconds between first and last packet of the flow."""
        return self.end - self.start


class FlowTable:
    """All flows of a trace, with per-app lookup."""

    def __init__(self, flows: List[Flow]) -> None:
        self._flows = flows
        self._by_app: Dict[int, List[Flow]] = {}
        for flow in flows:
            self._by_app.setdefault(flow.app, []).append(flow)

    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows)

    def __getitem__(self, flow_id: int) -> Flow:
        # Flow ids are dense and 1-based (0 is the "no flow" sentinel).
        if not 1 <= flow_id <= len(self._flows):
            raise KeyError(flow_id)
        return self._flows[flow_id - 1]

    def for_app(self, app: int) -> List[Flow]:
        """Flows belonging to one app."""
        return self._by_app.get(app, [])

    def count_for_app(self, app: int) -> int:
        """Number of flows belonging to one app."""
        return len(self._by_app.get(app, []))


def reconstruct_flows(
    packets: PacketArray,
    gap_timeout: float = DEFAULT_GAP_TIMEOUT,
) -> FlowTable:
    """Assign flow ids to ``packets`` (in place) and return the table.

    Packets must be time-sorted. Flow ids are dense, 1-based, and
    ordered by each flow's first packet in the sorted-by-(app, conn)
    ordering.
    """
    if gap_timeout <= 0:
        raise TraceError(f"gap_timeout must be positive, got {gap_timeout}")
    if not packets.is_time_sorted():
        raise TraceError("packets must be time-sorted before flow reconstruction")
    n = len(packets)
    if n == 0:
        return FlowTable([])

    ts = packets.timestamps
    apps = packets.apps.astype(np.int64)
    conns = packets.conns.astype(np.int64)
    sizes = packets.sizes.astype(np.int64)
    dirs = packets.directions

    # Group by (app, conn) then time; within the stable sort the packets
    # of each connection remain chronological.
    order = np.lexsort((ts, conns, apps))
    s_apps = apps[order]
    s_conns = conns[order]
    s_ts = ts[order]

    new_group = np.empty(n, dtype=bool)
    new_group[0] = True
    new_group[1:] = (
        (s_apps[1:] != s_apps[:-1])
        | (s_conns[1:] != s_conns[:-1])
        | ((s_ts[1:] - s_ts[:-1]) > gap_timeout)
    )
    flow_ids_sorted = np.cumsum(new_group)  # 1-based dense ids
    flow_ids = np.empty(n, dtype=np.uint32)
    flow_ids[order] = flow_ids_sorted
    packets.data["flow"] = flow_ids

    n_flows = int(flow_ids_sorted[-1])
    starts = np.flatnonzero(new_group)
    ends = np.append(starts[1:], n)

    s_sizes = sizes[order]
    s_dirs = dirs[order]
    up_sizes = np.where(s_dirs == int(Direction.UPLINK), s_sizes, 0)
    down_sizes = np.where(s_dirs == int(Direction.DOWNLINK), s_sizes, 0)
    bytes_up = np.add.reduceat(up_sizes, starts)
    bytes_down = np.add.reduceat(down_sizes, starts)

    flows = [
        Flow(
            flow_id=i + 1,
            app=int(s_apps[starts[i]]),
            conn=int(s_conns[starts[i]]),
            start=float(s_ts[starts[i]]),
            end=float(s_ts[ends[i] - 1]),
            packets=int(ends[i] - starts[i]),
            bytes_up=int(bytes_up[i]),
            bytes_down=int(bytes_down[i]),
        )
        for i in range(n_flows)
    ]
    return FlowTable(flows)
