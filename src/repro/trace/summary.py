"""Dataset summary statistics.

A quick structural overview of a study (generated or imported): per-user
traffic volumes, app counts, event counts, and study-wide category
totals. Used by ``repro summary`` and handy as a sanity check before
running the heavier analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.trace.dataset import Dataset
from repro.units import MB


@dataclass(frozen=True)
class UserSummary:
    """One user's trace at a glance."""

    user_id: int
    days: float
    packets: int
    megabytes: float
    apps_with_traffic: int
    process_events: int
    sessions: int  # foreground entries in the event stream
    top_app: str


@dataclass(frozen=True)
class DatasetSummary:
    """Study-wide structural overview."""

    users: Tuple[UserSummary, ...]
    total_apps: int
    apps_with_traffic: int
    category_megabytes: Tuple[Tuple[str, float], ...]

    @property
    def total_packets(self) -> int:
        """Packets across all users."""
        return sum(u.packets for u in self.users)

    @property
    def total_megabytes(self) -> float:
        """Traffic volume across all users, MB."""
        return sum(u.megabytes for u in self.users)


def summarize(dataset: Dataset) -> DatasetSummary:
    """Build the structural summary of a dataset."""
    from repro.trace.events import ProcessState

    users: List[UserSummary] = []
    seen_apps = set()
    category_bytes: Dict[str, float] = {}
    for trace in dataset:
        by_app = trace.packets.bytes_by_app()
        seen_apps.update(by_app)
        for app_id, volume in by_app.items():
            category = dataset.registry.by_id(app_id).category
            category_bytes[category] = category_bytes.get(category, 0.0) + volume
        top_app = (
            dataset.registry.name_of(max(by_app, key=lambda a: by_app[a]))
            if by_app
            else "-"
        )
        sessions = sum(
            1
            for e in trace.events.process_events
            if e.state is ProcessState.FOREGROUND
        )
        users.append(
            UserSummary(
                user_id=trace.user_id,
                days=trace.duration_days,
                packets=len(trace.packets),
                megabytes=trace.packets.total_bytes / MB,
                apps_with_traffic=len(by_app),
                process_events=len(trace.events.process_events),
                sessions=sessions,
                top_app=top_app,
            )
        )
    categories = tuple(
        sorted(
            ((c, v / MB) for c, v in category_bytes.items()),
            key=lambda cv: -cv[1],
        )
    )
    return DatasetSummary(
        users=tuple(users),
        total_apps=len(dataset.registry),
        apps_with_traffic=len(seen_apps),
        category_megabytes=categories,
    )
