"""Columnar packet storage.

Month-scale traces hold millions of packets, which is far too many for
per-packet Python objects. :class:`PacketArray` stores packets in a numpy
structured array and is the form every analysis in :mod:`repro.core` and
the vectorised energy engine consume. Object packets
(:class:`~repro.trace.packet.Packet`) convert to and from this form.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import TraceError
from repro.trace.packet import Direction, Packet
from repro.trace.events import ProcessState

#: Sentinel for "process state not labelled yet".
STATE_UNLABELLED = 255

#: numpy dtype of one packet record.
PACKET_DTYPE = np.dtype(
    [
        ("timestamp", "f8"),
        ("size", "u4"),
        ("direction", "u1"),
        ("app", "u2"),
        ("conn", "u4"),
        ("flow", "u4"),
        ("state", "u1"),
    ]
)


class PacketArray:
    """An immutable-by-convention, time-sortable column store of packets.

    The underlying structured array is exposed as :attr:`data`; column
    properties return views, not copies. Mutation is reserved for the
    library's own labelling passes (flow reconstruction, state
    labelling), which write whole columns at once.
    """

    def __init__(self, data: Optional[np.ndarray] = None) -> None:
        if data is None:
            data = np.empty(0, dtype=PACKET_DTYPE)
        if data.dtype != PACKET_DTYPE:
            raise TraceError(
                f"expected dtype {PACKET_DTYPE}, got {data.dtype}"
            )
        self.data = data

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_packets(cls, packets: Iterable[Packet]) -> "PacketArray":
        """Build from an iterable of object packets."""
        packets = list(packets)
        data = np.empty(len(packets), dtype=PACKET_DTYPE)
        for i, pkt in enumerate(packets):
            data[i] = (
                pkt.timestamp,
                pkt.size,
                int(pkt.direction),
                pkt.app,
                pkt.conn,
                pkt.flow,
                STATE_UNLABELLED,
            )
        return cls(data)

    @classmethod
    def from_columns(
        cls,
        timestamps: np.ndarray,
        sizes: np.ndarray,
        directions: np.ndarray,
        apps: np.ndarray,
        conns: Optional[np.ndarray] = None,
    ) -> "PacketArray":
        """Build from parallel column arrays (the generator's fast path)."""
        n = len(timestamps)
        for name, col in (
            ("sizes", sizes),
            ("directions", directions),
            ("apps", apps),
        ):
            if len(col) != n:
                raise TraceError(
                    f"column {name} has length {len(col)}, expected {n}"
                )
        data = np.empty(n, dtype=PACKET_DTYPE)
        data["timestamp"] = timestamps
        data["size"] = sizes
        data["direction"] = directions
        data["app"] = apps
        data["conn"] = conns if conns is not None else 0
        data["flow"] = 0
        data["state"] = STATE_UNLABELLED
        return cls(data)

    @classmethod
    def concat(cls, arrays: Sequence["PacketArray"]) -> "PacketArray":
        """Concatenate several arrays (does not sort)."""
        if not arrays:
            return cls()
        return cls(np.concatenate([a.data for a in arrays]))

    # ------------------------------------------------------------------
    # Columns
    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> np.ndarray:
        """Packet capture times, seconds since study start."""
        return self.data["timestamp"]

    @property
    def sizes(self) -> np.ndarray:
        """Packet sizes in bytes."""
        return self.data["size"]

    @property
    def directions(self) -> np.ndarray:
        """Packet directions (values of :class:`Direction`)."""
        return self.data["direction"]

    @property
    def apps(self) -> np.ndarray:
        """Per-packet app ids."""
        return self.data["app"]

    @property
    def conns(self) -> np.ndarray:
        """Per-packet connection ids."""
        return self.data["conn"]

    @property
    def flows(self) -> np.ndarray:
        """Per-packet flow ids (0 before reconstruction)."""
        return self.data["flow"]

    @property
    def states(self) -> np.ndarray:
        """Per-packet process state (``STATE_UNLABELLED`` before labelling)."""
        return self.data["state"]

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.data)

    def __iter__(self) -> Iterator[Packet]:
        return iter(self.to_packets())

    def __getitem__(self, key) -> "PacketArray":
        result = self.data[key]
        if isinstance(result, np.void):  # single record
            result = result.reshape(1) if hasattr(result, "reshape") else np.array(
                [result], dtype=PACKET_DTYPE
            )
        return PacketArray(np.atleast_1d(result))

    def __repr__(self) -> str:
        if len(self) == 0:
            return "PacketArray(empty)"
        return (
            f"PacketArray(n={len(self)}, "
            f"t=[{self.timestamps[0]:.3f}, {self.timestamps[-1]:.3f}], "
            f"bytes={int(self.sizes.sum())})"
        )

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def sorted_by_time(self) -> "PacketArray":
        """Return a copy sorted by timestamp (stable)."""
        order = np.argsort(self.timestamps, kind="stable")
        return PacketArray(self.data[order])

    def is_time_sorted(self) -> bool:
        """True when timestamps are non-decreasing."""
        ts = self.timestamps
        return bool(np.all(ts[1:] >= ts[:-1])) if len(ts) > 1 else True

    def select(self, mask: np.ndarray) -> "PacketArray":
        """Return the packets where ``mask`` is true."""
        return PacketArray(self.data[mask])

    def for_app(self, app: int) -> "PacketArray":
        """Packets belonging to one app."""
        return self.select(self.apps == app)

    def in_range(self, start: float, end: float) -> "PacketArray":
        """Packets with ``start <= timestamp < end``."""
        ts = self.timestamps
        return self.select((ts >= start) & (ts < end))

    def to_packets(self) -> List[Packet]:
        """Convert to a list of object packets (small traces only)."""
        return [
            Packet(
                timestamp=float(rec["timestamp"]),
                size=int(rec["size"]),
                direction=Direction(int(rec["direction"])),
                app=int(rec["app"]),
                conn=int(rec["conn"]),
                flow=int(rec["flow"]),
            )
            for rec in self.data
        ]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def total_bytes(self) -> int:
        """Sum of all packet sizes."""
        return int(self.sizes.sum()) if len(self) else 0

    def bytes_by_app(self) -> dict:
        """Mapping of app id -> total bytes."""
        if len(self) == 0:
            return {}
        apps = self.apps
        sizes = self.sizes.astype(np.int64)
        unique, inverse = np.unique(apps, return_inverse=True)
        sums = np.bincount(inverse, weights=sizes)
        return {int(a): int(s) for a, s in zip(unique, sums)}

    def duration(self) -> float:
        """Time span between first and last packet (0 when < 2 packets)."""
        if len(self) < 2:
            return 0.0
        return float(self.timestamps[-1] - self.timestamps[0])

    def validate(self) -> None:
        """Raise :class:`TraceError` on structurally invalid packets."""
        if len(self) == 0:
            return
        if np.any(self.sizes == 0):
            raise TraceError("packet with zero size")
        if np.any(self.timestamps < 0):
            raise TraceError("packet with negative timestamp")
        valid_dirs = {int(Direction.UPLINK), int(Direction.DOWNLINK)}
        if not set(np.unique(self.directions)).issubset(valid_dirs):
            raise TraceError("packet with invalid direction")
        valid_states = {int(s) for s in ProcessState} | {STATE_UNLABELLED}
        if not set(np.unique(self.states)).issubset(valid_states):
            raise TraceError("packet with invalid process state label")
