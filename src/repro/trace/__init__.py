"""Packet-trace data model.

This package is the bottom substrate of the library: it defines packets,
the numpy-backed :class:`~repro.trace.arrays.PacketArray`, process-state /
screen / input event streams, flow reconstruction, per-user traces and the
multi-user :class:`~repro.trace.dataset.Dataset` that the rest of the
library consumes.
"""

from repro.trace.packet import Direction, Packet
from repro.trace.events import (
    EventLog,
    ProcessState,
    ProcessStateEvent,
    ScreenEvent,
    UserInputEvent,
    BACKGROUND_STATES,
    FOREGROUND_STATES,
    background_state_values,
    foreground_state_values,
)
from repro.trace.arrays import PacketArray
from repro.trace.index import IndexTask, TraceIndex, build_index_payload
from repro.trace.flow import Flow, FlowTable, reconstruct_flows
from repro.trace.intervals import (
    StateInterval,
    app_state_intervals,
    background_transitions,
    label_packet_states,
)
from repro.trace.trace import UserTrace
from repro.trace.dataset import AppInfo, AppRegistry, Dataset
from repro.trace.summary import DatasetSummary, UserSummary, summarize
from repro.trace.io_text import (
    dataset_from_csv,
    iter_event_rows,
    iter_packet_rows,
    read_events_csv,
    read_packets_csv,
    write_events_csv,
    write_packets_csv,
)

__all__ = [
    "AppInfo",
    "AppRegistry",
    "BACKGROUND_STATES",
    "Dataset",
    "Direction",
    "EventLog",
    "Flow",
    "FlowTable",
    "FOREGROUND_STATES",
    "Packet",
    "PacketArray",
    "ProcessState",
    "ProcessStateEvent",
    "ScreenEvent",
    "StateInterval",
    "UserInputEvent",
    "UserTrace",
    "app_state_intervals",
    "dataset_from_csv",
    "iter_event_rows",
    "iter_packet_rows",
    "read_events_csv",
    "read_packets_csv",
    "write_events_csv",
    "write_packets_csv",
    "DatasetSummary",
    "UserSummary",
    "summarize",
    "background_transitions",
    "label_packet_states",
    "reconstruct_flows",
    "IndexTask",
    "TraceIndex",
    "background_state_values",
    "build_index_payload",
    "foreground_state_values",
]
