"""Device event streams: process states, screen, user input.

The paper's "background" definition is built from the five main Android
process states ([6] in the paper):

* ``FOREGROUND``  -- the process owns the main UI;
* ``VISIBLE``     -- a secondary UI element is visible;
* ``PERCEPTIBLE`` -- not visible but user-perceptible (e.g. playing music);
* ``SERVICE``     -- a background service the OS avoids killing;
* ``BACKGROUND``  -- killable when memory is low.

The paper groups the first two as "foreground" and the last three as
"background"; :data:`FOREGROUND_STATES` / :data:`BACKGROUND_STATES` encode
that grouping. A sixth pseudo-state ``NOT_RUNNING`` marks periods where
the process does not exist at all (relevant for the what-if kill policy).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from enum import IntEnum
from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.errors import TraceError


class ProcessState(IntEnum):
    """Android process importance buckets, plus ``NOT_RUNNING``."""

    FOREGROUND = 0
    VISIBLE = 1
    PERCEPTIBLE = 2
    SERVICE = 3
    BACKGROUND = 4
    NOT_RUNNING = 5


#: The paper's "foreground" group (main or secondary UI visible).
FOREGROUND_STATES = frozenset({ProcessState.FOREGROUND, ProcessState.VISIBLE})

#: The paper's "background" group.
BACKGROUND_STATES = frozenset(
    {ProcessState.PERCEPTIBLE, ProcessState.SERVICE, ProcessState.BACKGROUND}
)


def _interned_values(states: Iterable[ProcessState]) -> np.ndarray:
    values = np.array(sorted(int(s) for s in states), dtype=np.uint8)
    values.setflags(write=False)
    return values


#: The background group as a sorted, read-only ``uint8`` array — the one
#: canonical form every ``np.isin(states, …)`` test uses.
BACKGROUND_STATE_VALUES = _interned_values(BACKGROUND_STATES)

#: The foreground group in the same interned array form.
FOREGROUND_STATE_VALUES = _interned_values(FOREGROUND_STATES)


def background_state_values() -> np.ndarray:
    """The paper's background group as a sorted ``uint8`` array.

    Returns the interned (read-only, shared) array — callers must not
    mutate it. Use it instead of rebuilding ``np.array([int(s) for s in
    BACKGROUND_STATES])`` at every call site.
    """
    return BACKGROUND_STATE_VALUES


def foreground_state_values() -> np.ndarray:
    """The paper's foreground group as a sorted ``uint8`` array."""
    return FOREGROUND_STATE_VALUES


def state_background_mask(states: np.ndarray) -> np.ndarray:
    """Boolean mask of the entries in the paper's background group.

    The one shared membership test over raw state arrays: callers
    outside :mod:`repro.trace` (the streaming cadence tracker, the
    readout layer) use this instead of rebuilding ``np.isin(states,
    BACKGROUND_STATE_VALUES)`` by hand.
    """
    return np.isin(states, BACKGROUND_STATE_VALUES)


def is_foreground(state: ProcessState) -> bool:
    """True when ``state`` is in the paper's foreground group."""
    return state in FOREGROUND_STATES


def is_background(state: ProcessState) -> bool:
    """True when ``state`` is in the paper's background group."""
    return state in BACKGROUND_STATES


@dataclass(frozen=True)
class ProcessStateEvent:
    """App ``app`` transitioned to process state ``state`` at ``timestamp``."""

    timestamp: float
    app: int
    state: ProcessState


@dataclass(frozen=True)
class ScreenEvent:
    """The screen turned on (``on=True``) or off at ``timestamp``."""

    timestamp: float
    on: bool


@dataclass(frozen=True)
class UserInputEvent:
    """The user interacted with app ``app`` at ``timestamp``."""

    timestamp: float
    app: int


class EventLog:
    """Time-ordered container for the three event streams of one device.

    Events may be appended in any order; the log sorts lazily on first
    read access and stays sorted afterwards.
    """

    def __init__(
        self,
        process_events: Iterable[ProcessStateEvent] = (),
        screen_events: Iterable[ScreenEvent] = (),
        input_events: Iterable[UserInputEvent] = (),
    ) -> None:
        self._process: List[ProcessStateEvent] = list(process_events)
        self._screen: List[ScreenEvent] = list(screen_events)
        self._input: List[UserInputEvent] = list(input_events)
        self._sorted = False
        self._by_app: Optional[dict] = None

    def add_process_event(self, event: ProcessStateEvent) -> None:
        """Append a process-state transition."""
        self._process.append(event)
        self._sorted = False
        self._by_app = None

    def add_screen_event(self, event: ScreenEvent) -> None:
        """Append a screen on/off transition."""
        self._screen.append(event)
        self._sorted = False

    def add_input_event(self, event: UserInputEvent) -> None:
        """Append a user-input event."""
        self._input.append(event)
        self._sorted = False

    def extend_process_events(self, events: Iterable[ProcessStateEvent]) -> None:
        """Append many process-state transitions at once."""
        self._process.extend(events)
        self._sorted = False
        self._by_app = None

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._process.sort(key=lambda e: e.timestamp)
            self._screen.sort(key=lambda e: e.timestamp)
            self._input.sort(key=lambda e: e.timestamp)
            self._sorted = True

    @property
    def process_events(self) -> Sequence[ProcessStateEvent]:
        """All process-state events, time-ordered."""
        self._ensure_sorted()
        return self._process

    @property
    def screen_events(self) -> Sequence[ScreenEvent]:
        """All screen events, time-ordered."""
        self._ensure_sorted()
        return self._screen

    @property
    def input_events(self) -> Sequence[UserInputEvent]:
        """All user-input events, time-ordered."""
        self._ensure_sorted()
        return self._input

    def process_events_for_app(self, app: int) -> Sequence[ProcessStateEvent]:
        """Time-ordered process-state events of a single app."""
        self._ensure_sorted()
        if self._by_app is None:
            by_app: dict = {}
            for event in self._process:
                by_app.setdefault(event.app, []).append(event)
            self._by_app = by_app
        return self._by_app.get(app, [])

    def apps(self) -> List[int]:
        """Sorted ids of all apps appearing in the process-event stream."""
        return sorted({e.app for e in self.process_events})

    def screen_on_at(self, timestamp: float) -> bool:
        """Screen state at ``timestamp`` (``False`` before any event)."""
        events = self.screen_events
        times = [e.timestamp for e in events]
        idx = bisect.bisect_right(times, timestamp) - 1
        if idx < 0:
            return False
        return events[idx].on

    def merge(self, other: "EventLog") -> "EventLog":
        """Return a new log with the union of both logs' events."""
        return EventLog(
            list(self.process_events) + list(other.process_events),
            list(self.screen_events) + list(other.screen_events),
            list(self.input_events) + list(other.input_events),
        )

    def validate(self) -> None:
        """Raise :class:`TraceError` on negative timestamps."""
        for stream in (self.process_events, self.screen_events, self.input_events):
            for event in stream:
                if event.timestamp < 0:
                    raise TraceError(
                        f"event has negative timestamp: {event!r}"
                    )

    def __len__(self) -> int:
        return len(self._process) + len(self._screen) + len(self._input)

    def __iter__(self) -> Iterator:
        """Iterate over all events of every stream in time order."""
        self._ensure_sorted()
        merged = list(self._process) + list(self._screen) + list(self._input)
        merged.sort(key=lambda e: e.timestamp)
        return iter(merged)
