"""Text (CSV) interchange for traces.

The synthetic generator is a stand-in for real collection software; a
downstream user with actual packet/process logs (tcpdump + procfs, the
paper's own pipeline) can feed them to every analysis through this
module. Two simple CSV schemas:

Packets — header ``timestamp,size,direction,app,conn``::

    12.531,1448,down,com.android.chrome,17
    12.540,60,up,com.android.chrome,17

``direction`` accepts ``up``/``down``/``uplink``/``downlink``/``0``/``1``.

Events — header ``timestamp,kind,app,value``::

    10.0,process,com.android.chrome,foreground
    95.2,process,com.android.chrome,background
    95.2,screen,,off
    12.0,input,com.android.chrome,

Process-state values are the :class:`~repro.trace.events.ProcessState`
names (case-insensitive); screen values are ``on``/``off``.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro import faults
from repro.errors import TraceError
from repro.trace.arrays import PacketArray
from repro.trace.dataset import AppRegistry, Dataset
from repro.trace.events import (
    EventLog,
    ProcessState,
    ProcessStateEvent,
    ScreenEvent,
    UserInputEvent,
)
from repro.trace.packet import Direction
from repro.trace.trace import UserTrace

PathLike = Union[str, Path]

_DIRECTIONS = {
    "up": Direction.UPLINK,
    "uplink": Direction.UPLINK,
    "0": Direction.UPLINK,
    "down": Direction.DOWNLINK,
    "downlink": Direction.DOWNLINK,
    "1": Direction.DOWNLINK,
}


def _parse_direction(token: str) -> Direction:
    try:
        return _DIRECTIONS[token.strip().lower()]
    except KeyError:
        raise TraceError(f"unknown packet direction {token!r}") from None


def _app_id(registry: AppRegistry, name: str) -> int:
    name = name.strip()
    if not name:
        raise TraceError("packet/event row with empty app name")
    if name in registry:
        return registry.id_of(name)
    return registry.register(name).app_id


#: One parsed packets-CSV row: (timestamp, size, direction, app id, conn).
PacketRow = Tuple[float, int, int, int, int]

#: The packets-CSV schema's required columns.
PACKET_COLUMNS = frozenset({"timestamp", "size", "direction", "app"})


def parse_packet_fields(row, registry: AppRegistry) -> PacketRow:
    """Parse one raw packets-CSV row dict into a :data:`PacketRow`.

    The single parse used by every packet reader — batch, streaming and
    the live tail (:class:`repro.follow.TailCsvSource`). Field order
    matters: timestamp, size and direction parse *before* the app name
    registers, so a row rejected on those fields leaves the registry
    untouched and surviving rows get identical app ids everywhere.
    Raises :class:`TraceError` (or ``ValueError``/``TypeError`` from
    the numeric casts) on a malformed row.
    """
    return (
        float(row["timestamp"]),
        int(row["size"]),
        int(_parse_direction(row["direction"])),
        _app_id(registry, row["app"]),
        int(row.get("conn") or 0),
    )


def iter_packet_rows(
    path: PathLike,
    registry: AppRegistry,
    on_bad_row: Optional[Callable[[TraceError], None]] = None,
    inject: bool = False,
    with_line_numbers: bool = False,
) -> Iterator[PacketRow]:
    """Lazily parse a packets CSV, one row at a time.

    This is the single parsing path: the batch reader
    (:func:`read_packets_csv`) collects every row, the streaming reader
    (:class:`repro.stream.CsvStreamSource`) consumes bounded slices —
    both see identical rows and register unseen app names in identical
    (file) order. Malformed rows raise :class:`TraceError` naming the
    file and line number — unless ``on_bad_row`` is given, which
    receives that error and the iterator moves on (the row-quarantine
    hook). Timestamp, size and direction parse before the app name
    registers, so a row quarantined on those fields leaves the registry
    untouched and surviving rows get identical app ids.

    ``inject`` opts this iteration into the ``io.packet_row`` fault
    site (:mod:`repro.faults`); batch reads never inject, so the
    fault-free reference numbers cannot be perturbed by an armed plan.

    ``with_line_numbers`` yields ``(line_number, row)`` pairs instead
    of bare rows, so a caller diagnosing a defect *between* rows (e.g.
    an out-of-order timestamp) can point at the actual file line even
    when quarantined rows were dropped along the way.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"timestamp", "size", "direction", "app"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise TraceError(
                f"{path.name}: packets CSV must have columns "
                f"{sorted(required)}, got {reader.fieldnames}"
            )
        for row in reader:
            if inject:
                spec = faults.fire("io.packet_row")
                if spec is not None and spec.action == "corrupt":
                    row = faults.corrupt_row(row)
            try:
                parsed = parse_packet_fields(row, registry)
            except (TraceError, ValueError, TypeError) as exc:
                error = TraceError(f"{path.name}:{reader.line_num}: {exc}")
                if on_bad_row is not None:
                    on_bad_row(error)
                    continue
                raise error from None
            yield (reader.line_num, parsed) if with_line_numbers else parsed


def read_packets_csv(path: PathLike, registry: AppRegistry) -> PacketArray:
    """Read a packets CSV, registering unseen app names.

    Returns a time-sorted :class:`PacketArray`.
    """
    times: List[float] = []
    sizes: List[int] = []
    directions: List[int] = []
    apps: List[int] = []
    conns: List[int] = []
    for timestamp, size, direction, app, conn in iter_packet_rows(
        path, registry
    ):
        times.append(timestamp)
        sizes.append(size)
        directions.append(direction)
        apps.append(app)
        conns.append(conn)
    packets = PacketArray.from_columns(
        np.array(times),
        np.array(sizes, dtype=np.uint32),
        np.array(directions, dtype=np.uint8),
        np.array(apps, dtype=np.uint16),
        np.array(conns, dtype=np.uint32),
    )
    return packets.sorted_by_time()


#: One parsed events-CSV row, tagged by kind.
EventRow = Tuple[str, object]


def iter_event_rows(
    path: PathLike, registry: AppRegistry
) -> Iterator[EventRow]:
    """Lazily parse an events CSV into ``(kind, event)`` pairs.

    ``kind`` is ``"process"``/``"screen"``/``"input"``; ``event`` is the
    matching :mod:`repro.trace.events` record. Shared by the batch and
    streaming readers; malformed rows raise :class:`TraceError` naming
    the file and line number.
    """
    path = Path(path)
    with open(path, newline="") as handle:
        reader = csv.DictReader(handle)
        required = {"timestamp", "kind"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise TraceError(
                f"{path.name}: events CSV must have columns "
                f"{sorted(required)}, got {reader.fieldnames}"
            )
        for row in reader:
            try:
                yield _parse_event_row(row, registry)
            except (TraceError, ValueError, TypeError) as exc:
                raise TraceError(
                    f"{path.name}:{reader.line_num}: {exc}"
                ) from None


def _parse_event_row(row, registry: AppRegistry) -> EventRow:
    timestamp = float(row["timestamp"])
    kind = row["kind"].strip().lower()
    if kind == "process":
        state_name = (row.get("value") or "").strip().upper()
        try:
            state = ProcessState[state_name]
        except KeyError:
            raise TraceError(
                f"unknown process state {row.get('value')!r}"
            ) from None
        return kind, ProcessStateEvent(
            timestamp, _app_id(registry, row.get("app") or ""), state
        )
    if kind == "screen":
        value = (row.get("value") or "").strip().lower()
        if value not in ("on", "off"):
            raise TraceError(f"screen value must be on/off, got {value!r}")
        return kind, ScreenEvent(timestamp, value == "on")
    if kind == "input":
        return kind, UserInputEvent(
            timestamp, _app_id(registry, row.get("app") or "")
        )
    raise TraceError(f"unknown event kind {row['kind']!r}")


def read_events_csv(path: PathLike, registry: AppRegistry) -> EventLog:
    """Read an events CSV (process/screen/input streams)."""
    log = EventLog()
    for kind, event in iter_event_rows(path, registry):
        if kind == "process":
            log.add_process_event(event)
        elif kind == "screen":
            log.add_screen_event(event)
        else:
            log.add_input_event(event)
    return log


def dataset_from_csv(
    user_files: Sequence[Tuple[PathLike, Optional[PathLike]]],
    duration: Optional[float] = None,
    registry: Optional[AppRegistry] = None,
) -> Dataset:
    """Build a dataset from per-user (packets CSV, events CSV) pairs.

    Args:
        user_files: One ``(packets_csv, events_csv_or_None)`` per user;
            user ids are assigned 1..N in order.
        duration: Observation window length; defaults to the latest
            packet/event time across users, rounded up to a whole day.
        registry: Existing registry to extend; a fresh one by default.

    Packets are state-labelled from the event streams before return.
    """
    if not user_files:
        raise TraceError("at least one user is required")
    registry = registry if registry is not None else AppRegistry()
    parsed: List[Tuple[PacketArray, EventLog]] = []
    horizon = 0.0
    for packets_path, events_path in user_files:
        packets = read_packets_csv(packets_path, registry)
        events = (
            read_events_csv(events_path, registry)
            if events_path is not None
            else EventLog()
        )
        if len(packets):
            horizon = max(horizon, float(packets.timestamps[-1]))
        for event in events:
            horizon = max(horizon, event.timestamp)
        parsed.append((packets, events))
    if duration is None:
        duration = float(np.ceil(horizon / 86400.0) * 86400.0) or 86400.0
    users = [
        UserTrace(uid, 0.0, duration, packets, events)
        for uid, (packets, events) in enumerate(parsed, start=1)
    ]
    dataset = Dataset(registry, users, metadata={"source": "csv"})
    dataset.label_states()
    return dataset


def write_packets_csv(
    path: PathLike, packets: PacketArray, registry: AppRegistry
) -> None:
    """Write a packets CSV readable by :func:`read_packets_csv`."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "size", "direction", "app", "conn"])
        for rec in packets.data:
            writer.writerow(
                [
                    repr(float(rec["timestamp"])),
                    int(rec["size"]),
                    "up" if int(rec["direction"]) == int(Direction.UPLINK) else "down",
                    registry.name_of(int(rec["app"])),
                    int(rec["conn"]),
                ]
            )


def write_events_csv(
    path: PathLike, events: EventLog, registry: AppRegistry
) -> None:
    """Write an events CSV readable by :func:`read_events_csv`."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["timestamp", "kind", "app", "value"])
        for event in events.process_events:
            writer.writerow(
                [
                    repr(event.timestamp),
                    "process",
                    registry.name_of(event.app),
                    event.state.name.lower(),
                ]
            )
        for event in events.screen_events:
            writer.writerow(
                [repr(event.timestamp), "screen", "", "on" if event.on else "off"]
            )
        for event in events.input_events:
            writer.writerow(
                [repr(event.timestamp), "input", registry.name_of(event.app), ""]
            )
