"""Multi-user datasets and the app registry, with on-disk persistence.

The paper's study is 20 users over 623 days with 342 unique apps; a
:class:`Dataset` holds the per-user traces plus one shared
:class:`AppRegistry` mapping numeric app ids to package-style names and
categories (packets are labelled with app ids derived from the Android
package name, exactly as in the paper's collection pipeline).

Persistence uses one compressed ``.npz`` per dataset: packet tables and
event streams are stored as arrays, the registry and metadata as JSON
embedded in the archive. No external serialisation dependency is needed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Union

import numpy as np

from repro.errors import TraceError
from repro.trace.arrays import PacketArray, PACKET_DTYPE
from repro.trace.events import (
    EventLog,
    ProcessState,
    ProcessStateEvent,
    ScreenEvent,
    UserInputEvent,
)
from repro.trace.trace import UserTrace


@dataclass(frozen=True)
class AppInfo:
    """Static description of one app."""

    app_id: int
    name: str
    category: str

    def __str__(self) -> str:
        return self.name


class AppRegistry:
    """Bidirectional app id <-> name mapping shared across users."""

    def __init__(self, apps: Iterable[AppInfo] = ()) -> None:
        self._by_id: Dict[int, AppInfo] = {}
        self._by_name: Dict[str, AppInfo] = {}
        for app in apps:
            self.add(app)

    def add(self, app: AppInfo) -> AppInfo:
        """Register an app; id and name must both be unused."""
        if app.app_id in self._by_id:
            raise TraceError(f"duplicate app id {app.app_id}")
        if app.name in self._by_name:
            raise TraceError(f"duplicate app name {app.name!r}")
        self._by_id[app.app_id] = app
        self._by_name[app.name] = app
        return app

    def register(self, name: str, category: str = "other") -> AppInfo:
        """Register a new app under the next free id."""
        next_id = max(self._by_id, default=0) + 1
        return self.add(AppInfo(next_id, name, category))

    def by_id(self, app_id: int) -> AppInfo:
        """Look an app up by numeric id."""
        try:
            return self._by_id[app_id]
        except KeyError:
            raise TraceError(f"unknown app id {app_id}") from None

    def by_name(self, name: str) -> AppInfo:
        """Look an app up by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TraceError(f"unknown app name {name!r}") from None

    def id_of(self, name: str) -> int:
        """Numeric id of the app called ``name``."""
        return self.by_name(name).app_id

    def name_of(self, app_id: int) -> str:
        """Name of the app with id ``app_id``."""
        return self.by_id(app_id).name

    def __contains__(self, name: object) -> bool:
        if isinstance(name, int):
            return name in self._by_id
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[AppInfo]:
        return iter(sorted(self._by_id.values(), key=lambda a: a.app_id))

    def in_category(self, category: str) -> List[AppInfo]:
        """All registered apps of one category."""
        return [a for a in self if a.category == category]

    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps(
            [
                {"app_id": a.app_id, "name": a.name, "category": a.category}
                for a in self
            ]
        )

    @classmethod
    def from_json(cls, payload: str) -> "AppRegistry":
        """Deserialise from :meth:`to_json` output."""
        return cls(
            AppInfo(item["app_id"], item["name"], item["category"])
            for item in json.loads(payload)
        )


class Dataset:
    """A complete study: many user traces plus the shared app registry."""

    def __init__(
        self,
        registry: AppRegistry,
        users: Iterable[UserTrace] = (),
        metadata: Optional[dict] = None,
    ) -> None:
        self.registry = registry
        self.users: List[UserTrace] = list(users)
        self.metadata = dict(metadata or {})
        self._fingerprint: Optional[str] = None

    def __len__(self) -> int:
        return len(self.users)

    def __iter__(self) -> Iterator[UserTrace]:
        return iter(self.users)

    def user(self, user_id: int) -> UserTrace:
        """Trace of one user."""
        for trace in self.users:
            if trace.user_id == user_id:
                return trace
        raise TraceError(f"unknown user id {user_id}")

    def index_for(self, user_id: int, metrics=None):
        """One user's shared :class:`~repro.trace.index.TraceIndex`."""
        return self.user(user_id).index(metrics=metrics)

    @property
    def total_packets(self) -> int:
        """Total packet count across all users."""
        return sum(len(u.packets) for u in self.users)

    @property
    def total_bytes(self) -> int:
        """Total traffic volume across all users."""
        return sum(u.packets.total_bytes for u in self.users)

    def append_user(self, trace: UserTrace) -> UserTrace:
        """Add one user trace, invalidating the cached fingerprint.

        Mutating ``self.users`` directly would leave a previously
        computed :meth:`fingerprint` stale — and a stale fingerprint
        poisons every consumer keyed on it (the
        :class:`~repro.core.cache.AttributionCache` would happily serve
        another dataset's arrays). Use this instead of ``users.append``.
        """
        if any(t.user_id == trace.user_id for t in self.users):
            raise TraceError(f"duplicate user id {trace.user_id}")
        self.users.append(trace)
        self._fingerprint = None
        return trace

    def extend(self, traces: Iterable[UserTrace]) -> "Dataset":
        """Append many user traces via :meth:`append_user`."""
        for trace in traces:
            self.append_user(trace)
        return self

    def label_states(self) -> None:
        """Label every user's packets with process states."""
        for trace in self.users:
            trace.label_states()
        self._fingerprint = None

    def validate(self) -> None:
        """Validate every trace and cross-check app ids against registry."""
        for trace in self.users:
            trace.validate()
            for app_id in trace.app_ids():
                self.registry.by_id(app_id)

    def fingerprint(self) -> str:
        """Stable content digest of the study's packet timelines.

        Hashes every user's id, window and full packet records (all
        columns, so relabelling flows or states also changes the
        digest). Two datasets with equal fingerprints attribute
        identically under any fixed (model, policy) — this is the
        dataset component of the attribution disk-cache key.

        The digest is cached; :meth:`append_user`, :meth:`extend` and
        :meth:`label_states` invalidate it.
        """
        if self._fingerprint is not None:
            return self._fingerprint
        digest = hashlib.blake2b(digest_size=16)
        for trace in self.users:
            digest.update(np.int64(trace.user_id).tobytes())
            digest.update(np.float64([trace.start, trace.end]).tobytes())
            digest.update(np.ascontiguousarray(trace.packets.data).tobytes())
        self._fingerprint = digest.hexdigest()
        return self._fingerprint

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the dataset to a compressed ``.npz`` archive."""
        path = Path(path)
        arrays: Dict[str, np.ndarray] = {}
        header = {
            "metadata": self.metadata,
            "registry": json.loads(self.registry.to_json()),
            "users": [],
        }
        for trace in self.users:
            uid = trace.user_id
            header["users"].append(
                {"user_id": uid, "start": trace.start, "end": trace.end}
            )
            arrays[f"packets_{uid}"] = trace.packets.data
            arrays[f"proc_{uid}"] = _process_events_to_array(trace.events)
            arrays[f"screen_{uid}"] = _screen_events_to_array(trace.events)
            arrays[f"input_{uid}"] = _input_events_to_array(trace.events)
        arrays["header"] = np.frombuffer(
            json.dumps(header).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Dataset":
        """Load a dataset written by :meth:`save`."""
        with np.load(Path(path)) as archive:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
            registry = AppRegistry.from_json(json.dumps(header["registry"]))
            users = []
            for entry in header["users"]:
                uid = entry["user_id"]
                packets = PacketArray(
                    np.ascontiguousarray(archive[f"packets_{uid}"], dtype=PACKET_DTYPE)
                )
                events = _event_log_from_arrays(
                    archive[f"proc_{uid}"],
                    archive[f"screen_{uid}"],
                    archive[f"input_{uid}"],
                )
                users.append(
                    UserTrace(uid, entry["start"], entry["end"], packets, events)
                )
        return cls(registry, users, header["metadata"])

    def __repr__(self) -> str:
        return (
            f"Dataset(users={len(self.users)}, apps={len(self.registry)}, "
            f"packets={self.total_packets})"
        )


_PROC_DTYPE = np.dtype([("timestamp", "f8"), ("app", "u2"), ("state", "u1")])
_SCREEN_DTYPE = np.dtype([("timestamp", "f8"), ("on", "u1")])
_INPUT_DTYPE = np.dtype([("timestamp", "f8"), ("app", "u2")])


def _process_events_to_array(log: EventLog) -> np.ndarray:
    events = log.process_events
    out = np.empty(len(events), dtype=_PROC_DTYPE)
    for i, e in enumerate(events):
        out[i] = (e.timestamp, e.app, int(e.state))
    return out


def _screen_events_to_array(log: EventLog) -> np.ndarray:
    events = log.screen_events
    out = np.empty(len(events), dtype=_SCREEN_DTYPE)
    for i, e in enumerate(events):
        out[i] = (e.timestamp, int(e.on))
    return out


def _input_events_to_array(log: EventLog) -> np.ndarray:
    events = log.input_events
    out = np.empty(len(events), dtype=_INPUT_DTYPE)
    for i, e in enumerate(events):
        out[i] = (e.timestamp, e.app)
    return out


def _event_log_from_arrays(
    proc: np.ndarray, screen: np.ndarray, inputs: np.ndarray
) -> EventLog:
    return EventLog(
        process_events=[
            ProcessStateEvent(float(r["timestamp"]), int(r["app"]), ProcessState(int(r["state"])))
            for r in proc
        ],
        screen_events=[
            ScreenEvent(float(r["timestamp"]), bool(r["on"])) for r in screen
        ],
        input_events=[
            UserInputEvent(float(r["timestamp"]), int(r["app"])) for r in inputs
        ],
    )
