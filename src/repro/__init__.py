"""repro: reproduction of "Revisiting Network Energy Efficiency of
Mobile Apps: Performance in the Wild" (Rosen et al., ACM IMC 2015).

The library has five layers, bottom up:

* :mod:`repro.trace`    -- packet/event data model, flows, datasets;
* :mod:`repro.radio`    -- LTE/3G/WiFi power models and energy engines;
* :mod:`repro.workload` -- synthetic 20-user / 342-app study generator
  (substitute for the paper's non-redistributable 22-month traces);
* :mod:`repro.core`     -- the paper's analyses, one module per figure
  or table, plus the SS5 what-if policy simulator;
* :mod:`repro.lab`      -- the in-lab validation harness (SS4.1's
  browser experiments).

Quickstart::

    from repro import StudyConfig, generate_study, StudyEnergy
    from repro.core import background_energy_fraction

    dataset = generate_study(StudyConfig(n_users=5, duration_days=14))
    study = StudyEnergy(dataset)
    print(background_energy_fraction(study))   # the paper's 84%
"""

from repro.core.accounting import StudyEnergy
from repro.errors import TaskFailure
from repro.faults import FaultPlan, FaultSpec
from repro.metrics import RunMetrics
from repro.radio import (
    LTE_DEFAULT,
    RadioModel,
    TailPolicy,
    UMTS_DEFAULT,
    WIFI_DEFAULT,
    lte_model,
    umts_model,
    wifi_model,
)
from repro.stream import (
    CsvStreamSource,
    NpzStreamSource,
    StreamCheckpoint,
    StreamIngestor,
    StreamResult,
)
from repro.trace import Dataset, Direction, Packet, PacketArray, ProcessState
from repro.workload import StudyConfig, StudyGenerator, generate_study

__version__ = "1.0.0"

__all__ = [
    "CsvStreamSource",
    "Dataset",
    "Direction",
    "FaultPlan",
    "FaultSpec",
    "LTE_DEFAULT",
    "NpzStreamSource",
    "Packet",
    "PacketArray",
    "ProcessState",
    "RadioModel",
    "RunMetrics",
    "StreamCheckpoint",
    "StreamIngestor",
    "StreamResult",
    "StudyConfig",
    "StudyEnergy",
    "StudyGenerator",
    "TailPolicy",
    "TaskFailure",
    "UMTS_DEFAULT",
    "WIFI_DEFAULT",
    "__version__",
    "generate_study",
    "lte_model",
    "umts_model",
    "wifi_model",
]
