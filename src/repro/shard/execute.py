"""The executors: run each shard of a plan to its own checkpoint.

One shard's execution is an ordinary :class:`~repro.stream.ingest.
StreamIngestor` run over a :class:`~repro.shard.plan.ShardSource`, with
its checkpoint stamped by the shard header — so everything the
streaming stack already proves (bit-identical accounting for any chunk
size or worker count, checkpoint/resume with no recomputation, row and
user quarantine) holds per shard for free. Execution is **idempotent**:
a shard whose checkpoint is already complete is skipped, a shard with a
partial checkpoint resumes from it, and a fresh shard starts clean —
`repro shard run` after any number of kills converges to N complete
shard checkpoints.

:func:`run_all_shards` fans the shards of one box over the hardened
:class:`~repro.parallel.TaskPool` (one process per shard, the
coordinator/probe split of measure-x scaled down to one host). Worker
metrics ride back on each report and are absorbed into the parent's
:class:`~repro.metrics.RunMetrics` as slots settle, so ``stream.*``
counters and the ``shard_packets_per_s`` rate describe the whole run.
A shard that fails even after the pool's retries surfaces as a typed
:class:`~repro.errors.ShardError` naming the shards to re-run — never
a silent gap for the merger to trip on.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.errors import ShardError, StreamError, TaskFailure
from repro.metrics import RunMetrics
from repro.parallel import TaskPool, resolve_workers
from repro.shard.plan import (
    ShardManifest,
    ShardSource,
    build_source,
    shard_header,
)
from repro.stream.checkpoint import StreamCheckpoint, previous_path
from repro.stream.ingest import StreamIngestor

PathLike = Union[str, Path]


def default_shard_dir(manifest_path: PathLike) -> Path:
    """Where a plan's shard checkpoints live by default:
    ``<manifest>.shards/`` next to the manifest file."""
    manifest_path = Path(manifest_path)
    return manifest_path.with_name(manifest_path.name + ".shards")


def shard_checkpoint_path(shard_dir: PathLike, index: int) -> Path:
    """One shard's checkpoint file inside the shard directory."""
    return Path(shard_dir) / f"shard-{int(index)}.ckpt.npz"


def shard_is_complete(
    manifest: ShardManifest, shard_dir: PathLike, index: int
) -> bool:
    """Is this shard's checkpoint present, bound to the plan, and done?

    Used for idempotent skip on re-runs. Any defect — missing file,
    torn write without a usable fallback, wrong plan, users not done —
    answers ``False`` (the shard needs running), except a checkpoint
    bound to a *different* plan, which raises: running over it would
    destroy someone else's state.
    """
    path = shard_checkpoint_path(shard_dir, index)
    try:
        checkpoint = StreamCheckpoint.load(path)
    except StreamError:
        return False
    _verify_binding(checkpoint, manifest, index, path)
    return all(user.status == "done" for user in checkpoint.users)


def verify_shard_checkpoint(
    manifest: ShardManifest, index: int, path: PathLike
) -> StreamCheckpoint:
    """Load a shard checkpoint and prove it binds to ``(plan, index)``.

    The transport collect path runs this over every downloaded
    checkpoint before it may sit where the merge will look: a torn or
    truncated file fails :meth:`StreamCheckpoint.load`, and a checkpoint
    from another plan or shard fails the header check — both raise
    typed errors instead of letting wrong bytes near a merge.
    """
    path = Path(path)
    checkpoint = StreamCheckpoint.load(path)
    _verify_binding(checkpoint, manifest, index, path)
    return checkpoint


def _verify_binding(
    checkpoint: StreamCheckpoint,
    manifest: ShardManifest,
    index: int,
    path: Path,
) -> None:
    """A loadable checkpoint at a shard path must belong to (plan, k)."""
    expected = shard_header(manifest, index)
    if checkpoint.shard != expected:
        raise ShardError(
            f"checkpoint {path} belongs to a different plan or shard "
            f"(checkpoint header {checkpoint.shard!r}, expected "
            f"{expected!r}); point --shard-dir somewhere else or "
            "remove the stale file"
        )


def run_shard(
    manifest: ShardManifest,
    index: int,
    shard_dir: PathLike,
    *,
    source=None,
    workers: Optional[int] = 1,
    checkpoint_every: int = 0,
    metrics: Optional[RunMetrics] = None,
    retries: int = 0,
    task_timeout: Optional[float] = None,
    quarantine: bool = False,
    max_chunks: Optional[int] = None,
) -> Dict[str, Any]:
    """Execute one shard to its checkpoint; return a progress report.

    Resumes from an existing checkpoint for this (plan, shard) and
    skips entirely when it is already complete. ``source`` lets a
    caller that already built the parent source share it; by default
    the manifest's spec rebuilds it (the executor-in-a-worker path).
    The report is JSON-plain: shard index, user/packet tallies, a
    ``complete`` flag and the worker's metrics payload for the parent
    to absorb.
    """
    metrics = metrics if metrics is not None else RunMetrics()
    shard_dir = Path(shard_dir)
    shard_dir.mkdir(parents=True, exist_ok=True)
    path = shard_checkpoint_path(shard_dir, index)
    users = manifest.shard_users(index)
    if shard_is_complete(manifest, shard_dir, index):
        metrics.count("shard.skipped")
        return {
            "index": int(index),
            "users": len(users),
            "complete": True,
            "skipped": True,
            "checkpoint": str(path),
            "metrics": metrics.as_dict(),
        }
    if source is None:
        with metrics.stage("shard.source"):
            source = build_source(manifest.source_spec)
    shard_source = ShardSource(source, manifest, index)
    # Resume whenever any generation of this shard's checkpoint exists;
    # a crash between save()'s two renames leaves only the .prev
    # rotation, and resuming from it beats starting over.
    resume = path.exists() or previous_path(path).exists()
    ingestor = StreamIngestor(
        shard_source,
        model=manifest.model(),
        policy=manifest.policy(),
        workers=workers,
        checkpoint_path=path,
        checkpoint_every=checkpoint_every,
        metrics=metrics,
        retries=retries,
        task_timeout=task_timeout,
        quarantine=quarantine,
        cadence=manifest.cadence,
        shard_info=shard_header(manifest, index),
    )
    result = ingestor.run(resume=resume, max_chunks=max_chunks)
    metrics.count("shard.users", len(users))
    return {
        "index": int(index),
        "users": len(users),
        "complete": result is not None,
        "skipped": False,
        "checkpoint": str(path),
        "failures": (
            sorted(result.failures) if result is not None else []
        ),
        "metrics": metrics.as_dict(),
    }


class ShardExecTask:
    """Picklable one-shard executor for :class:`~repro.parallel.TaskPool`.

    The manifest rides on the task (shipped once per worker); each item
    is just a shard index. Every worker rebuilds the parent source from
    the manifest spec and runs its shard with a private
    :class:`~repro.metrics.RunMetrics`, returned in the report for the
    parent to absorb.
    """

    def __init__(
        self,
        manifest: ShardManifest,
        shard_dir: str,
        *,
        checkpoint_every: int = 0,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        quarantine: bool = False,
    ) -> None:
        self.manifest = manifest
        self.shard_dir = str(shard_dir)
        self.checkpoint_every = checkpoint_every
        self.retries = retries
        self.task_timeout = task_timeout
        self.quarantine = quarantine

    def __call__(self, index: int) -> Dict[str, Any]:
        return run_shard(
            self.manifest,
            index,
            self.shard_dir,
            workers=1,
            checkpoint_every=self.checkpoint_every,
            retries=self.retries,
            task_timeout=self.task_timeout,
            quarantine=self.quarantine,
        )


def run_all_shards(
    manifest: ShardManifest,
    shard_dir: PathLike,
    *,
    indices: Optional[List[int]] = None,
    shard_workers: Optional[int] = None,
    checkpoint_every: int = 0,
    metrics: Optional[RunMetrics] = None,
    retries: int = 0,
    task_timeout: Optional[float] = None,
    quarantine: bool = False,
    on_report=None,
) -> List[Dict[str, Any]]:
    """Execute every shard (or ``indices``) of the plan on this box.

    Shards fan out over one :class:`~repro.parallel.TaskPool` process
    each (``shard_workers`` caps how many run at once; default one per
    CPU). Each worker's metrics payload is absorbed into ``metrics`` as
    its slot settles. Raises :class:`~repro.errors.ShardError` naming
    the failed shards when any shard neither completed nor checkpointed
    cleanly — rerunning the same command resumes exactly those.
    """
    metrics = metrics if metrics is not None else RunMetrics()
    shard_dir = Path(shard_dir)
    if indices is None:
        indices = list(range(manifest.n_shards))
    for index in indices:
        manifest.shard_users(index)  # range-check before any work
    task = ShardExecTask(
        manifest,
        str(shard_dir),
        checkpoint_every=checkpoint_every,
        retries=retries,
        task_timeout=task_timeout,
        quarantine=quarantine,
    )
    workers = resolve_workers(shard_workers)
    workers = min(workers, max(len(indices), 1))

    def _settle(slot: int, result) -> None:
        if isinstance(result, TaskFailure):
            metrics.count("shard.failed")
        else:
            metrics.absorb(result.get("metrics", {}))
            metrics.count("shard.completed")
        if on_report is not None:
            on_report(indices[slot], result)

    with metrics.stage("shard.execute"):
        with TaskPool(
            task,
            workers,
            retries=retries,
            task_timeout=None,
            quarantine=True,
            metrics=metrics,
        ) as pool:
            results = pool.map(indices, on_result=_settle)
    failed = {
        indices[slot]: result
        for slot, result in enumerate(results)
        if isinstance(result, TaskFailure)
    }
    if failed:
        detail = "; ".join(
            f"shard {idx}: {failure.kind} ({failure.cause})"
            for idx, failure in sorted(failed.items())
        )
        raise ShardError(
            f"{len(failed)} shard(s) failed — {detail}. Completed "
            "shards kept their checkpoints; rerun `repro shard run` "
            "to resume only the failed ones."
        )
    return results
