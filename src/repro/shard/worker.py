"""``repro shard worker``: one host's shard executor over HTTP.

A dependency-free :mod:`http.server` process (the
:mod:`repro.store.server` stack: ``ThreadingHTTPServer``, fixed-length
bodies, ``Connection: close``, strong ETags) that turns a box into a
member of an :class:`~repro.shard.transport.HttpTransport` pool. The
worker holds no plan state between requests — every POST carries the
full manifest document, verified by digest before a byte of work —
so workers are interchangeable and a coordinator can retry any shard
on any of them.

Routes (:data:`WORKER_ROUTES`):

=====================================  ================================
``GET /``                              worker status JSON (workdir,
                                       shards run, format version)
``POST /shards/{k}``                   body = the manifest document;
                                       verify, run shard ``k``, answer
                                       the report + checkpoint checksum
``GET /checkpoints/{digest}/{k}``      the finished checkpoint bytes;
                                       strong ETag = quoted content
                                       checksum
=====================================  ================================

A POSTed manifest that is torn, tampered or from a foreign format is a
``400`` with the :class:`~repro.errors.ShardError` text as the body —
the worker never executes a plan it cannot verify. Concurrent POSTs
for the same ``(plan, shard)`` are **single-flight**: one request wins
an ``O_CREAT | O_EXCL`` lock file and runs, the rest park until the
winner finishes (then skip, because :func:`~repro.shard.execute.
run_shard` is idempotent) or break the lock after
:data:`~repro.store.index.LOCK_TIMEOUT_S` when the winner crashed
mid-shard.

Checkpoints land under ``<workdir>/<manifest-digest>/`` — plans never
collide, and a re-POST after a coordinator retry resumes or skips via
the ordinary shard checkpoint rules. The ``transport.worker`` fault
site fires before each shard runs, so chaos plans can crash or hang a
worker mid-shard deterministically (the coordinator must then reassign
and still merge exactly).
"""

from __future__ import annotations

import json
import os
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple, Union
from urllib.parse import urlsplit

from repro import faults
from repro.errors import ShardError, StreamError
from repro.metrics import RunMetrics
from repro.shard.execute import run_shard, shard_checkpoint_path
from repro.shard.plan import ShardManifest
from repro.store.blobs import checksum_file, content_checksum
from repro.store.index import LOCK_TIMEOUT_S, POLL_INTERVAL_S
from repro.store.server import HttpResponder, etag_matches

PathLike = Union[str, Path]

#: The worker's route templates (docs/SCALING.md documents these).
WORKER_ROUTES = (
    "/",
    "/shards/{k}",
    "/checkpoints/{digest}/{k}",
)


class ShardWorkerServer(ThreadingHTTPServer):
    """One worker process: a workdir plus the HTTP surface over it."""

    # Join in-flight shard runs on close, same as the store server: a
    # bounded run must finish writing its last response before exit.
    daemon_threads = False

    def __init__(
        self,
        address: Tuple[str, int],
        workdir: PathLike,
        metrics: Optional[RunMetrics] = None,
        quiet: bool = False,
        checkpoint_every: int = 0,
    ) -> None:
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.metrics = metrics if metrics is not None else RunMetrics()
        self.quiet = quiet
        self.checkpoint_every = checkpoint_every
        super().__init__(address, _WorkerHandler)

    def shard_dir(self, digest: str) -> Path:
        """Where one plan's checkpoints live in this workdir."""
        return self.workdir / digest


class _WorkerHandler(HttpResponder, BaseHTTPRequestHandler):
    server_version = "repro-shard-worker"
    protocol_version = "HTTP/1.1"
    not_found_counter = "worker.not_found"

    # ------------------------------------------------------------------
    # GET: status and checkpoint download
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        metrics = self.server.metrics
        metrics.count("worker.requests")
        path = urlsplit(self.path).path
        parts = [p for p in path.split("/") if p]
        if path == "/":
            body = (
                json.dumps(
                    {
                        "kind": "repro-shard-worker",
                        "workdir": str(self.server.workdir),
                        "shards_run": metrics.counter("worker.shards_run"),
                    },
                    indent=2,
                )
                + "\n"
            ).encode("utf-8")
            self._send(200, body, "application/json")
            return
        if len(parts) == 3 and parts[0] == "checkpoints":
            self._serve_checkpoint(parts[1], parts[2])
            return
        self._send_not_found(
            f"no route for {path!r} (GET /, GET /checkpoints/{{digest}}/{{k}}, "
            "POST /shards/{k})"
        )

    def _serve_checkpoint(self, digest: str, index: str) -> None:
        try:
            k = int(index)
        except ValueError:
            self._send_not_found(f"shard index {index!r} is not an integer")
            return
        path = shard_checkpoint_path(self.server.shard_dir(digest), k)
        try:
            data = path.read_bytes()
        except OSError:
            self._send_not_found(
                f"no checkpoint for shard {k} of plan {digest} on this "
                "worker (not yet run, or run elsewhere)"
            )
            return
        # The ETag is the content checksum of the exact bytes served —
        # the coordinator recomputes it over what arrived, so corruption
        # in flight can never land in a shard dir.
        etag = f'"{content_checksum(data)}"'
        if etag_matches(self.headers.get("If-None-Match"), etag):
            self._send_not_modified(etag)
            return
        self.server.metrics.count("worker.bytes_served", len(data))
        self._send(200, data, "application/octet-stream", etag=etag)

    # ------------------------------------------------------------------
    # POST: run one shard
    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802
        metrics = self.server.metrics
        metrics.count("worker.requests")
        path = urlsplit(self.path).path
        parts = [p for p in path.split("/") if p]
        if len(parts) != 2 or parts[0] != "shards":
            self._send_not_found(
                f"no POST route for {path!r} (POST /shards/{{k}})"
            )
            return
        try:
            index = int(parts[1])
        except ValueError:
            self._send_bad_request(
                f"shard index {parts[1]!r} is not an integer"
            )
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            document = json.loads(self.rfile.read(length))
        except (ValueError, UnicodeDecodeError) as exc:
            self._send_bad_request(f"unreadable manifest body: {exc!r}")
            return
        try:
            manifest = ShardManifest.from_document(
                document, origin="uploaded by coordinator"
            )
            manifest.shard_users(index)  # range-check before any work
        except ShardError as exc:
            metrics.count("worker.refused")
            self._send_bad_request(str(exc))
            return
        try:
            report = self._run_single_flight(manifest, index)
        except StreamError as exc:
            # The shard could not run to a clean checkpoint here (bad
            # source path on this host, a poisoned local file, ...).
            # 500 tells the coordinator to retry — possibly elsewhere.
            self._send(
                500,
                (str(exc) + "\n").encode("utf-8"),
                "text/plain; charset=utf-8",
            )
            return
        ckpt = Path(report["checkpoint"])
        payload = {
            "report": report,
            "checkpoint": {
                "checksum": checksum_file(ckpt),
                "bytes": ckpt.stat().st_size,
            },
        }
        metrics.count("worker.shards_run")
        body = (json.dumps(payload) + "\n").encode("utf-8")
        self._send(200, body, "application/json")

    def _run_single_flight(self, manifest: ShardManifest, index: int) -> dict:
        """Run one shard with at most one executor per (plan, shard).

        The same ``O_CREAT | O_EXCL`` election as the result store's
        single-flight render: losers park on the winner's lock, then
        rerun — which skips instantly when the winner completed,
        resumes its partial checkpoint when it crashed. A lock older
        than :data:`LOCK_TIMEOUT_S` is abandoned (its owner died
        mid-shard) and is broken by the next waiter.
        """
        shard_dir = self.server.shard_dir(manifest.digest())
        shard_dir.mkdir(parents=True, exist_ok=True)
        lock = shard_dir / f"shard-{index}.lock"
        while True:
            try:
                fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._wait_for_lock(lock)
                continue
            os.close(fd)
            try:
                # The chaos hook: an armed crash/hang here is a worker
                # dying mid-shard, lock held — exactly what coordinator
                # reassignment and stale-lock takeover must absorb.
                faults.fire("transport.worker")
                with self.server.metrics.stage("worker.shard"):
                    return run_shard(
                        manifest,
                        index,
                        shard_dir,
                        workers=1,
                        checkpoint_every=self.server.checkpoint_every,
                    )
            finally:
                try:
                    os.unlink(lock)
                except OSError:
                    pass

    def _wait_for_lock(self, lock: Path) -> None:
        """Park until the lock owner finishes or abandons it."""
        self.server.metrics.count("worker.single_flight_waits")
        while True:
            try:
                age = time.time() - lock.stat().st_mtime
            except OSError:
                return  # released: rerun (and likely skip-complete)
            if age > LOCK_TIMEOUT_S:
                try:
                    lock.unlink()
                except OSError:
                    pass
                return
            time.sleep(POLL_INTERVAL_S)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_bad_request(self, reason: str) -> None:
        self._send(
            400, (reason + "\n").encode("utf-8"), "text/plain; charset=utf-8"
        )

    def do_HEAD(self) -> None:  # noqa: N802
        self.send_response(405)
        self.send_header("Allow", "GET, POST")
        self.send_header("Content-Length", "0")
        self.end_headers()

    do_PUT = do_DELETE = do_HEAD

    def log_message(self, format: str, *args) -> None:
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)


def make_worker_server(
    workdir: PathLike,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics: Optional[RunMetrics] = None,
    quiet: bool = False,
    checkpoint_every: int = 0,
) -> ShardWorkerServer:
    """Bind a :class:`ShardWorkerServer` (``port=0`` picks a free port).

    The caller drives it — ``serve_forever()``, or ``handle_request()``
    N times for bounded runs; ``server_address`` reveals the bound
    port. The CLI wrapper (``repro shard worker``) prints a parseable
    ``listening on http://host:port`` banner for smoke scripts that
    start workers on ephemeral ports.
    """
    return ShardWorkerServer(
        (host, port),
        workdir,
        metrics=metrics,
        quiet=quiet,
        checkpoint_every=checkpoint_every,
    )
