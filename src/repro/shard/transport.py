"""The transport seam: *where* a plan's shards execute.

PR 7 split sharded ingestion into plan → execute → merge with the
manifest file and the shard-checkpoint directory as the only shared
state. This module abstracts the remaining coupling — the execute
phase's assumption that every shard runs on this box — behind one
runtime-checkable protocol:

* :class:`ShardTransport` — ``dispatch(manifest, shard_dir, ...)``
  runs shards *somewhere* and lands their checkpoints in ``shard_dir``
  where :func:`~repro.shard.merge.merge_shard_checkpoints` will look.
* :class:`LocalTransport` — today's path, verbatim: one
  :class:`~repro.parallel.TaskPool` process per shard via
  :func:`~repro.shard.execute.run_all_shards`. Bit-identical to
  calling ``run_all_shards`` directly, because it *is* that call.
* :class:`HttpTransport` — the multi-host path: a
  :class:`~repro.shard.coordinator.ShardCoordinator` POSTs the
  manifest to a pool of ``repro shard worker`` processes, downloads
  each finished checkpoint, verifies it (content checksum against the
  worker's strong ETag, then shard-header binding) and lands it in
  ``shard_dir``.

The merge is transport-oblivious by construction: whichever transport
ran the shards, the same verified checkpoints sit in the same
directory, so the merged checkpoint — and its
:class:`~repro.core.readout.ReadoutProvenance`, store key and ETag —
equals the unsharded run's.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    Any,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.metrics import RunMetrics
from repro.shard.coordinator import ShardCoordinator
from repro.shard.execute import run_all_shards
from repro.shard.plan import ShardManifest

PathLike = Union[str, Path]

#: The transport vocabulary the CLI accepts (``--transport``).
TRANSPORT_NAMES = ("local", "http")


@runtime_checkable
class ShardTransport(Protocol):
    """Anything that can execute a plan's shards into a shard dir.

    ``dispatch`` must be **idempotent** (complete shards are skipped,
    partial ones resumed), must land every checkpoint at
    :func:`~repro.shard.execute.shard_checkpoint_path` under
    ``shard_dir``, and must raise a typed error
    (:class:`~repro.errors.ShardError` or its
    :class:`~repro.errors.TransportError` subclass) when any shard
    could not be placed — never return with a silent gap for the
    merge to trip on.
    """

    #: Short transport name (``"local"``, ``"http"``) for CLI/metrics.
    name: str

    def dispatch(
        self,
        manifest: ShardManifest,
        shard_dir: PathLike,
        *,
        indices: Optional[Sequence[int]] = None,
        metrics: Optional[RunMetrics] = None,
        on_report=None,
    ) -> List[Dict[str, Any]]:
        """Run shards (all, or ``indices``); return per-shard reports."""
        ...


class LocalTransport:
    """The in-process transport: shards fan out over a local pool.

    A construction-time capture of :func:`~repro.shard.execute.
    run_all_shards`'s keyword surface; ``dispatch`` delegates verbatim,
    so outputs — checkpoints, reports, metrics, error behaviour — are
    bit-identical to the pre-transport code path.
    """

    name = "local"

    def __init__(
        self,
        *,
        shard_workers: Optional[int] = None,
        checkpoint_every: int = 0,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        quarantine: bool = False,
    ) -> None:
        self.shard_workers = shard_workers
        self.checkpoint_every = checkpoint_every
        self.retries = retries
        self.task_timeout = task_timeout
        self.quarantine = quarantine

    def dispatch(
        self,
        manifest: ShardManifest,
        shard_dir: PathLike,
        *,
        indices: Optional[Sequence[int]] = None,
        metrics: Optional[RunMetrics] = None,
        on_report=None,
    ) -> List[Dict[str, Any]]:
        return run_all_shards(
            manifest,
            shard_dir,
            indices=list(indices) if indices is not None else None,
            shard_workers=self.shard_workers,
            checkpoint_every=self.checkpoint_every,
            metrics=metrics,
            retries=self.retries,
            task_timeout=self.task_timeout,
            quarantine=self.quarantine,
            on_report=on_report,
        )


class HttpTransport:
    """The remote transport: shards run on ``repro shard worker`` pools.

    ``worker_urls`` is the worker pool (``["http://host:port", ...]``).
    Each ``dispatch`` builds a fresh
    :class:`~repro.shard.coordinator.ShardCoordinator` over the pool:
    one coordinator thread per worker pulls shard indices off a shared
    queue, POSTs the manifest, downloads + verifies the finished
    checkpoint and lands it in ``shard_dir``. Failures follow the
    :class:`~repro.parallel.RetryScheduler` policy (bounded retries
    with backoff); a worker that stops answering is marked dead and its
    shards are reassigned to the survivors. When shards remain
    unplaced after all that, dispatch raises
    :class:`~repro.errors.TransportError` (CLI exit 8) — the merge
    never sees a partial set.
    """

    name = "http"

    def __init__(
        self,
        worker_urls: Sequence[str],
        *,
        retries: int = 2,
        backoff: float = 0.05,
        timeout: Optional[float] = 30.0,
        dead_after: int = 2,
        checkpoint_every: int = 0,
        manifest_path: Optional[PathLike] = None,
    ) -> None:
        urls = [str(u).rstrip("/") for u in worker_urls if str(u).strip()]
        if not urls:
            raise ValueError("HttpTransport needs at least one worker URL")
        self.worker_urls = urls
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.dead_after = dead_after
        self.checkpoint_every = checkpoint_every
        self.manifest_path = manifest_path

    def dispatch(
        self,
        manifest: ShardManifest,
        shard_dir: PathLike,
        *,
        indices: Optional[Sequence[int]] = None,
        metrics: Optional[RunMetrics] = None,
        on_report=None,
    ) -> List[Dict[str, Any]]:
        coordinator = ShardCoordinator(
            manifest,
            shard_dir,
            self.worker_urls,
            retries=self.retries,
            backoff=self.backoff,
            timeout=self.timeout,
            dead_after=self.dead_after,
            checkpoint_every=self.checkpoint_every,
            manifest_path=self.manifest_path,
        )
        return coordinator.run(
            indices=indices, metrics=metrics, on_report=on_report
        )


def parse_worker_spec(value: Union[str, int, None]) -> Union[int, List[str]]:
    """Interpret the CLI's polymorphic ``--workers`` value.

    A value containing ``://`` is a comma-separated worker-URL list
    (the ``--transport http`` pool); anything else is the familiar
    integer process count. Raises ``ValueError`` on a malformed count,
    exactly like ``int()`` — argparse turns that into a usage error.
    """
    if value is None:
        return 1
    if isinstance(value, int):
        return value
    text = str(value).strip()
    if "://" in text:
        return [u.strip().rstrip("/") for u in text.split(",") if u.strip()]
    return int(text)


def make_transport(
    name: str,
    *,
    workers: Union[int, List[str], None] = None,
    checkpoint_every: int = 0,
    retries: int = 0,
    task_timeout: Optional[float] = None,
    quarantine: bool = False,
    timeout: Optional[float] = 30.0,
    manifest_path: Optional[PathLike] = None,
) -> ShardTransport:
    """Build the named transport from CLI-shaped options.

    ``workers`` is :func:`parse_worker_spec` output: a process count
    for ``local``, the URL pool for ``http``. Mismatches (URLs handed
    to ``local``, a bare count to ``http``) raise ``ValueError`` with
    the fix spelled out. The http transport floors ``retries`` at 2:
    reassignment after a worker death *is* a retry, so a zero budget
    would turn every transient network blip into exit 8.
    """
    if name == "local":
        if isinstance(workers, list):
            raise ValueError(
                "worker URLs require --transport http; --transport local "
                "takes a process count"
            )
        return LocalTransport(
            shard_workers=workers,
            checkpoint_every=checkpoint_every,
            retries=retries,
            task_timeout=task_timeout,
            quarantine=quarantine,
        )
    if name == "http":
        if not isinstance(workers, list):
            raise ValueError(
                "--transport http needs --workers URL[,URL...] naming the "
                "`repro shard worker` pool"
            )
        return HttpTransport(
            workers,
            retries=max(retries, 2),
            timeout=timeout,
            checkpoint_every=checkpoint_every,
            manifest_path=manifest_path,
        )
    raise ValueError(
        f"unknown transport {name!r} (expected one of {TRANSPORT_NAMES})"
    )
