"""The merger: fold per-shard checkpoints into one study checkpoint.

Per-user totals are computed independently (each user's packets only
ever meet their own accumulator), so sharding by user changes *which
process* computes a user, never *what* is computed. The only study-wide
float fold — :func:`~repro.core.readout.merge_keyed_totals` over users
— happens at **readout** time, in user order. The merge therefore only
has to reassemble the users in the canonical parent-source order the
manifest recorded; every figure rendered from the merged checkpoint is
then ``array_equal`` to the unsharded run's, not merely close.

The merged checkpoint drops the shard header and takes the **parent
source's signature** — exactly what an unsharded ``repro ingest`` over
the same data writes. Its readout's
:class:`~repro.core.readout.ReadoutProvenance` is therefore identical,
so the derived :class:`~repro.store.keys.StoreKey` and ETag are
identical: `repro serve` and the result store cannot tell a sharded
ingest happened.

Refusals are typed and total: any shard missing, mid-run, torn beyond
its ``.prev`` fallback, bound to a different plan, or disagreeing on
registry/model/policy raises :class:`~repro.errors.ShardIncomplete` /
:class:`~repro.errors.ShardError` — a partial or mixed merge is never
produced.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.readout import TotalsReadout, readout_from_loaded_checkpoint
from repro.errors import ShardError, ShardIncomplete, StreamError
from repro.metrics import RunMetrics
from repro.shard.execute import shard_checkpoint_path
from repro.shard.plan import ShardManifest, shard_header, shard_signature
from repro.stream.checkpoint import StreamCheckpoint, UserCheckpoint

PathLike = Union[str, Path]


def merge_shard_checkpoints(
    manifest: ShardManifest,
    shard_dir: PathLike,
    *,
    manifest_path: PathLike = "<manifest>",
    metrics: Optional[RunMetrics] = None,
) -> StreamCheckpoint:
    """Fold every shard's checkpoint into one whole-study checkpoint.

    Verifies, per shard: the checkpoint loads (``.prev`` fallback
    allowed only when the fallback generation is itself complete), its
    shard header and signature bind it to exactly this (plan, shard),
    model/policy/cadence match the manifest, and every user is done.
    Across shards: the app registries are identical and the union of
    users is the manifest's exact partition. The result carries the
    parent signature, users in canonical parent order, and no shard
    header — indistinguishable from an unsharded ingest's checkpoint.
    """
    metrics = metrics if metrics is not None else RunMetrics()
    shard_dir = Path(shard_dir)
    with metrics.stage("shard.merge"):
        checkpoints: List[StreamCheckpoint] = []
        incomplete: Dict[int, str] = {}
        for index in range(manifest.n_shards):
            path = shard_checkpoint_path(shard_dir, index)
            try:
                checkpoint = StreamCheckpoint.load(path)
            except StreamError as exc:
                incomplete[index] = f"{exc}"
                continue
            if checkpoint.loaded_from_fallback:
                metrics.count("faults.checkpoint_fallback")
            expected_header = shard_header(manifest, index)
            if checkpoint.shard != expected_header:
                raise ShardError(
                    f"checkpoint {path} belongs to a different plan or "
                    f"shard (checkpoint header {checkpoint.shard!r}, "
                    f"expected {expected_header!r})"
                )
            if checkpoint.signature != shard_signature(manifest, index):
                raise ShardError(
                    f"checkpoint {path} was written against a different "
                    "source than the manifest describes"
                )
            if checkpoint.model_repr != manifest.model_repr:
                raise ShardError(
                    f"checkpoint {path} used a different radio model "
                    "than the plan"
                )
            if checkpoint.policy_value != manifest.policy_value:
                raise ShardError(
                    f"checkpoint {path} used tail policy "
                    f"{checkpoint.policy_value!r}, plan pinned "
                    f"{manifest.policy_value!r}"
                )
            not_done = [
                u.user_id for u in checkpoint.users if u.status != "done"
            ]
            if not_done:
                incomplete[index] = (
                    f"{len(not_done)} of {len(checkpoint.users)} users "
                    "not done"
                )
                continue
            # Cadence agreement: an empty shard vacuously reports
            # has_cadence=True, so only non-empty shards can disagree.
            if checkpoint.users and (
                checkpoint.has_cadence != manifest.cadence
            ):
                raise ShardError(
                    f"checkpoint {path} tracked cadence="
                    f"{checkpoint.has_cadence}, plan pinned "
                    f"{manifest.cadence}"
                )
            checkpoints.append(checkpoint)
        if incomplete:
            raise ShardIncomplete(
                str(manifest_path),
                sorted(incomplete),
                "; ".join(
                    f"shard {idx}: {reason}"
                    for idx, reason in sorted(incomplete.items())
                ),
            )
        registries = {
            checkpoint.registry_json
            for checkpoint in checkpoints
            if checkpoint.users
        }
        if len(registries) > 1:
            raise ShardError(
                "shard checkpoints disagree on the app registry; they "
                "cannot come from the same plan execution — re-run the "
                "shards"
            )
        by_id: Dict[int, UserCheckpoint] = {}
        for checkpoint in checkpoints:
            for user in checkpoint.users:
                if user.user_id in by_id:
                    raise ShardError(
                        f"user {user.user_id} appears in more than one "
                        "shard checkpoint"
                    )
                by_id[user.user_id] = user
        if set(by_id) != set(manifest.users):
            missing = sorted(set(manifest.users) - set(by_id))
            extra = sorted(set(by_id) - set(manifest.users))
            raise ShardError(
                "merged users do not match the plan "
                f"(missing {missing}, extra {extra})"
            )
        # The one step that restores bit-identity: users back in
        # canonical parent-source order, the readout's fold order.
        users = [by_id[uid] for uid in manifest.users]
        non_empty = [c for c in checkpoints if c.users]
        merged = StreamCheckpoint(
            manifest.signature,
            manifest.model(),
            manifest.policy(),
            users,
            chunks_done=sum(c.chunks_done for c in checkpoints),
            registry_json=(
                non_empty[0].registry_json if non_empty else None
            ),
            has_cadence=manifest.cadence,
            shard=None,
        )
        if non_empty:
            merged.cadence_flow_gap = non_empty[0].cadence_flow_gap
            merged.cadence_burst_gap = non_empty[0].cadence_burst_gap
        metrics.count("shard.merged", len(checkpoints))
    return merged


def merge_to_checkpoint(
    manifest: ShardManifest,
    shard_dir: PathLike,
    out_path: PathLike,
    *,
    manifest_path: PathLike = "<manifest>",
    metrics: Optional[RunMetrics] = None,
) -> Path:
    """Merge and persist the whole-study checkpoint at ``out_path``.

    The written file is a regular format-2 checkpoint: ``repro figure
    --from-checkpoint``, ``repro serve`` and
    :func:`~repro.core.readout.readout_from_checkpoint` consume it with
    no shard awareness.
    """
    merged = merge_shard_checkpoints(
        manifest,
        shard_dir,
        manifest_path=manifest_path,
        metrics=metrics,
    )
    return merged.save(Path(out_path))


def merged_readout(
    manifest: ShardManifest,
    shard_dir: PathLike,
    *,
    manifest_path: PathLike = "<manifest>",
    metrics: Optional[RunMetrics] = None,
) -> TotalsReadout:
    """Merge in memory and return the study readout directly.

    The readout's provenance triple ``(fingerprint=parent signature,
    model, policy)`` matches an unsharded ingest's, so its
    :class:`~repro.store.keys.StoreKey` is the unsharded key.
    """
    merged = merge_shard_checkpoints(
        manifest,
        shard_dir,
        manifest_path=manifest_path,
        metrics=metrics,
    )
    return readout_from_loaded_checkpoint(merged)
