"""Shard-parallel ingestion: plan → execute → merge.

The streaming stack ingests one study as one sequential run; this
package partitions the study **by user** across independent executors
and folds their checkpoints back into one readout, bit-identical to
the unsharded run. Three layers, each usable on its own:

* **plan** (:class:`ShardManifest`): a deterministic, persisted
  partition of the study's users (stable hash → shard), pinned to the
  source signature, radio model and tail policy.
* **execute** (:func:`run_shard` / :func:`run_all_shards`): each shard
  is an ordinary :class:`~repro.stream.ingest.StreamIngestor` run over
  a :class:`ShardSource`, with its own checkpoint/resume, quarantine
  and metrics; idempotent re-runs skip complete shards and resume
  partial ones.
* **merge** (:func:`merge_shard_checkpoints` / :func:`merged_readout`):
  reassembles the per-shard checkpoints into one whole-study
  checkpoint in canonical user order — ``array_equal`` totals, and the
  same :class:`~repro.store.keys.StoreKey`/ETag as an unsharded
  ingest, so `repro serve` and the result store are shard-oblivious.
* **transport** (:class:`ShardTransport`): *where* the execute phase
  runs. :class:`LocalTransport` is the in-process pool above,
  verbatim; :class:`HttpTransport` + :class:`ShardCoordinator` drive a
  pool of ``repro shard worker`` HTTP processes
  (:class:`ShardWorkerServer`) with checksummed checkpoint collection,
  retry/reassignment on worker death, and
  :class:`~repro.errors.TransportError` (exit 8) when shards cannot be
  placed — the merge layer cannot tell the transports apart.

Typical use (the CLI surface is ``repro shard plan|run|merge`` and
``repro ingest --shards N``)::

    from repro.shard import ShardManifest, run_all_shards, merge_to_checkpoint
    from repro.stream import NpzStreamSource

    source = NpzStreamSource("study.npz")
    manifest = ShardManifest.plan(source, n_shards=8)
    manifest.save("plan.json")
    run_all_shards(manifest, "plan.json.shards")
    merge_to_checkpoint(manifest, "plan.json.shards", "study.ckpt.npz")

Why the merge is exact: each user's totals are computed independently,
and the only study-wide float fold
(:func:`~repro.core.readout.merge_keyed_totals`) happens at readout
time in user order — which the merge restores from the manifest.
"""

from repro.shard.coordinator import ShardCoordinator
from repro.shard.execute import (
    ShardExecTask,
    default_shard_dir,
    run_all_shards,
    run_shard,
    shard_checkpoint_path,
    shard_is_complete,
    verify_shard_checkpoint,
)
from repro.shard.merge import (
    merge_shard_checkpoints,
    merge_to_checkpoint,
    merged_readout,
)
from repro.shard.plan import (
    MANIFEST_FORMAT,
    ShardManifest,
    ShardSource,
    build_source,
    plan_shards,
    shard_header,
    shard_of,
    shard_signature,
    source_spec,
)
from repro.shard.transport import (
    TRANSPORT_NAMES,
    HttpTransport,
    LocalTransport,
    ShardTransport,
    make_transport,
    parse_worker_spec,
)
from repro.shard.worker import (
    WORKER_ROUTES,
    ShardWorkerServer,
    make_worker_server,
)

__all__ = [
    "MANIFEST_FORMAT",
    "TRANSPORT_NAMES",
    "WORKER_ROUTES",
    "HttpTransport",
    "LocalTransport",
    "ShardCoordinator",
    "ShardExecTask",
    "ShardManifest",
    "ShardSource",
    "ShardTransport",
    "ShardWorkerServer",
    "build_source",
    "default_shard_dir",
    "make_transport",
    "make_worker_server",
    "merge_shard_checkpoints",
    "merge_to_checkpoint",
    "merged_readout",
    "parse_worker_spec",
    "plan_shards",
    "run_all_shards",
    "run_shard",
    "shard_checkpoint_path",
    "shard_header",
    "shard_is_complete",
    "shard_of",
    "shard_signature",
    "source_spec",
    "verify_shard_checkpoint",
]
