"""Shard-parallel ingestion: plan → execute → merge.

The streaming stack ingests one study as one sequential run; this
package partitions the study **by user** across independent executors
and folds their checkpoints back into one readout, bit-identical to
the unsharded run. Three layers, each usable on its own:

* **plan** (:class:`ShardManifest`): a deterministic, persisted
  partition of the study's users (stable hash → shard), pinned to the
  source signature, radio model and tail policy.
* **execute** (:func:`run_shard` / :func:`run_all_shards`): each shard
  is an ordinary :class:`~repro.stream.ingest.StreamIngestor` run over
  a :class:`ShardSource`, with its own checkpoint/resume, quarantine
  and metrics; idempotent re-runs skip complete shards and resume
  partial ones.
* **merge** (:func:`merge_shard_checkpoints` / :func:`merged_readout`):
  reassembles the per-shard checkpoints into one whole-study
  checkpoint in canonical user order — ``array_equal`` totals, and the
  same :class:`~repro.store.keys.StoreKey`/ETag as an unsharded
  ingest, so `repro serve` and the result store are shard-oblivious.

Typical use (the CLI surface is ``repro shard plan|run|merge`` and
``repro ingest --shards N``)::

    from repro.shard import ShardManifest, run_all_shards, merge_to_checkpoint
    from repro.stream import NpzStreamSource

    source = NpzStreamSource("study.npz")
    manifest = ShardManifest.plan(source, n_shards=8)
    manifest.save("plan.json")
    run_all_shards(manifest, "plan.json.shards")
    merge_to_checkpoint(manifest, "plan.json.shards", "study.ckpt.npz")

Why the merge is exact: each user's totals are computed independently,
and the only study-wide float fold
(:func:`~repro.core.readout.merge_keyed_totals`) happens at readout
time in user order — which the merge restores from the manifest.
"""

from repro.shard.execute import (
    ShardExecTask,
    default_shard_dir,
    run_all_shards,
    run_shard,
    shard_checkpoint_path,
    shard_is_complete,
)
from repro.shard.merge import (
    merge_shard_checkpoints,
    merge_to_checkpoint,
    merged_readout,
)
from repro.shard.plan import (
    MANIFEST_FORMAT,
    ShardManifest,
    ShardSource,
    build_source,
    plan_shards,
    shard_header,
    shard_of,
    shard_signature,
    source_spec,
)

__all__ = [
    "MANIFEST_FORMAT",
    "ShardExecTask",
    "ShardManifest",
    "ShardSource",
    "build_source",
    "default_shard_dir",
    "merge_shard_checkpoints",
    "merge_to_checkpoint",
    "merged_readout",
    "plan_shards",
    "run_all_shards",
    "run_shard",
    "shard_checkpoint_path",
    "shard_header",
    "shard_is_complete",
    "shard_of",
    "shard_signature",
    "source_spec",
]
