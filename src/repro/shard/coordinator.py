"""The coordinator: assign shards to an HTTP worker pool and collect
verified checkpoints back.

One :class:`ShardCoordinator` drives one dispatch: a thread per worker
URL pulls shard indices off a shared queue, POSTs the manifest document
to ``POST /shards/{k}``, downloads the finished checkpoint from
``GET /checkpoints/{digest}/{k}`` and lands it — verified — at
:func:`~repro.shard.execute.shard_checkpoint_path` under the local
shard dir, where :func:`~repro.shard.merge.merge_shard_checkpoints`
expects it. The main thread owns the failure policy: the same
:class:`~repro.parallel.RetryScheduler` the local pool uses (bounded
retries, exponential backoff, quarantine), so a failed attempt is
re-queued for *any* worker — reassignment and retry are one mechanism.

Verification is belt and braces, and none of it trusts the network:

* the downloaded bytes must hash to the checksum the worker advertised
  (its strong ETag **and** the POST response's ``checksum`` field) —
  a mismatch (the ``transport.collect`` chaos site) never touches the
  shard dir;
* the landed file must load as a checkpoint and carry the exact
  :func:`~repro.shard.plan.shard_header` of ``(plan, k)`` — a foreign
  or stale checkpoint is deleted on the spot.

A worker whose connection fails ``dead_after`` times in a row is
marked dead; its in-flight shard re-queues to the survivors
(``transport.reassignments``). When every worker is dead — or a shard
exhausts its budget — the dispatch raises
:class:`~repro.errors.TransportError` naming the unplaced shards (CLI
exit 8). The merge is never attempted over a partial set, so chaos
here costs wall time, never correctness.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import urllib.error
import urllib.request
from http.client import HTTPException
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro import faults
from repro.errors import ShardError, TaskFailure, TransportError
from repro.metrics import RunMetrics
from repro.parallel import RetryScheduler
from repro.shard.execute import (
    shard_checkpoint_path,
    shard_is_complete,
    verify_shard_checkpoint,
)
from repro.shard.plan import ShardManifest
from repro.store.blobs import content_checksum

PathLike = Union[str, Path]


class _ConnectionFailure(Exception):
    """The worker could not be reached (or stopped answering mid-
    request) — counts toward marking it dead."""

    def __init__(self, kind: str, cause: str) -> None:
        self.kind = kind
        self.cause = cause
        super().__init__(cause)


class _AttemptFailure(Exception):
    """The worker answered, but the attempt still failed (refused
    manifest, failed checksum, unloadable checkpoint) — retryable, but
    not evidence the worker is down."""


class ShardCoordinator:
    """Run one plan's shards across ``worker_urls``, with reassignment."""

    def __init__(
        self,
        manifest: ShardManifest,
        shard_dir: PathLike,
        worker_urls: Sequence[str],
        *,
        retries: int = 2,
        backoff: float = 0.05,
        timeout: Optional[float] = 30.0,
        dead_after: int = 2,
        checkpoint_every: int = 0,
        manifest_path: Optional[PathLike] = None,
    ) -> None:
        if not worker_urls:
            raise ValueError("ShardCoordinator needs at least one worker URL")
        if dead_after < 1:
            raise ValueError(f"dead_after must be >= 1: {dead_after}")
        self.manifest = manifest
        self.shard_dir = Path(shard_dir)
        self.worker_urls = [str(u).rstrip("/") for u in worker_urls]
        self.retries = retries
        self.backoff = backoff
        self.timeout = timeout
        self.dead_after = dead_after
        self.checkpoint_every = checkpoint_every
        self.manifest_path = (
            str(manifest_path) if manifest_path is not None else None
        )
        # Shipped on every POST; built once — the manifest is immutable.
        self._body = json.dumps(manifest.document()).encode("utf-8")
        self._digest = manifest.digest()

    # ------------------------------------------------------------------
    # The dispatch loop (main thread)
    # ------------------------------------------------------------------
    def run(
        self,
        indices: Optional[Sequence[int]] = None,
        metrics: Optional[RunMetrics] = None,
        on_report=None,
    ) -> List[Dict[str, Any]]:
        """Place every shard (or ``indices``); return per-shard reports.

        Raises :class:`~repro.errors.TransportError` when any shard
        remains unplaced after retries and reassignment.
        """
        metrics = metrics if metrics is not None else RunMetrics()
        if indices is None:
            indices = list(range(self.manifest.n_shards))
        else:
            indices = list(indices)
        for index in indices:
            self.manifest.shard_users(index)  # range-check before any work
        self.shard_dir.mkdir(parents=True, exist_ok=True)
        results: Dict[int, Any] = {}
        pending = set()
        tasks: "queue.Queue" = queue.Queue()
        done: "queue.Queue" = queue.Queue()
        for index in indices:
            # Idempotent re-runs skip locally-complete shards without a
            # byte on the wire — same rule as the local executor.
            if shard_is_complete(self.manifest, self.shard_dir, index):
                metrics.count("shard.skipped")
                report = self._skip_report(index)
                results[index] = report
                if on_report is not None:
                    on_report(index, report)
            else:
                pending.add(index)
                tasks.put(index)
        if not pending:
            return [results[i] for i in indices]
        scheduler = RetryScheduler(
            retries=self.retries,
            backoff=self.backoff,
            quarantine=True,
            metrics=metrics,
        )
        alive = set(self.worker_urls)
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(url, tasks, done, metrics),
                daemon=True,
            )
            for url in self.worker_urls
        ]
        with metrics.stage("shard.execute"):
            for thread in threads:
                thread.start()
            try:
                while pending and alive:
                    kind, url, index, payload = done.get()
                    if kind == "dead":
                        alive.discard(url)
                        metrics.count("transport.worker_deaths")
                        kind, payload = "fail", payload
                    if kind == "ok":
                        report = payload["report"]
                        metrics.absorb(report.get("metrics", {}))
                        metrics.count("shard.completed")
                        results[index] = report
                        pending.discard(index)
                        if on_report is not None:
                            on_report(index, report)
                        continue
                    failkind, cause = payload
                    sealed = scheduler.fail(
                        index, f"shard {index} via {url}", failkind, cause
                    )
                    if sealed is None:
                        # A retry is owed; any surviving worker may take
                        # it — reassignment and retry are one requeue.
                        metrics.count("transport.reassignments")
                        tasks.put(index)
                        continue
                    results[index] = sealed
                    pending.discard(index)
                    metrics.count("shard.failed")
                    if on_report is not None:
                        on_report(index, sealed)
            finally:
                for _ in threads:
                    tasks.put(None)
                for thread in threads:
                    thread.join(timeout=10.0)
        failed = sorted(
            i for i, r in results.items() if isinstance(r, TaskFailure)
        )
        unplaced = sorted(set(pending) | set(failed))
        if unplaced:
            if not alive:
                reason = (
                    f"all {len(self.worker_urls)} worker(s) are dead "
                    f"({', '.join(self.worker_urls)})"
                )
            else:
                detail = "; ".join(
                    f"shard {i}: {results[i].kind} ({results[i].cause})"
                    for i in failed
                )
                reason = f"retry budget exhausted — {detail}"
            raise TransportError(
                self.manifest_path or f"digest {self._digest}",
                unplaced,
                reason,
            )
        return [results[i] for i in indices]

    def _skip_report(self, index: int) -> Dict[str, Any]:
        return {
            "index": int(index),
            "users": len(self.manifest.shard_users(index)),
            "complete": True,
            "skipped": True,
            "checkpoint": str(shard_checkpoint_path(self.shard_dir, index)),
            "metrics": {},
        }

    # ------------------------------------------------------------------
    # Worker threads
    # ------------------------------------------------------------------
    def _worker_loop(
        self,
        url: str,
        tasks: "queue.Queue",
        done: "queue.Queue",
        metrics: RunMetrics,
    ) -> None:
        consecutive = 0
        while True:
            index = tasks.get()
            if index is None:
                return
            try:
                payload = self._process(url, index, metrics)
            except _ConnectionFailure as exc:
                consecutive += 1
                failure = (exc.kind, f"worker {url}: {exc.cause}")
                if consecutive >= self.dead_after:
                    done.put(("dead", url, index, failure))
                    return
                done.put(("fail", url, index, failure))
            except Exception as exc:  # _AttemptFailure and bugs alike
                consecutive = 0
                done.put(("fail", url, index, ("error", repr(exc))))
            else:
                consecutive = 0
                done.put(("ok", url, index, payload))

    def _process(
        self, url: str, index: int, metrics: RunMetrics
    ) -> Dict[str, Any]:
        """One attempt: POST the manifest, download + verify + land."""
        spec = faults.fire("transport.dispatch")
        if spec is not None and spec.action == "drop":
            # The dispatch vanished on the wire: no request was made,
            # no response will come. To the scheduler it is simply a
            # failed attempt.
            metrics.count("transport.dropped_dispatches")
            raise _AttemptFailure(
                f"dispatch of shard {index} dropped (injected)"
            )
        metrics.count("transport.dispatches")
        metrics.count("transport.bytes_up", len(self._body))
        with metrics.stage("transport.dispatch"):
            response = self._request(
                urllib.request.Request(
                    f"{url}/shards/{index}",
                    data=self._body,
                    headers={"Content-Type": "application/json"},
                    method="POST",
                )
            )
        try:
            answer = json.loads(response[0])
        except ValueError as exc:
            raise _AttemptFailure(
                f"unparseable worker response for shard {index}: {exc!r}"
            ) from exc
        expected = answer.get("checkpoint", {}).get("checksum")
        with metrics.stage("transport.download"):
            data, headers = self._request(
                urllib.request.Request(
                    f"{url}/checkpoints/{self._digest}/{index}"
                )
            )
        spec = faults.fire("transport.collect")
        if spec is not None and spec.action == "corrupt":
            # Bit-rot in flight: the checksum below must catch it.
            data = b"\x00" * min(len(data), 64) + data[64:]
        metrics.count("transport.bytes_down", len(data))
        checksum = content_checksum(data)
        etag = (headers.get("ETag") or "").strip()
        if checksum != expected or (etag and etag != f'"{checksum}"'):
            metrics.count("transport.corrupt_checkpoints")
            raise _AttemptFailure(
                f"checkpoint for shard {index} failed checksum "
                f"verification in flight (got {checksum}, worker "
                f"advertised {expected}, ETag {etag or 'absent'})"
            )
        path = shard_checkpoint_path(self.shard_dir, index)
        tmp = path.with_name(
            f"{path.name}.tmp-{os.getpid()}-{threading.get_ident()}"
        )
        tmp.write_bytes(data)
        os.replace(tmp, path)
        try:
            verify_shard_checkpoint(self.manifest, index, path)
        except ShardError as exc:
            # Checksummed transfer of the wrong thing (worker bug, plan
            # collision): never leave it where the merge will look.
            try:
                path.unlink()
            except OSError:
                pass
            raise _AttemptFailure(
                f"downloaded checkpoint for shard {index} failed "
                f"verification: {exc}"
            ) from exc
        return {"report": answer.get("report", {})}

    def _request(self, request: "urllib.request.Request"):
        """One HTTP exchange, errors classified for the failure policy."""
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.read(), response.headers
        except urllib.error.HTTPError as exc:
            # The worker answered: not a death, but the attempt failed.
            body = ""
            try:
                body = exc.read().decode("utf-8", "replace").strip()
            except OSError:
                pass
            raise _AttemptFailure(
                f"worker answered {exc.code} for {request.full_url}"
                + (f": {body}" if body else "")
            ) from exc
        except (TimeoutError, OSError, urllib.error.URLError, HTTPException) as exc:
            kind = (
                "timeout"
                if isinstance(exc, TimeoutError)
                or "timed out" in str(exc).lower()
                else "crash"
            )
            raise _ConnectionFailure(
                kind, f"{request.full_url} unreachable ({exc!r})"
            ) from exc
