"""The planner: partition a study's users into deterministic shards.

A sharded ingest starts from a **manifest**: one JSON file that pins
everything the executors and the merger must agree on — the source
spec (enough to rebuild the chunk source in any process), the parent
source signature, the radio model and tail policy, cadence tracking,
and the explicit per-shard user lists. Users are assigned by
:func:`shard_of`, a stable (salt-free) hash of the user id, so the
same study always plans to the same shards on any host or Python
process; the manifest persists the resulting lists verbatim so a plan
survives even a later change of hash.

The manifest is written atomically (tmp + rename) with an embedded
content digest; a torn write — exercised by the ``shard.manifest``
fault site — is detected on load and raises
:class:`~repro.errors.ShardError`, never a half-read plan.

:class:`ShardSource` adapts one shard of the plan back into the
:class:`~repro.stream.chunks.StreamSource` shape: it restricts the
parent source's users to the shard's list (in parent order) while
delegating all data access, and derives a per-shard signature from the
manifest alone — so shard checkpoints bind to their exact (plan,
shard) and the merger can verify them without touching the data files.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro import faults
from repro.errors import ShardError
from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel
from repro.radio.registry import get_model
from repro.stream.chunks import (
    CsvStreamSource,
    NpzStreamSource,
    StreamSource,
)

PathLike = Union[str, Path]

#: Manifest on-disk layout version.
MANIFEST_FORMAT = 1


def shard_of(user_id: int, n_shards: int) -> int:
    """Stable shard assignment of one user id.

    A keyed-nothing ``blake2b`` over the decimal id — *not* Python's
    builtin ``hash``, which is salted per process and would scatter the
    same user to different shards across runs. Deterministic across
    hosts, processes and Python versions.
    """
    if n_shards < 1:
        raise ShardError(f"n_shards must be >= 1: {n_shards}")
    digest = hashlib.blake2b(
        str(int(user_id)).encode("ascii"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % n_shards


def plan_shards(user_ids: Sequence[int], n_shards: int) -> List[List[int]]:
    """Partition ``user_ids`` into ``n_shards`` lists via :func:`shard_of`.

    Each shard's users stay in parent-source order, so a shard ingests
    (and checkpoints) users in the same relative order the unsharded
    run would. Shards can legitimately come out empty on tiny studies.
    """
    shards: List[List[int]] = [[] for _ in range(int(n_shards))]
    for uid in user_ids:
        shards[shard_of(uid, n_shards)].append(int(uid))
    return shards


def source_spec(source: StreamSource) -> Dict[str, Any]:
    """A JSON-plain description that :func:`build_source` can rebuild."""
    if isinstance(source, NpzStreamSource):
        return {
            "kind": "npz",
            "path": str(source.path),
            "chunk_size": source.chunk_size,
        }
    if isinstance(source, CsvStreamSource):
        return {
            "kind": "csv",
            "files": [
                [str(p), str(e) if e is not None else None]
                for p, e in source._files
            ],
            "chunk_size": source.chunk_size,
            "duration": source.duration,
            "quarantine_rows": source._quarantine_rows,
        }
    raise ShardError(
        f"cannot describe source of type {type(source).__name__} "
        "in a shard manifest"
    )


def build_source(spec: Dict[str, Any]) -> StreamSource:
    """Rebuild the parent chunk source from its manifest spec."""
    kind = spec.get("kind")
    if kind == "npz":
        return NpzStreamSource(spec["path"], chunk_size=int(spec["chunk_size"]))
    if kind == "csv":
        return CsvStreamSource(
            [(p, e) for p, e in spec["files"]],
            chunk_size=int(spec["chunk_size"]),
            duration=spec["duration"],
            quarantine_rows=bool(spec.get("quarantine_rows", False)),
        )
    raise ShardError(f"unknown source kind in manifest: {kind!r}")


class ShardManifest:
    """One sharded-ingest plan, persisted as a checksummed JSON file."""

    def __init__(
        self,
        source_spec: Dict[str, Any],
        signature: str,
        model_name: str,
        model_repr: str,
        policy_value: str,
        cadence: bool,
        users: Sequence[int],
        shards: Sequence[Sequence[int]],
    ) -> None:
        self.source_spec = dict(source_spec)
        #: The parent source's signature — also the merged checkpoint's
        #: signature, which is what makes the merge key-identical to an
        #: unsharded ingest.
        self.signature = signature
        self.model_name = model_name
        self.model_repr = model_repr
        self.policy_value = policy_value
        self.cadence = bool(cadence)
        #: All user ids in canonical parent-source order — the fold
        #: order the merger restores.
        self.users = [int(u) for u in users]
        self.shards = [[int(u) for u in shard] for shard in shards]
        self._validate_partition()

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def _validate_partition(self) -> None:
        """The shards must be an exact partition of the users."""
        seen: Dict[int, int] = {}
        for index, shard in enumerate(self.shards):
            for uid in shard:
                if uid in seen:
                    raise ShardError(
                        f"user {uid} assigned to both shard {seen[uid]} "
                        f"and shard {index}"
                    )
                seen[uid] = index
        if set(seen) != set(self.users):
            missing = sorted(set(self.users) - set(seen))
            extra = sorted(set(seen) - set(self.users))
            raise ShardError(
                "shards are not an exact partition of the users "
                f"(missing {missing}, extra {extra})"
            )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def plan(
        cls,
        source: StreamSource,
        n_shards: int,
        *,
        model_name: str = "lte",
        policy: TailPolicy = TailPolicy.LAST_PACKET,
        cadence: bool = True,
        shards: Optional[Sequence[Sequence[int]]] = None,
    ) -> "ShardManifest":
        """Plan a sharded ingest of ``source`` into ``n_shards`` shards.

        ``shards`` overrides the :func:`shard_of` assignment with an
        explicit partition (the property tests ingest random uneven
        ones); it must still exactly partition the source's users.
        """
        users = list(source.user_ids)
        if shards is None:
            shards = plan_shards(users, n_shards)
        model = get_model(model_name)
        return cls(
            source_spec=source_spec(source),
            signature=source.signature(),
            model_name=model_name,
            model_repr=repr(model),
            policy_value=policy.value,
            cadence=cadence,
            users=users,
            shards=shards,
        )

    # ------------------------------------------------------------------
    # Guarded accessors
    # ------------------------------------------------------------------
    def model(self) -> RadioModel:
        """Rebuild the pinned radio model, guarding against drift.

        The manifest stores both the registry name and the full repr;
        if the registry's constants have changed since the plan was
        written, executing it would silently mix model generations —
        refuse instead.
        """
        model = get_model(self.model_name)
        if repr(model) != self.model_repr:
            raise ShardError(
                f"model {self.model_name!r} no longer matches the plan "
                f"(manifest {self.model_repr}, registry {repr(model)}); "
                "re-plan with `repro shard plan`"
            )
        return model

    def policy(self) -> TailPolicy:
        return TailPolicy(self.policy_value)

    def shard_users(self, index: int) -> List[int]:
        if not 0 <= index < self.n_shards:
            raise ShardError(
                f"shard index {index} out of range (plan has "
                f"{self.n_shards} shards)"
            )
        return list(self.shards[index])

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _body(self) -> Dict[str, Any]:
        return {
            "format": MANIFEST_FORMAT,
            "kind": "shard-manifest",
            "source": self.source_spec,
            "signature": self.signature,
            "model_name": self.model_name,
            "model_repr": self.model_repr,
            "policy": self.policy_value,
            "cadence": self.cadence,
            "users": self.users,
            "shards": self.shards,
        }

    def digest(self) -> str:
        """Content digest over the canonical body — the plan's identity.

        Stamped into every shard checkpoint header, so a checkpoint can
        never be merged under a different plan than the one that
        produced it (even one with the same source and shard count but
        a different partition).
        """
        payload = json.dumps(self._body(), sort_keys=True)
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=12
        ).hexdigest()

    def save(self, path: PathLike) -> Path:
        """Write the manifest atomically (tmp + rename) with a digest."""
        path = Path(path)
        document = self.document()
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(document, indent=2) + "\n")
        faults.fire("shard.manifest", path=tmp)
        os.replace(tmp, path)
        return path

    def document(self) -> Dict[str, Any]:
        """The full persisted form: the body plus its content digest.

        What :meth:`save` writes and what an ``HttpTransport`` POST
        ships to a ``repro shard worker`` — :meth:`from_document` on
        the other side verifies and reconstructs it.
        """
        document = dict(self._body())
        document["digest"] = self.digest()
        return document

    @classmethod
    def from_document(
        cls, document: Any, origin: str = "manifest document"
    ) -> "ShardManifest":
        """Verify + reconstruct a manifest from its persisted form.

        The single gate every untrusted manifest passes through — a
        file read by :meth:`load` or a JSON body uploaded to a shard
        worker. Wrong kind, format drift, missing fields and a digest
        mismatch all raise :class:`~repro.errors.ShardError` naming
        ``origin``, so a torn or foreign plan can never execute.
        """
        if not isinstance(document, dict) or document.get(
            "kind"
        ) != "shard-manifest":
            raise ShardError(f"{origin} is not a shard manifest")
        fmt = int(document.get("format", 0))
        if fmt != MANIFEST_FORMAT:
            raise ShardError(
                f"shard manifest {origin} is format {fmt}; this version "
                f"reads format {MANIFEST_FORMAT} — re-plan with "
                "`repro shard plan`"
            )
        stored = document.get("digest")
        try:
            manifest = cls(
                source_spec=document["source"],
                signature=document["signature"],
                model_name=document["model_name"],
                model_repr=document["model_repr"],
                policy_value=document["policy"],
                cadence=document["cadence"],
                users=document["users"],
                shards=document["shards"],
            )
        except KeyError as exc:
            raise ShardError(
                f"torn or corrupt shard manifest {origin}: "
                f"missing {exc}"
            ) from exc
        if stored != manifest.digest():
            raise ShardError(
                f"shard manifest {origin} failed digest verification "
                "(torn or corrupt write)"
            )
        return manifest

    @classmethod
    def load(cls, path: PathLike) -> "ShardManifest":
        """Read a manifest; torn or tampered files raise ShardError."""
        path = Path(path)
        if not path.exists():
            raise ShardError(f"no shard manifest at {path}")
        try:
            document = json.loads(path.read_text())
        except (ValueError, UnicodeDecodeError) as exc:
            raise ShardError(
                f"torn or corrupt shard manifest at {path}: {exc!r}"
            ) from exc
        return cls.from_document(document, origin=f"at {path}")

    def __repr__(self) -> str:
        sizes = [len(shard) for shard in self.shards]
        return (
            f"ShardManifest({self.source_spec.get('kind')}, "
            f"{len(self.users)} users, shards={sizes}, "
            f"model={self.model_name!r}, policy={self.policy_value!r})"
        )


def shard_signature(manifest: ShardManifest, index: int) -> str:
    """The signature of shard ``index``'s checkpoint under ``manifest``.

    Derived from the manifest alone — parent signature, plan digest,
    shard index/count and the shard's user list — so the merger can
    verify a shard checkpoint's binding without rebuilding the source.
    :meth:`ShardSource.signature` returns exactly this.
    """
    payload = json.dumps(
        {
            "kind": "shard",
            "parent": manifest.signature,
            "manifest": manifest.digest(),
            "index": int(index),
            "of": manifest.n_shards,
            "users": manifest.shard_users(index),
        }
    )
    return hashlib.blake2b(
        payload.encode("utf-8"), digest_size=12
    ).hexdigest()


def shard_header(manifest: ShardManifest, index: int) -> Dict[str, Any]:
    """The ``shard`` header stamped into a shard's checkpoints."""
    return {
        "index": int(index),
        "of": manifest.n_shards,
        "manifest": manifest.digest(),
        "parent_signature": manifest.signature,
    }


class ShardSource:
    """One shard of a plan, shaped like a ``StreamSource``.

    Restricts the parent source's user set to the shard's list (kept
    in parent order by the planner) and delegates every data access —
    registry, windows, packet counts, chunk iteration, quarantine —
    to the parent. The registry is the *whole study's* registry (the
    CSV prepass registers apps across all users, the npz header stores
    them all), which is what lets per-shard checkpoints merge into one
    readout with consistent app ids.
    """

    def __init__(
        self,
        parent: StreamSource,
        manifest: ShardManifest,
        index: int,
    ) -> None:
        if parent.signature() != manifest.signature:
            raise ShardError(
                "source does not match the shard manifest (source "
                f"{parent.signature()}, manifest {manifest.signature}); "
                "the files changed since the plan was written — re-plan"
            )
        self.parent = parent
        self.manifest = manifest
        self.index = int(index)
        self._users = manifest.shard_users(index)
        known = set(parent.user_ids)
        unknown = [u for u in self._users if u not in known]
        if unknown:
            raise ShardError(
                f"manifest shard {index} names users {unknown} that the "
                "source does not have"
            )
        self.registry = parent.registry
        self.quarantine = parent.quarantine

    @property
    def user_ids(self) -> List[int]:
        return list(self._users)

    def window(self, user_id: int) -> Tuple[float, float]:
        return self.parent.window(user_id)

    def n_packets(self, user_id: int) -> int:
        return self.parent.n_packets(user_id)

    def iter_chunks(self, user_id: int, skip: int = 0):
        return self.parent.iter_chunks(user_id, skip=skip)

    def signature(self) -> str:
        return shard_signature(self.manifest, self.index)
