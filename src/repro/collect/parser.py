"""Raw device-log parser.

Reconstructs traces from the logs written by
:mod:`repro.collect.logs` (or by anything producing the same format).
Packets are mapped to apps through the socket log; connections with no
socket record — lost mappings, or traffic genuinely issued by opaque
system processes — are attributed to the :data:`UNKNOWN_APP` bucket,
which mirrors the paper's handling of requests delegated to system
services ("we label this traffic according to the service from which it
originated").
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import TraceError
from repro.collect.logs import (
    INPUT_LOG,
    PACKETS_LOG,
    PROCESS_LOG,
    SCREEN_LOG,
    SOCKETS_LOG,
)
from repro.trace.arrays import PacketArray
from repro.trace.dataset import AppRegistry, Dataset
from repro.trace.events import (
    EventLog,
    ProcessState,
    ProcessStateEvent,
    ScreenEvent,
    UserInputEvent,
)
from repro.trace.packet import Direction
from repro.trace.trace import UserTrace
from repro.units import DAY

PathLike = Union[str, Path]

#: Registry name for traffic whose process mapping was lost.
UNKNOWN_APP = "system.unattributed"


def _app_id(registry: AppRegistry, name: str) -> int:
    if name in registry:
        return registry.id_of(name)
    return registry.register(name).app_id


def _read_sockets(path: Path, registry: AppRegistry) -> Dict[int, int]:
    mapping: Dict[int, int] = {}
    if not path.exists():
        return mapping
    with open(path) as handle:
        for line in handle:
            parts = line.split()
            if len(parts) != 3:
                raise TraceError(f"malformed socket record: {line!r}")
            _, conn, app = parts
            mapping[int(conn)] = _app_id(registry, app)
    return mapping


def _read_packets(
    path: Path, conn_to_app: Dict[int, int], registry: AppRegistry
) -> PacketArray:
    times: List[float] = []
    conns: List[int] = []
    dirs: List[int] = []
    sizes: List[int] = []
    if not path.exists():
        raise TraceError(f"missing packet log {path}")
    with open(path) as handle:
        for line in handle:
            parts = line.split()
            if len(parts) != 4:
                raise TraceError(f"malformed packet record: {line!r}")
            ts, conn, direction, size = parts
            times.append(float(ts))
            conns.append(int(conn))
            if direction not in ("U", "D"):
                raise TraceError(f"malformed packet direction: {line!r}")
            dirs.append(
                int(Direction.UPLINK if direction == "U" else Direction.DOWNLINK)
            )
            sizes.append(int(size))
    unknown_id: Optional[int] = None
    apps = np.empty(len(times), dtype=np.uint16)
    for i, conn in enumerate(conns):
        app = conn_to_app.get(conn)
        if app is None:
            if unknown_id is None:
                unknown_id = _app_id(registry, UNKNOWN_APP)
            app = unknown_id
        apps[i] = app
    packets = PacketArray.from_columns(
        np.array(times),
        np.array(sizes, dtype=np.uint32),
        np.array(dirs, dtype=np.uint8),
        apps,
        np.array(conns, dtype=np.uint32),
    )
    return packets.sorted_by_time()


def _read_events(directory: Path, registry: AppRegistry) -> EventLog:
    log = EventLog()
    process_path = directory / PROCESS_LOG
    if process_path.exists():
        with open(process_path) as handle:
            for line in handle:
                ts, app, state = line.split()
                log.add_process_event(
                    ProcessStateEvent(
                        float(ts), _app_id(registry, app), ProcessState[state]
                    )
                )
    screen_path = directory / SCREEN_LOG
    if screen_path.exists():
        with open(screen_path) as handle:
            for line in handle:
                ts, value = line.split()
                log.add_screen_event(ScreenEvent(float(ts), value == "ON"))
    input_path = directory / INPUT_LOG
    if input_path.exists():
        with open(input_path) as handle:
            for line in handle:
                ts, app = line.split()
                log.add_input_event(UserInputEvent(float(ts), _app_id(registry, app)))
    return log


def read_device_logs(
    directory: PathLike,
    registry: Optional[AppRegistry] = None,
    user_id: int = 1,
    duration: Optional[float] = None,
) -> UserTrace:
    """Parse one device's raw log directory into a trace."""
    directory = Path(directory)
    registry = registry if registry is not None else AppRegistry()
    conn_to_app = _read_sockets(directory / SOCKETS_LOG, registry)
    packets = _read_packets(directory / PACKETS_LOG, conn_to_app, registry)
    events = _read_events(directory, registry)
    horizon = float(packets.timestamps[-1]) if len(packets) else 0.0
    for event in events:
        horizon = max(horizon, event.timestamp)
    if duration is None:
        duration = float(np.ceil(horizon / DAY) * DAY) or DAY
    return UserTrace(user_id, 0.0, duration, packets, events)


def parse_dataset(
    root: PathLike, duration: Optional[float] = None
) -> Dataset:
    """Parse a ``collect_dataset`` tree back into a labelled dataset."""
    root = Path(root)
    directories = sorted(d for d in root.iterdir() if d.is_dir())
    if not directories:
        raise TraceError(f"no device log directories under {root}")
    registry = AppRegistry()
    users = []
    for index, directory in enumerate(directories, start=1):
        users.append(
            read_device_logs(directory, registry, user_id=index, duration=duration)
        )
    if duration is None:
        # Align every user to the longest observed window.
        longest = max(u.end for u in users)
        users = [
            UserTrace(u.user_id, 0.0, longest, u.packets, u.events) for u in users
        ]
    dataset = Dataset(registry, users, metadata={"source": "raw-logs"})
    dataset.label_states()
    return dataset
