"""Raw device-log writer.

Five line-oriented logs per device, mirroring what the paper's
collection software gathered:

* ``packets.log``  -- one line per captured packet:
  ``<ts> <conn> <U|D> <size>``
* ``sockets.log``  -- the packet→process mapping: one line when a
  connection is first seen: ``<ts> <conn> <app>``
* ``process.log``  -- process-state transitions: ``<ts> <app> <STATE>``
* ``screen.log``   -- ``<ts> <ON|OFF>``
* ``input.log``    -- user input: ``<ts> <app>``

Real collection is imperfect: short-lived connections can slip past the
mapper. ``CollectionConfig.socket_record_loss`` drops that fraction of
socket records, which the parser then buckets as unattributable
traffic — the same situation the paper describes for requests delegated
to system services.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Union

import numpy as np

from repro.errors import TraceError
from repro.trace.dataset import Dataset
from repro.trace.packet import Direction
from repro.trace.trace import UserTrace
from repro.workload.rng import substream

PathLike = Union[str, Path]

PACKETS_LOG = "packets.log"
SOCKETS_LOG = "sockets.log"
PROCESS_LOG = "process.log"
SCREEN_LOG = "screen.log"
INPUT_LOG = "input.log"


@dataclass(frozen=True)
class CollectionConfig:
    """Knobs of the simulated collection software."""

    #: Fraction of socket (conn -> app) records lost before logging.
    socket_record_loss: float = 0.0
    #: Seed for the loss process.
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.socket_record_loss < 1.0:
            raise TraceError(
                f"socket_record_loss must be in [0, 1): {self.socket_record_loss}"
            )


def write_device_logs(
    trace: UserTrace,
    registry,
    directory: PathLike,
    config: CollectionConfig = CollectionConfig(),
) -> Path:
    """Write one device's raw logs into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    packets = trace.packets

    with open(directory / PACKETS_LOG, "w") as handle:
        for rec in packets.data:
            direction = "U" if int(rec["direction"]) == int(Direction.UPLINK) else "D"
            handle.write(
                f"{float(rec['timestamp'])!r} {int(rec['conn'])} "
                f"{direction} {int(rec['size'])}\n"
            )

    # Socket records: first packet of each (conn, app), minus losses.
    rng = substream(config.seed, "collect-loss", trace.user_id)
    seen = {}
    for rec in packets.data:
        key = (int(rec["conn"]), int(rec["app"]))
        if key not in seen:
            seen[key] = float(rec["timestamp"])
    with open(directory / SOCKETS_LOG, "w") as handle:
        for (conn, app), first_ts in sorted(seen.items(), key=lambda kv: kv[1]):
            if config.socket_record_loss and rng.random() < config.socket_record_loss:
                continue
            handle.write(f"{first_ts!r} {conn} {registry.name_of(app)}\n")

    with open(directory / PROCESS_LOG, "w") as handle:
        for event in trace.events.process_events:
            handle.write(
                f"{event.timestamp!r} {registry.name_of(event.app)} "
                f"{event.state.name}\n"
            )
    with open(directory / SCREEN_LOG, "w") as handle:
        for event in trace.events.screen_events:
            handle.write(f"{event.timestamp!r} {'ON' if event.on else 'OFF'}\n")
    with open(directory / INPUT_LOG, "w") as handle:
        for event in trace.events.input_events:
            handle.write(f"{event.timestamp!r} {registry.name_of(event.app)}\n")
    return directory


def collect_dataset(
    dataset: Dataset,
    root: PathLike,
    config: CollectionConfig = CollectionConfig(),
) -> Path:
    """Write every user's logs under ``root/user_<id>/``."""
    root = Path(root)
    for trace in dataset:
        write_device_logs(
            trace, dataset.registry, root / f"user_{trace.user_id:03d}", config
        )
    return root
