"""Measurement-software simulation (§3's collection pipeline).

The paper pre-installed "custom data collection software on each phone
that transparently collects complete network traces ... including
packet payloads, user input events, and packet-process mappings". This
package simulates that apparatus end to end:

* :mod:`repro.collect.logs` writes a device's raw, line-oriented logs —
  a packet capture, a socket→app mapping log, process-state snapshots,
  screen and input logs — optionally with the imperfections real
  collection has (dropped socket records);
* :mod:`repro.collect.parser` reconstructs a
  :class:`~repro.trace.dataset.Dataset` from those raw logs, mapping
  packets to apps through the socket log and bucketing unmappable
  traffic the way the paper handles delegated/system traffic.

The round trip (trace → raw logs → trace) is tested to preserve every
analysis in :mod:`repro.core`.
"""

from repro.collect.logs import CollectionConfig, write_device_logs, collect_dataset
from repro.collect.parser import (
    UNKNOWN_APP,
    parse_dataset,
    read_device_logs,
)

__all__ = [
    "CollectionConfig",
    "UNKNOWN_APP",
    "collect_dataset",
    "parse_dataset",
    "read_device_logs",
    "write_device_logs",
]
