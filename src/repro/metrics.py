"""Run metrics: wall time, per-stage timings and counters.

One :class:`RunMetrics` object travels through a run — the CLI creates
one per invocation and hands it to :class:`~repro.core.accounting.
StudyEnergy`; library users can do the same::

    from repro import RunMetrics, StudyEnergy

    metrics = RunMetrics()
    study = StudyEnergy(dataset, workers=4, metrics=metrics)
    study.total_energy
    print(metrics.to_json())

Stages are cumulative named timers (``with metrics.stage("attribute")``)
and counters are cumulative named tallies (``metrics.count("packets",
n)``). :meth:`as_dict` adds derived throughput rates for the well-known
pairs (attributed packets per second of attribution time, generated
packets per second of generation time) so consumers never recompute
them inconsistently. The CLI's ``--metrics-json FILE`` flag writes this
dictionary at the end of the command (``-`` for stdout).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

#: (rate name, counter, stage) triples materialised by :meth:`RunMetrics.as_dict`.
DERIVED_RATES = (
    ("attribute_packets_per_s", "attribution.packets", "attribute"),
    ("generate_packets_per_s", "generation.packets", "generate"),
    ("ingest_packets_per_s", "stream.packets", "stream.attribute"),
    ("serve_requests_per_s", "serve.requests", "serve.request"),
    ("shard_packets_per_s", "stream.packets", "shard.execute"),
    ("follow_packets_per_s", "follow.packets", "follow.attribute"),
    ("transport_bytes_down_per_s", "transport.bytes_down", "transport.download"),
)


class RunMetrics:
    """Cumulative stage timings and counters for one run."""

    def __init__(self) -> None:
        self._start = time.perf_counter()
        self._stage_seconds: Dict[str, float] = {}
        self._stage_calls: Dict[str, int] = {}
        self._counters: Dict[str, int] = {}
        self._samples: Dict[str, List[str]] = {}
        self._gauges: Dict[str, tuple] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block under ``name``; nested/repeated calls accumulate."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._stage_seconds[name] = self._stage_seconds.get(name, 0.0) + elapsed
            self._stage_calls[name] = self._stage_calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + n

    def sample(self, name: str, value: str, limit: int = 5) -> None:
        """Keep the first ``limit`` example strings under ``name``.

        For rare events worth quoting, not counting — e.g. the first few
        quarantined trace rows. Values past ``limit`` are dropped; pair
        with :meth:`count` for the full tally.
        """
        bucket = self._samples.setdefault(name, [])
        if len(bucket) < limit:
            bucket.append(str(value))

    def gauge(self, name: str, value: float) -> None:
        """Record an instantaneous level under ``name``.

        Unlike a counter, a gauge is a *current* value — queue depth,
        lag, resident set — so the report keeps both the last reading
        and the worst (maximum) one. ``repro follow`` uses this for
        ``follow.lag_chunks``, the pending-chunk backlog after each
        poll.
        """
        _, worst = self._gauges.get(name, (0.0, float("-inf")))
        value = float(value)
        self._gauges[name] = (value, max(worst, value))

    def gauge_last(self, name: str) -> Optional[float]:
        """Last reading of gauge ``name`` (None if never set)."""
        entry = self._gauges.get(name)
        return None if entry is None else entry[0]

    def gauge_max(self, name: str) -> Optional[float]:
        """Worst (maximum) reading of gauge ``name`` (None if never set)."""
        entry = self._gauges.get(name)
        return None if entry is None else entry[1]

    def absorb(self, payload: dict) -> None:
        """Merge another run's :meth:`as_dict` report into this one.

        The shard executors run in worker processes, each with a
        private ``RunMetrics``; their reports ride back on the result
        and the parent folds them in here, so ``stream.*`` counters and
        stage seconds reflect the whole sharded run. Stage seconds
        *sum* (they are cumulative CPU-side effort, not wall clock —
        with N parallel shards the sum exceeds elapsed time by design),
        counters add, and samples top up to the usual limit.
        """
        for name, entry in payload.get("stages", {}).items():
            self._stage_seconds[name] = (
                self._stage_seconds.get(name, 0.0) + float(entry["seconds"])
            )
            self._stage_calls[name] = (
                self._stage_calls.get(name, 0) + int(entry["calls"])
            )
        for name, value in payload.get("counters", {}).items():
            self.count(name, int(value))
        for name, values in payload.get("samples", {}).items():
            for value in values:
                self.sample(name, value)
        for name, entry in payload.get("gauges", {}).items():
            last, worst = self._gauges.get(name, (0.0, float("-inf")))
            self._gauges[name] = (
                float(entry["last"]),
                max(worst, float(entry["max"])),
            )

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    @property
    def wall_time(self) -> float:
        """Seconds since this object was created."""
        return time.perf_counter() - self._start

    def stage_seconds(self, name: str) -> float:
        """Total seconds recorded under stage ``name`` (0.0 if never run)."""
        return self._stage_seconds.get(name, 0.0)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never counted)."""
        return self._counters.get(name, 0)

    def samples(self, name: str) -> List[str]:
        """The example strings kept under ``name`` (empty if none)."""
        return list(self._samples.get(name, []))

    def rate(self, counter: str, stage: str) -> Optional[float]:
        """``counter / stage`` as events per second, if both were recorded."""
        seconds = self._stage_seconds.get(stage)
        events = self._counters.get(counter)
        if not seconds or events is None:
            return None
        return events / seconds

    def as_dict(self) -> dict:
        """The full report: wall time, stages, counters, derived rates."""
        derived = {}
        for name, counter, stage in DERIVED_RATES:
            value = self.rate(counter, stage)
            if value is not None:
                derived[name] = round(value, 3)
        return {
            "wall_time_s": round(self.wall_time, 6),
            "stages": {
                name: {
                    "seconds": round(seconds, 6),
                    "calls": self._stage_calls[name],
                }
                for name, seconds in sorted(self._stage_seconds.items())
            },
            "counters": dict(sorted(self._counters.items())),
            "samples": {
                name: list(values)
                for name, values in sorted(self._samples.items())
            },
            "gauges": {
                name: {"last": last, "max": worst}
                for name, (last, worst) in sorted(self._gauges.items())
            },
            "derived": derived,
        }

    def to_json(self, indent: int = 2) -> str:
        """:meth:`as_dict` as a JSON string."""
        return json.dumps(self.as_dict(), indent=indent)

    def write_json(self, path: Union[str, Path]) -> None:
        """Write the report to ``path``; ``-`` prints to stdout."""
        payload = self.to_json()
        if str(path) == "-":
            print(payload)
        else:
            Path(path).write_text(payload + "\n")

    def __repr__(self) -> str:
        return (
            f"RunMetrics(wall={self.wall_time:.3f}s, "
            f"stages={sorted(self._stage_seconds)}, "
            f"counters={sorted(self._counters)})"
        )
