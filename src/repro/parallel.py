"""Shared multiprocessing helpers, hardened against worker failure.

Both the workload generator and the energy-attribution engine fan
per-user work out over a process pool; the streaming ingestor fans the
same chunk task out once per round for hours. The selection logic (how
many workers make sense, which start method to use, when a pool is not
worth its overhead) lives here once — and so does the failure handling,
because on a 22-month ingestion job workers *do* die, tasks *do* hang
and inputs *do* arrive poisoned.

:class:`TaskPool` runs on :class:`concurrent.futures.
ProcessPoolExecutor` rather than ``multiprocessing.Pool``: when a
worker dies mid-task the executor marks the pool broken and fails the
pending futures promptly, where ``Pool.map`` blocks forever. On top of
that the pool adds per-task timeouts, bounded retry with exponential
backoff, poison-task quarantine and a clean pool rebuild after a
worker death — every failure surfacing as a structured
:class:`~repro.errors.TaskFailure` instead of a hung run. Retried tasks
must be pure functions of their item (every task in this library is),
so a retry changes nothing but wall time: grouped totals stay
bit-identical.

Tasks handed to :func:`map_tasks` must be picklable callables (see
``workload.generator._GenerateUserTask`` and
``radio.attribution.AttributionTask``). The task may carry bulky shared
state: it reaches workers copy-on-write under ``fork`` and is shipped
once per worker (via the pool initializer) under ``spawn`` — never once
per item, so per-item payloads stay small.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from typing import Callable, List, Optional, Sequence, TypeVar, Union

from repro import faults
from repro.errors import TaskFailure
from repro.metrics import RunMetrics

T = TypeVar("T")
R = TypeVar("R")

#: Cap on one exponential-backoff sleep; retries are for transient
#: glitches, not for outwaiting a broken environment.
MAX_BACKOFF_S = 1.0


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request.

    ``None`` or ``0`` means "one per available CPU"; negative counts are
    an error surfaced as ``ValueError``; anything else passes through.
    """
    if workers is None or workers == 0:
        return available_cpus()
    if workers < 0:
        raise ValueError(f"workers must be >= 0: {workers}")
    return workers


def preferred_start_method() -> str:
    """The pool start method used throughout the library.

    ``fork`` keeps worker startup cheap and works from any entry point
    (REPL, piped scripts); platforms without it fall back to ``spawn``.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


#: Task shared with pool workers. Set once per worker by the pool
#: initializer: inherited by reference under ``fork`` (zero pickling,
#: however large the task's state), shipped once per worker under
#: ``spawn`` — never once per map chunk.
_POOL_TASK: Optional[Callable] = None


def _set_pool_task(task: Callable) -> None:
    global _POOL_TASK
    _POOL_TASK = task


def _call_pool_task(item):
    # The fault site lives here, in the worker, not in the serial path:
    # an injected "crash" must kill a child, never the parent run.
    faults.fire("parallel.worker")
    return _POOL_TASK(item)


def _short_repr(item, limit: int = 120) -> str:
    text = repr(item)
    if len(text) > limit:
        text = text[: limit - 3] + "..."
    return text


class RetryScheduler:
    """Retry/backoff/quarantine policy for a round of keyed work items.

    Extracted from :class:`TaskPool` so any executor — the in-process
    pool here or a remote transport (:mod:`repro.shard.coordinator`) —
    applies the *same* failure policy with the same metrics vocabulary:
    ``faults.task_retries`` per granted retry, ``faults.tasks_quarantined``
    per sealed failure. The scheduler knows nothing about *how* work
    runs; it only answers "this attempt at item ``index`` failed — retry,
    quarantine, or raise?".

    Per failed attempt, :meth:`fail` increments the item's attempt count
    and either sleeps the exponential backoff and returns ``None`` (a
    retry is owed), returns the sealed :class:`TaskFailure` (quarantine
    mode — also appended to :attr:`failures`), or raises (``original``
    when given, else the :class:`TaskFailure`). Attempt counts live for
    the scheduler's lifetime: create one per round to reset them, and
    share a ``failures`` list across rounds to accumulate quarantined
    items the way :class:`TaskPool` does.
    """

    def __init__(
        self,
        *,
        retries: int = 0,
        backoff: float = 0.05,
        quarantine: bool = False,
        metrics: Optional[RunMetrics] = None,
        failures: Optional[List[TaskFailure]] = None,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0: {retries}")
        self.retries = retries
        self.backoff = backoff
        self.quarantine = quarantine
        self.metrics = metrics
        #: Quarantined failures, in the order they were sealed. Callers
        #: may pass a shared list to accumulate across rounds.
        self.failures: List[TaskFailure] = (
            failures if failures is not None else []
        )
        self._attempts: dict = {}

    def attempts(self, index) -> int:
        """Failed attempts recorded against item ``index`` so far."""
        return self._attempts.get(index, 0)

    def should_retry(self, attempts: int) -> bool:
        """Grant (and pay for) a retry after ``attempts`` failures.

        Granting counts ``faults.task_retries`` and sleeps the
        exponential backoff (``backoff * 2**(attempts-1)``, capped at
        :data:`MAX_BACKOFF_S`) before returning ``True``.
        """
        if attempts > self.retries:
            return False
        self._count("faults.task_retries")
        time.sleep(min(self.backoff * 2 ** (attempts - 1), MAX_BACKOFF_S))
        return True

    def fail(
        self,
        index,
        item_repr: str,
        kind: str,
        cause: str,
        original: Optional[BaseException] = None,
    ) -> Optional[TaskFailure]:
        """One failed attempt at item ``index``.

        Returns ``None`` to keep the item pending (a retry is owed), or
        the sealed quarantined :class:`TaskFailure`. Raises when the
        budget is spent and quarantine is off.
        """
        attempts = self._attempts.get(index, 0) + 1
        self._attempts[index] = attempts
        if self.should_retry(attempts):
            return None
        failure = TaskFailure(index, item_repr, attempts, kind, cause)
        if self.quarantine:
            self.quarantine_failure(failure)
            return failure
        if original is not None:
            raise original
        raise failure

    def quarantine_failure(self, failure: TaskFailure) -> None:
        self.failures.append(failure)
        self._count("faults.tasks_quarantined")

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.count(name)


class TaskPool:
    """A process pool that survives many :meth:`map` rounds — and its
    own workers' failures.

    :func:`map_tasks` pays pool startup on every call, which is fine
    for one batch fan-out but not for a streaming ingestor that fans
    the *same* task out once per chunk round. ``TaskPool`` starts the
    workers once and reuses them; unlike :func:`map_tasks`, per-round
    data must ride on the **items** (the task is shipped once, at pool
    creation), so streaming callers pass ``(uid, carry, chunk)`` tuples
    as items. With ``workers`` resolved to 1 the pool is never created
    and every map runs in process — where ``task_timeout`` cannot be
    enforced and a crash is the caller's crash, since both protections
    need a process boundary; with ``workers > 1`` every round, even a
    one-item round, goes through the pool so the policy always holds.

    Failure policy, applied per item:

    * a task raising an exception is retried up to ``retries`` times
      with exponential backoff (``backoff * 2**(attempt-1)`` seconds,
      capped at :data:`MAX_BACKOFF_S`);
    * a worker death (segfault, ``os._exit``, OOM kill) fails the item
      being waited on, kills and rebuilds the pool, and resubmits every
      unfinished item — surviving items are unaffected;
    * with ``task_timeout`` set, waiting longer than that on one item
      counts as a failure of that item and also rebuilds the pool (the
      hung worker cannot be recovered, only killed);
    * an item that exhausts its attempts becomes a
      :class:`~repro.errors.TaskFailure`. With ``quarantine=False``
      (default) it aborts the map — re-raising the task's own exception
      where one exists, raising the ``TaskFailure`` for crashes and
      timeouts. With ``quarantine=True`` the failure is appended to
      :attr:`failures`, returned in the result slot, and the map
      completes.

    Because tasks are pure, none of this changes results: a map that
    completes is bit-identical to one that never saw a failure.

    Use as a context manager, or call :meth:`close` explicitly;
    ``close()`` is also safe from ``__del__`` even when ``__init__``
    itself raised.
    """

    #: Class-level fallback so :meth:`close` (and ``__del__``) are safe
    #: even when ``__init__`` raised before any attribute was assigned.
    _exec: Optional[ProcessPoolExecutor] = None

    def __init__(
        self,
        task: Callable[[T], R],
        workers: Optional[int] = 1,
        *,
        retries: int = 0,
        task_timeout: Optional[float] = None,
        backoff: float = 0.05,
        quarantine: bool = False,
        metrics: Optional[RunMetrics] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self._exec = None  # first, so close() works however far we get
        if retries < 0:
            raise ValueError(f"retries must be >= 0: {retries}")
        if task_timeout is not None and task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0: {task_timeout}")
        self.task = task
        self.workers = resolve_workers(workers)
        self.retries = retries
        self.task_timeout = task_timeout
        self.backoff = backoff
        self.quarantine = quarantine
        self.metrics = metrics
        self.start_method = start_method or preferred_start_method()
        #: Quarantined failures, in the order they were sealed,
        #: accumulated across :meth:`map` rounds.
        self.failures: List[TaskFailure] = []

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._exec is None:
            self._exec = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context(self.start_method),
                initializer=_set_pool_task,
                initargs=(self.task,),
            )
        return self._exec

    def _kill_pool(self) -> None:
        """Tear the pool down hard: hung or dying workers get SIGKILL.

        A plain ``shutdown`` would join workers that will never return;
        after this the next :meth:`map` round rebuilds a fresh pool.
        """
        executor, self._exec = self._exec, None
        if executor is None:
            return
        # ``_processes`` is ProcessPoolExecutor private API (stable
        # across supported CPythons, but it can be None or mutate while
        # the pool is breaking), so read it defensively; a kill() that
        # loses the race just means the worker is already dead, which
        # is the goal.
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except (OSError, ValueError):
                continue
        executor.shutdown(wait=False, cancel_futures=True)
        self._count("faults.pool_rebuilds")

    def close(self) -> None:
        """Shut the workers down (idempotent, ``__del__``-safe)."""
        executor = getattr(self, "_exec", None)
        self._exec = None
        if executor is not None:
            executor.shutdown(wait=True, cancel_futures=True)

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map(
        self,
        items: Sequence[T],
        on_result: Optional[Callable[[int, Union[R, TaskFailure]], None]] = None,
    ) -> List[Union[R, TaskFailure]]:
        """``[task(item) for item in items]``, order-preserving.

        Failed items follow the pool's retry/quarantine policy; in
        quarantine mode a failed slot holds its :class:`TaskFailure`.
        ``on_result(index, result)`` is invoked in the parent as each
        slot settles — including sealed quarantine failures, but not
        slots still owed a retry — so long fan-outs (shard executors)
        can report progress and absorb worker metrics without waiting
        for the whole round.
        """
        items = list(items)
        if self.workers <= 1:
            return self._map_serial(items, on_result)
        # Even a one-item round goes through the pool: the failure
        # policy (task_timeout, crash isolation) must hold on the final
        # rounds of a streaming run, where one user is left active.
        return self._map_pool(items, on_result)

    def _map_serial(
        self,
        items: Sequence[T],
        on_result: Optional[Callable] = None,
    ) -> List[Union[R, TaskFailure]]:
        scheduler = self._scheduler()
        results: List[Union[R, TaskFailure]] = []
        for index, item in enumerate(items):
            while True:
                try:
                    results.append(self.task(item))
                    break
                except Exception as exc:
                    sealed = scheduler.fail(
                        index,
                        _short_repr(item),
                        "error",
                        repr(exc),
                        original=exc,
                    )
                    if sealed is None:
                        continue
                    results.append(sealed)
                    break
            if on_result is not None:
                on_result(index, results[-1])
        return results

    def _map_pool(
        self,
        items: Sequence[T],
        on_result: Optional[Callable] = None,
    ) -> List[Union[R, TaskFailure]]:
        scheduler = self._scheduler()
        results: List[Union[R, TaskFailure]] = [None] * len(items)
        pending = set(range(len(items)))
        while pending:
            executor = self._ensure_pool()
            order = sorted(pending)
            try:
                futures = {
                    index: executor.submit(_call_pool_task, items[index])
                    for index in order
                }
            except BrokenExecutor as exc:
                # A worker died between rounds (or mid-submission), so
                # the pool refused the submit. Nothing from this round
                # completed; blame the first pending item — like the
                # wait-time crash below, the blame is arbitrary but
                # bounded: under retry it is recomputed, and repeated
                # submit-time deaths seal it instead of looping forever.
                self._count("faults.worker_deaths")
                self._kill_pool()
                sealed = scheduler.fail(
                    order[0],
                    _short_repr(items[order[0]]),
                    "crash",
                    f"worker died before the round started ({exc!r})",
                )
                if sealed is not None:
                    results[order[0]] = sealed
                    pending.discard(order[0])
                    if on_result is not None:
                        on_result(order[0], sealed)
                continue
            rebuilt = False
            for index in order:
                try:
                    value = futures[index].result(timeout=self.task_timeout)
                except (TimeoutError, FuturesTimeoutError):
                    # Future.result raises concurrent.futures.TimeoutError,
                    # which is the builtin only since 3.11; catch both so
                    # 3.9/3.10 timeouts don't fall into the error branch
                    # (which would leave the hung worker alive).
                    self._count("faults.task_timeouts")
                    # Kill before judging the failure: the worker is
                    # wedged whatever the verdict, and if _fail raises
                    # (no quarantine) a later close() must not block
                    # joining a worker that will never return.
                    self._kill_pool()
                    rebuilt = True
                    sealed = scheduler.fail(
                        index,
                        _short_repr(items[index]),
                        "timeout",
                        f"no result within {self.task_timeout}s",
                    )
                except BrokenExecutor as exc:
                    # A worker died. The executor cannot say on which
                    # item, so blame the one being waited on: under
                    # retry it is recomputed anyway, and a true poison
                    # item keeps getting blamed until sealed. Kill
                    # first, for the same reason as the timeout branch.
                    self._count("faults.worker_deaths")
                    self._kill_pool()
                    rebuilt = True
                    sealed = scheduler.fail(
                        index,
                        _short_repr(items[index]),
                        "crash",
                        f"worker died ({exc!r})",
                    )
                except Exception as exc:
                    sealed = scheduler.fail(
                        index,
                        _short_repr(items[index]),
                        "error",
                        repr(exc),
                        original=exc,
                    )
                else:
                    results[index] = value
                    pending.discard(index)
                    if on_result is not None:
                        on_result(index, value)
                    continue
                if sealed is not None:
                    results[index] = sealed
                    pending.discard(index)
                    if on_result is not None:
                        on_result(index, sealed)
                if rebuilt:
                    # This round's remaining futures died with the
                    # pool; the while loop resubmits what's pending.
                    break
        return results

    # ------------------------------------------------------------------
    # Failure policy
    # ------------------------------------------------------------------
    def _scheduler(self) -> RetryScheduler:
        """A fresh :class:`RetryScheduler` for one map round.

        Attempt counts reset per round (a retried streaming chunk is a
        new round, not a continuation); quarantined failures accumulate
        across rounds through the shared :attr:`failures` list.
        """
        return RetryScheduler(
            retries=self.retries,
            backoff=self.backoff,
            quarantine=self.quarantine,
            metrics=self.metrics,
            failures=self.failures,
        )

    def _count(self, name: str) -> None:
        if self.metrics is not None:
            self.metrics.count(name)


def map_tasks(
    task: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = 1,
    *,
    retries: int = 0,
    task_timeout: Optional[float] = None,
    quarantine: bool = False,
    metrics: Optional[RunMetrics] = None,
) -> List[Union[R, TaskFailure]]:
    """``[task(item) for item in items]``, optionally across processes.

    Order is preserved. With ``workers`` resolved to 1 — or fewer than
    two items, where a pool can only add overhead — the map runs in
    process, so callers need no serial/parallel branch of their own.
    The keyword options carry the :class:`TaskPool` failure policy
    (bounded retry, per-task timeout, poison-task quarantine) for a
    one-shot fan-out. Requesting ``task_timeout`` disables the
    small-round shortcut: a timeout is only enforceable across a
    process boundary, so even a single item then runs in a pool when
    ``workers`` allows one.

    Put the bulky shared state (packet arrays, configs) on the *task*
    and keep ``items`` small (ids): the task crosses into workers once
    per pool — for free under ``fork`` — while every item crosses a
    pipe per call.
    """
    resolved = resolve_workers(workers)
    items = list(items)
    if task_timeout is None:
        resolved = min(resolved, max(len(items), 1))
    with TaskPool(
        task,
        resolved,
        retries=retries,
        task_timeout=task_timeout,
        quarantine=quarantine,
        metrics=metrics,
    ) as pool:
        return pool.map(items)
