"""Shared multiprocessing helpers.

Both the workload generator and the energy-attribution engine fan
per-user work out over a process pool. The selection logic (how many
workers make sense, which start method to use, when a pool is not worth
its overhead) is identical for both, so it lives here once.

Tasks handed to :func:`map_tasks` must be picklable callables (see
``workload.generator._GenerateUserTask`` and
``radio.attribution.AttributionTask``). The task may carry bulky shared
state: it reaches workers copy-on-write under ``fork`` and is shipped
once per worker (via the pool initializer) under ``spawn`` — never once
per item, so per-item payloads stay small.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a worker-count request.

    ``None`` or ``0`` means "one per available CPU"; negative counts are
    an error surfaced as ``ValueError``; anything else passes through.
    """
    if workers is None or workers == 0:
        return available_cpus()
    if workers < 0:
        raise ValueError(f"workers must be >= 0: {workers}")
    return workers


def preferred_start_method() -> str:
    """The pool start method used throughout the library.

    ``fork`` keeps worker startup cheap and works from any entry point
    (REPL, piped scripts); platforms without it fall back to ``spawn``.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return "fork"
    return "spawn"


#: Task shared with pool workers. Set in the parent before the pool is
#: created: ``fork`` children inherit it copy-on-write (zero pickling,
#: however large the task's state); ``spawn`` workers receive it once
#: each via the pool initializer instead of once per map chunk.
_POOL_TASK: Optional[Callable] = None


def _set_pool_task(task: Callable) -> None:
    global _POOL_TASK
    _POOL_TASK = task


def _call_pool_task(item):
    return _POOL_TASK(item)


def map_tasks(
    task: Callable[[T], R],
    items: Sequence[T],
    workers: Optional[int] = 1,
) -> List[R]:
    """``[task(item) for item in items]``, optionally across processes.

    Order is preserved. With ``workers`` resolved to 1 — or fewer than
    two items, where a pool can only add overhead — the map runs in
    process, so callers need no serial/parallel branch of their own.

    Put the bulky shared state (packet arrays, configs) on the *task*
    and keep ``items`` small (ids): the task crosses into workers once
    per pool — for free under ``fork`` — while every item crosses a
    pipe per call.
    """
    workers = resolve_workers(workers)
    items = list(items)
    if workers <= 1 or len(items) < 2:
        return [task(item) for item in items]
    context = multiprocessing.get_context(preferred_start_method())
    _set_pool_task(task)
    try:
        with context.Pool(
            min(workers, len(items)),
            initializer=_set_pool_task,
            initargs=(task,),
        ) as pool:
            return pool.map(_call_pool_task, items)
    finally:
        _set_pool_task(None)


class TaskPool:
    """A process pool that survives many :meth:`map` rounds.

    :func:`map_tasks` pays pool startup on every call, which is fine
    for one batch fan-out but not for a streaming ingestor that fans
    the *same* task out once per chunk round. ``TaskPool`` starts the
    workers once and reuses them; unlike :func:`map_tasks`, per-round
    data must ride on the **items** (the task is shipped once, at pool
    creation), so streaming callers pass ``(uid, carry, chunk)`` tuples
    as items. With ``workers`` resolved to 1 the pool is never created
    and every map runs in process.

    Use as a context manager, or call :meth:`close` explicitly.
    """

    def __init__(self, task: Callable[[T], R], workers: Optional[int] = 1) -> None:
        self.task = task
        self.workers = resolve_workers(workers)
        self._pool = None

    def _ensure_pool(self):
        if self._pool is None:
            context = multiprocessing.get_context(preferred_start_method())
            self._pool = context.Pool(
                self.workers,
                initializer=_set_pool_task,
                initargs=(self.task,),
            )
        return self._pool

    def map(self, items: Sequence[T]) -> List[R]:
        """``[task(item) for item in items]``, order-preserving."""
        items = list(items)
        if self.workers <= 1 or len(items) < 2:
            return [self.task(item) for item in items]
        return self._ensure_pool().map(_call_pool_task, items)

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "TaskPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
