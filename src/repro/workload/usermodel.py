"""Per-user behaviour: app installs, sessions, process-state timelines.

The study's users differ widely in which apps they use and how often
(Fig 1's diversity finding), and §5's what-if analysis depends on apps
being installed-but-unused for days at a stretch. This module models
one user:

* which catalog apps the user installed (Bernoulli per app, with a
  per-user usage-rate multiplier so the same app can be a daily habit
  for one user and a monthly curiosity for another);
* foreground sessions on "active days", placed within the user's awake
  hours and de-overlapped (one app owns the screen at a time);
* audio playback (perceptible) sessions for media apps;
* each app's process-state timeline: NOT_RUNNING -> FOREGROUND ->
  SERVICE/BACKGROUND -> (exponential survival) -> NOT_RUNNING, emitting
  the :class:`~repro.trace.events.ProcessStateEvent` stream analyses
  consume;
* device screen-on intervals (sessions plus brief screen checks), which
  gate screen-on-only background behaviours (widgets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.trace.events import ProcessState, ProcessStateEvent, ScreenEvent, UserInputEvent
from repro.units import DAY, HOUR, MINUTE
from repro.workload.appprofile import AppProfile
from repro.workload.rng import substream

Window = Tuple[float, float]


@dataclass(frozen=True)
class UserConfig:
    """Knobs of the user behaviour model."""

    awake_start_hour_mean: float = 7.5
    awake_end_hour_mean: float = 23.5
    awake_hour_sigma: float = 0.8
    usage_rate_sigma: float = 0.55
    screen_checks_per_day: float = 15.0
    check_duration_range: Tuple[float, float] = (15.0, 60.0)
    session_gap: float = 20.0
    min_session_seconds: float = 20.0
    max_session_seconds: float = 3 * HOUR
    visible_episode_probability: float = 0.12

    def __post_init__(self) -> None:
        if not 0 <= self.awake_start_hour_mean < self.awake_end_hour_mean <= 24:
            raise WorkloadError("awake hours must satisfy 0 <= start < end <= 24")
        if self.screen_checks_per_day < 0:
            raise WorkloadError("screen_checks_per_day must be >= 0")


@dataclass
class Session:
    """One contiguous user interaction with an app."""

    app_id: int
    start: float
    duration: float
    playback_duration: float = 0.0  # perceptible time appended after the
    # interactive part (media apps)

    @property
    def end(self) -> float:
        """End of the interactive (foreground) part."""
        return self.start + self.duration

    @property
    def full_end(self) -> float:
        """End including any playback continuation."""
        return self.end + self.playback_duration


@dataclass
class UserTimeline:
    """Everything the traffic generator needs about one user."""

    user_id: int
    duration: float
    installed: Dict[int, AppProfile]
    sessions: List[Session]
    process_events: List[ProcessStateEvent]
    screen_events: List[ScreenEvent]
    input_events: List[UserInputEvent]
    screen_intervals: np.ndarray  # (n, 2) merged screen-on windows
    fg_windows: Dict[int, List[Window]] = field(default_factory=dict)
    playback_windows: Dict[int, List[Window]] = field(default_factory=dict)
    bg_windows: Dict[int, List[Window]] = field(default_factory=dict)


def merge_intervals(intervals: Sequence[Window]) -> np.ndarray:
    """Merge overlapping/adjacent intervals into a sorted (n, 2) array."""
    if not intervals:
        return np.empty((0, 2))
    arr = np.array(sorted(intervals), dtype=np.float64)
    merged = [list(arr[0])]
    for start, end in arr[1:]:
        if start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return np.array(merged)


def intersect_with(intervals: np.ndarray, window: Window) -> List[Window]:
    """Clip a merged interval array to one window."""
    lo, hi = window
    out: List[Window] = []
    for start, end in intervals:
        s, e = max(start, lo), min(end, hi)
        if e > s:
            out.append((float(s), float(e)))
    return out


class UserModel:
    """Deterministic behaviour model for one user."""

    def __init__(
        self,
        user_id: int,
        catalog: Dict[int, AppProfile],
        seed: int,
        config: UserConfig = UserConfig(),
    ) -> None:
        self.user_id = user_id
        self.catalog = catalog
        self.seed = seed
        self.config = config

    def _rng(self, *keys) -> np.random.Generator:
        return substream(self.seed, "user", self.user_id, *keys)

    # ------------------------------------------------------------------
    # Installation and per-user usage rates
    # ------------------------------------------------------------------
    def installed_apps(self) -> Dict[int, AppProfile]:
        """Which catalog apps this user has installed."""
        rng = self._rng("install")
        installed = {}
        for app_id in sorted(self.catalog):
            profile = self.catalog[app_id]
            if rng.random() < profile.install_probability:
                installed[app_id] = profile
        return installed

    def usage_rate(self, app_id: int, profile: AppProfile) -> Tuple[float, float]:
        """(active-day probability, sessions per active day) for this user.

        A lognormal per-user multiplier makes the same app a daily habit
        for one user and a rarity for another — the heterogeneity behind
        Table 2's long idle stretches.
        """
        rng = self._rng("rate", app_id)
        factor = float(rng.lognormal(0.0, self.config.usage_rate_sigma))
        p = float(np.clip(profile.usage.active_day_probability * factor, 0.005, 1.0))
        sessions = max(profile.usage.sessions_per_active_day * factor, 0.3)
        return p, sessions

    # ------------------------------------------------------------------
    # Timeline construction
    # ------------------------------------------------------------------
    def build_timeline(self, duration: float) -> UserTimeline:
        """Generate the user's full timeline over ``[0, duration)``."""
        if duration <= 0:
            raise WorkloadError(f"duration must be positive: {duration}")
        installed = self.installed_apps()
        sessions = self._generate_sessions(installed, duration)
        screen_intervals = self._screen_intervals(sessions, duration)
        timeline = UserTimeline(
            user_id=self.user_id,
            duration=duration,
            installed=installed,
            sessions=sessions,
            process_events=[],
            screen_events=self._screen_events(screen_intervals),
            input_events=self._input_events(sessions),
            screen_intervals=screen_intervals,
        )
        self._build_state_timelines(timeline)
        return timeline

    def _awake_window(self, rng: np.random.Generator) -> Tuple[float, float]:
        cfg = self.config
        start = rng.normal(cfg.awake_start_hour_mean, cfg.awake_hour_sigma)
        end = rng.normal(cfg.awake_end_hour_mean, cfg.awake_hour_sigma)
        start = float(np.clip(start, 5.0, 11.0))
        end = float(np.clip(end, start + 8.0, 24.0))
        return start * HOUR, end * HOUR

    def _generate_sessions(
        self, installed: Dict[int, AppProfile], duration: float
    ) -> List[Session]:
        cfg = self.config
        awake = self._awake_window(self._rng("awake"))
        n_days = int(np.ceil(duration / DAY))
        candidates: List[Session] = []
        for app_id in sorted(installed):
            profile = installed[app_id]
            p_active, mean_sessions = self.usage_rate(app_id, profile)
            rng = self._rng("sessions", app_id)
            active = rng.random(n_days) < p_active
            for day in np.flatnonzero(active):
                day_start = float(day) * DAY
                n = max(1, int(rng.poisson(mean_sessions)))
                starts = day_start + rng.uniform(awake[0], awake[1], size=n)
                durations = np.clip(
                    rng.exponential(profile.usage.session_minutes * MINUTE, size=n),
                    cfg.min_session_seconds,
                    cfg.max_session_seconds,
                )
                playback_total = profile.usage.playback_minutes_per_active_day
                playbacks = np.zeros(n)
                if playback_total > 0:
                    # Attach the day's playback to one session.
                    playbacks[int(rng.integers(0, n))] = max(
                        rng.exponential(playback_total * MINUTE), 2 * MINUTE
                    )
                for s, d, pb in zip(starts, durations, playbacks):
                    if s < duration:
                        candidates.append(Session(app_id, float(s), float(d), float(pb)))
        return self._deoverlap(candidates, duration)

    def _deoverlap(self, candidates: List[Session], duration: float) -> List[Session]:
        """One app owns the screen at a time: push overlapping sessions back."""
        candidates.sort(key=lambda s: s.start)
        out: List[Session] = []
        cursor = 0.0
        for session in candidates:
            start = max(session.start, cursor)
            if start + self.config.min_session_seconds >= duration:
                continue
            end_cap = duration - 1.0
            dur = min(session.duration, end_cap - start)
            playback = min(session.playback_duration, end_cap - start - dur)
            out.append(Session(session.app_id, start, dur, max(playback, 0.0)))
            cursor = out[-1].full_end + self.config.session_gap
        return out

    def _screen_intervals(
        self, sessions: List[Session], duration: float
    ) -> np.ndarray:
        cfg = self.config
        rng = self._rng("screen")
        intervals: List[Window] = [(s.start, s.end) for s in sessions]
        n_checks = rng.poisson(cfg.screen_checks_per_day * duration / DAY)
        check_starts = rng.uniform(0.0, duration, size=n_checks)
        check_durs = rng.uniform(*cfg.check_duration_range, size=n_checks)
        for s, d in zip(check_starts, check_durs):
            intervals.append((float(s), float(min(s + d, duration))))
        return merge_intervals(intervals)

    def _screen_events(self, intervals: np.ndarray) -> List[ScreenEvent]:
        events: List[ScreenEvent] = []
        for start, end in intervals:
            events.append(ScreenEvent(float(start), True))
            events.append(ScreenEvent(float(end), False))
        return events

    def _input_events(self, sessions: List[Session]) -> List[UserInputEvent]:
        rng = self._rng("input")
        events: List[UserInputEvent] = []
        for session in sessions:
            n = max(1, int(session.duration / 20.0))
            times = session.start + np.sort(rng.uniform(0, session.duration, size=n))
            events.extend(UserInputEvent(float(t), session.app_id) for t in times)
        return events

    def _build_state_timelines(self, timeline: UserTimeline) -> None:
        """Per-app process-state machines; fills windows and events."""
        cfg = self.config
        duration = timeline.duration
        by_app: Dict[int, List[Session]] = {}
        for session in timeline.sessions:
            by_app.setdefault(session.app_id, []).append(session)

        for app_id in sorted(timeline.installed):
            profile = timeline.installed[app_id]
            rng = self._rng("lifecycle", app_id)
            sessions = by_app.get(app_id, [])
            bg_state = (
                ProcessState.SERVICE
                if profile.runs_as_service
                else ProcessState.BACKGROUND
            )
            events = timeline.process_events
            fg: List[Window] = []
            playback: List[Window] = []
            bg: List[Window] = []
            kill_at: float = -1.0  # open background episode's kill time
            bg_open: float = -1.0

            if profile.autostarts:
                # Boot-started service: in the background from t=0 and
                # always restarted, so it is never reaped.
                events.append(ProcessStateEvent(0.0, app_id, bg_state))
                bg_open = 0.0
                kill_at = float("inf")

            def close_background(until: float) -> None:
                nonlocal bg_open, kill_at
                if bg_open < 0:
                    return
                end = min(until, kill_at, duration)
                if end > bg_open:
                    bg.append((bg_open, end))
                if kill_at < until and kill_at < duration:
                    events.append(
                        ProcessStateEvent(kill_at, app_id, ProcessState.NOT_RUNNING)
                    )
                bg_open = -1.0

            for session in sessions:
                close_background(session.start)
                events.append(
                    ProcessStateEvent(session.start, app_id, ProcessState.FOREGROUND)
                )
                cursor = session.end
                visible_for = 0.0
                if session.playback_duration > 0 and profile.perceptible is not None:
                    events.append(
                        ProcessStateEvent(cursor, app_id, ProcessState.PERCEPTIBLE)
                    )
                    playback.append((cursor, session.full_end))
                    cursor = session.full_end
                elif rng.random() < cfg.visible_episode_probability:
                    # Brief secondary-UI (VISIBLE) episode before leaving;
                    # kept shorter than the inter-session gap so state
                    # events never interleave with the next session. The
                    # interactive traffic window covers it, so VISIBLE
                    # carries (a little) energy in Fig 3.
                    visible_for = min(cfg.session_gap * 0.75, session.duration * 0.2)
                    events.append(
                        ProcessStateEvent(cursor, app_id, ProcessState.VISIBLE)
                    )
                    cursor += visible_for
                fg.append((session.start, session.end + visible_for))
                events.append(ProcessStateEvent(cursor, app_id, bg_state))
                bg_open = cursor
                if profile.autostarts:
                    kill_at = float("inf")
                else:
                    kill_at = cursor + rng.exponential(
                        profile.background_survival_days * DAY
                    )
            close_background(duration)

            timeline.fg_windows[app_id] = fg
            timeline.playback_windows[app_id] = playback
            timeline.bg_windows[app_id] = bg
