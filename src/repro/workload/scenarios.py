"""Named study scenarios.

Convenience factories for the configurations used throughout the
project, so scripts, benches and the CLI agree on what "paper scale"
means:

* ``paper``  -- 20 users x 623 days x 342 apps: the full study
  (§3: December 2012 - November 2014). Minutes of generation time,
  tens of millions of packets.
* ``bench``  -- 20 users x 28 days: the benchmark configuration; every
  reported metric is a rate or a distribution, so this reproduces the
  paper's shapes in seconds (EXPERIMENTS.md).
* ``month``  -- 10 users x 30 days: a middle ground for interactive
  exploration.
* ``smoke``  -- 2 users x 3 days: CI-speed sanity checks.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.workload.generator import StudyConfig

#: The paper's study length in days (§3: 623 days).
PAPER_DAYS = 623.0
#: The paper's population size.
PAPER_USERS = 20


def paper_scale(seed: int = 42) -> StudyConfig:
    """The full 20-user, 623-day configuration."""
    return StudyConfig(n_users=PAPER_USERS, duration_days=PAPER_DAYS, seed=seed)


def bench_scale(seed: int = 42) -> StudyConfig:
    """The benchmark configuration (20 users, 28 days)."""
    return StudyConfig(n_users=PAPER_USERS, duration_days=28.0, seed=seed)


def month_scale(seed: int = 42) -> StudyConfig:
    """10 users, 30 days: quick interactive exploration."""
    return StudyConfig(n_users=10, duration_days=30.0, seed=seed)


def smoke_scale(seed: int = 42) -> StudyConfig:
    """2 users, 3 days: fast sanity checks."""
    return StudyConfig(n_users=2, duration_days=3.0, seed=seed)


_SCENARIOS = {
    "paper": paper_scale,
    "bench": bench_scale,
    "month": month_scale,
    "smoke": smoke_scale,
}


def available_scenarios() -> List[str]:
    """Registered scenario names."""
    return sorted(_SCENARIOS)


def get_scenario(name: str, seed: int = 42) -> StudyConfig:
    """Build a scenario config by name."""
    try:
        factory = _SCENARIOS[name.strip().lower()]
    except KeyError:
        raise WorkloadError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None
    return factory(seed=seed)
