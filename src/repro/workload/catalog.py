"""The 342-app catalog.

Named apps are parameterised from the paper itself: every Table 1
case-study app (update period, bytes per update, connection persistence,
behaviour evolution over the study), the Table 2 rarely-used apps, the
three browsers of §4.1, and the system apps Figure 2 calls out (media
server, default email, Google Play). The remaining ~320 apps are
procedurally generated "generic" apps whose parameter distributions
encode §4.1's aggregate findings: most apps' background traffic is a
post-session sync in the first minute; a minority run 5/10-minute
periodic timers (Fig 6's spikes); a few misbehave with lingering
foreground traffic.

The catalog is deterministic: the same :class:`CatalogConfig` always
yields the same list of profiles, independent of everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.units import DAY, HOUR, KB, MB, MINUTE
from repro.workload.appprofile import (
    AppProfile,
    BehaviorSchedule,
    UsagePattern,
    evolving,
)
from repro.workload.behaviors import (
    BulkDownloadBehavior,
    ForegroundSessionBehavior,
    LingeringForegroundBehavior,
    PeriodicUpdateBehavior,
    PostSessionSyncBehavior,
    PushNotificationBehavior,
    StreamingBehavior,
)
from repro.workload.rng import substream

#: Total apps in the study (paper §1: "342 unique apps").
TOTAL_APPS = 342

#: Categories of the procedurally generated apps, with weights.
GENERIC_CATEGORIES = (
    ("game", 0.28),
    ("tools", 0.15),
    ("news", 0.10),
    ("social", 0.09),
    ("shopping", 0.09),
    ("education", 0.08),
    ("media", 0.07),
    ("travel", 0.05),
    ("finance", 0.05),
    ("health", 0.04),
)


@dataclass(frozen=True)
class CatalogConfig:
    """Catalog knobs.

    Attributes:
        total_apps: Catalog size including named apps.
        seed: Seed for the generic apps' parameter sampling.
    """

    total_apps: int = TOTAL_APPS
    seed: int = 2015

    def __post_init__(self) -> None:
        if self.total_apps < len(named_profiles()):
            raise WorkloadError(
                f"total_apps must be >= {len(named_profiles())} named apps"
            )


def _fg(bytes_per_burst: float = 80 * KB, interval: float = 45.0):
    return ForegroundSessionBehavior(
        burst_mean_interval=interval, bytes_per_burst=bytes_per_burst
    )


def named_profiles() -> List[AppProfile]:
    """Profiles of every app the paper names, in a stable order."""
    profiles: List[AppProfile] = []

    # ------------------------------------------------------------------
    # Social media (Table 1)
    # ------------------------------------------------------------------
    profiles.append(
        AppProfile(
            name="com.sina.weibo",
            category="social",
            install_probability=0.22,
            popularity=2.0,
            usage=UsagePattern(
                active_day_probability=0.17,
                sessions_per_active_day=2.0,
                session_minutes=5.0,
            ),
            foreground=_fg(120 * KB),
            background=(
                BehaviorSchedule(
                    # "Frequent, nearly-empty requests" every 5-10 min;
                    # persistent connections carry ~6 updates per flow.
                    PeriodicUpdateBehavior(
                        period=7 * MINUTE,
                        bytes_per_update=65 * KB,
                        jitter_fraction=0.25,
                        conn_lifetime=42 * MINUTE,
                    )
                ),
            ),
            on_background=(PostSessionSyncBehavior(sync_bytes=60 * KB),),
            runs_as_service=True,
            background_survival_days=14.0,
            autostarts=True,
        )
    )
    profiles.append(
        AppProfile(
            name="com.twitter.android",
            category="social",
            install_probability=0.55,
            popularity=5.0,
            usage=UsagePattern(
                active_day_probability=0.85,
                sessions_per_active_day=3.0,
                session_minutes=3.0,
            ),
            foreground=_fg(150 * KB, interval=35.0),
            background=(
                BehaviorSchedule(
                    # Hourly batched prefetch: few joules per megabyte.
                    PeriodicUpdateBehavior(
                        period=1 * HOUR,
                        bytes_per_update=2.5 * MB,
                        conn_lifetime=5 * HOUR,
                        packets_per_burst=6,
                    )
                ),
            ),
            on_background=(PostSessionSyncBehavior(sync_bytes=80 * KB),),
            runs_as_service=False,
            background_survival_days=0.9,
        )
    )
    profiles.append(
        AppProfile(
            name="com.facebook.katana",
            category="social",
            install_probability=0.85,
            popularity=9.0,
            usage=UsagePattern(
                active_day_probability=0.9,
                sessions_per_active_day=4.0,
                session_minutes=4.0,
            ),
            foreground=_fg(200 * KB, interval=35.0),
            background=tuple(
                evolving(
                    # "Previously every 20-60s [21] in 2012", 5 min at the
                    # study's start, 1 h by its end.
                    PeriodicUpdateBehavior(
                        period=5 * MINUTE,
                        bytes_per_update=200 * KB,
                        jitter_fraction=0.015,
                        conn_lifetime=30 * MINUTE,
                    ),
                    PeriodicUpdateBehavior(
                        period=1 * HOUR,
                        bytes_per_update=1.5 * MB,
                        conn_lifetime=4 * HOUR,
                    ),
                )
            ),
            on_background=(PostSessionSyncBehavior(sync_bytes=120 * KB),),
            runs_as_service=False,
            background_survival_days=1.5,
        )
    )
    profiles.append(
        AppProfile(
            name="com.google.android.apps.plus",
            category="social",
            install_probability=0.95,  # "installed by default"
            popularity=1.5,
            usage=UsagePattern(
                active_day_probability=0.06,  # "rarely actively used"
                sessions_per_active_day=1.0,
                session_minutes=2.0,
            ),
            foreground=_fg(100 * KB),
            background=(
                BehaviorSchedule(
                    PeriodicUpdateBehavior(
                        period=1 * HOUR,
                        bytes_per_update=350 * KB,
                        conn_lifetime=6 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=6.0,
            autostarts=True,
        )
    )

    # ------------------------------------------------------------------
    # Periodic update services (Table 1)
    # ------------------------------------------------------------------
    profiles.append(
        AppProfile(
            name="com.sec.spp.push",  # Samsung Push Service
            category="service",
            install_probability=1.0,  # pre-installed on the Galaxy S III
            popularity=1.0,
            usage=UsagePattern(
                active_day_probability=0.58,  # Table 2 row A: 42% bg-only
                sessions_per_active_day=1.0,
                session_minutes=0.5,
            ),
            foreground=_fg(10 * KB, interval=40.0),
            background=(
                BehaviorSchedule(
                    PushNotificationBehavior(
                        keepalive_period=15 * MINUTE,
                        keepalive_bytes=15 * KB,
                        push_mean_interval=4 * HOUR,
                        push_bytes=1 * MB,
                        conn_lifetime=3 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=45.0,
            autostarts=True,
        )
    )
    profiles.append(
        AppProfile(
            name="com.urbanairship.push",
            category="service",
            install_probability=0.5,  # "Library; period varies by app"
            popularity=1.0,
            usage=UsagePattern(
                # The library's "foreground" is its host app's use, and
                # hosts are opened near-daily, so it rarely idles long.
                active_day_probability=0.8,
                sessions_per_active_day=1.0,
                session_minutes=0.5,
            ),
            background=(
                BehaviorSchedule(
                    PushNotificationBehavior(
                        keepalive_period=10 * MINUTE,
                        keepalive_bytes=10 * KB,
                        push_mean_interval=2 * HOUR,
                        push_bytes=300 * KB,
                        conn_lifetime=2 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=45.0,
            autostarts=True,
        )
    )
    profiles.append(
        AppProfile(
            name="com.google.android.apps.maps",
            category="travel",
            install_probability=0.95,
            popularity=4.0,
            usage=UsagePattern(
                active_day_probability=0.35,
                sessions_per_active_day=1.5,
                session_minutes=6.0,
            ),
            foreground=_fg(600 * KB, interval=40.0),
            background=tuple(
                evolving(
                    # Background location service, 20-30 min early on...
                    PeriodicUpdateBehavior(
                        period=28 * MINUTE,
                        bytes_per_update=250 * KB,
                        conn_lifetime=2 * HOUR,
                    ),
                    # ..."decreased to a few hours near the end".
                    PeriodicUpdateBehavior(
                        period=3 * HOUR,
                        bytes_per_update=500 * KB,
                        conn_lifetime=9 * HOUR,
                    ),
                    switch_fraction=0.75,
                )
            ),
            runs_as_service=True,
            background_survival_days=2.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.google.android.gm",  # Gmail
            category="communication",
            install_probability=0.95,
            popularity=6.0,
            usage=UsagePattern(
                active_day_probability=0.8,
                sessions_per_active_day=3.0,
                session_minutes=2.0,
            ),
            foreground=_fg(60 * KB, interval=35.0),
            background=tuple(
                evolving(
                    # 30-minute periodic sync in 2012...
                    PeriodicUpdateBehavior(
                        period=30 * MINUTE,
                        bytes_per_update=200 * KB,
                        conn_lifetime=3 * HOUR,
                    ),
                    # ...later on-demand pushes only.
                    PushNotificationBehavior(
                        keepalive_period=28 * MINUTE,
                        keepalive_bytes=1 * KB,
                        push_mean_interval=2.5 * HOUR,
                        push_bytes=150 * KB,
                        conn_lifetime=4 * HOUR,
                    ),
                )
            ),
            runs_as_service=True,
            background_survival_days=20.0,
            autostarts=True,
        )
    )

    # ------------------------------------------------------------------
    # Widgets (Table 1)
    # ------------------------------------------------------------------
    profiles.append(
        AppProfile(
            name="com.gau.go.launcherex.gowidget.weatherwidget",
            category="widget",
            install_probability=0.14,
            popularity=1.0,
            usage=UsagePattern(
                active_day_probability=0.2,
                sessions_per_active_day=1.0,
                session_minutes=1.0,
            ),
            foreground=_fg(50 * KB),
            background=(
                BehaviorSchedule(
                    PeriodicUpdateBehavior(
                        period=5 * MINUTE,
                        bytes_per_update=30 * KB,
                        jitter_fraction=0.015,
                        conn_lifetime=25 * MINUTE,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=60.0,
            background_screen_on_only=True,  # widgets refresh when visible
            autostarts=True,
        )
    )
    profiles.append(
        AppProfile(
            name="com.gau.go.weatherex",  # Go Weather app
            category="weather",
            install_probability=0.12,
            popularity=1.0,
            usage=UsagePattern(
                active_day_probability=0.4,
                sessions_per_active_day=1.5,
                session_minutes=1.5,
            ),
            foreground=_fg(300 * KB),
            background=tuple(
                evolving(
                    PeriodicUpdateBehavior(
                        period=5 * MINUTE,
                        bytes_per_update=250 * KB,
                        conn_lifetime=30 * MINUTE,
                    ),
                    # "Switched push notification approaches": 40 min.
                    PeriodicUpdateBehavior(
                        period=40 * MINUTE,
                        bytes_per_update=400 * KB,
                        conn_lifetime=3 * HOUR,
                    ),
                )
            ),
            runs_as_service=True,
            background_survival_days=30.0,
            background_screen_on_only=True,
        )
    )
    profiles.append(
        AppProfile(
            name="com.accuweather.android",
            category="weather",
            install_probability=0.22,
            popularity=1.5,
            usage=UsagePattern(
                active_day_probability=0.5,
                sessions_per_active_day=1.5,
                session_minutes=2.0,
            ),
            foreground=_fg(400 * KB),
            background=(
                BehaviorSchedule(
                    # "7 min but high variation" — and unlike its widget,
                    # the app refreshes regardless of screen state.
                    PeriodicUpdateBehavior(
                        period=7 * MINUTE,
                        bytes_per_update=80 * KB,
                        jitter_fraction=0.5,
                        conn_lifetime=40 * MINUTE,
                    )
                ),
            ),
            runs_as_service=False,
            background_survival_days=4.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.accuweather.widget",
            category="widget",
            install_probability=0.12,
            popularity=1.0,
            usage=UsagePattern(
                active_day_probability=0.1,
                sessions_per_active_day=1.0,
                session_minutes=1.0,
            ),
            foreground=_fg(40 * KB, interval=40.0),
            background=(
                BehaviorSchedule(
                    # "~3h": far more efficient than the app.
                    PeriodicUpdateBehavior(
                        period=3 * HOUR,
                        bytes_per_update=1.6 * MB,
                        conn_lifetime=9 * HOUR,
                        packets_per_burst=6,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=60.0,
            background_screen_on_only=True,
            autostarts=True,
        )
    )

    # ------------------------------------------------------------------
    # Streaming (Table 1)
    # ------------------------------------------------------------------
    profiles.append(
        AppProfile(
            name="com.spotify.music",
            category="music",
            install_probability=0.3,
            popularity=2.5,
            usage=UsagePattern(
                active_day_probability=0.3,
                sessions_per_active_day=1.0,
                session_minutes=2.0,
                playback_minutes_per_active_day=35.0,
            ),
            foreground=_fg(250 * KB),
            perceptible=StreamingBehavior(
                chunk_interval=40 * MINUTE, chunk_bytes=22 * MB
            ),
            background=tuple(
                evolving(
                    PeriodicUpdateBehavior(
                        period=5 * MINUTE,
                        bytes_per_update=150 * KB,
                        conn_lifetime=30 * MINUTE,
                    ),
                    PeriodicUpdateBehavior(
                        period=40 * MINUTE,
                        bytes_per_update=600 * KB,
                        conn_lifetime=3 * HOUR,
                    ),
                )
            ),
            runs_as_service=True,
            background_survival_days=2.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.pandora.android",
            category="music",
            install_probability=0.35,
            popularity=2.5,
            usage=UsagePattern(
                active_day_probability=0.25,
                sessions_per_active_day=1.0,
                session_minutes=1.5,
                playback_minutes_per_active_day=30.0,
            ),
            foreground=_fg(150 * KB),
            perceptible=StreamingBehavior(
                chunk_interval=460.0, chunk_bytes=3.5 * MB
            ),
            background=tuple(
                evolving(
                    # "Previously every 1 min [21] in 2012" -> ~2 h.
                    PeriodicUpdateBehavior(
                        period=1 * MINUTE,
                        bytes_per_update=30 * KB,
                        conn_lifetime=20 * MINUTE,
                    ),
                    PeriodicUpdateBehavior(
                        period=2 * HOUR,
                        bytes_per_update=1 * MB,
                        conn_lifetime=6 * HOUR,
                    ),
                    switch_fraction=0.15,
                )
            ),
            runs_as_service=True,
            background_survival_days=1.0,
        )
    )

    # ------------------------------------------------------------------
    # Podcasts (Table 1)
    # ------------------------------------------------------------------
    profiles.append(
        AppProfile(
            name="au.com.shiftyjelly.pocketcasts",
            category="podcast",
            install_probability=0.16,
            popularity=1.2,
            usage=UsagePattern(
                active_day_probability=0.35,
                sessions_per_active_day=1.0,
                session_minutes=1.5,
                playback_minutes_per_active_day=30.0,
            ),
            foreground=_fg(100 * KB),
            # "Downloads an entire podcast in one chunk".
            perceptible=BulkDownloadBehavior(
                download_bytes=45 * MB, probability=0.45, duration=90.0
            ),
            background=(
                BehaviorSchedule(
                    PeriodicUpdateBehavior(
                        period=6 * HOUR,
                        bytes_per_update=8 * KB,  # feed check
                        conn_lifetime=7 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=3.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.bambuna.podcastaddict",
            category="podcast",
            install_probability=0.16,
            popularity=1.2,
            usage=UsagePattern(
                active_day_probability=0.4,
                sessions_per_active_day=1.0,
                session_minutes=1.5,
                playback_minutes_per_active_day=35.0,
            ),
            foreground=_fg(100 * KB),
            # "Downloads smaller chunks as needed" — every ~12 minutes of
            # playback, paying a radio tail per chunk.
            perceptible=StreamingBehavior(
                chunk_interval=12 * MINUTE, chunk_bytes=2.5 * MB
            ),
            background=(
                BehaviorSchedule(
                    PeriodicUpdateBehavior(
                        period=4 * HOUR,
                        bytes_per_update=10 * KB,
                        conn_lifetime=5 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=3.0,
        )
    )

    # ------------------------------------------------------------------
    # Browsers (§4.1)
    # ------------------------------------------------------------------
    profiles.append(
        AppProfile(
            name="com.android.chrome",
            category="browser",
            install_probability=0.9,
            popularity=8.0,
            usage=UsagePattern(
                active_day_probability=0.9,
                sessions_per_active_day=4.0,
                session_minutes=5.0,
            ),
            foreground=_fg(220 * KB, interval=40.0),
            on_background=(
                PostSessionSyncBehavior(sync_bytes=25 * KB, probability=0.6),
                # The new finding: pages keep polling after backgrounding.
                LingeringForegroundBehavior(
                    probability=0.11,
                    median_duration=2 * MINUTE,
                    sigma=2.2,
                    request_period=45.0,
                    bytes_per_request=5 * KB,
                ),
                # "One particularly egregious case": a transit page that
                # polls every ~2 s indefinitely until the tab dies.
                LingeringForegroundBehavior(
                    probability=0.007,
                    median_duration=1 * HOUR,
                    sigma=2.6,
                    request_period=2.0,
                    bytes_per_request=1.5 * KB,
                ),
                # Auto-refreshing pages left open in a tab: slow polls
                # that can outlive the user's interest by *days* —
                # Fig 5's "persist for more than a day" stragglers.
                LingeringForegroundBehavior(
                    probability=0.02,
                    median_duration=3 * HOUR,
                    sigma=2.5,
                    request_period=5 * MINUTE,
                    bytes_per_request=8 * KB,
                ),
            ),
            background_survival_days=3.0,
        )
    )
    profiles.append(
        AppProfile(
            name="org.mozilla.firefox",
            category="browser",
            install_probability=0.25,
            popularity=2.0,
            usage=UsagePattern(
                active_day_probability=0.7,
                sessions_per_active_day=4.0,
                session_minutes=6.0,
            ),
            foreground=_fg(300 * KB, interval=40.0),
            # Firefox blocks background/inactive-tab transfers entirely.
            on_background=(
                PostSessionSyncBehavior(sync_bytes=15 * KB, probability=0.4),
            ),
            background_survival_days=1.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.android.browser",  # stock browser
            category="browser",
            install_probability=1.0,
            popularity=3.0,
            usage=UsagePattern(
                active_day_probability=0.5,
                sessions_per_active_day=3.0,
                session_minutes=5.0,
            ),
            foreground=_fg(280 * KB, interval=40.0),
            on_background=(
                PostSessionSyncBehavior(sync_bytes=15 * KB, probability=0.4),
            ),
            background_survival_days=1.0,
        )
    )

    # ------------------------------------------------------------------
    # System services and Figure 2 apps
    # ------------------------------------------------------------------
    profiles.append(
        AppProfile(
            name="android.process.media",  # Media Server
            category="system",
            install_probability=1.0,
            popularity=10.0,
            usage=UsagePattern(
                active_day_probability=0.75,
                sessions_per_active_day=1.0,
                session_minutes=1.0,
                playback_minutes_per_active_day=45.0,
            ),
            foreground=_fg(30 * KB, interval=40.0),
            # Delegated media fetches: long continuous transfers, so the
            # energy-per-byte is the lowest in Fig 2.
            perceptible=StreamingBehavior(
                chunk_interval=190.0, chunk_bytes=5 * MB, packets_per_burst=8
            ),
            runs_as_service=True,
            background_survival_days=60.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.android.email",  # default email app
            category="communication",
            install_probability=0.65,
            popularity=4.0,
            usage=UsagePattern(
                active_day_probability=0.7,
                sessions_per_active_day=2.0,
                session_minutes=2.0,
            ),
            foreground=_fg(50 * KB, interval=40.0),
            background=(
                BehaviorSchedule(
                    # 15-minute IMAP-style polling with tiny payloads:
                    # "consumes network energy disproportionate to its
                    # data usage" (Fig 2).
                    PeriodicUpdateBehavior(
                        period=10 * MINUTE,
                        bytes_per_update=25 * KB,
                        conn_lifetime=2 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=30.0,
            autostarts=True,
        )
    )
    profiles.append(
        AppProfile(
            name="com.android.vending",  # Google Play
            category="system",
            install_probability=1.0,
            popularity=7.0,
            usage=UsagePattern(
                active_day_probability=0.3,
                sessions_per_active_day=1.0,
                session_minutes=3.0,
            ),
            foreground=_fg(800 * KB, interval=35.0),
            background=(
                BehaviorSchedule(
                    # App auto-updates: rare but very large.
                    PeriodicUpdateBehavior(
                        period=2 * DAY,
                        bytes_per_update=35 * MB,
                        conn_lifetime=2.5 * DAY,
                        packets_per_burst=12,
                    )
                ),
                BehaviorSchedule(
                    PeriodicUpdateBehavior(
                        period=6 * HOUR,
                        bytes_per_update=300 * KB,
                        conn_lifetime=12 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=60.0,
        )
    )

    # ------------------------------------------------------------------
    # Table 2's remaining rarely-used apps (headers are abbreviated in
    # the paper; see DESIGN.md) and other popular apps.
    # ------------------------------------------------------------------
    profiles.append(
        AppProfile(
            name="com.facebook.orca",  # Messenger ("Meso." in Table 2)
            category="social",
            install_probability=0.5,
            popularity=3.0,
            usage=UsagePattern(
                active_day_probability=0.30,
                sessions_per_active_day=2.0,
                session_minutes=2.0,
            ),
            foreground=_fg(60 * KB, interval=35.0),
            background=(
                BehaviorSchedule(
                    PushNotificationBehavior(
                        keepalive_period=20 * MINUTE,
                        keepalive_bytes=1.2 * KB,
                        push_mean_interval=2 * HOUR,
                        push_bytes=8 * KB,
                        conn_lifetime=3 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=40.0,
            autostarts=True,
        )
    )
    profiles.append(
        AppProfile(
            name="com.espn.score_center",  # ESPN
            category="sports",
            install_probability=0.3,
            popularity=2.0,
            usage=UsagePattern(
                active_day_probability=0.87,
                sessions_per_active_day=3.0,
                session_minutes=4.0,
            ),
            foreground=_fg(250 * KB),
            background=(
                BehaviorSchedule(
                    PeriodicUpdateBehavior(
                        period=30 * MINUTE,
                        bytes_per_update=120 * KB,
                        conn_lifetime=2 * HOUR,
                    )
                ),
            ),
            runs_as_service=False,
            background_survival_days=20.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.foursquare.android",  # "4com" in Table 2
            category="social",
            install_probability=0.25,
            popularity=1.5,
            usage=UsagePattern(
                active_day_probability=0.57,
                sessions_per_active_day=1.5,
                session_minutes=2.0,
            ),
            foreground=_fg(120 * KB),
            background=(
                BehaviorSchedule(
                    PeriodicUpdateBehavior(
                        period=20 * MINUTE,
                        bytes_per_update=60 * KB,
                        conn_lifetime=90 * MINUTE,
                    )
                ),
            ),
            runs_as_service=False,
            background_survival_days=25.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.sec.android.widgetapp.ap.hero.accuweather",  # stock weather
            category="widget",
            install_probability=1.0,
            popularity=1.5,
            usage=UsagePattern(
                active_day_probability=0.38,
                sessions_per_active_day=1.0,
                session_minutes=1.0,
            ),
            foreground=_fg(80 * KB),
            background=(
                BehaviorSchedule(
                    PeriodicUpdateBehavior(
                        period=1 * HOUR,
                        bytes_per_update=100 * KB,
                        conn_lifetime=4 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=50.0,
            autostarts=True,
        )
    )
    profiles.append(
        AppProfile(
            name="com.google.android.youtube",
            category="media",
            install_probability=0.95,
            popularity=7.0,
            usage=UsagePattern(
                active_day_probability=0.5,
                sessions_per_active_day=2.0,
                session_minutes=8.0,
                playback_minutes_per_active_day=18.0,
            ),
            foreground=_fg(1 * MB, interval=35.0),
            perceptible=StreamingBehavior(
                chunk_interval=137.0, chunk_bytes=4 * MB, packets_per_burst=8
            ),
            background_survival_days=1.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.dropbox.android",
            category="tools",
            install_probability=0.4,
            popularity=2.0,
            usage=UsagePattern(
                active_day_probability=0.25,
                sessions_per_active_day=1.5,
                session_minutes=3.0,
            ),
            foreground=_fg(500 * KB),
            # "Apps like Dropbox may have valid reasons to upload content
            # immediately after the app is closed."
            on_background=(
                PostSessionSyncBehavior(
                    sync_bytes=4 * MB, mean_delay=20.0, probability=0.8
                ),
            ),
            runs_as_service=True,
            background_survival_days=5.0,
        )
    )
    profiles.append(
        AppProfile(
            name="com.whatsapp",
            category="social",
            install_probability=0.6,
            popularity=5.0,
            usage=UsagePattern(
                active_day_probability=0.8,
                sessions_per_active_day=4.0,
                session_minutes=1.5,
            ),
            foreground=_fg(50 * KB, interval=35.0),
            background=(
                BehaviorSchedule(
                    PushNotificationBehavior(
                        keepalive_period=24 * MINUTE,
                        keepalive_bytes=1 * KB,
                        push_mean_interval=1 * HOUR,
                        push_bytes=15 * KB,
                        conn_lifetime=4 * HOUR,
                    )
                ),
            ),
            runs_as_service=True,
            background_survival_days=45.0,
            autostarts=True,
        )
    )
    profiles.append(
        AppProfile(
            name="com.instagram.android",
            category="social",
            install_probability=0.5,
            popularity=4.0,
            usage=UsagePattern(
                active_day_probability=0.7,
                sessions_per_active_day=3.0,
                session_minutes=3.0,
            ),
            foreground=_fg(400 * KB, interval=32.0),
            background=(
                BehaviorSchedule(
                    PeriodicUpdateBehavior(
                        period=2 * HOUR,
                        bytes_per_update=800 * KB,
                        conn_lifetime=6 * HOUR,
                    )
                ),
            ),
            on_background=(PostSessionSyncBehavior(sync_bytes=200 * KB),),
            runs_as_service=False,
            background_survival_days=2.0,
        )
    )
    return profiles


def _generic_profile(index: int, rng) -> AppProfile:
    """One procedurally generated generic app."""
    categories, weights = zip(*GENERIC_CATEGORIES)
    total = sum(weights)
    category = rng.choice(categories, p=[w / total for w in weights])

    # Popularity follows a Zipf-like tail: a few generic apps are common,
    # most are on one or two devices.
    popularity = float(1.0 / (1.0 + 0.05 * index) ** 0.8)
    install_probability = float(min(0.55, 0.035 + rng.pareto(1.3) * 0.055))
    usage = UsagePattern(
        active_day_probability=float(np.clip(rng.beta(1.0, 4.0), 0.02, 1.0)),
        sessions_per_active_day=float(rng.uniform(1.0, 3.0)),
        session_minutes=float(rng.uniform(1.0, 5.0)),
    )
    foreground = ForegroundSessionBehavior(
        burst_mean_interval=float(rng.uniform(30.0, 80.0)),
        bytes_per_burst=float(rng.lognormal(np.log(60 * KB), 0.8)),
    )

    on_background = [
        PostSessionSyncBehavior(
            sync_bytes=float(rng.lognormal(np.log(30 * KB), 0.7)),
            mean_delay=float(rng.uniform(4.0, 20.0)),
            probability=float(rng.uniform(0.6, 0.95)),
        )
    ]
    # A small minority of generic apps misbehave with lingering
    # foreground traffic (Fig 5's non-browser contributions).
    if rng.random() < 0.05:
        on_background.append(
            LingeringForegroundBehavior(
                probability=float(rng.uniform(0.1, 0.4)),
                median_duration=float(rng.uniform(60.0, 600.0)),
                sigma=float(rng.uniform(1.5, 2.3)),
                request_period=float(rng.uniform(10.0, 120.0)),
                bytes_per_request=float(rng.lognormal(np.log(3 * KB), 0.5)),
            )
        )

    background = ()
    runs_as_service = False
    survival = float(rng.uniform(0.5, 3.0))
    autostarts = False
    # ~18% of generic apps run intentional periodic background updates;
    # 5- and 10-minute timers are the most common choices (Fig 6's
    # spikes at those intervals).
    if rng.random() < 0.07:
        # Periodic updaters are mostly daily-habit apps; a quarter are
        # the rarely-opened kind SS5's kill policy targets.
        if rng.random() < 0.85:
            usage = UsagePattern(
                active_day_probability=float(np.clip(rng.beta(4.0, 2.0), 0.3, 1.0)),
                sessions_per_active_day=usage.sessions_per_active_day,
                session_minutes=usage.session_minutes,
            )
        rarely_used = usage.active_day_probability < 0.3
        if rarely_used:
            # Rarely-opened updaters poll slowly; they drain for days
            # (SS5's target) but are individually modest consumers.
            period = float(rng.choice([1800.0, 3600.0, 7200.0], p=[0.4, 0.4, 0.2]))
        else:
            period = float(
                rng.choice(
                    [300.0, 600.0, 900.0, 1800.0, 3600.0, 7200.0],
                    p=[0.25, 0.25, 0.15, 0.15, 0.12, 0.08],
                )
            )
        background = (
            BehaviorSchedule(
                PeriodicUpdateBehavior(
                    period=period,
                    bytes_per_update=float(rng.lognormal(np.log(40 * KB), 0.9)),
                    conn_lifetime=float(period * rng.uniform(2.0, 8.0)),
                    jitter_fraction=0.02,
                )
            ),
        )
        runs_as_service = rng.random() < 0.35
        survival = float(rng.uniform(2.0, 25.0))
        autostarts = rng.random() < 0.75

    return AppProfile(
        name=f"com.generic.{category}.app{index:03d}",
        category=str(category),
        install_probability=install_probability,
        popularity=popularity,
        usage=usage,
        foreground=foreground,
        background=background,
        on_background=tuple(on_background),
        runs_as_service=runs_as_service,
        background_survival_days=survival,
        autostarts=autostarts,
    )


def build_catalog(config: CatalogConfig = CatalogConfig()) -> List[AppProfile]:
    """Build the full app catalog: named apps first, then generics."""
    profiles = named_profiles()
    rng = substream(config.seed, "catalog")
    for index in range(config.total_apps - len(profiles)):
        profiles.append(_generic_profile(index, rng))
    return profiles
