"""Generator self-calibration checks.

The synthetic study is only a valid substitute for the paper's traces
if the traffic it emits actually has the statistics its catalog
promises. This module closes that loop automatically: it measures, from
a generated dataset alone, each profiled app's background update
interval and per-update volume, and compares them with the catalog
parameters that produced them.

Used by the test suite and available to users who modify the catalog:

    report = calibrate(dataset)
    assert not report.failures
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.periodicity import estimate_update_frequency
from repro.trace.dataset import Dataset
from repro.trace.events import BACKGROUND_STATES
from repro.workload.appprofile import AppProfile
from repro.workload.behaviors import PeriodicUpdateBehavior, PushNotificationBehavior
from repro.workload.catalog import build_catalog


@dataclass(frozen=True)
class CalibrationRow:
    """One app's configured-vs-measured background cadence."""

    app: str
    configured_period: float
    measured_period: float
    configured_bytes: float
    measured_bytes_per_burst: float
    n_bursts: int

    @property
    def period_error(self) -> float:
        """Relative error of the measured update interval."""
        if self.configured_period <= 0:
            return 0.0
        return abs(self.measured_period - self.configured_period) / self.configured_period

    @property
    def ok(self) -> bool:
        """Within tolerance (25% period, 40% bytes) with enough data."""
        if self.n_bursts < 10:
            return True  # not enough samples to judge
        if self.period_error > 0.25:
            return False
        if self.configured_bytes > 0:
            byte_error = (
                abs(self.measured_bytes_per_burst - self.configured_bytes)
                / self.configured_bytes
            )
            if byte_error > 0.4:
                return False
        return True


@dataclass(frozen=True)
class CalibrationReport:
    """All checked apps."""

    rows: Tuple[CalibrationRow, ...]

    @property
    def failures(self) -> List[CalibrationRow]:
        """Rows outside tolerance."""
        return [r for r in self.rows if not r.ok]

    @property
    def checked(self) -> int:
        """Rows with enough data to judge."""
        return sum(1 for r in self.rows if r.n_bursts >= 10)


def _steady_background_period(profile: AppProfile) -> Optional[Tuple[float, float]]:
    """(period, bytes) of the app's *constant* background behaviour.

    Apps with evolving schedules or screen-gated timers are skipped —
    their measured cadence is intentionally a mixture.
    """
    if profile.background_screen_on_only or len(profile.background) != 1:
        return None
    schedule = profile.background[0]
    if (schedule.start_fraction, schedule.end_fraction) != (0.0, 1.0):
        return None
    behavior = schedule.behavior
    # The byte check only makes sense when the periodic updates are the
    # app's *only* background traffic: push notifications, post-session
    # syncs and perceptible playback all share the background states and
    # would legitimately raise the measured bytes per burst. A
    # configured_bytes of 0 disables the byte check, keeping the period
    # check.
    pure = (
        not profile.on_background
        and profile.perceptible is None
    )
    if isinstance(behavior, PeriodicUpdateBehavior):
        return behavior.period, behavior.bytes_per_update if pure else 0.0
    if isinstance(behavior, PushNotificationBehavior):
        return behavior.keepalive_period, 0.0
    return None


def calibrate(
    dataset: Dataset, profiles: Optional[List[AppProfile]] = None
) -> CalibrationReport:
    """Compare a generated dataset against its catalog's promises."""
    profiles = profiles if profiles is not None else build_catalog()
    by_name: Dict[str, AppProfile] = {p.name: p for p in profiles}
    bg_values = np.array([int(s) for s in BACKGROUND_STATES])
    rows: List[CalibrationRow] = []
    for info in dataset.registry:
        profile = by_name.get(info.name)
        if profile is None:
            continue
        expected = _steady_background_period(profile)
        if expected is None:
            continue
        period, bytes_per_update = expected
        groups = []
        total_bytes = 0.0
        for trace in dataset:
            packets = trace.packets
            mask = (packets.apps == info.app_id) & np.isin(
                packets.states, bg_values
            )
            if np.any(mask):
                groups.append(packets.timestamps[mask])
                total_bytes += float(packets.sizes[mask].sum())
        frequency = estimate_update_frequency(groups)
        if frequency.n_bursts == 0:
            continue
        rows.append(
            CalibrationRow(
                app=info.name,
                configured_period=period,
                measured_period=frequency.median_interval,
                configured_bytes=bytes_per_update,
                measured_bytes_per_burst=total_bytes / frequency.n_bursts,
                n_bursts=frequency.n_bursts,
            )
        )
    return CalibrationReport(tuple(rows))
