"""Synthetic study generation.

The paper's raw input — 22 months of packet traces from 20 real users —
is not redistributable, so this package generates a synthetic study with
the same *structure*: a catalog of 342 apps (including every named
case-study app, parameterised from Table 1 and §4 of the paper), per-user
app installation and usage patterns, foreground sessions, process-state
event streams, and the traffic each app class emits (periodic updates,
push keepalives, streaming batches, podcast downloads, browser pages that
keep polling after the app is backgrounded, post-session sync flushes).

Everything is deterministic under a seed: the same
:class:`~repro.workload.generator.StudyConfig` always produces the same
:class:`~repro.trace.dataset.Dataset`.
"""

from repro.workload.behavior import (
    Behavior,
    PacketBlock,
    TrafficContext,
    synthesize_bursts,
)
from repro.workload.behaviors import (
    BulkDownloadBehavior,
    ForegroundSessionBehavior,
    LingeringForegroundBehavior,
    PeriodicUpdateBehavior,
    PostSessionSyncBehavior,
    PushNotificationBehavior,
    StreamingBehavior,
)
from repro.workload.appprofile import (
    AppProfile,
    BehaviorSchedule,
    UsagePattern,
    evolving,
)
from repro.workload.calibration import calibrate
from repro.workload.catalog import build_catalog, CatalogConfig
from repro.workload.usermodel import UserConfig, UserModel
from repro.workload.generator import StudyConfig, StudyGenerator, generate_study
from repro.workload.scenarios import (
    available_scenarios,
    bench_scale,
    get_scenario,
    paper_scale,
    smoke_scale,
)

__all__ = [
    "AppProfile",
    "Behavior",
    "BehaviorSchedule",
    "BulkDownloadBehavior",
    "CatalogConfig",
    "ForegroundSessionBehavior",
    "LingeringForegroundBehavior",
    "PacketBlock",
    "PeriodicUpdateBehavior",
    "PostSessionSyncBehavior",
    "PushNotificationBehavior",
    "StreamingBehavior",
    "StudyConfig",
    "StudyGenerator",
    "TrafficContext",
    "UsagePattern",
    "UserConfig",
    "UserModel",
    "available_scenarios",
    "bench_scale",
    "build_catalog",
    "calibrate",
    "evolving",
    "generate_study",
    "get_scenario",
    "paper_scale",
    "smoke_scale",
]
