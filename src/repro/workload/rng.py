"""Deterministic random-stream management.

Every (user, app, behaviour, purpose) tuple gets its own independent
``numpy.random.Generator`` derived from the study seed via
``SeedSequence`` spawning keyed on a stable hash of the tuple. This
makes generation order-independent: adding an app to the catalog or
reordering behaviours does not perturb any other app's traffic, which
keeps regression tests and ablations comparable.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

Key = Union[int, str]


def _key_entropy(key: Key) -> int:
    """Stable 64-bit entropy for one key component."""
    if isinstance(key, int) and not isinstance(key, bool):
        return key & 0xFFFFFFFFFFFFFFFF
    digest = hashlib.sha256(str(key).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def substream(seed: int, *keys: Key) -> np.random.Generator:
    """An independent generator for ``(seed, *keys)``.

    The same arguments always produce the same stream; different key
    tuples produce streams that are independent for all practical
    purposes (SeedSequence mixing).
    """
    entropy = [seed & 0xFFFFFFFFFFFFFFFF] + [_key_entropy(k) for k in keys]
    return np.random.default_rng(np.random.SeedSequence(entropy))
