"""App profiles: behaviours plus usage characteristics.

An :class:`AppProfile` is the static description of one app in the
catalog — which traffic behaviours it runs in which process states, how
its behaviour evolved over the study (Table 1's "5 min => 1 h" entries),
and how users tend to use it (drives the foreground-session and
idle-days structure that §5's what-if analysis depends on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import WorkloadError
from repro.workload.behavior import Behavior


@dataclass(frozen=True)
class BehaviorSchedule:
    """A behaviour active during a fraction of the study.

    Longitudinal behaviour changes (Facebook's background period going
    from 5 minutes to 1 hour mid-study) are expressed as two schedule
    entries over complementary study fractions, so the same profile
    works at any study duration.
    """

    behavior: Behavior
    start_fraction: float = 0.0
    end_fraction: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_fraction < self.end_fraction <= 1.0:
            raise WorkloadError(
                "schedule fractions must satisfy 0 <= start < end <= 1, got "
                f"[{self.start_fraction}, {self.end_fraction}]"
            )

    def window(self, study_duration: float) -> Tuple[float, float]:
        """Absolute (start, end) seconds of this schedule entry."""
        return (
            self.start_fraction * study_duration,
            self.end_fraction * study_duration,
        )


def evolving(
    before: Behavior, after: Behavior, switch_fraction: float = 0.5
) -> List[BehaviorSchedule]:
    """Two schedule entries modelling a mid-study behaviour change."""
    return [
        BehaviorSchedule(before, 0.0, switch_fraction),
        BehaviorSchedule(after, switch_fraction, 1.0),
    ]


@dataclass(frozen=True)
class UsagePattern:
    """How users interact with an app over time.

    Attributes:
        active_day_probability: Chance any given day has foreground use
            (1.0 = daily app; 0.05 = opened every few weeks). Low values
            create the long background-only stretches of Table 2.
        sessions_per_active_day: Mean foreground sessions on active days.
        session_minutes: Mean session length, minutes.
        playback_minutes_per_active_day: Mean minutes of perceptible
            (audio playback) use on active days; 0 for non-media apps.
    """

    active_day_probability: float = 1.0
    sessions_per_active_day: float = 3.0
    session_minutes: float = 4.0
    playback_minutes_per_active_day: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.active_day_probability <= 1.0:
            raise WorkloadError(
                "active_day_probability must be in (0, 1], got "
                f"{self.active_day_probability}"
            )
        if self.sessions_per_active_day <= 0:
            raise WorkloadError("sessions_per_active_day must be positive")
        if self.session_minutes <= 0:
            raise WorkloadError("session_minutes must be positive")
        if self.playback_minutes_per_active_day < 0:
            raise WorkloadError("playback_minutes_per_active_day must be >= 0")


@dataclass(frozen=True)
class AppProfile:
    """Complete static description of one app.

    Attributes:
        name: Package-style app name (unique in the catalog).
        category: App class ("social", "browser", "widget", ...).
        install_probability: Chance a given user has the app installed.
        popularity: Relative weight used when reporting "popular" apps;
            higher = appears on more users' devices with more use.
        usage: Foreground/playback usage pattern.
        foreground: Behaviour during foreground sessions, if any.
        background: Scheduled behaviours while running in the background
            (periodic updates, push keepalives, podcast downloads).
        on_background: Behaviours triggered by each foreground ->
            background transition (post-session sync, lingering pages).
        perceptible: Behaviour during audio-playback (perceptible)
            sessions, if any.
        runs_as_service: Whether the backgrounded process holds a
            service (labels packets SERVICE vs BACKGROUND in Fig 3).
        background_survival_days: Mean days the process survives in the
            background before the OS or user kills it.
        background_screen_on_only: Restrict scheduled background
            behaviours to screen-on time (widgets refresh when the home
            screen is visible — why the Accuweather *widget* is an order
            of magnitude cheaper than the Accuweather *app* in Table 1).
        autostarts: The process starts at boot and is restarted by the
            OS, so it runs in the background from day one regardless of
            whether the user ever opens it (push services, mail sync,
            pre-installed widgets — and Weibo's notorious resident
            service). Such apps are never reaped by memory pressure;
            only §5's explicit kill policy stops their traffic.
    """

    name: str
    category: str
    install_probability: float = 0.5
    popularity: float = 1.0
    usage: UsagePattern = field(default_factory=UsagePattern)
    foreground: Optional[Behavior] = None
    background: Tuple[BehaviorSchedule, ...] = ()
    on_background: Tuple[Behavior, ...] = ()
    perceptible: Optional[Behavior] = None
    runs_as_service: bool = False
    background_survival_days: float = 2.0
    background_screen_on_only: bool = False
    autostarts: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("app name must be non-empty")
        if not 0.0 <= self.install_probability <= 1.0:
            raise WorkloadError(
                f"install_probability must be in [0, 1]: {self.install_probability}"
            )
        if self.popularity <= 0:
            raise WorkloadError(f"popularity must be positive: {self.popularity}")
        if self.background_survival_days <= 0:
            raise WorkloadError(
                "background_survival_days must be positive: "
                f"{self.background_survival_days}"
            )

    @property
    def has_background_traffic(self) -> bool:
        """True when the app emits any traffic while backgrounded."""
        return bool(self.background or self.on_background)

    def active_background(
        self, study_duration: float
    ) -> List[Tuple[float, float, Behavior]]:
        """Scheduled background behaviours as absolute-time windows."""
        return [
            (*entry.window(study_duration), entry.behavior)
            for entry in self.background
        ]
