"""End-to-end study generation.

Combines the catalog, the user models and the behaviours into a
:class:`~repro.trace.dataset.Dataset` shaped like the paper's: N users,
each with a packet trace, process-state events, screen events and input
events over a configurable number of days.

The default configuration matches the study's population (20 users,
342 apps); duration defaults to 56 days rather than the paper's 623
because every reported metric is either a rate (J/day) or a
distribution, both duration-invariant, and two months generates in
seconds instead of minutes. Pass ``duration_days=623`` for the full
thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.parallel import map_tasks
from repro.trace.arrays import PacketArray
from repro.trace.dataset import AppInfo, AppRegistry, Dataset
from repro.trace.events import EventLog
from repro.trace.trace import UserTrace
from repro.units import DAY
from repro.workload.appprofile import AppProfile
from repro.workload.behavior import (
    Behavior,
    ConnAllocator,
    PacketBlock,
    TrafficContext,
)
from repro.workload.behaviors import PeriodicUpdateBehavior
from repro.workload.catalog import CatalogConfig, build_catalog
from repro.workload.rng import substream
from repro.workload.usermodel import (
    UserConfig,
    UserModel,
    UserTimeline,
    intersect_with,
)

Window = Tuple[float, float]


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of one synthetic study.

    Attributes:
        n_users: Number of participants (paper: 20).
        duration_days: Study length in days (paper: 623).
        seed: Master seed; every random stream derives from it.
        catalog: App-catalog configuration (paper: 342 apps).
        user: User behaviour model configuration.
        label_states: Label every packet with its app's process state
            after generation (needed by most analyses).
    """

    n_users: int = 20
    duration_days: float = 56.0
    seed: int = 42
    catalog: CatalogConfig = field(default_factory=CatalogConfig)
    user: UserConfig = field(default_factory=UserConfig)
    label_states: bool = True

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise WorkloadError(f"n_users must be >= 1: {self.n_users}")
        if self.duration_days <= 0:
            raise WorkloadError(
                f"duration_days must be positive: {self.duration_days}"
            )

    @property
    def duration(self) -> float:
        """Study length in seconds."""
        return self.duration_days * DAY


class StudyGenerator:
    """Deterministic generator for one :class:`StudyConfig`."""

    def __init__(self, config: StudyConfig = StudyConfig()) -> None:
        self.config = config
        self.profiles: List[AppProfile] = build_catalog(config.catalog)
        self.registry = AppRegistry(
            AppInfo(i + 1, p.name, p.category) for i, p in enumerate(self.profiles)
        )
        self.profile_by_id: Dict[int, AppProfile] = {
            i + 1: p for i, p in enumerate(self.profiles)
        }

    def generate(self, workers: int = 1) -> Dataset:
        """Generate the full dataset.

        Args:
            workers: Processes to generate users in parallel with. Each
                user's trace is an independent, deterministically seeded
                computation, so the result is identical for any worker
                count; >1 mainly pays off at paper scale (623 days).
        """
        user_ids = list(range(1, self.config.n_users + 1))
        users = map_tasks(_GenerateUserTask(self.config), user_ids, workers)
        dataset = Dataset(
            self.registry,
            users,
            metadata={
                "seed": self.config.seed,
                "n_users": self.config.n_users,
                "duration_days": self.config.duration_days,
                "total_apps": len(self.profiles),
            },
        )
        if self.config.label_states:
            dataset.label_states()
        return dataset

    # ------------------------------------------------------------------
    # Per-user generation
    # ------------------------------------------------------------------
    def _generate_user(self, user_id: int) -> UserTrace:
        duration = self.config.duration
        model = UserModel(
            user_id,
            {
                app_id: profile
                for app_id, profile in self.profile_by_id.items()
            },
            seed=self.config.seed,
            config=self.config.user,
        )
        timeline = model.build_timeline(duration)
        packets = self._traffic(timeline)
        events = EventLog(
            process_events=timeline.process_events,
            screen_events=timeline.screen_events,
            input_events=timeline.input_events,
        )
        return UserTrace(user_id, 0.0, duration, packets, events)

    def _traffic(self, timeline: UserTimeline) -> PacketArray:
        duration = timeline.duration
        conns = ConnAllocator()
        app_arrays: List[Tuple[int, PacketBlock]] = []

        for app_id in sorted(timeline.installed):
            profile = timeline.installed[app_id]
            ctx = TrafficContext(
                user_id=timeline.user_id,
                app_id=app_id,
                conns=conns,
                study_duration=duration,
            )
            blocks: List[PacketBlock] = []
            blocks.extend(
                self._run_behavior(
                    profile.foreground,
                    timeline.fg_windows.get(app_id, []),
                    ctx,
                    "fg",
                )
            )
            blocks.extend(
                self._run_behavior(
                    profile.perceptible,
                    timeline.playback_windows.get(app_id, []),
                    ctx,
                    "playback",
                )
            )
            bg_windows = timeline.bg_windows.get(app_id, [])
            for slot, behavior in enumerate(profile.on_background):
                blocks.extend(
                    self._run_behavior(behavior, bg_windows, ctx, f"onbg{slot}")
                )
            for slot, (ws, we, behavior) in enumerate(
                profile.active_background(duration)
            ):
                windows = _clip_windows(bg_windows, ws, we)
                if profile.background_screen_on_only and isinstance(
                    behavior, PeriodicUpdateBehavior
                ):
                    # Widget semantics: the timer runs on the wall clock,
                    # but a refresh only happens while the screen is on —
                    # a firing during screen-off is delivered at the next
                    # screen-on (if any), and stacked missed firings
                    # coalesce into one refresh.
                    rng = substream(
                        self.config.seed, "traffic", ctx.user_id, ctx.app_id,
                        f"bg{slot}",
                    )
                    for start, end in windows:
                        times = _snap_to_screen_on(
                            behavior.burst_times(start, end, rng),
                            timeline.screen_intervals,
                            end,
                            min_separation=0.9 * behavior.period,
                        )
                        blocks.append(
                            behavior.emit_bursts(times, start, ctx, rng)
                        )
                elif profile.background_screen_on_only:
                    windows = [
                        piece
                        for window in windows
                        for piece in intersect_with(
                            timeline.screen_intervals, window
                        )
                    ]
                    blocks.extend(
                        self._run_behavior(behavior, windows, ctx, f"bg{slot}")
                    )
                else:
                    blocks.extend(
                        self._run_behavior(behavior, windows, ctx, f"bg{slot}")
                    )
            block = PacketBlock.concat(blocks).clip(0.0, duration)
            if len(block):
                app_arrays.append((app_id, block))

        return _assemble(app_arrays)

    def _run_behavior(
        self,
        behavior: Optional[Behavior],
        windows: List[Window],
        ctx: TrafficContext,
        slot: str,
    ) -> List[PacketBlock]:
        if behavior is None or not windows:
            return []
        rng = substream(self.config.seed, "traffic", ctx.user_id, ctx.app_id, slot)
        return [
            behavior.generate(start, end, ctx, rng)
            for start, end in windows
            if end > start
        ]


def _snap_to_screen_on(
    times: np.ndarray,
    screen_intervals: np.ndarray,
    window_end: float,
    min_separation: float = 0.0,
) -> np.ndarray:
    """Delay each timer firing to the next screen-on moment.

    Firings landing inside a screen-on interval keep their time; others
    move to the start of the next interval. Firings with no screen-on
    before ``window_end`` are dropped; firings snapping within
    ``min_separation`` of an already-delivered refresh coalesce into it
    (a widget shows the freshest data it has — stacked missed timers
    produce one refresh, and a refresh younger than the period is never
    repeated).
    """
    if len(times) == 0 or len(screen_intervals) == 0:
        return np.empty(0)
    starts = screen_intervals[:, 0]
    ends = screen_intervals[:, 1]
    # First interval whose end is after the firing.
    idx = np.searchsorted(ends, times, side="right")
    valid = idx < len(starts)
    idx = np.clip(idx, 0, len(starts) - 1)
    inside = valid & (starts[idx] <= times)
    snapped = np.where(inside, times, starts[idx])
    keep = valid & (snapped < window_end)
    snapped = np.unique(snapped[keep])
    if min_separation <= 0 or len(snapped) < 2:
        return snapped
    kept = [snapped[0]]
    for t in snapped[1:]:
        if t - kept[-1] >= min_separation:
            kept.append(t)
    return np.array(kept)


def _clip_windows(windows: List[Window], lo: float, hi: float) -> List[Window]:
    out = []
    for start, end in windows:
        s, e = max(start, lo), min(end, hi)
        if e > s:
            out.append((s, e))
    return out


def _assemble(app_arrays: List[Tuple[int, PacketBlock]]) -> PacketArray:
    if not app_arrays:
        return PacketArray()
    apps = np.concatenate(
        [np.full(len(block), app_id, dtype=np.uint16) for app_id, block in app_arrays]
    )
    block = PacketBlock.concat([b for _, b in app_arrays])
    packets = PacketArray.from_columns(
        block.timestamps, block.sizes, block.directions, apps, block.conns
    )
    return packets.sorted_by_time()


class _GenerateUserTask:
    """Picklable per-user generation task for multiprocessing."""

    def __init__(self, config: StudyConfig) -> None:
        self.config = config

    def __call__(self, user_id: int) -> UserTrace:
        return StudyGenerator(self.config)._generate_user(user_id)


def generate_study(
    config: StudyConfig = StudyConfig(), workers: int = 1
) -> Dataset:
    """One-call convenience wrapper around :class:`StudyGenerator`."""
    return StudyGenerator(config).generate(workers=workers)
