"""Behaviour framework: traffic blocks, context, burst synthesis.

A *behaviour* turns a time interval during which it is active (an app's
foreground session, a background-running stretch, the aftermath of a
foreground→background transition) into packets. Behaviours emit
:class:`PacketBlock` columns rather than per-packet objects so that
month-scale studies generate in seconds.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.errors import WorkloadError

ArrayLike = Union[np.ndarray, float, int]


@dataclass
class PacketBlock:
    """A batch of packets as parallel columns (unsorted)."""

    timestamps: np.ndarray
    sizes: np.ndarray
    directions: np.ndarray
    conns: np.ndarray

    @classmethod
    def empty(cls) -> "PacketBlock":
        """A block with no packets."""
        return cls(
            np.empty(0, dtype=np.float64),
            np.empty(0, dtype=np.uint32),
            np.empty(0, dtype=np.uint8),
            np.empty(0, dtype=np.uint32),
        )

    @classmethod
    def concat(cls, blocks: Sequence["PacketBlock"]) -> "PacketBlock":
        """Concatenate many blocks (does not sort)."""
        blocks = [b for b in blocks if len(b)]
        if not blocks:
            return cls.empty()
        return cls(
            np.concatenate([b.timestamps for b in blocks]),
            np.concatenate([b.sizes for b in blocks]),
            np.concatenate([b.directions for b in blocks]),
            np.concatenate([b.conns for b in blocks]),
        )

    def clip(self, start: float, end: float) -> "PacketBlock":
        """Keep only packets with ``start <= t < end``."""
        mask = (self.timestamps >= start) & (self.timestamps < end)
        return PacketBlock(
            self.timestamps[mask],
            self.sizes[mask],
            self.directions[mask],
            self.conns[mask],
        )

    @property
    def total_bytes(self) -> int:
        """Sum of packet sizes in the block."""
        return int(self.sizes.sum()) if len(self) else 0

    def __len__(self) -> int:
        return len(self.timestamps)


class ConnAllocator:
    """Hands out device-unique connection id ranges.

    Connection ids only need to be unique per device so that flow
    reconstruction can separate concurrent connections; a plain counter
    suffices. Id 0 is reserved for "no connection".
    """

    def __init__(self) -> None:
        self._next = 1

    def take(self, count: int = 1) -> int:
        """Reserve ``count`` consecutive ids and return the first."""
        if count < 1:
            raise WorkloadError(f"must allocate at least one conn id, got {count}")
        first = self._next
        self._next += count
        return first


@dataclass
class TrafficContext:
    """Everything a behaviour needs besides its own parameters."""

    user_id: int
    app_id: int
    conns: ConnAllocator
    study_duration: float


class Behavior(abc.ABC):
    """Base class for all traffic behaviours."""

    @abc.abstractmethod
    def generate(
        self,
        start: float,
        end: float,
        ctx: TrafficContext,
        rng: np.random.Generator,
    ) -> PacketBlock:
        """Emit the packets this behaviour produces during ``[start, end)``."""

    def describe(self) -> str:
        """Short human-readable parameter summary (for reports/tests)."""
        return type(self).__name__


#: Minimum synthetic packet size (bytes): TCP/IP headers plus a little.
MIN_PACKET_BYTES = 60

#: MTU-ish ceiling for a single synthetic packet.
MAX_PACKET_BYTES = 1500


def synthesize_bursts(
    times: np.ndarray,
    bytes_per_burst: ArrayLike,
    conns: ArrayLike,
    rng: np.random.Generator,
    packets_per_burst: int = 4,
    up_fraction: float = 0.10,
    spread: float = 1.0,
) -> PacketBlock:
    """Expand burst start times into individual packets.

    Each burst becomes ``packets_per_burst`` packets spread over
    ``spread`` seconds: a small uplink request first, downlink responses
    after. Byte totals approximate ``bytes_per_burst`` (never below the
    per-packet minimum). Large bursts are represented by the same small
    packet count with proportionally larger packets — radio energy
    depends on bytes and burst timing, not the exact packetisation, and
    this keeps million-burst studies tractable. (``MAX_PACKET_BYTES`` is
    deliberately not enforced for such aggregated packets.)

    Args:
        times: Burst start times, seconds.
        bytes_per_burst: Scalar or per-burst array of payload bytes.
        conns: Scalar or per-burst array of connection ids.
        rng: Random stream for packet spacing and size jitter.
        packets_per_burst: Packets representing each burst (>= 2).
        up_fraction: Fraction of burst bytes sent uplink.
        spread: Seconds over which a burst's packets spread.
    """
    times = np.asarray(times, dtype=np.float64)
    nb = len(times)
    if nb == 0:
        return PacketBlock.empty()
    if packets_per_burst < 2:
        raise WorkloadError("packets_per_burst must be >= 2")
    if not 0.0 <= up_fraction <= 1.0:
        raise WorkloadError(f"up_fraction must be in [0, 1], got {up_fraction}")

    k = packets_per_burst
    per_burst = np.broadcast_to(
        np.asarray(bytes_per_burst, dtype=np.float64), (nb,)
    )
    conn_ids = np.broadcast_to(np.asarray(conns, dtype=np.uint32), (nb,))

    # Packet time offsets within each burst: request at t, responses after.
    offsets = np.zeros((nb, k))
    if k > 1 and spread > 0:
        offsets[:, 1:] = np.sort(rng.random((nb, k - 1)), axis=1) * spread

    # Byte split: one uplink request, k-1 downlink responses with random
    # proportions. Everything is floored at the minimum packet size.
    up_bytes = np.maximum(per_burst * up_fraction, MIN_PACKET_BYTES)
    down_total = np.maximum(per_burst - up_bytes, MIN_PACKET_BYTES * (k - 1))
    weights = rng.random((nb, k - 1)) + 0.2
    weights /= weights.sum(axis=1, keepdims=True)
    down_bytes = np.maximum(weights * down_total[:, None], MIN_PACKET_BYTES)

    sizes = np.empty((nb, k))
    sizes[:, 0] = up_bytes
    sizes[:, 1:] = down_bytes
    directions = np.zeros((nb, k), dtype=np.uint8)
    directions[:, 1:] = 1  # Direction.DOWNLINK

    return PacketBlock(
        timestamps=(times[:, None] + offsets).ravel(),
        sizes=sizes.ravel().astype(np.uint32),
        directions=directions.ravel(),
        conns=np.repeat(conn_ids, k).astype(np.uint32),
    )


def periodic_times(
    start: float,
    end: float,
    period: float,
    rng: np.random.Generator,
    jitter: float = 0.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Times of a periodic timer firing in ``[start, end)``.

    The first firing is at ``start + phase``; subsequent firings every
    ``period`` seconds with optional uniform jitter of ``+/- jitter``.
    """
    if period <= 0:
        raise WorkloadError(f"period must be positive, got {period}")
    if end <= start + phase:
        return np.empty(0)
    times = np.arange(start + phase, end, period)
    if jitter > 0 and len(times):
        times = times + rng.uniform(-jitter, jitter, size=len(times))
        times = np.sort(np.clip(times, start, np.nextafter(end, start)))
    return times


def poisson_times(
    start: float,
    end: float,
    mean_interval: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Event times of a Poisson process over ``[start, end)``."""
    if mean_interval <= 0:
        raise WorkloadError(f"mean_interval must be positive, got {mean_interval}")
    duration = end - start
    if duration <= 0:
        return np.empty(0)
    n = rng.poisson(duration / mean_interval)
    return np.sort(rng.uniform(start, end, size=n))
