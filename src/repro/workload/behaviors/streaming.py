"""Media streaming and bulk downloads.

Two strategies the paper contrasts:

* :class:`StreamingBehavior` -- batch downloads at a configurable
  interval while the app is audibly playing (the perceptible state).
  §4.2 finds modern streaming apps "moved away from a continuous
  streaming model to larger batch downloads" (Pandora: every 1 min in
  2012 -> ~2 h batches in the study).
* :class:`BulkDownloadBehavior` -- one large transfer at the start of an
  activity window: Pocketcasts "downloads an entire podcast in one
  chunk", the most energy-efficient pattern in Table 1 (0.002 J/MB read
  as J/MB; see DESIGN.md on units).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.behavior import (
    Behavior,
    PacketBlock,
    TrafficContext,
    periodic_times,
    synthesize_bursts,
)


@dataclass
class StreamingBehavior(Behavior):
    """Batched media fetches during playback.

    Attributes:
        chunk_interval: Seconds between batch downloads.
        chunk_bytes: Bytes per batch.
        packets_per_burst: Packets representing one batch.
    """

    chunk_interval: float
    chunk_bytes: float
    packets_per_burst: int = 8

    def __post_init__(self) -> None:
        if self.chunk_interval <= 0:
            raise WorkloadError(
                f"chunk_interval must be positive: {self.chunk_interval}"
            )
        if self.chunk_bytes <= 0:
            raise WorkloadError(f"chunk_bytes must be positive: {self.chunk_bytes}")

    def generate(
        self,
        start: float,
        end: float,
        ctx: TrafficContext,
        rng: np.random.Generator,
    ) -> PacketBlock:
        # First chunk at playback start (the listener needs data now).
        times = periodic_times(
            start, end, self.chunk_interval, rng, jitter=2.0, phase=0.0
        )
        if len(times) == 0:
            return PacketBlock.empty()
        sizes = self.chunk_bytes * rng.lognormal(-0.02, 0.2, size=len(times))
        conn = ctx.conns.take(1)
        return synthesize_bursts(
            times,
            sizes,
            np.uint32(conn),
            rng,
            packets_per_burst=self.packets_per_burst,
            up_fraction=0.03,
            spread=8.0,
        )

    def describe(self) -> str:
        return (
            f"streaming(every={self.chunk_interval:g}s, "
            f"chunk={self.chunk_bytes:g}B)"
        )


@dataclass
class BulkDownloadBehavior(Behavior):
    """One large download at the start of the activity window.

    Attributes:
        download_bytes: Total bytes of the download.
        probability: Chance the window triggers a download at all (new
            episodes do not appear every time the app syncs).
        duration: Seconds the download occupies.
    """

    download_bytes: float
    probability: float = 1.0
    duration: float = 60.0

    def __post_init__(self) -> None:
        if self.download_bytes <= 0:
            raise WorkloadError(
                f"download_bytes must be positive: {self.download_bytes}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise WorkloadError(f"probability must be in [0, 1]: {self.probability}")
        if self.duration <= 0:
            raise WorkloadError(f"duration must be positive: {self.duration}")

    def generate(
        self,
        start: float,
        end: float,
        ctx: TrafficContext,
        rng: np.random.Generator,
    ) -> PacketBlock:
        if end <= start or rng.random() > self.probability:
            return PacketBlock.empty()
        size = self.download_bytes * rng.lognormal(-0.02, 0.2)
        # Represent the download as a dense train of large packets so the
        # radio stays continuously active for `duration` seconds.
        n_packets = 16
        duration = min(self.duration, max(end - start, 1.0))
        times = start + np.linspace(0.0, duration, n_packets)
        conn = ctx.conns.take(1)
        return synthesize_bursts(
            times,
            np.full(n_packets, size / n_packets),
            np.uint32(conn),
            rng,
            packets_per_burst=2,
            up_fraction=0.02,
            spread=duration / n_packets,
        )

    def describe(self) -> str:
        return f"bulk(bytes={self.download_bytes:g})"
