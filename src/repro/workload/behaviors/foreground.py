"""Interactive foreground traffic.

While the user drives the app, requests follow interaction: bursts every
few seconds to tens of seconds, sizes spanning small API calls to page
loads. Foreground traffic is subject to user-perceived latency, so apps
have no freedom to batch it — the paper's reason for focusing its
optimisation attention on background traffic instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.behavior import (
    Behavior,
    PacketBlock,
    TrafficContext,
    poisson_times,
    synthesize_bursts,
)


@dataclass
class ForegroundSessionBehavior(Behavior):
    """Request bursts driven by user interaction.

    Attributes:
        burst_mean_interval: Mean seconds between interaction bursts.
        bytes_per_burst: Mean bytes per burst (page load / API call).
        size_sigma: Lognormal sigma of burst sizes (page loads vary a
            lot more than periodic updates do).
        conns_per_session: Distinct connections a session spreads over.
    """

    burst_mean_interval: float = 15.0
    bytes_per_burst: float = 80_000.0
    size_sigma: float = 1.0
    conns_per_session: int = 3

    def __post_init__(self) -> None:
        if self.burst_mean_interval <= 0:
            raise WorkloadError(
                f"burst_mean_interval must be positive: {self.burst_mean_interval}"
            )
        if self.bytes_per_burst <= 0:
            raise WorkloadError(
                f"bytes_per_burst must be positive: {self.bytes_per_burst}"
            )
        if self.conns_per_session < 1:
            raise WorkloadError(
                f"conns_per_session must be >= 1: {self.conns_per_session}"
            )

    def generate(
        self,
        start: float,
        end: float,
        ctx: TrafficContext,
        rng: np.random.Generator,
    ) -> PacketBlock:
        times = poisson_times(start, end, self.burst_mean_interval, rng)
        # Sessions always open with at least one burst (launch fetch).
        if len(times) == 0 and end > start:
            times = np.array([start + min(1.0, (end - start) / 2)])
        if len(times) == 0:
            return PacketBlock.empty()
        sizes = self.bytes_per_burst * rng.lognormal(
            mean=-0.5 * self.size_sigma**2, sigma=self.size_sigma, size=len(times)
        )
        base = ctx.conns.take(self.conns_per_session)
        conns = base + rng.integers(0, self.conns_per_session, size=len(times))
        return synthesize_bursts(
            times,
            sizes,
            conns.astype(np.uint32),
            rng,
            packets_per_burst=4,
            up_fraction=0.08,
            spread=2.0,
        )

    def describe(self) -> str:
        return (
            f"foreground(every~{self.burst_mean_interval:g}s, "
            f"bytes~{self.bytes_per_burst:g})"
        )
