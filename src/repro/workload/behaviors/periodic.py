"""Timer-driven periodic background updates.

The canonical energy-hungry pattern of §4.2: a timer fires every
``period`` seconds and exchanges ``bytes_per_update`` with a server.
Small, frequent updates pay a full radio tail each time, so energy per
byte is enormous (Weibo: ~190 J/MB) while infrequent batched updates
(Twitter: ~0.65 J/MB) are two orders of magnitude cheaper.

Connections may persist across several updates (``conn_lifetime``);
the paper notes "it is not always the case that there is only one flow
per periodic update".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.behavior import (
    Behavior,
    PacketBlock,
    TrafficContext,
    periodic_times,
    synthesize_bursts,
)


@dataclass
class PeriodicUpdateBehavior(Behavior):
    """Periodic background updates.

    Attributes:
        period: Seconds between updates.
        bytes_per_update: Mean payload bytes per update.
        jitter_fraction: Uniform timer jitter as a fraction of the period.
        size_sigma: Lognormal sigma of per-update size variation.
        conn_lifetime: Seconds a server connection is reused before a
            new one is opened (one flow may carry several updates).
        packets_per_burst: Packets representing one update.
        up_fraction: Fraction of update bytes sent uplink.
    """

    period: float
    bytes_per_update: float
    jitter_fraction: float = 0.05
    size_sigma: float = 0.25
    conn_lifetime: float = 1800.0
    packets_per_burst: int = 4
    up_fraction: float = 0.15

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise WorkloadError(f"period must be positive: {self.period}")
        if self.bytes_per_update <= 0:
            raise WorkloadError(
                f"bytes_per_update must be positive: {self.bytes_per_update}"
            )
        if self.conn_lifetime <= 0:
            raise WorkloadError(
                f"conn_lifetime must be positive: {self.conn_lifetime}"
            )

    def burst_times(
        self, start: float, end: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Timer firing times over ``[start, end)``.

        The first update fires one period after the window opens; the
        immediate post-background burst is PostSessionSyncBehavior's
        job, keeping the two effects separable in analyses.
        """
        return periodic_times(
            start,
            end,
            self.period,
            rng,
            jitter=self.jitter_fraction * self.period,
            phase=self.period,
        )

    def emit_bursts(
        self,
        times: np.ndarray,
        start: float,
        ctx: TrafficContext,
        rng: np.random.Generator,
    ) -> PacketBlock:
        """Turn firing times into packets (connection rotation relative
        to ``start``). Used directly by the generator when timer times
        are externally constrained (screen-on-only widgets)."""
        if len(times) == 0:
            return PacketBlock.empty()
        sizes = self.bytes_per_update * rng.lognormal(
            mean=-0.5 * self.size_sigma**2, sigma=self.size_sigma, size=len(times)
        )
        conn_slot = ((times - start) // self.conn_lifetime).astype(np.int64)
        base = ctx.conns.take(int(conn_slot.max()) + 1)
        return synthesize_bursts(
            times,
            sizes,
            (base + conn_slot).astype(np.uint32),
            rng,
            packets_per_burst=self.packets_per_burst,
            up_fraction=self.up_fraction,
        )

    def generate(
        self,
        start: float,
        end: float,
        ctx: TrafficContext,
        rng: np.random.Generator,
    ) -> PacketBlock:
        return self.emit_bursts(self.burst_times(start, end, rng), start, ctx, rng)

    def describe(self) -> str:
        return (
            f"periodic(period={self.period:g}s, "
            f"bytes={self.bytes_per_update:g})"
        )
