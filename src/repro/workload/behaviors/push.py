"""Push-notification services.

Models the pattern §4.2 calls out for "periodic update services":
a persistent connection kept alive with small periodic keepalives, plus
occasional genuinely useful pushes. The paper's in-lab finding — "one
third-party library transmitted nearly empty HTTP requests every five
minutes for hours, but only provided one user-visible notification
during this time" — is the default parameterisation: tiny keepalives,
rare pushes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.behavior import (
    Behavior,
    PacketBlock,
    TrafficContext,
    periodic_times,
    poisson_times,
    synthesize_bursts,
)


@dataclass
class PushNotificationBehavior(Behavior):
    """Keepalive-heavy push service.

    Attributes:
        keepalive_period: Seconds between keepalive exchanges.
        keepalive_bytes: Payload of one keepalive ("nearly empty").
        push_mean_interval: Mean seconds between real notifications.
        push_bytes: Payload of one real notification.
        conn_lifetime: Seconds before the persistent connection is
            re-established.
    """

    keepalive_period: float
    keepalive_bytes: float = 300.0
    push_mean_interval: float = 6 * 3600.0
    push_bytes: float = 2000.0
    conn_lifetime: float = 2700.0

    def __post_init__(self) -> None:
        if self.keepalive_period <= 0:
            raise WorkloadError(
                f"keepalive_period must be positive: {self.keepalive_period}"
            )
        if self.conn_lifetime <= 0:
            raise WorkloadError(
                f"conn_lifetime must be positive: {self.conn_lifetime}"
            )

    def generate(
        self,
        start: float,
        end: float,
        ctx: TrafficContext,
        rng: np.random.Generator,
    ) -> PacketBlock:
        keepalives = periodic_times(
            start,
            end,
            self.keepalive_period,
            rng,
            jitter=0.05 * self.keepalive_period,
            phase=self.keepalive_period,
        )
        pushes = poisson_times(start, end, self.push_mean_interval, rng)
        times = np.concatenate([keepalives, pushes])
        if len(times) == 0:
            return PacketBlock.empty()
        sizes = np.concatenate(
            [
                np.full(len(keepalives), self.keepalive_bytes),
                np.full(len(pushes), self.push_bytes),
            ]
        )
        order = np.argsort(times, kind="stable")
        times = times[order]
        sizes = sizes[order]
        conn_slot = ((times - start) // self.conn_lifetime).astype(np.int64)
        base = ctx.conns.take(int(conn_slot.max()) + 1)
        return synthesize_bursts(
            times,
            sizes,
            (base + conn_slot).astype(np.uint32),
            rng,
            packets_per_burst=2,  # keepalives are a tiny request/response
            up_fraction=0.5,
        )

    def describe(self) -> str:
        return (
            f"push(keepalive={self.keepalive_period:g}s, "
            f"push_every~{self.push_mean_interval:g}s)"
        )
