"""Traffic around the foreground -> background transition.

Two distinct phenomena §4.1 separates:

* :class:`PostSessionSyncBehavior` -- the legitimate flush right after
  backgrounding (upload the draft, report analytics, finish the fetch).
  Most apps' background traffic is only this, which is why "over 80% of
  apps transmit more than 80% of their background data in the first
  minute after the app is sent to a background state".
* :class:`LingeringForegroundBehavior` -- the paper's new finding:
  foreground-initiated transfers that simply never stop. Chrome lets
  backgrounded pages keep issuing XHR polls ("a popular local transit
  information webpage sends background requests roughly every 2
  seconds, indefinitely"); persistence durations are heavy-tailed and
  "in some cases background traffic flows persist for more than a day!"

Both behaviours are invoked with the background episode's window: start
is the transition instant, end is when the app returned to the
foreground or was killed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError
from repro.workload.behavior import (
    Behavior,
    PacketBlock,
    TrafficContext,
    periodic_times,
    synthesize_bursts,
)


@dataclass
class PostSessionSyncBehavior(Behavior):
    """A flush/sync burst shortly after the app is backgrounded.

    Attributes:
        sync_bytes: Mean bytes of the flush.
        mean_delay: Mean seconds after the transition (exponential,
            capped at 45 s so the burst lands inside the first minute).
        probability: Chance a given transition triggers a flush.
    """

    sync_bytes: float = 40_000.0
    mean_delay: float = 10.0
    probability: float = 0.9

    def __post_init__(self) -> None:
        if self.sync_bytes <= 0:
            raise WorkloadError(f"sync_bytes must be positive: {self.sync_bytes}")
        if self.mean_delay <= 0:
            raise WorkloadError(f"mean_delay must be positive: {self.mean_delay}")
        if not 0.0 <= self.probability <= 1.0:
            raise WorkloadError(f"probability must be in [0, 1]: {self.probability}")

    def generate(
        self,
        start: float,
        end: float,
        ctx: TrafficContext,
        rng: np.random.Generator,
    ) -> PacketBlock:
        if end <= start or rng.random() > self.probability:
            return PacketBlock.empty()
        delay = min(float(rng.exponential(self.mean_delay)), 45.0)
        t = start + delay
        if t >= end:
            return PacketBlock.empty()
        size = self.sync_bytes * rng.lognormal(-0.1, 0.45)
        conn = ctx.conns.take(1)
        return synthesize_bursts(
            np.array([t]),
            size,
            np.uint32(conn),
            rng,
            packets_per_burst=4,
            up_fraction=0.4,  # flushes upload as much as they download
        )

    def describe(self) -> str:
        return f"post-session-sync(bytes~{self.sync_bytes:g})"


@dataclass
class LingeringForegroundBehavior(Behavior):
    """Foreground traffic that persists after backgrounding.

    Persistence duration is lognormal (median ``median_duration``,
    shape ``sigma``), producing the heavy tail of Fig 5 — most episodes
    last minutes, a few last more than a day. While lingering, requests
    fire every ``request_period`` seconds (auto-refresh, ad rotations,
    analytics beacons).

    Attributes:
        probability: Chance a transition leaves lingering traffic (not
            every Chrome session ends on an auto-refreshing page).
        median_duration: Median persistence, seconds.
        sigma: Lognormal shape; ~2.2 gives the paper's minutes-to-days
            spread.
        request_period: Seconds between lingering requests.
        bytes_per_request: Mean bytes per lingering request.
    """

    probability: float = 0.35
    median_duration: float = 180.0
    sigma: float = 2.2
    request_period: float = 30.0
    bytes_per_request: float = 4_000.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise WorkloadError(f"probability must be in [0, 1]: {self.probability}")
        if self.median_duration <= 0:
            raise WorkloadError(
                f"median_duration must be positive: {self.median_duration}"
            )
        if self.request_period <= 0:
            raise WorkloadError(
                f"request_period must be positive: {self.request_period}"
            )
        if self.bytes_per_request <= 0:
            raise WorkloadError(
                f"bytes_per_request must be positive: {self.bytes_per_request}"
            )

    def draw_duration(self, rng: np.random.Generator) -> float:
        """Sample one persistence duration (seconds)."""
        return float(
            np.exp(np.log(self.median_duration) + self.sigma * rng.standard_normal())
        )

    def generate(
        self,
        start: float,
        end: float,
        ctx: TrafficContext,
        rng: np.random.Generator,
    ) -> PacketBlock:
        if end <= start or rng.random() > self.probability:
            return PacketBlock.empty()
        stop = min(start + self.draw_duration(rng), end)
        times = periodic_times(
            start,
            stop,
            self.request_period,
            rng,
            jitter=0.1 * self.request_period,
            phase=min(2.0, self.request_period),
        )
        if len(times) == 0:
            return PacketBlock.empty()
        sizes = self.bytes_per_request * rng.lognormal(-0.2, 0.6, size=len(times))
        # Lingering flows reuse the page's connections for a long time:
        # one connection per hour of lingering.
        conn_slot = ((times - start) // 3600.0).astype(np.int64)
        base = ctx.conns.take(int(conn_slot.max()) + 1)
        return synthesize_bursts(
            times,
            sizes,
            (base + conn_slot).astype(np.uint32),
            rng,
            packets_per_burst=3,
            up_fraction=0.2,
            spread=0.8,
        )

    def describe(self) -> str:
        return (
            f"lingering(p={self.probability:g}, "
            f"median={self.median_duration:g}s, "
            f"every={self.request_period:g}s)"
        )
