"""Concrete traffic behaviours.

Each class models one traffic pattern the paper documents:

* :class:`PeriodicUpdateBehavior` -- timer-driven background updates
  (social media sync, widget refresh, location reporting, chunked
  podcast downloads). §4.2's main subject.
* :class:`PushNotificationBehavior` -- persistent-connection keepalives
  plus occasional real pushes (Samsung Push, Urbanairship, GCM-style).
* :class:`StreamingBehavior` -- batched media downloads while audibly
  playing (Spotify/Pandora in the perceptible state).
* :class:`BulkDownloadBehavior` -- one large download at the start of an
  activity window (Pocketcasts' whole-episode strategy).
* :class:`ForegroundSessionBehavior` -- interactive traffic while the
  user drives the app.
* :class:`PostSessionSyncBehavior` -- a flush/sync burst right after the
  app is backgrounded; the dominant background pattern for most apps
  (§4.1: >80% of background bytes in the first minute for 84% of apps).
* :class:`LingeringForegroundBehavior` -- foreground-initiated traffic
  that fails to stop after backgrounding (Chrome's auto-refreshing web
  pages), persisting for minutes to days. §4.1's new finding.
"""

from repro.workload.behaviors.periodic import PeriodicUpdateBehavior
from repro.workload.behaviors.push import PushNotificationBehavior
from repro.workload.behaviors.streaming import StreamingBehavior, BulkDownloadBehavior
from repro.workload.behaviors.foreground import ForegroundSessionBehavior
from repro.workload.behaviors.lingering import (
    LingeringForegroundBehavior,
    PostSessionSyncBehavior,
)

__all__ = [
    "BulkDownloadBehavior",
    "ForegroundSessionBehavior",
    "LingeringForegroundBehavior",
    "PeriodicUpdateBehavior",
    "PostSessionSyncBehavior",
    "PushNotificationBehavior",
    "StreamingBehavior",
]
