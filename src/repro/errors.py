"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single handler
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TraceError(ReproError):
    """Malformed or inconsistent trace data (unsorted packets, unknown
    app ids, negative sizes, ...)."""


class ModelError(ReproError):
    """Invalid radio power-model configuration (negative timers, powers,
    or throughput coefficients)."""


class WorkloadError(ReproError):
    """Invalid workload/generator configuration (empty catalogs, negative
    durations, malformed behaviour parameters)."""


class AnalysisError(ReproError):
    """An analysis was asked for something the input cannot provide
    (e.g. unknown app name, empty dataset where data is required)."""


class NeedsPacketDetail(AnalysisError):
    """A per-packet analysis was handed a totals-only readout.

    Totals-tier readouts (a finished :class:`repro.stream.StreamResult`
    or a checkpoint loaded with
    :func:`repro.core.readout.readout_from_checkpoint`) carry keyed
    energy/byte totals but no per-packet arrays. Analyses that replay
    individual packets (transitions, timelines, what-if replays,
    Figs 4-6) declare that requirement through
    :func:`repro.core.readout.require_packet_detail`, which raises this
    error — with the fix spelled out — instead of letting the analysis
    crash mid-reduction on a missing attribute.
    """

    def __init__(self, analysis: str, reason: str = "") -> None:
        self.analysis = analysis
        self.reason = reason
        detail = f" ({reason})" if reason else ""
        super().__init__(
            f"{analysis} needs per-packet arrays, but this readout "
            f"carries keyed totals only{detail}. Re-run the batch "
            "pipeline on the full study (the same command without "
            "--from-checkpoint, using --dataset or the generation "
            "flags) to compute it."
        )

    def __reduce__(self):
        return (NeedsPacketDetail, (self.analysis, self.reason))


class StreamError(ReproError):
    """Invalid streaming-ingestion state (out-of-order chunks, a
    checkpoint that does not match the source or model, feeding a
    finished stream, a torn or truncated checkpoint file)."""


class ShardError(StreamError):
    """Invalid sharded-ingestion state: a torn or mismatched shard
    manifest, a shard checkpoint whose header does not match the
    manifest (wrong shard index, wrong parent signature, wrong user
    set), or a merge attempted over checkpoints from different plans.
    A :class:`StreamError` subclass so generic stream handlers keep
    working."""


class ShardIncomplete(ShardError):
    """A merge found a shard that is missing or not finished.

    Raised by :func:`repro.shard.merge_shard_checkpoints` when a
    shard's checkpoint is absent, mid-run (users not all ``done``), or
    readable only as a stale ``.prev`` generation — anything short of
    every user of every shard being done. The merge refuses rather than
    fold partial totals into a silently wrong study readout; re-run the
    missing shards (``repro shard run``) and merge again. Exit code 5
    on the CLI.
    """

    def __init__(self, manifest_path: str, indices, reason: str) -> None:
        self.manifest_path = str(manifest_path)
        self.indices = list(indices)
        self.reason = reason
        shard_list = ", ".join(str(i) for i in self.indices)
        super().__init__(
            f"shard(s) {shard_list} of plan {self.manifest_path} not "
            f"mergeable: {reason}. Re-run them with `repro shard run "
            f"{self.manifest_path}` and merge again."
        )

    def __reduce__(self):
        return (
            ShardIncomplete,
            (self.manifest_path, self.indices, self.reason),
        )


class TransportError(ShardError):
    """Shards could not be placed on any transport executor.

    Raised by :class:`repro.shard.coordinator.ShardCoordinator` (and
    surfaced by :class:`repro.shard.transport.HttpTransport`) when a
    shard exhausts its retry budget across the worker pool — every
    worker dead, repeatedly dropped dispatches, or checkpoints that
    keep failing verification in flight. Carries the indices still
    unplaced so the operator can re-run exactly those shards. The merge
    is never attempted over a partial set, so a transport failure can
    delay a study readout but never corrupt one. Exit code 8 on the
    CLI.
    """

    def __init__(self, manifest_path: str, indices, reason: str) -> None:
        self.manifest_path = str(manifest_path)
        self.indices = list(indices)
        self.reason = reason
        shard_list = ", ".join(str(i) for i in self.indices)
        super().__init__(
            f"shard(s) {shard_list} of plan {self.manifest_path} could "
            f"not be placed: {reason}. Check the worker pool and re-run "
            f"`repro shard run {self.manifest_path}`."
        )

    def __reduce__(self):
        return (
            TransportError,
            (self.manifest_path, self.indices, self.reason),
        )


class FollowError(StreamError):
    """Invalid live-follow state: a tail cursor that no longer matches
    the file behind it, an npz drop directory whose app registry is not
    an extension of the one already followed, or a follow checkpoint
    from a different source/window configuration. A
    :class:`StreamError` subclass so generic stream handlers keep
    working."""


class SourceTruncated(FollowError):
    """A tailed source shrank underneath the follower.

    Raised by the tailing sources when a stat of the followed file
    reports fewer bytes than the cursor already consumed — the file was
    truncated or replaced, so the cursor's byte offset no longer points
    at the data whose totals were folded. The follower checkpoints and
    stops rather than fold a rewritten history into the windows; point
    ``repro follow`` at the new file with a fresh checkpoint. Exit
    code 7 on the CLI.
    """

    def __init__(self, path: str, consumed: int, size: int) -> None:
        self.path = str(path)
        self.consumed = int(consumed)
        self.size = int(size)
        super().__init__(
            f"tailed file {self.path} shrank from {self.consumed} "
            f"consumed byte(s) to {self.size} — it was truncated or "
            "replaced, so the follow cursor is invalid. Start a fresh "
            "follow (new --checkpoint) against the current file."
        )

    def __reduce__(self):
        return (SourceTruncated, (self.path, self.consumed, self.size))


class FaultInjected(ReproError):
    """An error thrown on purpose by :mod:`repro.faults` at an armed
    fault site. Only ever raised while a :class:`~repro.faults.FaultPlan`
    is installed — seeing one outside a chaos test is itself a bug."""


class TaskFailure(ReproError):
    """A task that exhausted its retry budget in the hardened pool.

    Carries everything needed to triage the poison task: the item's
    position and repr, how many attempts were made, the failure ``kind``
    (``"error"``, ``"crash"``, or ``"timeout"``) and the stringified
    cause. In quarantine mode these appear as result slots / in
    ``TaskPool.failures`` instead of aborting the run.
    """

    def __init__(
        self,
        index: int,
        item_repr: str,
        attempts: int,
        kind: str,
        cause: str,
    ) -> None:
        self.index = index
        self.item_repr = item_repr
        self.attempts = attempts
        self.kind = kind
        self.cause = cause
        super().__init__(
            f"task {index} ({item_repr}) failed after {attempts} "
            f"attempt(s) [{kind}]: {cause}"
        )

    def __reduce__(self):
        # Exception pickling calls __init__ with .args by default, which
        # does not match this signature; failures must survive the trip
        # back through a result pipe.
        return (
            TaskFailure,
            (self.index, self.item_repr, self.attempts, self.kind, self.cause),
        )
