"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so that
callers can catch everything from this package with a single handler
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TraceError(ReproError):
    """Malformed or inconsistent trace data (unsorted packets, unknown
    app ids, negative sizes, ...)."""


class ModelError(ReproError):
    """Invalid radio power-model configuration (negative timers, powers,
    or throughput coefficients)."""


class WorkloadError(ReproError):
    """Invalid workload/generator configuration (empty catalogs, negative
    durations, malformed behaviour parameters)."""


class AnalysisError(ReproError):
    """An analysis was asked for something the input cannot provide
    (e.g. unknown app name, empty dataset where data is required)."""


class StreamError(ReproError):
    """Invalid streaming-ingestion state (out-of-order chunks, a
    checkpoint that does not match the source or model, feeding a
    finished stream)."""
