"""The CLI's exit-code vocabulary, in one place.

Every ``repro`` subcommand maps its typed failures onto this table;
the docs repeat it (docs/SERVING.md, docs/SCALING.md,
docs/MONITORING.md) and ``tests/test_docs_consistency.py`` asserts the
union of the documented tables equals exactly the constants defined
here, so the numbers cannot drift.

* ``EXIT_OK`` — success.
* ``EXIT_USAGE`` — argparse-level misuse (argparse's own convention).
* ``EXIT_NEEDS_PACKET_DETAIL`` — a per-packet analysis was asked of a
  totals-only readout (:class:`~repro.errors.NeedsPacketDetail`).
* ``EXIT_STORE_MISS`` — ``--store-only`` and the artefact is not in
  the store.
* ``EXIT_SHARD_INCOMPLETE`` — ``repro shard merge`` found unfinished
  shards (:class:`~repro.errors.ShardIncomplete`).
* ``EXIT_FOLLOW_INTERRUPTED`` — ``repro follow`` stopped on
  SIGTERM/SIGINT after writing its checkpoint; rerun with ``--resume``.
* ``EXIT_SOURCE_TRUNCATED`` — a tailed source shrank under the
  follower (:class:`~repro.errors.SourceTruncated`); the cursor no
  longer points at the data it consumed.
* ``EXIT_TRANSPORT_FAILED`` — a remote-transport shard run could not
  place every shard after retries and reassignment
  (:class:`~repro.errors.TransportError`); no merge was attempted.
"""

EXIT_OK = 0
EXIT_USAGE = 2
EXIT_NEEDS_PACKET_DETAIL = 3
EXIT_STORE_MISS = 4
EXIT_SHARD_INCOMPLETE = 5
EXIT_FOLLOW_INTERRUPTED = 6
EXIT_SOURCE_TRUNCATED = 7
EXIT_TRANSPORT_FAILED = 8
