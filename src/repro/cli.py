"""Command-line interface.

::

    repro generate --users 20 --days 56 --out study.npz
    repro figure 3 --dataset study.npz
    repro table 1 --users 10 --days 28
    repro report --users 20 --days 28
    repro whatif --app com.sina.weibo --idle-days 3
    repro lab

Every analysis command accepts either ``--dataset FILE`` (a saved
study) or generation parameters (``--users/--days/--seed``), in which
case the study is generated on the fly. All of them also take
``--workers N`` (parallel generation + attribution; 0 = one per CPU),
``--cache-dir DIR`` (reuse attribution across runs over the same
dataset) and ``--metrics-json FILE`` (timings, throughput and cache
counters; ``-`` for stdout).

``figure``, ``table``, ``report`` and ``headlines`` additionally take
``--from-checkpoint CK.npz``: the totals-tier analyses (Figs 1-3,
Table 1, the background headlines) then run from a finished
``repro ingest`` checkpoint — byte-identical output, no packet arrays
ever loaded. Analyses that replay packets (Figs 4-6, Table 2, the
what-ifs) exit with a typed error naming the batch command to run
instead::

    repro ingest --dataset study.npz --checkpoint ck.npz
    repro figure fig3 --from-checkpoint ck.npz

``--store DIR`` (on ``figure 1-3``, ``table 1`` and ``headlines``)
answers from a persistent results store — first run renders and
caches, repeat runs are one lookup; ``--store-only`` never renders
(exit 4 on a miss). ``repro serve`` exposes the same artefacts over
HTTP with ETag revalidation, and ``repro store ls|gc|invalidate``
maintains a store directory. The contract is docs/SERVING.md::

    repro ingest --dataset study.npz --checkpoint ck.npz
    repro serve --from-checkpoint ck.npz --store results/ --port 8080
    curl http://127.0.0.1:8080/figures/fig3
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from repro import RunMetrics, StudyConfig, StudyEnergy, generate_study
from repro.core.readout import readout_from_checkpoint, require_packet_detail
from repro.errors import (
    AnalysisError,
    NeedsPacketDetail,
    ReproError,
    ShardIncomplete,
    SourceTruncated,
)
from repro.exitcodes import (
    EXIT_FOLLOW_INTERRUPTED,
    EXIT_NEEDS_PACKET_DETAIL,
    EXIT_OK,
    EXIT_SHARD_INCOMPLETE,
    EXIT_SOURCE_TRUNCATED,
    EXIT_STORE_MISS,
    EXIT_USAGE,
)
from repro.follow import (
    DEFAULT_WINDOWS,
    Follower,
    NpzDropSource,
    TailCsvSource,
    parse_window_spec,
)
from repro.core import (
    background_energy_fraction,
    bytes_since_foreground,
    case_study_table,
    first_minute_fractions,
    kill_policy_savings,
    persistence_durations,
    state_energy_fractions,
    top10_appearance_counts,
    top_consumers,
    total_savings,
    trace_timeline,
)
from repro.core import report
from repro.core.transitions import fraction_of_apps_above
from repro.core.whatif import savings_on_affected_days
from repro.core.appreport import app_report, render_app_report
from repro.core.headlines import headline_stats, totals_headline_stats
from repro.units import battery_fraction
from repro.core.longitudinal import weekly_background_energy, improved_apps
from repro.core.recommend import recommendation_report
from repro.policy import (
    available_policies,
    evaluate_policy,
    get_policy,
    parse_params,
)
from repro.radio.registry import available_models, get_model
from repro.shard import (
    ShardManifest,
    default_shard_dir,
    merge_to_checkpoint,
    merged_readout,
    run_all_shards,
)
from repro.stream import (
    DEFAULT_CHUNK_SIZE,
    CsvStreamSource,
    NpzStreamSource,
    StreamIngestor,
)
from repro.trace.io_text import dataset_from_csv
from repro.trace.summary import summarize
from repro.store import (
    ResultStore,
    make_server,
    render_analysis,
    render_headline_rows,
    store_key_for,
)
from repro.store.render import ANALYSIS_KINDS
from repro.workload.scenarios import available_scenarios, get_scenario
from repro.core.whatif import os_coalescing_savings
from repro.lab import (
    CHROME,
    FIREFOX,
    STOCK_BROWSER,
    browser_background_experiment,
    push_library_experiment,
    xhr_test_page,
)
from repro.trace.dataset import Dataset

# Exit codes live in repro.exitcodes (the one table docs and tests
# check against); the names above are re-exported here because this
# module has always been their import site.

#: Table 2's six apps.
TABLE2_APPS = (
    "com.sec.spp.push",
    "com.sina.weibo",
    "com.facebook.orca",
    "com.espn.score_center",
    "com.foursquare.android",
    "com.sec.android.widgetapp.ap.hero.accuweather",
)


def _add_study_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--dataset", help="load a saved study (.npz)")
    parser.add_argument("--users", type=int, default=20)
    parser.add_argument("--days", type=float, default=28.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--model",
        default="lte",
        choices=available_models(),
        help="radio power model for energy attribution",
    )
    parser.add_argument(
        "--scenario",
        choices=available_scenarios(),
        help="named study scale (overrides --users/--days)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for generation and attribution (0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        help="directory for the on-disk attribution cache",
    )
    parser.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics (timings, throughput, cache counters) "
        "as JSON; '-' for stdout",
    )


def _add_checkpoint_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--from-checkpoint",
        metavar="CK.npz",
        help=(
            "run the totals-tier analyses from a finished `repro ingest` "
            "checkpoint instead of loading or generating a study"
        ),
    )


def _add_store_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        metavar="DIR",
        help=(
            "serve the totals-tier result from a persistent results store: "
            "render once, answer repeat runs from the cached artefact"
        ),
    )
    parser.add_argument(
        "--store-only",
        action="store_true",
        help=(
            "never render: print the cached artefact or exit "
            f"{EXIT_STORE_MISS} on a store miss"
        ),
    )


def _metrics(args: argparse.Namespace) -> RunMetrics:
    return getattr(args, "_run_metrics", None) or RunMetrics()


def _study(
    args: argparse.Namespace, dataset=None, lazy: bool = False
) -> StudyEnergy:
    if dataset is None:
        dataset = _load_dataset(args)
    return StudyEnergy(
        dataset,
        model=get_model(getattr(args, "model", "lte")),
        workers=getattr(args, "workers", 1),
        cache_dir=getattr(args, "cache_dir", None),
        metrics=_metrics(args),
        lazy=lazy,
    )


def _load_dataset(args: argparse.Namespace) -> Dataset:
    metrics = _metrics(args)
    if args.dataset:
        with metrics.stage("load"):
            return Dataset.load(args.dataset)
    if getattr(args, "scenario", None):
        config = get_scenario(args.scenario, seed=args.seed)
    else:
        config = StudyConfig(
            n_users=args.users, duration_days=args.days, seed=args.seed
        )
    print(
        f"generating study: {config.n_users} users x "
        f"{config.duration_days:g} days (seed {config.seed}) ...",
        file=sys.stderr,
    )
    with metrics.stage("generate"):
        dataset = generate_study(config, workers=getattr(args, "workers", 1))
    metrics.count("generation.packets", dataset.total_packets)
    return dataset


def _cmd_generate(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    dataset.save(args.out)
    print(f"wrote {args.out}: {dataset}")
    return 0


def _figure_number(value: str) -> int:
    """Accept ``3`` and ``fig3`` alike."""
    number = value[3:] if value.lower().startswith("fig") else value
    try:
        parsed = int(number)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a figure: {value!r}")
    if parsed not in range(1, 7):
        raise argparse.ArgumentTypeError(f"unknown figure {value!r} (1-6)")
    return parsed


def _table_number(value: str) -> int:
    """Accept ``1`` and ``table1`` alike."""
    number = value[5:] if value.lower().startswith("table") else value
    try:
        parsed = int(number)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a table: {value!r}")
    if parsed not in (1, 2):
        raise argparse.ArgumentTypeError(f"unknown table {value!r} (1-2)")
    return parsed


def _checkpoint_readout(args: argparse.Namespace):
    """The totals-tier readout of ``--from-checkpoint``, timed."""
    with _metrics(args).stage("load"):
        return readout_from_checkpoint(args.from_checkpoint)


def _store_source(args: argparse.Namespace):
    """The readout a ``--store`` command keys and (maybe) renders from.

    A checkpoint readout when ``--from-checkpoint`` is given, otherwise
    a **lazy** :class:`StudyEnergy` — computing the store key only
    reads ``dataset.fingerprint()``, so a warm store hit never runs
    attribution at all.
    """
    if getattr(args, "from_checkpoint", None):
        return _checkpoint_readout(args)
    return _study(args, lazy=True)


def _store_render(args: argparse.Namespace, source, analysis: str) -> int:
    """Serve one totals-tier artefact through the results store."""
    store = ResultStore(args.store, metrics=_metrics(args))
    key = store_key_for(source, analysis)
    if args.store_only:
        result = store.get(key)
        if result is None:
            print(
                f"error: no cached {analysis} for key {key.digest()} in "
                f"{args.store} (drop --store-only to render it)",
                file=sys.stderr,
            )
            return EXIT_STORE_MISS
    else:
        result = store.get_or_render(
            key,
            lambda: render_analysis(analysis, source).encode("utf-8"),
            kind=ANALYSIS_KINDS[analysis],
        )
    print(result.text)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    number = args.number
    if args.store and number in (1, 2, 3):
        return _store_render(args, _store_source(args), f"fig{number}")
    if args.from_checkpoint:
        readout = _checkpoint_readout(args)
        if number == 1:
            print(report.render_fig1(top10_appearance_counts(readout)))
        elif number == 2:
            print(
                report.render_fig2(
                    top_consumers(readout, by="energy"),
                    top_consumers(readout, by="data"),
                )
            )
        elif number == 3:
            print(report.render_fig3(state_energy_fractions(readout)))
        else:
            require_packet_detail(readout, f"figure {number}")
        return 0
    dataset = _load_dataset(args)
    if number in (2, 3):
        study = _study(args, dataset)
    if number == 1:
        print(report.render_fig1(top10_appearance_counts(dataset)))
    elif number == 2:
        print(
            report.render_fig2(
                top_consumers(study, by="energy"), top_consumers(study, by="data")
            )
        )
    elif number == 3:
        print(report.render_fig3(state_energy_fractions(study)))
    elif number == 4:
        print(report.render_fig4(trace_timeline(dataset, args.app)))
    elif number == 5:
        print(report.render_fig5(persistence_durations(dataset, app=args.app)))
    elif number == 6:
        edges, totals = bytes_since_foreground(dataset)
        print(report.render_fig6(edges, totals))
    else:
        print(f"unknown figure {number}", file=sys.stderr)
        return 2
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    if args.store and args.number == 1:
        return _store_render(args, _store_source(args), "table1")
    if args.from_checkpoint:
        readout = _checkpoint_readout(args)
        if args.number == 1:
            print(report.render_table1(case_study_table(readout)))
        else:
            require_packet_detail(readout, f"table {args.number}")
        return 0
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    if args.number == 1:
        print(report.render_table1(case_study_table(study)))
    elif args.number == 2:
        if args.policy:
            try:
                policy = get_policy(args.policy, parse_params(args.param))
            except AnalysisError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return EXIT_USAGE
            result = evaluate_policy(study, policy, apps=TABLE2_APPS)
            print(report.render_policy_table(result))
        else:
            results = [kill_policy_savings(study, app) for app in TABLE2_APPS]
            print(report.render_table2(results))
    else:
        print(f"unknown table {args.number}", file=sys.stderr)
        return 2
    return 0


# One formatter behind the CLI, the store and `repro serve` — what
# makes their headline output byte-identical by construction.
_render_headlines = render_headline_rows


def _cmd_headlines(args: argparse.Namespace) -> int:
    if args.store:
        # The store caches the totals-tier block (the same text
        # `--from-checkpoint` prints); the full batch set includes
        # per-packet headlines, which are not cacheable by this key.
        return _store_render(args, _store_source(args), "headlines")
    if args.from_checkpoint:
        readout = _checkpoint_readout(args)
        print(_render_headlines(totals_headline_stats(readout)))
        return 0
    study = _study(args)
    print(_render_headlines(headline_stats(study)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.from_checkpoint:
        readout = _checkpoint_readout(args)
        print(_render_headlines(totals_headline_stats(readout)))
        print()
        print(report.render_fig1(top10_appearance_counts(readout)))
        print()
        print(
            report.render_fig2(
                top_consumers(readout, by="energy"),
                top_consumers(readout, by="data"),
            )
        )
        print()
        print(report.render_fig3(state_energy_fractions(readout)))
        print()
        print(report.render_table1(case_study_table(readout)))
        print(
            "\n(totals-tier report from checkpoint; Figs 4-6, Table 2 and "
            "the remaining headlines replay packets — run `repro report` "
            "on the full study for those)"
        )
        return 0
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    study.prepare_indexes()
    print(_render_headlines(headline_stats(study)))
    print()
    print(report.render_fig1(top10_appearance_counts(dataset)))
    print()
    print(
        report.render_fig2(
            top_consumers(study, by="energy"), top_consumers(study, by="data")
        )
    )
    print()
    print(report.render_fig3(state_energy_fractions(study)))
    print()
    print(report.render_fig4(trace_timeline(dataset, "com.android.chrome")))
    print()
    print(
        report.render_fig5(
            persistence_durations(dataset, app="com.android.chrome")
        )
    )
    print()
    edges, totals = bytes_since_foreground(dataset)
    print(report.render_fig6(edges, totals))
    print()
    print(report.render_table1(case_study_table(study)))
    print()
    results = [kill_policy_savings(study, app) for app in TABLE2_APPS]
    print(report.render_table2(results))
    return 0


def _cmd_whatif(args: argparse.Namespace) -> int:
    params = parse_params(args.param)
    if args.policy == "kill" and "idle_days" not in params:
        params["idle_days"] = args.idle_days
    try:
        policy = get_policy(args.policy, params)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if args.from_checkpoint:
        # Counterfactuals replay packets: the gate refuses totals-only
        # checkpoints with a typed NeedsPacketDetail (exit 3).
        readout = _checkpoint_readout(args)
        evaluate_policy(readout, policy)
        return 0
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    if args.policy == "kill" and args.app:
        result = kill_policy_savings(study, args.app, idle_days=args.idle_days)
        print(report.render_table2([result]))
        print()
        try:
            pct = savings_on_affected_days(study, args.app, args.idle_days)
            print(f"affected-days total savings: {pct:.1f}%")
        except AnalysisError:
            print(
                "affected-days total savings: policy never activates in this "
                "study (no 3-day idle stretch)"
            )
        return 0
    detail = (args.app,) if args.app else TABLE2_APPS
    result = evaluate_policy(study, policy, apps=detail)
    print(report.render_policy_table(result))
    return 0


def _cmd_recommend(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    recommendations = recommendation_report(study, top_n=args.top)
    total_days = sum(t.duration_days for t in dataset)
    rows = [
        (
            r.app,
            f"{r.total_energy / 1e3:.0f}",
            # Average battery share this app's radio energy costs one
            # user per day — the unit people feel.
            f"{100 * battery_fraction(r.total_energy) / max(total_days, 1e-9):.1f}%",
            r.primary.value,
            f"{r.batching_saving_pct:.0f}%" if r.batching_saving_pct else "-",
            f"{r.kill_saving_pct:.0f}%" if r.kill_saving_pct else "-",
            f"{r.lingering_energy_fraction * 100:.0f}%",
        )
        for r in recommendations
    ]
    print(
        report.render_table(
            [
                "app",
                "kJ",
                "battery/user-day",
                "primary recommendation",
                "batch",
                "idle-kill",
                "linger",
            ],
            rows,
            title="Per-app recommendations (§6 operationalised)",
        )
    )
    return 0


def _cmd_longitudinal(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    series = weekly_background_energy(study)
    print(
        report.render_table(
            ["week", "background kJ"],
            [(i + 1, f"{e / 1e3:.0f}") for i, e in enumerate(series.week_energy)],
            title="Weekly background energy (§3.1)",
        )
    )
    print(
        "\nmax week-over-week fluctuation: "
        f"{series.max_fluctuation * 100:.0f}% (paper: up to 60%)"
    )
    improved = improved_apps(study)
    if improved:
        print("\napps that became more energy-efficient over the study:")
        for app, comparison in improved.items():
            first, last = comparison.eras[0], comparison.eras[-1]
            print(
                f"  {app}: {first.update_frequency.describe()} -> "
                f"{last.update_frequency.describe()}, "
                f"J/day {first.joules_per_day:.0f} -> {last.joules_per_day:.0f}"
            )
    else:
        print("\nno apps flagged as improved in this window")
    return 0


def _cmd_import(args: argparse.Namespace) -> int:
    pairs = []
    for spec in args.user:
        parts = spec.split(":")
        packets = parts[0]
        events = parts[1] if len(parts) > 1 and parts[1] else None
        pairs.append((packets, events))
    dataset = dataset_from_csv(pairs)
    dataset.save(args.out)
    print(f"wrote {args.out}: {dataset}")
    return 0


def _stream_source(args: argparse.Namespace):
    """Build the chunk source from ``--dataset``/``--user`` flags, or
    ``None`` when neither was given (callers print usage and exit 2)."""
    chunk_size = args.chunk_size
    if args.dataset:
        return NpzStreamSource(args.dataset, chunk_size=chunk_size)
    if args.user:
        pairs = []
        for spec in args.user:
            parts = spec.split(":")
            events = parts[1] if len(parts) > 1 and parts[1] else None
            pairs.append((parts[0], events))
        return CsvStreamSource(
            pairs,
            chunk_size=chunk_size,
            duration=args.duration,
            quarantine_rows=getattr(args, "quarantine", False),
        )
    return None


def _print_readout_summary(result, registry, top: int, title: str) -> None:
    """The per-app table + totals footer shared by the ingest paths."""
    energy = result.energy_by_app()
    ranked = sorted(energy.items(), key=lambda kv: kv[1], reverse=True)
    rows = [
        (registry.name_of(app), f"{joules / 1e3:.1f}")
        for app, joules in ranked[:top]
    ]
    print(
        report.render_table(
            ["app", "kJ"],
            rows,
            title=f"{title} (top {min(top, len(rows))})",
        )
    )
    print(
        f"\nattributed: {result.attributed_energy / 1e3:.1f} kJ  "
        f"idle: {result.idle_energy / 1e3:.1f} kJ  "
        f"total: {result.total_energy / 1e3:.1f} kJ"
    )


def _cmd_ingest(args: argparse.Namespace) -> int:
    metrics = _metrics(args)
    source = _stream_source(args)
    if source is None:
        print(
            "ingest needs --dataset FILE or --user PACKETS_CSV[:EVENTS_CSV]",
            file=sys.stderr,
        )
        return 2
    if args.shards:
        return _ingest_sharded(args, source, metrics)
    ingestor = StreamIngestor(
        source,
        model=get_model(args.model),
        workers=args.workers,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        metrics=metrics,
        retries=args.retries,
        task_timeout=args.task_timeout,
        quarantine=args.quarantine,
        cadence=not args.no_cadence,
    )
    result = ingestor.run(resume=args.resume, max_chunks=args.max_chunks)
    counters = metrics.as_dict()["counters"]
    if result is None:
        print(
            f"stopped after {counters.get('stream.chunks', 0)} chunks; "
            f"checkpoint written to {args.checkpoint} "
            "(continue with --resume)"
        )
        return 0
    energy = result.energy_by_app()
    top = sorted(energy.items(), key=lambda kv: kv[1], reverse=True)
    rows = [
        (source.registry.name_of(app), f"{joules / 1e3:.1f}")
        for app, joules in top[: args.top]
    ]
    print(
        report.render_table(
            ["app", "kJ"],
            rows,
            title=f"Streamed per-app energy (top {min(args.top, len(rows))})",
        )
    )
    print(
        f"\nusers: {len(result.users)}  chunks: "
        f"{counters.get('stream.chunks', 0)}  checkpoints: "
        f"{counters.get('stream.checkpoints', 0)}"
    )
    dropped_rows = counters.get("faults.rows_quarantined", 0)
    if dropped_rows or result.failures:
        print(
            f"quarantined: {dropped_rows} malformed row(s), "
            f"{len(result.failures)} user(s) "
            "(see faults.* counters in --metrics-json)"
        )
    print(
        f"attributed: {result.attributed_energy / 1e3:.1f} kJ  "
        f"idle: {result.idle_energy / 1e3:.1f} kJ  "
        f"total: {result.total_energy / 1e3:.1f} kJ"
    )
    return 0


def _ingest_sharded(
    args: argparse.Namespace, source, metrics: RunMetrics
) -> int:
    """The one-box convenience path: plan + run + merge in one command.

    ``--checkpoint`` names the *merged* whole-study checkpoint; the plan
    lands next to it as ``<checkpoint>.plan.json`` and the per-shard
    checkpoints under ``<checkpoint>.plan.json.shards/``. Re-running
    the identical command resumes: complete shards are skipped, partial
    ones continue, and the merge re-emits the same bytes.
    """
    from pathlib import Path

    if not args.checkpoint:
        print(
            "--shards needs --checkpoint FILE (the merged study "
            "checkpoint to write)",
            file=sys.stderr,
        )
        return 2
    manifest_path = Path(str(args.checkpoint) + ".plan.json")
    with metrics.stage("shard.plan"):
        if manifest_path.exists():
            manifest = ShardManifest.load(manifest_path)
            if (
                manifest.signature != source.signature()
                or manifest.n_shards != args.shards
            ):
                manifest = ShardManifest.plan(
                    source,
                    args.shards,
                    model_name=args.model,
                    cadence=not args.no_cadence,
                )
                manifest.save(manifest_path)
        else:
            manifest = ShardManifest.plan(
                source,
                args.shards,
                model_name=args.model,
                cadence=not args.no_cadence,
            )
            manifest.save(manifest_path)
    shard_dir = default_shard_dir(manifest_path)
    run_all_shards(
        manifest,
        shard_dir,
        shard_workers=args.workers,
        checkpoint_every=args.checkpoint_every,
        metrics=metrics,
        retries=args.retries,
        task_timeout=args.task_timeout,
        quarantine=args.quarantine,
    )
    merge_to_checkpoint(
        manifest,
        shard_dir,
        args.checkpoint,
        manifest_path=manifest_path,
        metrics=metrics,
    )
    result = readout_from_checkpoint(args.checkpoint)
    counters = metrics.as_dict()["counters"]
    _print_readout_summary(
        result,
        result.registry,
        args.top,
        f"Sharded per-app energy ({manifest.n_shards} shards)",
    )
    print(
        f"\nusers: {len(manifest.users)}  shards: {manifest.n_shards}  "
        f"chunks: {counters.get('stream.chunks', 0)}  "
        f"merged checkpoint: {args.checkpoint}"
    )
    return 0


def _cmd_shard(args: argparse.Namespace) -> int:
    from pathlib import Path

    metrics = _metrics(args)
    if args.shard_command == "plan":
        source = _stream_source(args)
        if source is None:
            print(
                "shard plan needs --dataset FILE or --user "
                "PACKETS_CSV[:EVENTS_CSV]",
                file=sys.stderr,
            )
            return 2
        with metrics.stage("shard.plan"):
            manifest = ShardManifest.plan(
                source,
                args.shards,
                model_name=args.model,
                cadence=not args.no_cadence,
            )
            manifest.save(args.out)
        sizes = [len(shard) for shard in manifest.shards]
        print(
            f"wrote {args.out}: {len(manifest.users)} users over "
            f"{manifest.n_shards} shard(s) {sizes}, "
            f"model={manifest.model_name}, digest={manifest.digest()}"
        )
        print(f"run with: repro shard run {args.out}")
        return 0

    manifest = ShardManifest.load(args.manifest)
    shard_dir = (
        Path(args.shard_dir)
        if args.shard_dir
        else default_shard_dir(args.manifest)
    )
    if args.shard_command == "run":
        reports = run_all_shards(
            manifest,
            shard_dir,
            indices=args.shard if args.shard else None,
            shard_workers=args.shard_workers,
            checkpoint_every=args.checkpoint_every,
            metrics=metrics,
            retries=args.retries,
            task_timeout=args.task_timeout,
            quarantine=args.quarantine,
            on_report=(
                None
                if args.quiet
                else lambda index, rep: print(
                    f"shard {index}: "
                    + (
                        "failed"
                        if not isinstance(rep, dict)
                        else (
                            "already complete"
                            if rep["skipped"]
                            else f"{rep['users']} user(s) ingested"
                        )
                    )
                )
            ),
        )
        done = sum(1 for rep in reports if rep["complete"])
        print(
            f"{done}/{len(reports)} shard(s) complete under {shard_dir}; "
            f"merge with: repro shard merge {args.manifest} --out "
            "MERGED.ckpt.npz"
        )
        return 0

    if args.shard_command == "merge":
        merge_to_checkpoint(
            manifest,
            shard_dir,
            args.out,
            manifest_path=args.manifest,
            metrics=metrics,
        )
        result = readout_from_checkpoint(args.out)
        print(
            f"merged {manifest.n_shards} shard(s), "
            f"{len(manifest.users)} user(s) into {args.out}"
        )
        print(
            f"total: {result.total_energy / 1e3:.1f} kJ  "
            f"(attributed {result.attributed_energy / 1e3:.1f} kJ, "
            f"idle {result.idle_energy / 1e3:.1f} kJ)"
        )
        print(
            "analyse with: repro figure fig3 --from-checkpoint "
            f"{args.out}"
        )
        return 0
    raise AssertionError(f"unknown shard command {args.shard_command!r}")


def _cmd_app(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    study = _study(args, dataset)
    print(render_app_report(app_report(study, args.app)))
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args)
    summary = summarize(dataset)
    print(
        report.render_table(
            ["user", "days", "packets", "MB", "apps", "sessions", "top app"],
            [
                (
                    u.user_id,
                    f"{u.days:.0f}",
                    u.packets,
                    f"{u.megabytes:.0f}",
                    u.apps_with_traffic,
                    u.sessions,
                    u.top_app,
                )
                for u in summary.users
            ],
            title="Per-user trace summary",
        )
    )
    print(
        f"\ncatalog: {summary.total_apps} apps, "
        f"{summary.apps_with_traffic} with traffic; "
        f"{summary.total_packets} packets, {summary.total_megabytes:.0f} MB"
    )
    print()
    print(
        report.render_table(
            ["category", "MB"],
            [(c, f"{v:.0f}") for c, v in summary.category_megabytes[:12]],
            title="Traffic by app category",
        )
    )
    return 0


def _cmd_coalesce(args: argparse.Namespace) -> int:
    if args.from_checkpoint:
        # Same typed refusal as `whatif`: coalescing re-attributes a
        # shifted timeline, which a totals checkpoint cannot replay.
        study = _checkpoint_readout(args)
    else:
        dataset = _load_dataset(args)
        study = _study(args, dataset)
    result = os_coalescing_savings(study, period=args.period)
    print(
        f"OS-coalesced background scheduling (window {args.period:.0f}s):\n"
        f"  energy saved: {result.savings_pct:.1f}% of attributed total\n"
        f"  packets delayed: {result.moved_packets}\n"
        f"  mean added delay: {result.mean_delay:.0f}s"
    )
    return 0


def _cmd_lab(args: argparse.Namespace) -> int:
    page = xhr_test_page()
    rows = []
    for browser in (CHROME, FIREFOX, STOCK_BROWSER):
        result = browser_background_experiment(browser, page)
        rows.append(
            (
                browser.name,
                result.phase_packets[0],
                result.phase_packets[1],
                result.phase_packets[2],
                f"{result.phase_energy[1] + result.phase_energy[2]:.0f}",
            )
        )
    print(
        report.render_table(
            ["browser", "fg pkts", "bg pkts", "screen-off pkts", "bg J"],
            rows,
            title="In-lab: XHR-every-second page across browsers",
        )
    )
    push = push_library_experiment()
    print(
        f"\npush library: {push.requests} nearly-empty requests over "
        f"{push.duration / 3600:.0f} h for {push.notifications} visible "
        f"notification(s); {push.total_energy:.0f} J "
        f"({push.joules_per_notification:.0f} J/notification)"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.live:
        if not args.store:
            print(
                "serve --live needs --store DIR (the store a `repro "
                "follow` publisher writes into)",
                file=sys.stderr,
            )
            return EXIT_USAGE
        source = None
    else:
        source = _store_source(args)
    store_dir = args.store or tempfile.mkdtemp(prefix="repro-store-")
    store = ResultStore(store_dir, metrics=_metrics(args))
    server = make_server(
        source, store, host=args.host, port=args.port, quiet=args.quiet
    )
    host, port = server.server_address
    if args.live:
        print(
            f"serving live windows on http://{host}:{port} "
            f"(store: {store_dir})",
            flush=True,
        )
    else:
        print(
            f"serving study {server.study_id} on http://{host}:{port} "
            f"(store: {store_dir})",
            flush=True,
        )
    try:
        if args.max_requests:
            for _ in range(args.max_requests):
                server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


def _cmd_follow(args: argparse.Namespace) -> int:
    metrics = _metrics(args)
    if bool(args.user) == bool(args.drops):
        print(
            "follow needs exactly one of --user PACKETS_CSV[:EVENTS_CSV] "
            "(repeatable) or --drops DIR",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.drops:
        source = NpzDropSource(args.drops, chunk_size=args.chunk_size)
    else:
        pairs = []
        for spec in args.user:
            parts = spec.split(":")
            events = parts[1] if len(parts) > 1 and parts[1] else None
            pairs.append((parts[0], events))
        source = TailCsvSource(pairs, chunk_size=args.chunk_size)
    windows = (
        tuple(parse_window_spec(text) for text in args.window)
        if args.window
        else DEFAULT_WINDOWS
    )
    store = (
        ResultStore(args.store, metrics=metrics) if args.store else None
    )
    follower = Follower(
        source,
        checkpoint_path=args.checkpoint,
        model=get_model(args.model),
        windows=windows,
        store=store,
        checkpoint_every=args.checkpoint_every,
        poll_interval=args.poll_interval,
        max_pending=args.max_pending,
        top_n=args.top_n,
        metrics=metrics,
    )
    why = follower.run(
        resume=args.resume,
        max_polls=args.max_polls,
        idle_exit=args.idle_exit,
    )
    counters = metrics.as_dict()["counters"]
    print(
        f"follow {why}: {counters.get('follow.chunks', 0)} chunk(s), "
        f"{counters.get('follow.packets', 0)} packet(s), "
        f"{len(follower.headline_log)} headline(s); checkpoint "
        f"{args.checkpoint} (continue with --resume)",
        flush=True,
    )
    if why == "interrupted":
        return EXIT_FOLLOW_INTERRUPTED
    return EXIT_OK


def _cmd_store(args: argparse.Namespace) -> int:
    store = ResultStore(args.store, metrics=_metrics(args))
    if args.store_command == "ls":
        entries = store.entries()
        rows = [
            (
                e.analysis,
                e.fingerprint[:12],
                e.policy,
                e.nbytes,
                e.hits,
                e.etag,
            )
            for e in entries
        ]
        print(
            report.render_table(
                ["analysis", "study", "policy", "bytes", "hits", "etag"],
                rows,
                title=f"results store: {args.store}",
            )
        )
        print(f"\n{len(entries)} entries")
        return 0
    if args.store_command == "gc":
        rows, files = store.gc()
        print(
            f"gc: removed {rows} unreadable entr{'y' if rows == 1 else 'ies'}"
            f", {files} orphan file(s)"
        )
        return 0
    if args.store_command == "invalidate":
        if not (args.fingerprint or args.analysis or args.all):
            print(
                "invalidate needs --fingerprint PREFIX, --analysis NAME "
                "or --all",
                file=sys.stderr,
            )
            return 2
        removed, files = store.invalidate(
            fingerprint=args.fingerprint,
            analysis=args.analysis,
            everything=args.all,
        )
        print(
            f"invalidated {removed} entr{'y' if removed == 1 else 'ies'} "
            f"({files} blob file(s) removed)"
        )
        return 0
    print(f"unknown store command {args.store_command!r}", file=sys.stderr)
    return 2


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Revisiting Network Energy Efficiency of "
            "Mobile Apps' (IMC 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("generate", help="generate and save a study")
    _add_study_args(p)
    p.add_argument("--out", default="study.npz")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("figure", help="reproduce one figure")
    p.add_argument(
        "number", type=_figure_number, help="1-6, 'fig3' also accepted"
    )
    p.add_argument("--app", default="com.android.chrome")
    _add_study_args(p)
    _add_checkpoint_arg(p)
    _add_store_args(p)
    p.set_defaults(func=_cmd_figure)

    p = sub.add_parser("table", help="reproduce one table")
    p.add_argument(
        "number", type=_table_number, help="1-2, 'table1' also accepted"
    )
    p.add_argument(
        "--policy",
        choices=available_policies(),
        help="render table 2 for one counterfactual policy",
    )
    p.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="policy parameter override (repeatable)",
    )
    _add_study_args(p)
    _add_checkpoint_arg(p)
    _add_store_args(p)
    p.set_defaults(func=_cmd_table)

    p = sub.add_parser("report", help="full report: headlines + all figures/tables")
    _add_study_args(p)
    _add_checkpoint_arg(p)
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "headlines", help="the paper's single-number findings"
    )
    _add_study_args(p)
    _add_checkpoint_arg(p)
    _add_store_args(p)
    p.set_defaults(func=_cmd_headlines)

    p = sub.add_parser(
        "serve",
        help="HTTP query API over one study's figures/tables/headlines",
    )
    _add_study_args(p)
    _add_checkpoint_arg(p)
    p.add_argument(
        "--store",
        metavar="DIR",
        help=(
            "persistent results store backing the server (default: a "
            "fresh temp directory, warm for this process only)"
        ),
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0, help="0 picks a free port"
    )
    p.add_argument(
        "--max-requests",
        type=int,
        metavar="N",
        help="exit after serving N requests (for tests and smoke runs)",
    )
    p.add_argument(
        "--quiet", action="store_true", help="suppress per-request logs"
    )
    p.add_argument(
        "--live",
        action="store_true",
        help=(
            "serve only the /live/ routes over the windows a `repro "
            "follow` publisher maintains in --store (no study readout)"
        ),
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "follow",
        help=(
            "live monitoring: tail a growing source, keep rolling "
            "windows, emit headlines"
        ),
    )
    p.add_argument(
        "--user",
        action="append",
        help="tail one user's PACKETS_CSV[:EVENTS_CSV] (repeatable)",
    )
    p.add_argument(
        "--drops",
        metavar="DIR",
        help="follow a directory collecting per-day .npz study drops",
    )
    p.add_argument(
        "--checkpoint",
        metavar="FILE",
        required=True,
        help="follow state file (windows, cursors, headline state)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint instead of starting over",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=16,
        metavar="N",
        help="checkpoint every N processed chunks (and on SIGTERM/SIGINT)",
    )
    p.add_argument(
        "--store",
        metavar="DIR",
        help=(
            "results store to publish live windows into (serve them "
            "with `repro serve --live --store DIR`)"
        ),
    )
    p.add_argument(
        "--window",
        action="append",
        metavar="NAME=SPAN:BUCKET",
        help=(
            "maintain this rolling window (seconds; repeatable; "
            "default hour=3600:300 day=86400:7200 week=604800:43200)"
        ),
    )
    p.add_argument(
        "--poll-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="sleep this long between polls that found no new data",
    )
    p.add_argument(
        "--max-polls",
        type=int,
        metavar="N",
        help="stop after N poll iterations (for tests and smoke runs)",
    )
    p.add_argument(
        "--idle-exit",
        type=int,
        metavar="N",
        help="exit once N consecutive polls found no new data",
    )
    p.add_argument(
        "--max-pending",
        type=int,
        default=64,
        metavar="N",
        help=(
            "bound on queued chunks awaiting attribution (backpressure: "
            "polling pauses at the bound; see the follow.lag_chunks gauge)"
        ),
    )
    p.add_argument(
        "--top-n", type=int, default=5, help="headline top-N size"
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="maximum packets held in memory per chunk",
    )
    p.add_argument(
        "--model",
        default="lte",
        choices=available_models(),
        help="radio power model for energy attribution",
    )
    p.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    p.set_defaults(func=_cmd_follow)

    p = sub.add_parser(
        "store", help="inspect and maintain a persistent results store"
    )
    p.add_argument(
        "--store", metavar="DIR", required=True, help="store directory"
    )
    store_sub = p.add_subparsers(dest="store_command", required=True)
    store_sub.add_parser("ls", help="list cached entries")
    store_sub.add_parser(
        "gc", help="drop unreadable entries, orphan blobs and stale locks"
    )
    sp = store_sub.add_parser(
        "invalidate", help="remove entries by study fingerprint or analysis"
    )
    sp.add_argument(
        "--fingerprint",
        metavar="PREFIX",
        help="remove entries whose study fingerprint starts with PREFIX",
    )
    sp.add_argument(
        "--analysis", help="remove entries of one analysis (e.g. fig3)"
    )
    sp.add_argument(
        "--all", action="store_true", help="empty the store entirely"
    )
    p.set_defaults(func=_cmd_store)

    p = sub.add_parser(
        "whatif", help="counterfactual policy savings (kill, doze, ...)"
    )
    p.add_argument("--app", help="break out one app Table-2 style")
    p.add_argument("--idle-days", type=int, default=3)
    p.add_argument(
        "--policy",
        default="kill",
        choices=available_policies(),
        help="counterfactual policy to evaluate",
    )
    p.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="policy parameter override (repeatable)",
    )
    _add_study_args(p)
    _add_checkpoint_arg(p)
    p.set_defaults(func=_cmd_whatif)

    p = sub.add_parser(
        "recommend", help="per-app efficiency recommendations (§6)"
    )
    p.add_argument("--top", type=int, default=15)
    _add_study_args(p)
    p.set_defaults(func=_cmd_recommend)

    p = sub.add_parser(
        "longitudinal", help="weekly trends and improved apps (§3.1)"
    )
    _add_study_args(p)
    p.set_defaults(func=_cmd_longitudinal)

    p = sub.add_parser(
        "import", help="build a dataset from packets/events CSVs"
    )
    p.add_argument(
        "user",
        nargs="+",
        help="one PACKETS_CSV[:EVENTS_CSV] per user",
    )
    p.add_argument("--out", default="study.npz")
    p.set_defaults(func=_cmd_import)

    p = sub.add_parser(
        "ingest",
        help="streaming ingestion: bounded-memory, checkpoint/resume",
    )
    p.add_argument("--dataset", help="stream a saved study (.npz)")
    p.add_argument(
        "--user",
        action="append",
        help="stream one user's PACKETS_CSV[:EVENTS_CSV] (repeatable)",
    )
    p.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="maximum packets held in memory per chunk",
    )
    p.add_argument(
        "--duration",
        type=float,
        help="CSV observation window (default: latest event, ceil to day)",
    )
    p.add_argument("--checkpoint", metavar="FILE", help="checkpoint file")
    p.add_argument(
        "--resume",
        action="store_true",
        help="continue from --checkpoint instead of starting over",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="write a checkpoint every N chunks (0 = only at the end)",
    )
    p.add_argument(
        "--max-chunks",
        type=int,
        metavar="N",
        help="stop after N chunks, checkpoint, and exit (bounded slice)",
    )
    p.add_argument(
        "--model",
        default="lte",
        choices=available_models(),
        help="radio power model for energy attribution",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        help="chunk workers / users in flight (0 = one per CPU)",
    )
    p.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a failed/crashed chunk task N times before giving up",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="declare a chunk task hung after this long and rebuild the pool",
    )
    p.add_argument(
        "--quarantine",
        action="store_true",
        help=(
            "keep going past bad input: drop malformed CSV rows and "
            "retry-exhausted users, reporting both via faults.* counters"
        ),
    )
    p.add_argument(
        "--no-cadence",
        action="store_true",
        help=(
            "skip background flow/burst cadence tracking (Table 1 then "
            "needs the batch pipeline; Figs 1-3 are unaffected)"
        ),
    )
    p.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help=(
            "one-box sharded ingest: plan N user-shards, run them in "
            "parallel (--workers shard processes), merge into "
            "--checkpoint — bit-identical to the unsharded run"
        ),
    )
    p.add_argument("--top", type=int, default=15, help="apps to print")
    p.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    p.set_defaults(func=_cmd_ingest)

    p = sub.add_parser(
        "shard",
        help="shard-parallel ingestion: plan, execute and merge",
    )
    shard_sub = p.add_subparsers(dest="shard_command", required=True)
    sp = shard_sub.add_parser(
        "plan", help="partition a study's users into shard manifests"
    )
    sp.add_argument("--dataset", help="shard a saved study (.npz)")
    sp.add_argument(
        "--user",
        action="append",
        help="shard one user's PACKETS_CSV[:EVENTS_CSV] (repeatable)",
    )
    sp.add_argument(
        "--shards", type=int, required=True, metavar="N",
        help="number of shards to plan",
    )
    sp.add_argument(
        "--chunk-size",
        type=int,
        default=DEFAULT_CHUNK_SIZE,
        help="maximum packets held in memory per chunk",
    )
    sp.add_argument(
        "--duration",
        type=float,
        help="CSV observation window (default: latest event, ceil to day)",
    )
    sp.add_argument(
        "--model",
        default="lte",
        choices=available_models(),
        help="radio power model pinned into the plan",
    )
    sp.add_argument(
        "--quarantine",
        action="store_true",
        help="plan with malformed-CSV-row quarantine enabled",
    )
    sp.add_argument(
        "--no-cadence",
        action="store_true",
        help="plan without background cadence tracking",
    )
    sp.add_argument("--out", default="plan.json", help="manifest file")
    sp.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    sp.set_defaults(func=_cmd_shard)
    sp = shard_sub.add_parser(
        "run", help="execute shards of a plan to per-shard checkpoints"
    )
    sp.add_argument("manifest", help="plan written by `repro shard plan`")
    sp.add_argument(
        "--shard-dir",
        metavar="DIR",
        help="per-shard checkpoint directory (default: <manifest>.shards)",
    )
    sp.add_argument(
        "--shard",
        type=int,
        action="append",
        metavar="K",
        help="run only shard K (repeatable; default: all shards)",
    )
    sp.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        metavar="N",
        help="shard processes at once (0 = one per CPU)",
    )
    sp.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint each shard every N chunks (0 = only at the end)",
    )
    sp.add_argument(
        "--retries",
        type=int,
        default=0,
        metavar="N",
        help="retry a failed shard N times before reporting it",
    )
    sp.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        help="per-chunk hang timeout inside each shard",
    )
    sp.add_argument(
        "--quarantine",
        action="store_true",
        help="drop malformed rows / poison users inside shards",
    )
    sp.add_argument(
        "--quiet", action="store_true", help="no per-shard progress lines"
    )
    sp.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    sp.set_defaults(func=_cmd_shard)
    sp = shard_sub.add_parser(
        "merge",
        help="fold per-shard checkpoints into one study checkpoint",
    )
    sp.add_argument("manifest", help="plan written by `repro shard plan`")
    sp.add_argument(
        "--shard-dir",
        metavar="DIR",
        help="per-shard checkpoint directory (default: <manifest>.shards)",
    )
    sp.add_argument(
        "--out",
        required=True,
        metavar="CK.npz",
        help="merged whole-study checkpoint to write",
    )
    sp.add_argument(
        "--metrics-json",
        metavar="FILE",
        help="write run metrics as JSON; '-' for stdout",
    )
    sp.set_defaults(func=_cmd_shard)

    p = sub.add_parser("app", help="single-app deep dive")
    p.add_argument("--app", required=True)
    _add_study_args(p)
    p.set_defaults(func=_cmd_app)

    p = sub.add_parser("summary", help="structural overview of a study")
    _add_study_args(p)
    p.set_defaults(func=_cmd_summary)

    p = sub.add_parser(
        "coalesce", help="OS-managed background batching what-if (§6)"
    )
    p.add_argument("--period", type=float, default=1800.0)
    _add_study_args(p)
    _add_checkpoint_arg(p)
    p.set_defaults(func=_cmd_coalesce)

    p = sub.add_parser("lab", help="in-lab browser & push-library experiments")
    p.set_defaults(func=_cmd_lab)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point."""
    args = build_parser().parse_args(argv)
    metrics = RunMetrics()
    args._run_metrics = metrics
    try:
        with metrics.stage("command"):
            rc = args.func(args)
    except NeedsPacketDetail as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_NEEDS_PACKET_DETAIL
    except ShardIncomplete as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SHARD_INCOMPLETE
    except SourceTruncated as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_SOURCE_TRUNCATED
    out = getattr(args, "metrics_json", None)
    if out:
        metrics.write_json(out)
    return rc


if __name__ == "__main__":
    sys.exit(main())
