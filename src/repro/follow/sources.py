"""Tailing packet sources: a growing CSV file, a directory of drops.

Both sources expose the follower's polling protocol: ``registry``,
``user_ids``, ``window(uid)``, ``signature()``, a
``poll(uid, max_chunks)`` that returns ``(chunk, cursor_snapshot)``
pairs for whatever *complete* new data has arrived, and
``restore(cursors, registry_json)`` to rewind to a checkpointed
position. The snapshot rides with its chunk so the follower can make
exactly the consumed prefix durable: its checkpoint stores the
snapshot of the last chunk it *processed*, and a resumed source
re-reads anything that was polled but never folded.

Torn data never enters the pipeline: the CSV tail cuts its read at the
last complete line (a half-written row stays in the file for the next
poll), and the drop directory only consumes whole ``.npz`` files
published with an atomic rename. A source that *shrinks* raises
:class:`~repro.errors.SourceTruncated` — the cursor would otherwise
point into rewritten history.
"""

from __future__ import annotations

import csv
import hashlib
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults
from repro.errors import FollowError, SourceTruncated, StreamError, TraceError
from repro.follow.windows import FOLLOW_WINDOW_END
from repro.stream.chunks import DEFAULT_CHUNK_SIZE, NpzStreamSource
from repro.trace.arrays import PacketArray
from repro.trace.dataset import AppRegistry
from repro.trace.events import EventLog
from repro.trace.intervals import label_packet_states
from repro.trace.io_text import (
    PACKET_COLUMNS,
    PathLike,
    iter_event_rows,
    parse_packet_fields,
)

#: Upper bound on bytes read per tail poll — keeps one poll's memory
#: and latency bounded no matter how far behind the follower fell.
TAIL_READ_LIMIT = 1 << 20


class TailCsvSource:
    """Follow growing ``io_text`` packets CSVs, one file per user.

    Each user has a byte cursor just past the last complete line
    consumed; a poll stats the file, reads at most
    :data:`TAIL_READ_LIMIT` new bytes, cuts at the final newline and
    parses the complete rows through the batch reader's exact parse
    (:func:`~repro.trace.io_text.parse_packet_fields`), so app ids are
    assigned in arrival order exactly as a batch read of the final file
    would. Event CSVs are re-read whole whenever they grow (event
    streams are tiny next to packet tables) and label every chunk.
    """

    def __init__(
        self,
        user_files: Sequence[Tuple[PathLike, Optional[PathLike]]],
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        if not user_files:
            raise FollowError("at least one user is required")
        if chunk_size < 1:
            raise FollowError(f"chunk_size must be >= 1: {chunk_size}")
        self.chunk_size = int(chunk_size)
        self._files = [
            (Path(p), Path(e) if e is not None else None)
            for p, e in user_files
        ]
        self.registry = AppRegistry()
        #: Per-user tail position: byte offset past the last consumed
        #: complete line, surviving-row count, last timestamp seen.
        self._cursors: Dict[int, Dict[str, float]] = {
            uid: {"offset": 0, "rows": 0, "last_ts": float("-inf")}
            for uid in self.user_ids
        }
        self._fieldnames: Dict[int, List[str]] = {}
        self._events: Dict[int, EventLog] = {
            uid: EventLog() for uid in self.user_ids
        }
        self._events_size: Dict[int, int] = {uid: -1 for uid in self.user_ids}

    @property
    def user_ids(self) -> List[int]:
        """User ids in file order (1..N, as the batch reader)."""
        return list(range(1, len(self._files) + 1))

    def window(self, user_id: int) -> Tuple[float, float]:
        """A follow has no end of time: ``(0, FOLLOW_WINDOW_END)``."""
        return (0.0, FOLLOW_WINDOW_END)

    def events_for(self, user_id: int) -> EventLog:
        """One user's event log as of the last poll."""
        return self._events[user_id]

    def signature(self) -> str:
        """Digest binding follow checkpoints to these files."""
        payload = json.dumps(
            {
                "kind": "csv-tail",
                "files": [
                    [str(p), str(e) if e is not None else None]
                    for p, e in self._files
                ],
            }
        )
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=12
        ).hexdigest()

    # ------------------------------------------------------------------
    # Cursor persistence
    # ------------------------------------------------------------------
    def cursor_snapshot(self, user_id: int) -> dict:
        """The user's current position (JSON-serialisable)."""
        cursor = self._cursors[user_id]
        return {
            "offset": int(cursor["offset"]),
            "rows": int(cursor["rows"]),
            "last_ts": float(cursor["last_ts"]),
        }

    def restore(
        self, cursors: Dict[str, dict], registry_json: Optional[str]
    ) -> None:
        """Rewind to checkpointed cursors + app registry.

        The registry must come back too: the resumed tail never
        re-reads consumed bytes, so apps registered by them would
        otherwise be missing — and every later app would get a
        different id.
        """
        if registry_json is not None:
            self.registry = AppRegistry.from_json(registry_json)
        for uid_text, snapshot in cursors.items():
            uid = int(uid_text)
            if uid not in self._cursors:
                raise FollowError(
                    f"checkpoint cursor for unknown user {uid}"
                )
            self._cursors[uid] = {
                "offset": int(snapshot["offset"]),
                "rows": int(snapshot["rows"]),
                "last_ts": float(snapshot["last_ts"]),
            }

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def poll(
        self, user_id: int, max_chunks: Optional[int] = None
    ) -> List[Tuple[PacketArray, dict]]:
        """New complete rows since the cursor, as (chunk, snapshot) pairs.

        Returns ``[]`` when nothing complete has arrived. The cursor
        advances only over rows that were handed out; a trailing torn
        line (no newline yet) stays for the next poll. Raises
        :class:`~repro.errors.SourceTruncated` if the file shrank below
        the cursor.
        """
        faults.fire("follow.tail")
        packets_path, _ = self._files[user_id - 1]
        cursor = self._cursors[user_id]
        if not packets_path.exists():
            if cursor["offset"]:
                raise SourceTruncated(packets_path, int(cursor["offset"]), 0)
            return []
        size = packets_path.stat().st_size
        if size < cursor["offset"]:
            raise SourceTruncated(
                packets_path, int(cursor["offset"]), size
            )
        if cursor["offset"] == 0 and not self._read_header(user_id):
            return []
        if size <= cursor["offset"]:
            return []
        self._refresh_events(user_id)
        fieldnames = self._ensure_fieldnames(user_id)
        with open(packets_path, "rb") as handle:
            handle.seek(int(cursor["offset"]))
            data = handle.read(
                min(size - int(cursor["offset"]), TAIL_READ_LIMIT)
            )
        cut = data.rfind(b"\n")
        if cut < 0:
            return []
        data = data[: cut + 1]
        lines = data.split(b"\n")[:-1]
        out: List[Tuple[PacketArray, dict]] = []
        rows: List[tuple] = []
        consumed = 0
        for raw in lines:
            consumed += len(raw) + 1
            text = raw.decode("utf-8").rstrip("\r")
            if not text:
                continue
            fields = next(csv.reader([text]))
            try:
                row = parse_packet_fields(
                    dict(zip(fieldnames, fields)), self.registry
                )
            except (TraceError, ValueError, TypeError, KeyError) as exc:
                raise StreamError(
                    f"{packets_path.name}: malformed tailed row "
                    f"{text!r}: {exc}"
                ) from exc
            if row[0] < cursor["last_ts"]:
                raise StreamError(
                    f"{packets_path.name}: tailed packets not "
                    f"time-sorted (t={row[0]} after t={cursor['last_ts']})"
                )
            cursor["last_ts"] = row[0]
            rows.append(row)
            if len(rows) >= self.chunk_size:
                out.append(self._emit(user_id, rows, consumed))
                rows, consumed = [], 0
                if max_chunks is not None and len(out) >= max_chunks:
                    return out
        if rows:
            out.append(self._emit(user_id, rows, consumed))
        return out

    def _emit(
        self, user_id: int, rows: List[tuple], n_bytes: int
    ) -> Tuple[PacketArray, dict]:
        """Advance the cursor over ``rows`` and build their chunk."""
        cursor = self._cursors[user_id]
        cursor["offset"] = int(cursor["offset"]) + n_bytes
        cursor["rows"] = int(cursor["rows"]) + len(rows)
        columns = list(zip(*rows))
        chunk = PacketArray.from_columns(
            np.array(columns[0], dtype=np.float64),
            np.array(columns[1], dtype=np.uint32),
            np.array(columns[2], dtype=np.uint8),
            np.array(columns[3], dtype=np.uint16),
            np.array(columns[4], dtype=np.uint32),
        )
        label_packet_states(chunk, self._events[user_id])
        return chunk, self.cursor_snapshot(user_id)

    def _read_header(self, user_id: int) -> bool:
        """Consume the header line once a complete one exists."""
        packets_path, _ = self._files[user_id - 1]
        with open(packets_path, "rb") as handle:
            head = handle.read(TAIL_READ_LIMIT)
        end = head.find(b"\n")
        if end < 0:
            return False
        text = head[:end].decode("utf-8").rstrip("\r")
        fieldnames = next(csv.reader([text]))
        if not PACKET_COLUMNS.issubset(fieldnames):
            raise FollowError(
                f"{packets_path.name}: packets CSV must have columns "
                f"{sorted(PACKET_COLUMNS)}, got {fieldnames}"
            )
        self._fieldnames[user_id] = fieldnames
        self._cursors[user_id]["offset"] = end + 1
        return True

    def _ensure_fieldnames(self, user_id: int) -> List[str]:
        """Fieldnames for a user whose header is already consumed.

        After a restore the cursor sits mid-file but the header was
        never parsed in this process; read it back from offset 0.
        """
        if user_id not in self._fieldnames:
            packets_path, _ = self._files[user_id - 1]
            with open(packets_path, "rb") as handle:
                head = handle.read(TAIL_READ_LIMIT)
            end = head.find(b"\n")
            if end < 0:
                raise FollowError(
                    f"{packets_path.name}: no header line under a "
                    "non-zero cursor — file was replaced?"
                )
            text = head[:end].decode("utf-8").rstrip("\r")
            self._fieldnames[user_id] = next(csv.reader([text]))
        return self._fieldnames[user_id]

    def _refresh_events(self, user_id: int) -> None:
        """Re-read the user's events CSV whole when it changed size."""
        _, events_path = self._files[user_id - 1]
        if events_path is None or not events_path.exists():
            return
        size = events_path.stat().st_size
        if size == self._events_size[user_id]:
            return
        events = EventLog()
        for kind, event in iter_event_rows(events_path, self.registry):
            if kind == "process":
                events.add_process_event(event)
            elif kind == "screen":
                events.add_screen_event(event)
            else:
                events.add_input_event(event)
        self._events[user_id] = events
        self._events_size[user_id] = size


class NpzDropSource:
    """Follow a directory that receives whole ``.npz`` dataset drops.

    Drops (saved :class:`~repro.trace.dataset.Dataset` archives, e.g.
    one per day) are consumed in sorted-name order through the
    bounded-memory :class:`~repro.stream.NpzStreamSource`. Every drop
    must carry the same user set, and each drop's app registry must be
    a *prefix extension* of the registry accumulated so far — same
    names, same ids, possibly new apps appended — otherwise app ids
    would silently rebind mid-follow (:class:`~repro.errors.FollowError`).
    """

    def __init__(
        self, directory: PathLike, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> None:
        if chunk_size < 1:
            raise FollowError(f"chunk_size must be >= 1: {chunk_size}")
        self.directory = Path(directory)
        if not self.directory.is_dir():
            raise FollowError(f"not a drop directory: {self.directory}")
        self.chunk_size = int(chunk_size)
        self.registry = AppRegistry()
        self._user_ids: List[int] = []
        #: Per-user drop position: drops fully consumed, the drop in
        #: progress (or None) and rows consumed into it.
        self._cursors: Dict[int, dict] = {}
        self._sources: Dict[str, NpzStreamSource] = {}

    @property
    def user_ids(self) -> List[int]:
        """User ids from the first drop (empty until one arrives)."""
        if not self._user_ids:
            drops = self._drop_names()
            if drops:
                self._adopt_drop(self._source_for(drops[0]))
        return list(self._user_ids)

    def window(self, user_id: int) -> Tuple[float, float]:
        """A follow has no end of time: ``(0, FOLLOW_WINDOW_END)``."""
        return (0.0, FOLLOW_WINDOW_END)

    def signature(self) -> str:
        """Digest binding follow checkpoints to this directory.

        Over the directory path only — new drops arriving must *not*
        invalidate the checkpoint; that is the entire point.
        """
        payload = json.dumps(
            {"kind": "npz-drops", "path": str(self.directory)}
        )
        return hashlib.blake2b(
            payload.encode("utf-8"), digest_size=12
        ).hexdigest()

    # ------------------------------------------------------------------
    # Cursor persistence
    # ------------------------------------------------------------------
    def cursor_snapshot(self, user_id: int) -> dict:
        cursor = self._cursor(user_id)
        return {
            "done": list(cursor["done"]),
            "name": cursor["name"],
            "rows": int(cursor["rows"]),
        }

    def restore(
        self, cursors: Dict[str, dict], registry_json: Optional[str]
    ) -> None:
        """Rewind to checkpointed drop positions + app registry.

        Deliberately does *not* adopt the cursor keys as the follow's
        user set: a checkpoint taken before every user had produced a
        chunk would then pin a partial set and reject the next drop.
        The user set always comes from the drops themselves.
        """
        if registry_json is not None:
            self.registry = AppRegistry.from_json(registry_json)
        for uid_text, snapshot in cursors.items():
            uid = int(uid_text)
            self._cursors[uid] = {
                "done": list(snapshot["done"]),
                "name": snapshot["name"],
                "rows": int(snapshot["rows"]),
            }

    # ------------------------------------------------------------------
    # Polling
    # ------------------------------------------------------------------
    def poll(
        self, user_id: int, max_chunks: Optional[int] = None
    ) -> List[Tuple[PacketArray, dict]]:
        """One user's next chunks, finishing at most one drop per call."""
        faults.fire("follow.tail")
        cursor = self._cursor(user_id)
        drops = self._drop_names()
        done = set(cursor["done"])
        missing = done - set(drops)
        if missing:
            raise SourceTruncated(
                self.directory / sorted(missing)[0], len(done), len(drops)
            )
        pending = [name for name in drops if name not in done]
        if not pending:
            return []
        name = pending[0]
        if cursor["name"] is not None and cursor["name"] != name:
            if cursor["name"] not in drops:
                raise SourceTruncated(
                    self.directory / cursor["name"], 1, 0
                )
            name = cursor["name"]
        source = self._source_for(name)
        self._adopt_drop(source)
        skip = cursor["rows"] if cursor["name"] == name else 0
        cursor["name"], cursor["rows"] = name, skip
        out: List[Tuple[PacketArray, dict]] = []
        finished = True
        for chunk in source.iter_chunks(user_id, skip=skip):
            cursor["rows"] = int(cursor["rows"]) + len(chunk)
            out.append((chunk, self.cursor_snapshot(user_id)))
            if max_chunks is not None and len(out) >= max_chunks:
                finished = cursor["rows"] >= source.n_packets(user_id)
                break
        if finished or cursor["rows"] >= source.n_packets(user_id):
            cursor["done"].append(name)
            cursor["name"], cursor["rows"] = None, 0
            if out:
                # The last chunk's durable snapshot marks the whole
                # drop consumed, not a row offset into it.
                out[-1] = (out[-1][0], self.cursor_snapshot(user_id))
            else:
                # A drop with no packets for this user still completes.
                pass
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _fresh_cursor(self) -> dict:
        return {"done": [], "name": None, "rows": 0}

    def _cursor(self, user_id: int) -> dict:
        return self._cursors.setdefault(user_id, self._fresh_cursor())

    def _drop_names(self) -> List[str]:
        return sorted(p.name for p in self.directory.glob("*.npz"))

    def _source_for(self, name: str) -> NpzStreamSource:
        if name not in self._sources:
            self._sources[name] = NpzStreamSource(
                self.directory / name, chunk_size=self.chunk_size
            )
        return self._sources[name]

    def _adopt_drop(self, source: NpzStreamSource) -> None:
        """Merge one drop's registry/users into the follow's view."""
        ours = [self.registry.name_of(a.app_id) for a in self.registry]
        theirs = [
            source.registry.name_of(a.app_id) for a in source.registry
        ]
        shared = min(len(ours), len(theirs))
        if ours[:shared] != theirs[:shared]:
            raise FollowError(
                f"drop {Path(source.path).name} app registry is not an "
                "extension of the followed registry — app ids would "
                "rebind mid-follow"
            )
        if len(theirs) > len(ours):
            self.registry = AppRegistry.from_json(
                source.registry.to_json()
            )
        if not self._user_ids:
            self._user_ids = list(source.user_ids)
            for uid in self._user_ids:
                self._cursors.setdefault(uid, self._fresh_cursor())
        elif list(source.user_ids) != self._user_ids:
            raise FollowError(
                f"drop {Path(source.path).name} covers users "
                f"{list(source.user_ids)}, the follow covers "
                f"{self._user_ids} — drops must share one user set"
            )


TailSource = (TailCsvSource, NpzDropSource)
