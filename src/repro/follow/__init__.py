"""Live monitoring: follow a growing source, keep rolling windows.

``repro.follow`` turns the batch reproduction into an always-on
monitor. A :class:`Follower` tails a growing source — per-user packets
CSVs appended in place (:class:`TailCsvSource`) or a directory
collecting per-day ``.npz`` drops (:class:`NpzDropSource`) — and runs
every complete chunk through the exact streaming attribution engine,
so whole-stream totals stay bit-identical to a batch run over the same
packets. On top of that it maintains rolling windows
(:class:`WindowRing`; hour/day/week by default), emits streaming
headlines as each window's next bucket seals, and publishes the live
windows to a results store for ``repro serve /live/...``.

The subsystem's core invariant, enforced by the property suite: a
long-lived ring's window fold — through any chunking, eviction history
and checkpoint round-trips — is ``array_equal`` to a fresh ring built
from only that window's packets. See ``docs/MONITORING.md``.
"""

from repro.follow.follower import (
    FOLLOW_FORMAT,
    LIVE_ANALYSES,
    LIVE_MANIFEST,
    Follower,
    live_manifest_path,
    settled_timestamps,
)
from repro.follow.headlines import HEADLINE_LOG_LIMIT, HeadlineEngine
from repro.follow.sources import (
    TAIL_READ_LIMIT,
    NpzDropSource,
    TailCsvSource,
    TailSource,
)
from repro.follow.windows import (
    DEFAULT_WINDOWS,
    FOLLOW_WINDOW_END,
    WindowRing,
    WindowSpec,
    fold_energy_by_app,
    fold_total_energy,
    parse_window_spec,
)

__all__ = [
    "DEFAULT_WINDOWS",
    "FOLLOW_FORMAT",
    "FOLLOW_WINDOW_END",
    "Follower",
    "HEADLINE_LOG_LIMIT",
    "HeadlineEngine",
    "LIVE_ANALYSES",
    "LIVE_MANIFEST",
    "NpzDropSource",
    "TAIL_READ_LIMIT",
    "TailCsvSource",
    "TailSource",
    "WindowRing",
    "WindowSpec",
    "fold_energy_by_app",
    "fold_total_energy",
    "live_manifest_path",
    "parse_window_spec",
    "settled_timestamps",
]
