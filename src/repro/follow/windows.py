"""Rolling-window keyed totals: a ring of per-bucket ``KeyedTotals``.

A live follower cannot afford "recompute the last hour from scratch"
on every new chunk, and a subtractive window (``total -= expired``)
would break the library's bit-identity contract — float subtraction
does not undo float addition. The ring takes the third road:

* Trace time is divided into fixed **buckets** of ``bucket_s`` seconds
  (bucket ``b`` covers ``[b*bucket_s, (b+1)*bucket_s)``).
* Each (bucket, user) pair owns its own
  :class:`~repro.core.readout.KeyedTotals` triple (per-app energy,
  per-(app, state) energy, per-(app, state) bytes). Because
  ``KeyedTotals.add`` is chunk-invariant (the carry-first bincount
  replay), a bucket's totals do not depend on how the stream was
  chunked — only on which settled packets fell into it.
* A **window** ending at sealed bucket ``B`` is the fold of buckets
  ``(B-n, B]`` in ascending bucket order through the study-wide
  :func:`~repro.core.readout.merge_keyed_totals` — the exact fold
  every readout replays. Evicting expired buckets just drops dict
  entries; it never touches a float. Hence the subsystem's core
  invariant, enforced by the property suite: the fold of a long-lived
  ring (any chunking, any eviction history, any number of checkpoint
  round-trips) is ``array_equal`` to the fold of a fresh ring built
  from only the window's packets.

Buckets are retained for ``2n`` bucket ids — the current window plus
the previous one (for headline deltas) — and evicted past that, so a
follower's memory is bounded by window span, not stream length.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro import faults
from repro.core.readout import (
    KeyedTotals,
    ReadoutProvenance,
    UserTotalsView,
    WindowedTotalsReadout,
    combined_app_state_keys,
    merge_keyed_totals,
)
from repro.errors import FollowError
from repro.trace.dataset import AppRegistry

#: Observation-window end for followed users: tailed sources have no
#: known end of time, so duration-based analyses see "the stream so
#: far" bounded by the largest float64-exact integer.
FOLLOW_WINDOW_END = float(2**53)

#: One window's fold, per user: (energy by app, energy by combined
#: (app, state) key, bytes by combined key).
UserFold = Tuple[Dict[int, float], Dict[int, float], Dict[int, int]]


@dataclass(frozen=True)
class WindowSpec:
    """One rolling window: a name, a span, and its bucket granularity.

    ``span_s`` must be a positive multiple of ``bucket_s``; the window
    then holds exactly ``span_s // bucket_s`` buckets. The bucket is
    also the *sealing* granularity: a window is (re-)evaluated when its
    next bucket boundary passes the stream's low-watermark.
    """

    name: str
    span_s: int
    bucket_s: int

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise FollowError(
                f"window name {self.name!r} must be non-empty and "
                "alphanumeric"
            )
        if self.bucket_s <= 0 or self.span_s <= 0:
            raise FollowError(
                f"window {self.name!r}: span and bucket must be positive "
                f"(got span={self.span_s}, bucket={self.bucket_s})"
            )
        if self.span_s % self.bucket_s != 0:
            raise FollowError(
                f"window {self.name!r}: span {self.span_s} s is not a "
                f"multiple of bucket {self.bucket_s} s"
            )

    @property
    def n_buckets(self) -> int:
        """Buckets per window (``span_s // bucket_s``)."""
        return self.span_s // self.bucket_s


#: The windows ``repro follow`` maintains by default.
DEFAULT_WINDOWS: Tuple[WindowSpec, ...] = (
    WindowSpec("hour", 3600, 300),
    WindowSpec("day", 86400, 7200),
    WindowSpec("week", 604800, 43200),
)


def parse_window_spec(text: str) -> WindowSpec:
    """Parse a CLI ``NAME=SPAN:BUCKET`` window spec (seconds)."""
    try:
        name, _, rest = text.partition("=")
        span_text, _, bucket_text = rest.partition(":")
        if not (name and span_text and bucket_text):
            raise ValueError("missing field")
        span, bucket = int(span_text), int(bucket_text)
    except ValueError:
        raise FollowError(
            f"window spec {text!r} is not NAME=SPAN:BUCKET "
            "(e.g. hour=3600:300)"
        ) from None
    return WindowSpec(name, span, bucket)


class _BucketSlot:
    """One (bucket, user) cell: the three keyed accumulators."""

    __slots__ = ("energy", "app_state", "bytes")

    def __init__(
        self,
        energy: Optional[KeyedTotals] = None,
        app_state: Optional[KeyedTotals] = None,
        bytes_state: Optional[KeyedTotals] = None,
    ) -> None:
        self.energy = energy or KeyedTotals()
        self.app_state = app_state or KeyedTotals()
        self.bytes = bytes_state or KeyedTotals(dtype=np.int64)


class WindowRing:
    """The ring of per-bucket, per-user :class:`KeyedTotals`."""

    def __init__(self, spec: WindowSpec) -> None:
        self.spec = spec
        #: bucket id -> user id -> :class:`_BucketSlot`.
        self._buckets: Dict[int, Dict[int, _BucketSlot]] = {}
        #: Highest sealed bucket this ring was evaluated (headlined,
        #: published) at; ``None`` before the first evaluation.
        self.last_evaluated: Optional[int] = None
        #: Total buckets evicted over the ring's lifetime.
        self.evictions = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self,
        user_id: int,
        timestamps: np.ndarray,
        apps: np.ndarray,
        states: np.ndarray,
        sizes: np.ndarray,
        energies: np.ndarray,
    ) -> None:
        """Fold one settled, time-sorted packet run into its buckets.

        The run is split at bucket boundaries; each segment enters its
        (bucket, user) slot's accumulators as one ``add``. Since
        ``KeyedTotals.add`` is chunk-invariant, any chunking of the
        same packets lands every bucket on bit-identical totals.
        """
        if len(timestamps) == 0:
            return
        ids = np.floor(
            np.asarray(timestamps, np.float64) / self.spec.bucket_s
        ).astype(np.int64)
        cuts = np.flatnonzero(np.diff(ids)) + 1
        starts = np.concatenate([[0], cuts])
        ends = np.concatenate([cuts, [len(ids)]])
        for lo, hi in zip(starts, ends):
            slot = self._slot(int(ids[lo]), user_id)
            seg_apps = np.asarray(apps[lo:hi], np.int64)
            seg_energy = np.asarray(energies[lo:hi], np.float64)
            keys = combined_app_state_keys(seg_apps, states[lo:hi])
            slot.energy.add(seg_apps, seg_energy)
            slot.app_state.add(keys, seg_energy)
            slot.bytes.add(keys, np.asarray(sizes[lo:hi], np.int64))

    def _slot(self, bucket: int, user_id: int) -> _BucketSlot:
        return self._buckets.setdefault(bucket, {}).setdefault(
            user_id, _BucketSlot()
        )

    # ------------------------------------------------------------------
    # Fold + eviction
    # ------------------------------------------------------------------
    def bucket_ids(self) -> List[int]:
        """Present bucket ids, ascending."""
        return sorted(self._buckets)

    def fold(self, high_bucket: int) -> Dict[int, UserFold]:
        """The window ending at sealed bucket ``high_bucket``.

        Folds buckets ``(high_bucket - n, high_bucket]`` in ascending
        order per user through :func:`merge_keyed_totals` — the one
        study-wide fold — and returns per-user keyed dicts, users in
        sorted-id order.
        """
        low = high_bucket - self.spec.n_buckets
        selected = [b for b in self.bucket_ids() if low < b <= high_bucket]
        users = sorted(
            {uid for b in selected for uid in self._buckets[b]}
        )
        out: Dict[int, UserFold] = {}
        for uid in users:
            slots = [
                self._buckets[b][uid]
                for b in selected
                if uid in self._buckets[b]
            ]
            out[uid] = (
                merge_keyed_totals(s.energy.as_dict() for s in slots),
                merge_keyed_totals(s.app_state.as_dict() for s in slots),
                merge_keyed_totals(
                    (s.bytes.as_dict() for s in slots), zero=0
                ),
            )
        return out

    def fold_digest(self, high_bucket: int) -> str:
        """Content hash of :meth:`fold` — equal iff the fold is.

        The live ``/live/...`` ETags and the publish-skip logic hang
        off this: it hashes the exact float64/int64 bit patterns, so
        the digest moves exactly when some window total moves.
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.spec.name.encode("utf-8"))
        digest.update(np.int64(high_bucket).tobytes())
        for uid, (energy, state, sizes) in self.fold(high_bucket).items():
            digest.update(np.int64(uid).tobytes())
            for part, cast in (
                (energy, np.float64),
                (state, np.float64),
                (sizes, np.int64),
            ):
                for key in sorted(part):
                    digest.update(np.int64(key).tobytes())
                    digest.update(cast(part[key]).tobytes())
        return digest.hexdigest()

    def evict_through(self, bucket: int) -> int:
        """Drop every bucket with id <= ``bucket``; return the count.

        The follower calls this with ``sealed - 2n`` so the current
        and previous windows always survive. Eviction only deletes
        dict entries — no float is recomputed — which is why a
        long-lived ring stays bit-identical to a fresh one.
        """
        expired = [b for b in self._buckets if b <= bucket]
        if not expired:
            return 0
        faults.fire("follow.evict")
        for b in expired:
            del self._buckets[b]
        self.evictions += len(expired)
        return len(expired)

    # ------------------------------------------------------------------
    # Readout
    # ------------------------------------------------------------------
    def window_bounds(self, high_bucket: int) -> Tuple[float, float]:
        """Trace-time ``[start, end)`` of the window sealed at ``high_bucket``."""
        bucket_s = self.spec.bucket_s
        return (
            float((high_bucket - self.spec.n_buckets + 1) * bucket_s),
            float((high_bucket + 1) * bucket_s),
        )

    def readout(
        self,
        high_bucket: int,
        registry: Optional[AppRegistry] = None,
        provenance: Optional[ReadoutProvenance] = None,
    ) -> WindowedTotalsReadout:
        """The window as a protocol-satisfying readout."""
        start, end = self.window_bounds(high_bucket)
        views = [
            UserTotalsView(uid, energy, state, sizes, 0.0)
            for uid, (energy, state, sizes) in self.fold(
                high_bucket
            ).items()
        ]
        return WindowedTotalsReadout(
            views,
            window_name=self.spec.name,
            window_start=start,
            window_end=end,
            registry=registry,
            provenance=provenance,
        )

    # ------------------------------------------------------------------
    # Checkpoint payload
    # ------------------------------------------------------------------
    def payload(
        self, prefix: str
    ) -> Tuple[dict, Dict[str, np.ndarray]]:
        """(meta JSON dict, named arrays) for the checkpoint extras.

        Array names are ``{prefix}_b{bucket}_u{user}_{e|s|y}{k|v}`` —
        keys/values of the energy, app-state and bytes accumulators.
        """
        meta = {
            "name": self.spec.name,
            "span_s": self.spec.span_s,
            "bucket_s": self.spec.bucket_s,
            "last_evaluated": self.last_evaluated,
            "evictions": self.evictions,
            "buckets": {
                str(b): sorted(users)
                for b, users in sorted(self._buckets.items())
            },
        }
        arrays: Dict[str, np.ndarray] = {}
        for b, users in self._buckets.items():
            for uid, slot in users.items():
                stem = f"{prefix}_b{b}_u{uid}"
                for tag, totals in (
                    ("e", slot.energy),
                    ("s", slot.app_state),
                    ("y", slot.bytes),
                ):
                    keys, values = totals.payload()
                    arrays[f"{stem}_{tag}k"] = keys
                    arrays[f"{stem}_{tag}v"] = values
        return meta, arrays

    @classmethod
    def from_payload(
        cls, meta: dict, arrays: Dict[str, np.ndarray], prefix: str
    ) -> "WindowRing":
        """Rebuild a ring saved by :meth:`payload`, bit-identically."""
        ring = cls(
            WindowSpec(
                str(meta["name"]), int(meta["span_s"]), int(meta["bucket_s"])
            )
        )
        last = meta.get("last_evaluated")
        ring.last_evaluated = None if last is None else int(last)
        ring.evictions = int(meta.get("evictions", 0))
        for bucket_text, uids in meta["buckets"].items():
            b = int(bucket_text)
            for uid in uids:
                stem = f"{prefix}_b{b}_u{int(uid)}"
                ring._buckets.setdefault(b, {})[int(uid)] = _BucketSlot(
                    KeyedTotals(
                        arrays[f"{stem}_ek"], arrays[f"{stem}_ev"]
                    ),
                    KeyedTotals(
                        arrays[f"{stem}_sk"], arrays[f"{stem}_sv"]
                    ),
                    KeyedTotals(
                        arrays[f"{stem}_yk"],
                        arrays[f"{stem}_yv"],
                        dtype=np.int64,
                    ),
                )
        return ring


def fold_total_energy(fold: Dict[int, UserFold]) -> float:
    """Study-wide attributed joules of one window fold.

    The same shape as :meth:`TotalsReadout.attributed_energy`: the
    per-user per-app dicts merged in user order, then summed — a
    deterministic float fold, so resumed and uninterrupted runs print
    identical headline numbers.
    """
    merged = merge_keyed_totals(energy for energy, _, _ in fold.values())
    return sum(merged.values())


def fold_energy_by_app(fold: Dict[int, UserFold]) -> Dict[int, float]:
    """Per-app attributed joules of one window fold (all users)."""
    return merge_keyed_totals(energy for energy, _, _ in fold.values())
