"""Streaming headlines: what changed in the window that just sealed.

Every time a window's next bucket seals, the follower hands this
engine the window's fold and the *previous* window's fold (the span
one window earlier). Three kinds of line come out:

* a **total** line, always — the window's attributed joules and the
  percentage delta against the previous window;
* **top-N entry** lines — apps that entered the top-N energy ranking
  since the last evaluation (on the very first evaluation the whole
  ranking "enters");
* **surge** lines — apps whose window energy is at least
  ``surge_factor``× their previous-window energy, emitted once on
  entering the surged set.

Everything is a pure function of (bucket, fold, prior fold) plus the
small carried state — which checkpoints with the follower — so a
resumed run emits the byte-identical line sequence an uninterrupted
run would. Ties rank by app id; numbers print with fixed precision.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.follow.windows import (
    UserFold,
    fold_energy_by_app,
    fold_total_energy,
)
from repro.trace.dataset import AppRegistry

#: Headline lines kept in the follower's replayable log.
HEADLINE_LOG_LIMIT = 1000


class HeadlineEngine:
    """Per-window change detector over successive sealed folds."""

    def __init__(
        self,
        window_name: str,
        top_n: int = 5,
        surge_factor: float = 2.0,
    ) -> None:
        self.window_name = window_name
        self.top_n = int(top_n)
        self.surge_factor = float(surge_factor)
        #: Top-N app ids of the last evaluation (rank order).
        self._top: List[int] = []
        #: App ids currently in the surged set.
        self._surged: List[int] = []
        self._evaluated = False

    def evaluate(
        self,
        bucket: int,
        fold: Dict[int, UserFold],
        prior_fold: Dict[int, UserFold],
        registry: Optional[AppRegistry] = None,
    ) -> List[str]:
        """Headlines for the window sealed at ``bucket``."""
        tag = f"[{self.window_name} #{bucket}]"
        by_app = fold_energy_by_app(fold)
        prior_by_app = fold_energy_by_app(prior_fold)
        total = fold_total_energy(fold)
        prior_total = fold_total_energy(prior_fold)

        lines: List[str] = []
        if prior_fold:
            delta = (
                f"{(total - prior_total) / prior_total * 100.0:+.1f}% "
                "vs previous window"
                if prior_total > 0.0
                else "previous window was idle"
            )
        else:
            delta = "no previous window"
        lines.append(f"{tag} total {total:.3f} J ({delta})")

        ranked = sorted(by_app.items(), key=lambda kv: (-kv[1], kv[0]))
        top = [app for app, _ in ranked[: self.top_n]]
        previous_top = set(self._top)
        for rank, app in enumerate(top, start=1):
            if self._evaluated and app in previous_top:
                continue
            verb = (
                f"entered the top-{self.top_n}"
                if self._evaluated
                else f"is #{rank} of the top-{self.top_n}"
            )
            lines.append(
                f"{tag} {self._name(app, registry)} {verb} energy "
                f"consumers ({by_app[app]:.3f} J)"
            )

        surged = []
        for app in sorted(by_app):
            prior = prior_by_app.get(app, 0.0)
            if prior > 0.0 and by_app[app] >= self.surge_factor * prior:
                surged.append(app)
                if app not in self._surged:
                    lines.append(
                        f"{tag} {self._name(app, registry)} energy "
                        f"surged {by_app[app] / prior:.1f}x vs previous "
                        f"window ({by_app[app]:.3f} J)"
                    )

        self._top = top
        self._surged = surged
        self._evaluated = True
        return lines

    @staticmethod
    def _name(app_id: int, registry: Optional[AppRegistry]) -> str:
        if registry is not None and app_id in registry:
            return registry.name_of(app_id)
        return f"app{app_id}"

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """JSON-serialisable carried state."""
        return {
            "top": list(self._top),
            "surged": list(self._surged),
            "evaluated": self._evaluated,
        }

    @classmethod
    def from_state(
        cls,
        window_name: str,
        state: dict,
        top_n: int = 5,
        surge_factor: float = 2.0,
    ) -> "HeadlineEngine":
        engine = cls(window_name, top_n=top_n, surge_factor=surge_factor)
        engine._top = [int(a) for a in state.get("top", [])]
        engine._surged = [int(a) for a in state.get("surged", [])]
        engine._evaluated = bool(state.get("evaluated", False))
        return engine
