"""The long-running follower: poll → attribute → window → publish.

:class:`Follower` turns the batch reproduction into an always-on
monitor. Each loop iteration:

1. **Polls** the tailing source for complete new chunks, respecting a
   bounded pending queue (``max_pending``); the post-poll backlog is
   the ``follow.lag_chunks`` gauge — when attribution falls behind,
   the queue fills and polling stops until it drains (backpressure at
   the source, not unbounded memory).
2. **Attributes** every pending chunk through the exact streaming
   radio engine (:class:`~repro.radio.streaming.StreamingAttribution`
   resumed from each user's checkpointable carry), folds the settled
   packets into both the whole-stream accumulators and every
   :class:`~repro.follow.WindowRing`.
3. **Advances** windows: the per-user watermarks (last packet seen,
   pending included) define the stream's low-watermark ``t_seal``;
   every bucket wholly before it is *sealed* — its packets can no
   longer change — and each newly sealed bucket is evaluated once, in
   order: headlines out, ring evicted past two window spans,
   live artefacts re-published when (and only when) the fold digest
   moved.
4. **Checkpoints** every ``checkpoint_every`` processed chunks, on
   SIGTERM/SIGINT, and before returning — a regular format-2
   :class:`~repro.stream.StreamCheckpoint` (users ``running``) whose
   *extras* carry the rings, cursors, watermarks and headline state,
   so ``--resume`` reproduces windows and headlines bit-identically.

Evaluation is driven purely by sealed buckets, never by polling
cadence: however the arrivals were chunked or interleaved, every
window is evaluated at the same buckets with the same folds.
"""

from __future__ import annotations

import json
import os
import signal
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.readout import ReadoutProvenance
from repro.errors import FollowError, ReproError
from repro.follow.headlines import HEADLINE_LOG_LIMIT, HeadlineEngine
from repro.follow.windows import DEFAULT_WINDOWS, WindowRing, WindowSpec
from repro.metrics import RunMetrics
from repro.radio.attribution import TailPolicy
from repro.radio.base import RadioModel
from repro.radio.lte import LTE_DEFAULT
from repro.radio.streaming import RadioCarry, StreamingAttribution
from repro.stream.accumulate import UserStreamAccumulator
from repro.stream.checkpoint import StreamCheckpoint
from repro.store.keys import StoreKey
from repro.store.render import ANALYSIS_KINDS, render_analysis
from repro.trace.arrays import PacketArray

#: The analyses re-published live for every window on each fold change.
#: ``table1`` is absent by design: it needs the cadence tier, which a
#: window fold cannot carry (see ``WindowedTotalsReadout``).
LIVE_ANALYSES = ("fig1", "fig2", "fig3", "headlines", "readout")

#: Name of the live-window manifest inside the store directory.
LIVE_MANIFEST = "live.json"

#: The follow checkpoint extras format (inside ``extra_json``).
FOLLOW_FORMAT = 1


def settled_timestamps(
    chunk_timestamps: np.ndarray, had_pending: bool, pending_ts: float
) -> np.ndarray:
    """Timestamps of the packets one ``feed(chunk)`` settles.

    :class:`~repro.radio.streaming.FinalizedChunk` deliberately carries
    no timestamps (totals never needed them); windowing does. The
    settled packets of a feed are exactly: the carried pending packet
    (when there was one), then the chunk's own packets except its last
    — so their timestamps are reconstructible from the pre-feed carry
    and the chunk alone, which a property test pins against any
    chunking.
    """
    ts = np.asarray(chunk_timestamps, np.float64)
    if had_pending:
        return np.concatenate([[pending_ts], ts[:-1]])
    return ts[:-1]


def live_manifest_path(store_directory) -> Path:
    """Where the live-window manifest lives inside a store directory."""
    return Path(store_directory) / LIVE_MANIFEST


class Follower:
    """Tail a source, maintain rolling windows, publish live results.

    Args:
        source: A :class:`~repro.follow.TailCsvSource` or
            :class:`~repro.follow.NpzDropSource`.
        checkpoint_path: Where follow state persists (required — a
            follower without durability is a pipe, not a monitor).
        model / policy: The attribution configuration; checkpoint-bound
            like any ingest.
        windows: The :class:`WindowSpec`\\ s to maintain.
        store: Optional :class:`~repro.store.ResultStore`; when given,
            every window's :data:`LIVE_ANALYSES` are published under a
            fold-digest fingerprint and indexed in ``live.json``.
        emit: Headline sink (default ``print``, flushed).
    """

    def __init__(
        self,
        source,
        *,
        checkpoint_path,
        model: Optional[RadioModel] = None,
        policy: TailPolicy = TailPolicy.SPLIT_ADJACENT,
        windows: Sequence[WindowSpec] = DEFAULT_WINDOWS,
        store=None,
        checkpoint_every: int = 16,
        poll_interval: float = 1.0,
        max_pending: int = 64,
        top_n: int = 5,
        metrics: Optional[RunMetrics] = None,
        emit: Optional[Callable[[str], None]] = None,
    ) -> None:
        if not windows:
            raise FollowError("at least one window is required")
        names = [w.name for w in windows]
        if len(set(names)) != len(names):
            raise FollowError(f"duplicate window names in {names}")
        if checkpoint_every < 1:
            raise FollowError(
                f"checkpoint_every must be >= 1: {checkpoint_every}"
            )
        if max_pending < 1:
            raise FollowError(f"max_pending must be >= 1: {max_pending}")
        self.source = source
        self.checkpoint_path = checkpoint_path
        self.model = model if model is not None else LTE_DEFAULT
        self.policy = policy
        self.store = store
        self.checkpoint_every = int(checkpoint_every)
        self.poll_interval = float(poll_interval)
        self.max_pending = int(max_pending)
        self.top_n = int(top_n)
        self.metrics = metrics if metrics is not None else RunMetrics()
        self._emit = emit if emit is not None else self._print_flush
        self.rings: Dict[str, WindowRing] = {
            spec.name: WindowRing(spec) for spec in windows
        }
        self.engines: Dict[str, HeadlineEngine] = {
            spec.name: HeadlineEngine(spec.name, top_n=self.top_n)
            for spec in windows
        }
        self._accumulators: Dict[int, UserStreamAccumulator] = {}
        self._watermarks: Dict[int, float] = {}
        self._pending: Deque[Tuple[int, PacketArray, dict]] = deque()
        self._cursors: Dict[str, dict] = {}
        self._published: Dict[str, dict] = {}
        self.headline_log: List[str] = []
        self.chunks_done = 0
        self._since_checkpoint = 0
        self._stop = False

    @staticmethod
    def _print_flush(line: str) -> None:
        print(line, flush=True)

    def request_stop(self) -> None:
        """Ask the loop to checkpoint and return (signal-handler safe)."""
        self._stop = True

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def run(
        self,
        resume: bool = False,
        max_polls: Optional[int] = None,
        idle_exit: Optional[int] = None,
    ) -> str:
        """Follow until stopped; returns why.

        ``"interrupted"`` — SIGTERM/SIGINT (or :meth:`request_stop`);
        the checkpoint is written and ``--resume`` continues exactly.
        ``"stopped"`` — ``max_polls`` loop iterations ran.
        ``"idle"`` — ``idle_exit`` consecutive polls found no new data.
        On any :class:`~repro.errors.ReproError` the checkpoint is
        written first, then the error propagates.
        """
        if resume:
            self._restore()
        handlers = self._install_signal_handlers()
        polls = 0
        idle_streak = 0
        try:
            while True:
                if self._stop:
                    self.save_checkpoint()
                    return "interrupted"
                moved = self._poll_sources()
                self.metrics.gauge("follow.lag_chunks", len(self._pending))
                moved = self._drain() or moved
                self._advance_windows()
                polls += 1
                if self._stop:
                    self.save_checkpoint()
                    return "interrupted"
                if max_polls is not None and polls >= max_polls:
                    self.save_checkpoint()
                    return "stopped"
                if moved:
                    idle_streak = 0
                else:
                    idle_streak += 1
                    if idle_exit is not None and idle_streak >= idle_exit:
                        self.save_checkpoint()
                        return "idle"
                    time.sleep(self.poll_interval)
        except ReproError:
            # A typed failure mid-follow must not cost the windows:
            # persist, then let the CLI map the error to its exit code.
            self.save_checkpoint()
            raise
        finally:
            self._restore_signal_handlers(handlers)

    def _install_signal_handlers(self):
        handlers = {}
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                handlers[signum] = signal.signal(
                    signum, lambda *_: self.request_stop()
                )
            except ValueError:
                # Not the main thread (tests drive run() from a worker
                # thread); request_stop() is the caller's job then.
                pass
        return handlers

    @staticmethod
    def _restore_signal_handlers(handlers) -> None:
        for signum, previous in handlers.items():
            signal.signal(signum, previous)

    # ------------------------------------------------------------------
    # Polling + attribution
    # ------------------------------------------------------------------
    def _poll_sources(self) -> bool:
        """Fill the pending queue up to ``max_pending``; True if it grew."""
        grew = False
        with self.metrics.stage("follow.poll"):
            for uid in self.source.user_ids:
                room = self.max_pending - len(self._pending)
                if room <= 0:
                    break
                for chunk, snapshot in self.source.poll(
                    uid, max_chunks=room
                ):
                    self._pending.append((uid, chunk, snapshot))
                    grew = True
        return grew

    def _drain(self) -> bool:
        """Attribute and window every pending chunk; True if any ran.

        A stop request takes effect between chunks, not after the whole
        backlog: unprocessed chunks are simply dropped — their cursors
        were never adopted, so the resumed tail re-reads them.
        """
        ran = False
        while self._pending and not self._stop:
            uid, chunk, snapshot = self._pending.popleft()
            self._process_chunk(uid, chunk, snapshot)
            ran = True
        return ran

    def _accumulator_for(self, uid: int) -> UserStreamAccumulator:
        if uid not in self._accumulators:
            self._accumulators[uid] = UserStreamAccumulator(
                uid, self.source.window(uid), cadence=False
            )
        return self._accumulators[uid]

    def _process_chunk(
        self, uid: int, chunk: PacketArray, snapshot: dict
    ) -> None:
        acc = self._accumulator_for(uid)
        carry = (
            RadioCarry.from_payload(acc.carry)
            if acc.carry is not None
            else None
        )
        had_pending = carry is not None and carry.n_packets > 0
        pending_ts = carry.pending_ts if had_pending else 0.0
        sim = StreamingAttribution(
            self.model, self.policy, acc.window, carry
        )
        with self.metrics.stage("follow.attribute"):
            settled = sim.feed(chunk)
            ts = settled_timestamps(
                chunk.timestamps, had_pending, pending_ts
            )
            acc.adopt(
                (
                    settled.apps,
                    settled.states,
                    settled.sizes,
                    settled.per_packet,
                ),
                sim.carry.to_payload(),
            )
            acc.rows_consumed += len(chunk)
            for ring in self.rings.values():
                ring.ingest(
                    uid,
                    ts,
                    settled.apps,
                    settled.states,
                    settled.sizes,
                    settled.per_packet,
                )
        self._watermarks[uid] = float(chunk.timestamps[-1])
        self._cursors[str(uid)] = snapshot
        self.chunks_done += 1
        self._since_checkpoint += 1
        self.metrics.count("follow.chunks")
        self.metrics.count("follow.packets", len(chunk))
        if self._since_checkpoint >= self.checkpoint_every:
            self.save_checkpoint()

    # ------------------------------------------------------------------
    # Window advancement
    # ------------------------------------------------------------------
    def seal_time(self) -> float:
        """The stream low-watermark: data before it can still arrive
        for no user, so buckets wholly before it are final."""
        user_ids = self.source.user_ids
        if not user_ids:
            return 0.0
        return min(self._watermarks.get(uid, 0.0) for uid in user_ids)

    def _advance_windows(self) -> None:
        t_seal = self.seal_time()
        for name, ring in self.rings.items():
            sealed_high = int(t_seal // ring.spec.bucket_s) - 1
            if ring.last_evaluated is not None:
                start = ring.last_evaluated + 1
            else:
                present = ring.bucket_ids()
                if not present:
                    continue
                start = present[0]
            evaluated = None
            for bucket in range(start, sealed_high + 1):
                lines = self.engines[name].evaluate(
                    bucket,
                    ring.fold(bucket),
                    ring.fold(bucket - ring.spec.n_buckets),
                    getattr(self.source, "registry", None),
                )
                for line in lines:
                    self._emit(line)
                    if len(self.headline_log) < HEADLINE_LOG_LIMIT:
                        self.headline_log.append(line)
                ring.last_evaluated = bucket
                evaluated = bucket
            if evaluated is not None:
                ring.evict_through(evaluated - 2 * ring.spec.n_buckets)
                self._publish_window(name, ring, evaluated)

    # ------------------------------------------------------------------
    # Live publishing
    # ------------------------------------------------------------------
    def _publish_window(
        self, name: str, ring: WindowRing, bucket: int
    ) -> None:
        if self.store is None:
            return
        digest = ring.fold_digest(bucket)
        previous = self._published.get(name)
        if previous is not None and previous["digest"] == digest:
            return
        fingerprint = f"live:{self.source.signature()}:{name}:{digest}"
        provenance = ReadoutProvenance(
            fingerprint, repr(self.model), self.policy.value
        )
        readout = ring.readout(
            bucket,
            registry=getattr(self.source, "registry", None),
            provenance=provenance,
        )
        with self.metrics.stage("follow.publish"):
            for analysis in LIVE_ANALYSES:
                key = StoreKey(
                    fingerprint,
                    provenance.model,
                    provenance.policy,
                    analysis,
                )
                self.store.put(
                    key,
                    render_analysis(analysis, readout).encode("utf-8"),
                    kind=ANALYSIS_KINDS[analysis],
                )
            start, end = ring.window_bounds(bucket)
            self._published[name] = {
                "fingerprint": fingerprint,
                "digest": digest,
                "sealed_bucket": bucket,
                "span_s": ring.spec.span_s,
                "bucket_s": ring.spec.bucket_s,
                "window_start": start,
                "window_end": end,
            }
            self._write_live_manifest()
            if previous is not None:
                # The manifest no longer references the old generation;
                # reclaim it so the store holds one live fold per window.
                self.store.invalidate(fingerprint=previous["fingerprint"])
        self.metrics.count("follow.published")

    def _write_live_manifest(self) -> None:
        payload = {
            "format": 1,
            "source": self.source.signature(),
            "model": repr(self.model),
            "policy": self.policy.value,
            "analyses": list(LIVE_ANALYSES),
            "windows": {
                name: {
                    key: value
                    for key, value in entry.items()
                    if key != "digest"
                }
                for name, entry in sorted(self._published.items())
            },
        }
        path = live_manifest_path(self.store.directory)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2) + "\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Checkpoint round-trip
    # ------------------------------------------------------------------
    def save_checkpoint(self) -> None:
        """Persist everything a resume needs, atomically."""
        with self.metrics.stage("follow.checkpoint"):
            extra = {
                "follow_format": FOLLOW_FORMAT,
                "windows": {},
                "watermarks": {
                    str(uid): ts for uid, ts in self._watermarks.items()
                },
                "cursors": self._cursors,
                "headlines": {
                    name: engine.state()
                    for name, engine in self.engines.items()
                },
                "emitted": list(self.headline_log),
                "published": self._published,
                "top_n": self.top_n,
            }
            arrays: Dict[str, np.ndarray] = {}
            for i, (name, ring) in enumerate(sorted(self.rings.items())):
                meta, ring_arrays = ring.payload(f"w{i}")
                meta["prefix"] = f"w{i}"
                extra["windows"][name] = meta
                arrays.update(ring_arrays)
            registry = getattr(self.source, "registry", None)
            checkpoint = StreamCheckpoint(
                self.source.signature(),
                self.model,
                self.policy,
                [
                    self._accumulators[uid].to_checkpoint()
                    for uid in sorted(self._accumulators)
                ],
                chunks_done=self.chunks_done,
                registry_json=(
                    registry.to_json() if registry is not None else None
                ),
                has_cadence=False,
                extra_json=json.dumps(extra),
                extra_arrays=arrays,
            )
            checkpoint.save(self.checkpoint_path)
        self._since_checkpoint = 0
        self.metrics.count("follow.checkpoints")

    def _restore(self) -> None:
        """Load the checkpoint and rewind source + state to it."""
        checkpoint = StreamCheckpoint.load(self.checkpoint_path)
        checkpoint.verify(
            self.source.signature(), self.model, self.policy
        )
        if checkpoint.loaded_from_fallback:
            self.metrics.count("faults.checkpoint_fallback")
        if checkpoint.extra_json is None:
            raise FollowError(
                "checkpoint carries no follow state (it is an ingest "
                "checkpoint); start the follow fresh with a new "
                "--checkpoint path"
            )
        extra = json.loads(checkpoint.extra_json)
        if extra.get("follow_format") != FOLLOW_FORMAT:
            raise FollowError(
                f"follow checkpoint format "
                f"{extra.get('follow_format')!r} is not {FOLLOW_FORMAT}"
            )
        saved_windows = extra["windows"]
        ours = {name: ring.spec for name, ring in self.rings.items()}
        theirs = {
            name: (int(m["span_s"]), int(m["bucket_s"]))
            for name, m in saved_windows.items()
        }
        if {
            name: (spec.span_s, spec.bucket_s)
            for name, spec in ours.items()
        } != theirs:
            raise FollowError(
                f"checkpoint windows {theirs} do not match the "
                "requested windows — rerun with the same --window set "
                "or start a fresh checkpoint"
            )
        for name, meta in saved_windows.items():
            self.rings[name] = WindowRing.from_payload(
                meta, checkpoint.extra_arrays, meta["prefix"]
            )
        self.engines = {
            name: HeadlineEngine.from_state(
                name, state, top_n=int(extra.get("top_n", self.top_n))
            )
            for name, state in extra["headlines"].items()
        }
        self._watermarks = {
            int(uid): float(ts)
            for uid, ts in extra["watermarks"].items()
        }
        self._cursors = dict(extra["cursors"])
        self.headline_log = list(extra["emitted"])
        self._published = dict(extra.get("published", {}))
        self.chunks_done = checkpoint.chunks_done
        for user in checkpoint.users:
            self._accumulators[user.user_id] = (
                UserStreamAccumulator.from_checkpoint(
                    user, self.source.window(user.user_id)
                )
            )
        self.source.restore(self._cursors, checkpoint.registry_json)
